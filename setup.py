"""Setuptools shim.

The execution environment has no ``wheel`` package (and no network), so
PEP-517 editable installs cannot build an editable wheel.  This shim lets
``pip install -e . --no-use-pep517`` (and plain ``pip install -e .`` on
environments that do have wheel) work; all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
