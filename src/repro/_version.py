"""Version of the :mod:`repro` package."""

__version__ = "0.1.0"
