"""Statistics, bound evaluators, regression, and report rendering."""

from .stats import Summary, summarize, bootstrap_ci, success_rate, wilson_interval
from .chernoff import (
    chernoff_upper_tail,
    binomial_tail_exact,
    per_edge_exceedance,
    lemma22_failure_bound,
    predicted_max_set_congestion_quantile,
    empirical_exceedance_rate,
)
from .bounds import (
    trivial_lower_bound,
    polylog_factor,
    BoundsComparison,
    compare_with_bounds,
    effective_polylog_exponent,
    theory_constants_table,
)
from .fitting import (
    LinearFit,
    fit_through_origin,
    AffineFit,
    fit_affine,
    fit_power_law,
    correlation,
)
from .report import format_table, format_kv, format_bar, print_table

__all__ = [
    "Summary",
    "summarize",
    "bootstrap_ci",
    "success_rate",
    "wilson_interval",
    "chernoff_upper_tail",
    "binomial_tail_exact",
    "per_edge_exceedance",
    "lemma22_failure_bound",
    "predicted_max_set_congestion_quantile",
    "empirical_exceedance_rate",
    "trivial_lower_bound",
    "polylog_factor",
    "BoundsComparison",
    "compare_with_bounds",
    "effective_polylog_exponent",
    "theory_constants_table",
    "LinearFit",
    "fit_through_origin",
    "AffineFit",
    "fit_affine",
    "fit_power_law",
    "correlation",
    "format_table",
    "format_kv",
    "format_bar",
    "print_table",
]
