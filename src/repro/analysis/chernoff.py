"""Chernoff machinery for Lemma 2.2.

Splitting ``N`` packets uniformly into ``num_sets`` frontier-sets makes each
edge's per-set congestion a sum of at most ``C`` independent Bernoulli
``1/num_sets`` variables.  Lemma 2.2 bounds the probability any ``C_i``
exceeds ``ln(LN)``; experiment T4 compares the realized distribution of
``max_i C_i`` with these predictions.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..errors import ParameterError


def chernoff_upper_tail(mu: float, x: float) -> float:
    """``P[X >= x] <= (e·mu/x)^x`` for a Poisson-dominated sum with mean mu.

    The classic multiplicative Chernoff bound in its ``(eμ/x)^x`` form,
    valid for sums of independent ``[0, 1]`` variables when ``x > mu``.
    """
    if mu < 0:
        raise ParameterError(f"mean must be non-negative, got {mu}")
    if x <= mu:
        return 1.0
    if mu == 0.0:
        return 0.0
    return (math.e * mu / x) ** x


def binomial_tail_exact(n: int, p: float, x: int) -> float:
    """Exact ``P[Binomial(n, p) >= x]`` (direct summation; n is small)."""
    if not 0.0 <= p <= 1.0:
        raise ParameterError(f"p must be a probability, got {p}")
    if x <= 0:
        return 1.0
    if x > n:
        return 0.0
    total = 0.0
    for k in range(x, n + 1):
        total += math.comb(n, k) * p**k * (1.0 - p) ** (n - k)
    return min(1.0, total)


def per_edge_exceedance(
    congestion: int, num_sets: int, bound: float, exact: bool = True
) -> float:
    """``P[one edge's one set's congestion > bound]``.

    The per-set load of an edge crossed by ``c_e <= C`` packets is
    ``Binomial(c_e, 1/num_sets)``; we bound with ``c_e = C``.
    """
    if num_sets < 1:
        raise ParameterError(f"num_sets must be >= 1, got {num_sets}")
    threshold = math.floor(bound) + 1
    if exact:
        return binomial_tail_exact(congestion, 1.0 / num_sets, threshold)
    return chernoff_upper_tail(congestion / num_sets, threshold)


def lemma22_failure_bound(
    congestion: int,
    depth: int,
    num_packets: int,
    num_sets: int,
    num_edges: int,
    bound: float,
    exact: bool = True,
) -> float:
    """Union bound on ``P[max_i C_i > bound]`` over all (edge, set) pairs.

    Lemma 2.2 states this is at most ``1 − p₀ = 1/(2LN)`` with the paper's
    ``aC`` sets and ``bound = ln(LN)``; with the practical parameterization
    the same union bound is evaluated at the configured values.
    """
    if depth < 1 or num_packets < 1:
        raise ParameterError("need depth >= 1 and num_packets >= 1")
    single = per_edge_exceedance(congestion, num_sets, bound, exact=exact)
    return min(1.0, num_edges * num_sets * single)


def predicted_max_set_congestion_quantile(
    congestion: int,
    num_sets: int,
    num_edges: int,
    quantile: float = 0.5,
) -> int:
    """Smallest ``b`` with union-bound ``P[max C_i > b] <= 1 − quantile``.

    A (conservative) prediction of where the realized ``max_i C_i`` should
    concentrate; T4 plots realized values against this.
    """
    if not 0.0 < quantile < 1.0:
        raise ParameterError(f"quantile must be in (0, 1), got {quantile}")
    tail_budget = 1.0 - quantile
    for b in range(0, congestion + 1):
        tail = num_edges * num_sets * per_edge_exceedance(
            congestion, num_sets, float(b), exact=True
        )
        if tail <= tail_budget:
            return b
    return congestion


def empirical_exceedance_rate(
    realized_maxima: Sequence[int], bound: float
) -> float:
    """Fraction of trials whose ``max_i C_i`` exceeded the bound."""
    if not realized_maxima:
        raise ParameterError("no realized maxima supplied")
    return sum(1 for value in realized_maxima if value > bound) / len(
        realized_maxima
    )
