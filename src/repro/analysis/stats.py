"""Summary statistics for experiment trials.

Plain numpy implementations (mean/median/std, percentiles, bootstrap
confidence intervals) so result tables carry uncertainty, not just point
estimates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..rng import RngLike, make_rng


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of one metric across trials."""

    n: int
    mean: float
    std: float
    minimum: float
    median: float
    maximum: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"n={self.n} mean={self.mean:.2f}±{self.std:.2f} "
            f"[{self.minimum:.0f}, {self.median:.0f}, {self.maximum:.0f}]"
        )


def summarize(values: Sequence[float]) -> Summary:
    """Summary statistics of a non-empty sample."""
    if len(values) == 0:
        raise ValueError("cannot summarize an empty sample")
    arr = np.asarray(values, dtype=float)
    return Summary(
        n=len(arr),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if len(arr) > 1 else 0.0,
        minimum=float(arr.min()),
        median=float(np.median(arr)),
        maximum=float(arr.max()),
    )


def bootstrap_ci(
    values: Sequence[float],
    confidence: float = 0.95,
    num_resamples: int = 2000,
    seed: RngLike = 0,
) -> Tuple[float, float]:
    """Percentile-bootstrap confidence interval for the mean."""
    if len(values) == 0:
        raise ValueError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    arr = np.asarray(values, dtype=float)
    if len(arr) == 1:
        return float(arr[0]), float(arr[0])
    rng = make_rng(seed)
    indexes = rng.integers(0, len(arr), size=(num_resamples, len(arr)))
    means = arr[indexes].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    lo, hi = np.quantile(means, [alpha, 1.0 - alpha])
    return float(lo), float(hi)


def success_rate(outcomes: Sequence[bool]) -> float:
    """Fraction of ``True`` outcomes."""
    if len(outcomes) == 0:
        raise ValueError("cannot take the rate of an empty sample")
    return sum(1 for ok in outcomes if ok) / len(outcomes)


def wilson_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Better behaved than the normal approximation near rates of 0 or 1 —
    exactly the regime of experiment T6 (success probability ≈ 1 − 1/LN).
    """
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    if not 0 <= successes <= trials:
        raise ValueError(f"successes {successes} outside 0..{trials}")
    # z for the two-sided confidence level (inverse normal CDF via scipy-free
    # rational approximation is overkill; the standard values suffice).
    z_table = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}
    z = z_table.get(round(confidence, 2))
    if z is None:
        raise ValueError(f"unsupported confidence {confidence}; use 0.90/0.95/0.99")
    p = successes / trials
    denom = 1.0 + z * z / trials
    center = (p + z * z / (2 * trials)) / denom
    half = (
        z
        * ((p * (1 - p) / trials + z * z / (4 * trials * trials)) ** 0.5)
        / denom
    )
    return max(0.0, center - half), min(1.0, center + half)
