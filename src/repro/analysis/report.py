"""Plain-text table rendering for the benchmark harness.

The benches print their reproduction tables through these helpers so every
experiment's output has the same shape: a title, a column header, aligned
rows, and an optional note.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str | None = None,
    note: str | None = None,
) -> str:
    """Render an aligned monospaced table."""
    str_rows: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells for {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    if note:
        lines.append("")
        lines.append(f"note: {note}")
    return "\n".join(lines)


def _cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def format_kv(pairs: dict, title: str | None = None) -> str:
    """Render a key/value block (parameter dumps)."""
    width = max((len(str(k)) for k in pairs), default=0)
    lines = []
    if title:
        lines.append(title)
        lines.append("-" * len(title))
    for key, value in pairs.items():
        lines.append(f"{str(key).ljust(width)}  {_cell(value)}")
    return "\n".join(lines)


def format_bar(value: float, maximum: float, width: int = 20) -> str:
    """A proportional unicode bar (``repro report``'s activity columns).

    ``value == maximum`` fills ``width`` cells; any nonzero value shows at
    least one cell so small-but-present activity stays visible.
    """
    if maximum <= 0 or value <= 0:
        return ""
    cells = round(width * min(value, maximum) / maximum)
    return "█" * max(1, cells)


def print_table(*args, **kwargs) -> None:
    """``print(format_table(...))`` with a leading blank line."""
    print()
    print(format_table(*args, **kwargs))
