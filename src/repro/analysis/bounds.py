"""Lower/upper bound evaluators for the comparison tables.

* ``Ω(C + D)`` — the trivial lower bound every router is measured against.
* Theorem 4.26's ``O((C + L)·ln⁹(LN))`` upper bound, evaluated with the
  exact reconstructed constants (from :mod:`repro.core.params`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.params import compute_theory_values, theorem_time_bound
from ..errors import ParameterError
from ..sim import RunResult


def trivial_lower_bound(congestion: int, dilation: int) -> int:
    """``max(C, D)``; routing cannot finish faster (Section 1.1)."""
    return max(congestion, dilation)


def polylog_factor(depth: int, num_packets: int, exponent: int = 9) -> float:
    """``ln^exponent(LN)`` — Theorem 4.26's polylog with default exponent 9."""
    if exponent < 0:
        raise ParameterError(f"exponent must be >= 0, got {exponent}")
    return max(1.0, math.log(depth * num_packets)) ** exponent


@dataclass(frozen=True)
class BoundsComparison:
    """How a measured run sits between the bounds."""

    makespan: int
    lower: int
    theorem_upper: float
    ratio_to_lower: float
    fraction_of_upper: float

    def as_row(self) -> tuple:
        """Table row for the bench harness."""
        return (
            self.makespan,
            self.lower,
            f"{self.ratio_to_lower:.2f}x",
            f"{self.theorem_upper:.3g}",
            f"{self.fraction_of_upper:.2e}",
        )


def compare_with_bounds(result: RunResult, num_packets: int | None = None) -> BoundsComparison:
    """Situate a run result between ``max(C, D)`` and Theorem 4.26's bound."""
    n = num_packets if num_packets is not None else result.num_packets
    lower = trivial_lower_bound(result.congestion, result.dilation)
    upper = theorem_time_bound(max(1, result.congestion), max(1, result.depth), max(1, n))
    return BoundsComparison(
        makespan=result.makespan,
        lower=lower,
        theorem_upper=upper,
        ratio_to_lower=result.makespan / max(1, lower),
        fraction_of_upper=result.makespan / upper,
    )


def effective_polylog_exponent(
    makespan: int, congestion: int, depth: int, num_packets: int
) -> float:
    """Solve ``T = (C + L)·ln^β(LN)`` for β — the *measured* polylog exponent.

    The paper proves β ≤ 9; practical parameterizations land far lower,
    which the T1 table reports.
    """
    base = math.log(max(math.e, depth * num_packets))
    factor = makespan / max(1, congestion + depth)
    if factor <= 1.0:
        return 0.0
    return math.log(factor) / math.log(base)


def theory_constants_table(congestion: int, depth: int, num_packets: int) -> dict:
    """The exact Section 2.1 constants for one instance (report helper)."""
    tv = compute_theory_values(congestion, depth, num_packets)
    return {
        "a": tv.a,
        "m": tv.m,
        "q": tv.q,
        "w": tv.w,
        "p0": tv.p0,
        "p1": tv.p1,
        "aC (sets)": tv.a * congestion,
        "amC+L (phases)": tv.total_phases,
        "total steps": tv.total_steps,
    }
