"""Regression helpers for the scaling experiment (T1).

Theorem 4.26 predicts ``T = Θ((C + L) · polylog)``.  On a sweep of
instances we fit ``T = α·(C + L)`` (through the origin) and report the
coefficient of determination: near-linear behavior (R² close to 1) with a
moderate α is the empirical signature of the theorem's shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..errors import ParameterError


@dataclass(frozen=True)
class LinearFit:
    """``y ≈ slope · x`` (through the origin)."""

    slope: float
    r_squared: float
    n: int

    def predict(self, x: float) -> float:
        """Fitted value at ``x``."""
        return self.slope * x

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"y = {self.slope:.3f}·x (R²={self.r_squared:.4f}, n={self.n})"


def fit_through_origin(x: Sequence[float], y: Sequence[float]) -> LinearFit:
    """Least-squares fit of ``y = slope·x``."""
    xs = np.asarray(x, dtype=float)
    ys = np.asarray(y, dtype=float)
    if xs.shape != ys.shape or xs.ndim != 1 or len(xs) == 0:
        raise ParameterError("x and y must be equal-length non-empty vectors")
    denom = float(np.dot(xs, xs))
    if denom == 0.0:
        raise ParameterError("x is identically zero")
    slope = float(np.dot(xs, ys)) / denom
    residual = ys - slope * xs
    total = ys - ys.mean()
    ss_tot = float(np.dot(total, total))
    ss_res = float(np.dot(residual, residual))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return LinearFit(slope=slope, r_squared=r2, n=len(xs))


@dataclass(frozen=True)
class AffineFit:
    """``y ≈ intercept + slope·x``."""

    slope: float
    intercept: float
    r_squared: float
    n: int

    def predict(self, x: float) -> float:
        """Fitted value at ``x``."""
        return self.intercept + self.slope * x


def fit_affine(x: Sequence[float], y: Sequence[float]) -> AffineFit:
    """Ordinary least squares ``y = a + b·x``."""
    xs = np.asarray(x, dtype=float)
    ys = np.asarray(y, dtype=float)
    if xs.shape != ys.shape or xs.ndim != 1 or len(xs) < 2:
        raise ParameterError("need at least two (x, y) points")
    design = np.column_stack([np.ones_like(xs), xs])
    coef, *_ = np.linalg.lstsq(design, ys, rcond=None)
    intercept, slope = float(coef[0]), float(coef[1])
    predicted = design @ coef
    ss_res = float(np.sum((ys - predicted) ** 2))
    ss_tot = float(np.sum((ys - ys.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return AffineFit(slope=slope, intercept=intercept, r_squared=r2, n=len(xs))


def fit_power_law(x: Sequence[float], y: Sequence[float]) -> Tuple[float, float, float]:
    """Fit ``y = c·x^β`` by log-log least squares; returns ``(c, β, R²)``.

    Used to check that makespan grows ~linearly (β ≈ 1) in ``C + L``.
    """
    xs = np.asarray(x, dtype=float)
    ys = np.asarray(y, dtype=float)
    if np.any(xs <= 0) or np.any(ys <= 0):
        raise ParameterError("power-law fit needs strictly positive data")
    fit = fit_affine(np.log(xs), np.log(ys))
    return float(np.exp(fit.intercept)), fit.slope, fit.r_squared


def correlation(x: Sequence[float], y: Sequence[float]) -> float:
    """Pearson correlation coefficient."""
    xs = np.asarray(x, dtype=float)
    ys = np.asarray(y, dtype=float)
    if len(xs) < 2:
        raise ParameterError("need at least two points")
    return float(np.corrcoef(xs, ys)[0, 1])
