"""Traffic generation and streaming execution for dynamic workloads.

The workload-generator / switch-model split: injection processes
(:mod:`~repro.traffic.sources`) are independent of routers and engines,
arrival *schedules* (:mod:`~repro.traffic.schedule`) are the materialized
form both engines gate eligibility on, materialization
(:mod:`~repro.traffic.materialize`) turns arrivals into cacheable routing
problems, and the stream driver (:mod:`~repro.traffic.stream`) runs an
open-loop source against an engine with bounded memory.
"""

from .materialize import offered_load, problem_from_arrivals
from .schedule import ArrivalSchedule
from .sources import (
    Arrival,
    BatchSource,
    BernoulliSource,
    InjectionSource,
    PoissonSource,
    TraceSource,
    collect_arrivals,
)
from .stream import StreamSummary, make_stream_router, run_stream

__all__ = [
    "Arrival",
    "ArrivalSchedule",
    "BatchSource",
    "BernoulliSource",
    "InjectionSource",
    "PoissonSource",
    "TraceSource",
    "StreamSummary",
    "collect_arrivals",
    "make_stream_router",
    "offered_load",
    "problem_from_arrivals",
    "run_stream",
]
