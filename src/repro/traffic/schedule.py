"""Arrival schedules: when each packet of a problem becomes injectable.

An :class:`ArrivalSchedule` is the *materialized* form of an injection
process: packet ``k`` of a :class:`~repro.paths.RoutingProblem` may start
attempting injection at step ``times[k]``.  It is immutable — all per-run
release state (which packets the router has approved but whose arrival has
not come) lives in the engine — so one schedule object can be shared by any
number of engines, including the warm scenario cache.

Both engines (:class:`~repro.sim.Engine` and
:class:`~repro.sim.VecEngine`) understand schedules natively: eligibility
marks from the router are *gated* on the packet's arrival time, and due
packets are released at the top of each step.  A packet therefore becomes
eligible at ``max(router mark time, arrival time)``, which degenerates to
the classic mark-all-at-attach behavior when every time is zero.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from ..errors import WorkloadError
from ..types import PacketId


class ArrivalSchedule:
    """Immutable per-packet injection times (packet id -> earliest step)."""

    __slots__ = ("times", "_by_time", "max_time")

    def __init__(self, arrival_times: Sequence[int]) -> None:
        times = tuple(int(t) for t in arrival_times)
        if any(t < 0 for t in times):
            raise WorkloadError("arrival times must be non-negative")
        by_time: Dict[int, list] = {}
        for pid, t in enumerate(times):
            by_time.setdefault(t, []).append(pid)
        self.times: Tuple[int, ...] = times
        self._by_time: Dict[int, Tuple[PacketId, ...]] = {
            t: tuple(pids) for t, pids in by_time.items()
        }
        self.max_time = max(times) if times else 0

    def __len__(self) -> int:
        return len(self.times)

    def time_of(self, packet_id: PacketId) -> int:
        """The earliest step at which ``packet_id`` may inject."""
        return self.times[packet_id]

    def due_at(self, t: int) -> Tuple[PacketId, ...]:
        """Packet ids whose arrival time is exactly ``t``."""
        return self._by_time.get(t, ())

    def validate_for(self, num_packets: int) -> None:
        """Reject a schedule whose length does not match the problem."""
        if len(self.times) != num_packets:
            raise WorkloadError(
                f"{len(self.times)} arrival times for {num_packets} packets"
            )


__all__ = ["ArrivalSchedule"]
