"""Materialize arrivals into a schedule-carrying routing problem.

The batch pipeline (scenarios, caching, every problem-level backend) works
on :class:`~repro.paths.RoutingProblem` instances; a dynamic workload is
simply a problem whose ``arrival_schedule`` attribute carries the packets'
injection times.  Both engines pick the schedule up at construction, so
*any* backend — the reference engine, the vectorized kernel, the frontier
algorithm, the baselines — accepts mid-run injection without knowing where
the traffic came from.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..net import LeveledNetwork
from ..paths import PacketSpec, RoutingProblem, random_monotone_path
from ..rng import RngLike, make_rng
from .schedule import ArrivalSchedule
from .sources import Arrival


def problem_from_arrivals(
    net: LeveledNetwork,
    arrivals: Sequence[Arrival],
    seed: RngLike = None,
) -> Tuple[RoutingProblem, List[int]]:
    """Arrivals -> (multi-source problem with attached schedule, times).

    Packet ``k`` is arrival ``k``; its path is a random monotone path drawn
    per packet (one draw sequence, in arrival order — byte-identical to the
    legacy ``arrivals_to_problem``).  The returned problem carries its
    :class:`ArrivalSchedule` on ``problem.arrival_schedule``.
    """
    rng = make_rng(seed)
    specs = []
    times: List[int] = []
    for k, arrival in enumerate(arrivals):
        path = random_monotone_path(net, arrival.source, arrival.destination, rng)
        specs.append(PacketSpec(k, arrival.source, arrival.destination, path))
        times.append(arrival.time)
    problem = RoutingProblem(net, specs, allow_multi_source=True)
    problem.arrival_schedule = ArrivalSchedule(times)
    return problem, times


def offered_load(
    net: LeveledNetwork, arrivals: Sequence[Arrival], horizon: int
) -> float:
    """Average offered load in packet-hops per step per unit bandwidth.

    The natural utilization measure: total requested hops divided by
    ``horizon * (forward edges)``; saturation is expected as this
    approaches the bottleneck utilization 1.
    """
    from ..errors import WorkloadError

    if horizon < 1:
        raise WorkloadError(f"horizon must be >= 1, got {horizon}")
    hops = sum(
        net.level(a.destination) - net.level(a.source) for a in arrivals
    )
    return hops / (horizon * max(1, net.num_edges))


__all__ = ["problem_from_arrivals", "offered_load"]
