"""Injection sources: the workload-generator half of dynamic traffic.

Following the workload-generator / switch-model split of rotorsim-style
simulators, an :class:`InjectionSource` produces :class:`Arrival` records
step by step, independent of any router or engine.  Sources are *streams*:
``arrivals_at`` must be called for consecutive steps ``t = 0, 1, 2, ...``
so that seeded sources draw their RNG in a reproducible order (the
Bernoulli source replicates the legacy ``bernoulli_arrivals`` draw
sequence exactly — one ``random(len(sources))`` batch per step, one
``integers`` destination draw per hit).

Four concrete sources cover the setting:

* :class:`BernoulliSource` — per-step, per-source Bernoulli coins (the
  classic dynamic-deflection model of Broder & Upfal, the paper's [9]);
* :class:`PoissonSource` — Poisson-distributed aggregate arrivals per step
  with uniform placement;
* :class:`TraceSource` — replay a recorded list of arrivals;
* :class:`BatchSource` — the degenerate static case: everything at t=0.

``horizon`` is the source's natural end (``None`` = open-loop, unbounded);
:func:`collect_arrivals` materializes a finite prefix into a plain list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Protocol, Sequence, Tuple

from ..errors import WorkloadError
from ..net import LeveledNetwork
from ..rng import RngLike, make_rng
from ..types import NodeId


@dataclass(frozen=True)
class Arrival:
    """One dynamically arriving packet."""

    time: int
    source: NodeId
    destination: NodeId


class InjectionSource(Protocol):
    """Per-step arrival generator (see module docstring).

    ``horizon`` is the number of steps the source injects over (``None``
    for open-loop sources that never stop); ``arrivals_at(t)`` returns the
    arrivals of step ``t`` and must be called for consecutive ``t``.
    """

    horizon: Optional[int]

    def arrivals_at(self, t: int) -> List[Arrival]:
        """Arrivals injected at step ``t``, in a deterministic order."""
        ...


def _injection_sites(
    net: LeveledNetwork,
    source_levels: Optional[Sequence[int]],
    min_hops: int,
) -> Tuple[List[NodeId], dict]:
    """Injection-capable nodes (level order) and their destination options."""
    levels = (
        range(net.depth)
        if source_levels is None
        else [l for l in source_levels if 0 <= l < net.depth]
    )
    sources: List[NodeId] = []
    reach_cache: dict = {}
    for level in levels:
        for v in net.nodes_at_level(level):
            if net.out_degree(v) == 0:
                continue
            options = [
                u
                for u in sorted(net.forward_reachable(v))
                if net.level(u) >= net.level(v) + min_hops
            ]
            if options:
                sources.append(v)
                reach_cache[v] = options
    if not sources:
        raise WorkloadError("no injection-capable sources")
    return sources, reach_cache


class BernoulliSource:
    """Per-step, per-source Bernoulli(``rate``) arrivals.

    ``rate`` is the injection probability per eligible source per step;
    aggregate offered load is ``rate * |sources|`` packets/step.  Each
    arrival's destination is uniform over forward-reachable nodes at least
    ``min_hops`` ahead.  Draw-for-draw identical to the legacy
    ``repro.dynamic.bernoulli_arrivals`` stream.
    """

    def __init__(
        self,
        net: LeveledNetwork,
        rate: float,
        *,
        seed: RngLike = None,
        horizon: Optional[int] = None,
        source_levels: Optional[Sequence[int]] = None,
        min_hops: int = 1,
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise WorkloadError(f"rate must be a probability, got {rate}")
        if horizon is not None and horizon < 1:
            raise WorkloadError(f"horizon must be >= 1, got {horizon}")
        self.net = net
        self.rate = float(rate)
        self.horizon = horizon
        self._rng = make_rng(seed)
        self._sources, self._reach = _injection_sites(
            net, source_levels, int(min_hops)
        )

    def arrivals_at(self, t: int) -> List[Arrival]:
        if self.horizon is not None and t >= self.horizon:
            return []
        rng = self._rng
        rate = self.rate
        out: List[Arrival] = []
        coins = rng.random(len(self._sources))
        for idx, v in enumerate(self._sources):
            if coins[idx] < rate:
                options = self._reach[v]
                dest = options[int(rng.integers(0, len(options)))]
                out.append(Arrival(time=t, source=v, destination=dest))
        return out


class PoissonSource:
    """Poisson(``mean_rate``) aggregate arrivals per step, placed uniformly.

    ``mean_rate`` is the expected number of packets injected network-wide
    per step; each arrival picks a uniform injection-capable source and a
    uniform forward destination at least ``min_hops`` ahead.
    """

    def __init__(
        self,
        net: LeveledNetwork,
        mean_rate: float,
        *,
        seed: RngLike = None,
        horizon: Optional[int] = None,
        source_levels: Optional[Sequence[int]] = None,
        min_hops: int = 1,
    ) -> None:
        if mean_rate < 0.0:
            raise WorkloadError(f"mean_rate must be >= 0, got {mean_rate}")
        if horizon is not None and horizon < 1:
            raise WorkloadError(f"horizon must be >= 1, got {horizon}")
        self.net = net
        self.mean_rate = float(mean_rate)
        self.horizon = horizon
        self._rng = make_rng(seed)
        self._sources, self._reach = _injection_sites(
            net, source_levels, int(min_hops)
        )

    def arrivals_at(self, t: int) -> List[Arrival]:
        if self.horizon is not None and t >= self.horizon:
            return []
        rng = self._rng
        count = int(rng.poisson(self.mean_rate))
        out: List[Arrival] = []
        for _ in range(count):
            v = self._sources[int(rng.integers(0, len(self._sources)))]
            options = self._reach[v]
            dest = options[int(rng.integers(0, len(options)))]
            out.append(Arrival(time=t, source=v, destination=dest))
        return out


class TraceSource:
    """Replay a recorded arrival list (time-ascending)."""

    def __init__(self, arrivals: Iterable[Arrival]) -> None:
        records = sorted(
            (Arrival(int(a.time), a.source, a.destination) for a in arrivals),
            key=lambda a: a.time,
        )
        if records and records[0].time < 0:
            raise WorkloadError("arrival times must be non-negative")
        by_time: dict = {}
        for a in records:
            by_time.setdefault(a.time, []).append(a)
        self._by_time = by_time
        self.horizon: Optional[int] = (
            records[-1].time + 1 if records else 1
        )

    def arrivals_at(self, t: int) -> List[Arrival]:
        return list(self._by_time.get(t, ()))


class BatchSource:
    """The degenerate static case: every packet arrives at t=0."""

    def __init__(self, endpoints: Iterable[Tuple[NodeId, NodeId]]) -> None:
        self._arrivals = [
            Arrival(0, src, dst) for src, dst in endpoints
        ]
        self.horizon: Optional[int] = 1

    def arrivals_at(self, t: int) -> List[Arrival]:
        return list(self._arrivals) if t == 0 else []


def collect_arrivals(
    source: InjectionSource, horizon: Optional[int] = None
) -> List[Arrival]:
    """Materialize a finite prefix of a source into a plain list."""
    end = horizon if horizon is not None else source.horizon
    if end is None:
        raise WorkloadError(
            "cannot materialize an open-loop source without a horizon"
        )
    out: List[Arrival] = []
    for t in range(int(end)):
        out.extend(source.arrivals_at(t))
    return out


__all__ = [
    "Arrival",
    "InjectionSource",
    "BernoulliSource",
    "PoissonSource",
    "TraceSource",
    "BatchSource",
    "collect_arrivals",
]
