"""Open-loop streaming execution: feed an injection source into an engine.

The batch pipeline materializes every packet up front; a long-running
service cannot.  :func:`run_stream` starts from an *empty* multi-source
problem and drives the reference engine step by step, admitting packets as
the :class:`~repro.traffic.InjectionSource` produces them
(:meth:`~repro.sim.Engine.admit`) and retiring them the step after
absorption (:meth:`~repro.sim.Engine.retire`) so packet slots are
recycled.  Memory is bounded by the number of packets in flight — never by
the total injected — which is what lets ``repro serve`` sustain an
unbounded Bernoulli stream.

Admission control is a plain cap: when ``max_in_flight`` packets are live,
further arrivals are *dropped* (recorded, not queued — the bufferless
model has nowhere to queue them).  This keeps the deflection slot matcher
away from its capacity limit under overload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..baselines import GreedyHotPotatoRouter, NaivePathRouter
from ..errors import ParameterError
from ..net import LeveledNetwork
from ..paths import RoutingProblem, random_monotone_path
from ..rng import RngLike, make_rng
from ..sim import Engine
from ..sim.events import EventKind
from ..telemetry.live import WindowedMetrics
from .sources import InjectionSource


@dataclass
class StreamSummary:
    """Counters of one streaming run (all O(1) state, no per-packet lists)."""

    steps: int
    arrivals: int
    admitted: int
    delivered: int
    dropped: int
    peak_in_flight: int
    #: length of the engine's packet table at the end — stays at the peak
    #: in-flight watermark thanks to slot recycling, evidence the run never
    #: accumulated per-packet history
    packet_slots: int


def make_stream_router(kind: str, seed: RngLike = None):
    """Router factory for streaming runs (``naive`` or ``greedy``)."""
    if kind == "naive":
        return NaivePathRouter()
    if kind == "greedy":
        return GreedyHotPotatoRouter(seed=seed)
    raise ParameterError(
        f"unknown stream router {kind!r}; expected 'naive' or 'greedy'"
    )


def run_stream(
    net: LeveledNetwork,
    source: InjectionSource,
    router,
    *,
    max_steps: int,
    metrics: Optional[WindowedMetrics] = None,
    path_seed: RngLike = None,
    engine_seed: RngLike = None,
    max_in_flight: Optional[int] = None,
) -> StreamSummary:
    """Drive ``source`` through an engine for up to ``max_steps`` steps.

    Stops early once the source is exhausted (finite ``horizon``) and the
    network has drained.  ``metrics``, when given, observes the engine and
    receives the driver callbacks (arrivals, drops, step clock); its sink
    sees one window dict per completed window while the run is in flight.
    """
    if max_steps < 1:
        raise ParameterError(f"max_steps must be >= 1, got {max_steps}")
    problem = RoutingProblem(net, [], allow_multi_source=True)
    engine = Engine(problem, router, seed=engine_seed)
    path_rng = make_rng(path_seed)

    absorbed: List[int] = []

    def _collect(event) -> None:
        if event.kind is EventKind.ABSORB:
            absorbed.append(event.packet)

    engine.add_observer(_collect)
    if metrics is not None:
        engine.add_observer(metrics.on_event)

    horizon = source.horizon
    arrivals = admitted = delivered = dropped = 0
    peak = 0
    t = 0
    while t < max_steps:
        exhausted = horizon is not None and t >= horizon
        if not exhausted:
            for a in source.arrivals_at(t):
                arrivals += 1
                in_flight = engine.num_active + len(engine.eligible)
                if max_in_flight is not None and in_flight >= max_in_flight:
                    dropped += 1
                    if metrics is not None:
                        metrics.note_drop(t)
                    continue
                path = random_monotone_path(
                    net, a.source, a.destination, path_rng
                )
                pid = engine.admit(a.source, a.destination, path)
                admitted += 1
                if metrics is not None:
                    metrics.note_arrival(pid, t)
        in_flight = engine.num_active + len(engine.eligible)
        if in_flight > peak:
            peak = in_flight
        if exhausted and not in_flight:
            break  # source done, network drained
        engine.step()
        if absorbed:
            delivered += len(absorbed)
            for pid in absorbed:
                engine.retire(pid)
            absorbed.clear()
        if metrics is not None:
            metrics.end_step(t, engine.num_active + len(engine.eligible))
        t = engine.t
    if metrics is not None:
        metrics.close(t - 1)
    return StreamSummary(
        steps=t,
        arrivals=arrivals,
        admitted=admitted,
        delivered=delivered,
        dropped=dropped,
        peak_in_flight=peak,
        packet_slots=len(engine.packets),
    )


__all__ = ["StreamSummary", "make_stream_router", "run_stream"]
