"""The synchronous bufferless routing engine.

Implements the machine model of the paper's Section 1.1: synchronous nodes;
at each time step a node receives packets, makes a routing decision, and
forwards every resident packet on some incident link; at most one packet per
link *per direction* per step (footnote 1).  The engine is algorithm-
agnostic — a :class:`~repro.sim.router.Router` supplies desires, priorities
and state transitions — and enforces the mechanics that every hot-potato
algorithm shares:

* **Arbitration.**  Packets contending for the same directed edge slot are
  ranked by router priority; ties break uniformly at random.  Exactly one
  wins; active losers are *deflected*, pending (uninjected) losers stay put.
* **Deflection matching.**  Losers at a node are matched injectively to free
  slots, preferring *safe backward* slots — in-edges that some packet
  traversed forward (by a genuine path-following move) in the previous step,
  exactly Lemma 2.1's edge set ``E'``.  Falling back to an unsafe slot is
  possible for arbitrary routers and is recorded; the paper's algorithm
  never needs it (Lemma 2.1), which invariant ``I_b`` audits.
* **Bookkeeping.**  Forward path moves pop the path head; deflections and
  backward oscillation prepend the traversed edge (Section 2.3).  A packet
  is absorbed the moment it reaches its destination.
* **Quiescence fast-forward.**  When the router certifies that every active
  packet is deterministically oscillating (all in wait state, no pending
  injections) up to some horizon, the engine advances positions analytically
  instead of stepping; see DESIGN.md Section 4.7.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, List, Sequence, Set, Tuple

from ..errors import CapacityError, SimulationError
from ..net import LeveledNetwork
from ..paths import RoutingProblem
from ..rng import RngLike, make_rng
from ..types import Direction, EdgeId, MoveKind, NodeId, PacketId
from .events import EventKind, TraceEvent
from .metrics import RunResult
from .packet import Packet, PacketStatus
from .router import DesiredMove, Router

#: A directed edge slot: ``(edge, traversal direction)``.
Slot = Tuple[EdgeId, Direction]

Observer = Callable[[TraceEvent], None]


class Engine:
    """Synchronous simulator for one routing problem and one router."""

    def __init__(
        self,
        problem: RoutingProblem,
        router: Router,
        seed: RngLike = None,
        observers: Sequence[Observer] = (),
        enable_fast_forward: bool = True,
    ) -> None:
        self.problem = problem
        self.net: LeveledNetwork = problem.net
        self.router = router
        self.rng = make_rng(seed)
        self.packets: List[Packet] = [Packet(spec) for spec in problem]
        self.t = 0
        self.steps_executed = 0
        self.steps_skipped = 0
        self.num_absorbed = 0
        self.num_active = 0
        #: active packet ids in injection order (dict for deterministic
        #: iteration; values unused) — avoids scanning all packets per step
        self.active_ids: Dict[PacketId, None] = {}
        #: pending packets currently allowed to attempt injection
        self.eligible: Set[PacketId] = set()
        #: in-edges traversed forward by a path-following move last step,
        #: keyed by the node they arrived at (Lemma 2.1's ``E'`` per node)
        self.safe_in: Dict[NodeId, Set[EdgeId]] = {}
        self._observers: List[Observer] = list(observers)
        self._enable_fast_forward = enable_fast_forward
        self.unsafe_deflections = 0
        #: called as ``hook(engine, t)`` after each executed step (auditors)
        self.post_step_hooks: List[Callable[["Engine", int], None]] = []
        router.attach(self)

    # ---------------------------------------------------------------- events

    def add_observer(self, observer: Observer) -> None:
        """Register an event observer (tracer, auditor, ...)."""
        self._observers.append(observer)

    def emit(self, event: TraceEvent) -> None:
        """Deliver an event to all observers."""
        for observer in self._observers:
            observer(event)

    @property
    def tracing(self) -> bool:
        """Whether any observer is attached (guards event construction)."""
        return bool(self._observers)

    # ------------------------------------------------------------- injection

    def mark_eligible(self, packet_id: PacketId) -> None:
        """Allow a pending packet to attempt injection from this step on."""
        packet = self.packets[packet_id]
        if packet.is_pending:
            self.eligible.add(packet_id)

    def mark_all_eligible(self) -> None:
        """Convenience for routers that inject everything immediately."""
        for packet in self.packets:
            if packet.is_pending:
                self.eligible.add(packet.packet_id)

    # ------------------------------------------------------------------ step

    def step(self) -> None:
        """Execute one synchronous time step."""
        t = self.t
        router = self.router
        net = self.net
        tracing = self.tracing

        router.pre_step(t)

        # -- gather participants and their desires ------------------------
        desires: Dict[PacketId, DesiredMove] = {}
        occupants: Dict[NodeId, int] = defaultdict(int)
        for pid in self.active_ids:
            occupants[self.packets[pid].node] += 1
        participants: List[PacketId] = list(self.active_ids)
        participants.extend(sorted(self.eligible))
        for pid in participants:
            desire = router.desired_move(pid, t)
            packet = self.packets[pid]
            src, dst = net.edge_endpoints(desire.edge)
            if packet.node != src and packet.node != dst:
                raise SimulationError(
                    f"router desired edge {desire.edge} not incident to "
                    f"packet {pid} at node {packet.node}"
                )
            desires[pid] = desire

        # -- arbitration per directed slot ---------------------------------
        contenders: Dict[Slot, List[PacketId]] = defaultdict(list)
        for pid, desire in desires.items():
            packet = self.packets[pid]
            direction = net.traversal_direction(desire.edge, packet.node)
            contenders[(desire.edge, direction)].append(pid)

        used_slots: Set[Slot] = set()
        granted: Dict[PacketId, Tuple[EdgeId, MoveKind]] = {}
        losers_by_node: Dict[NodeId, List[PacketId]] = defaultdict(list)
        #: slots granted to not-yet-injected packets, revocable per node:
        #: active packets MUST move (hot potato), pending ones can wait
        pending_grants: Dict[NodeId, List[Tuple[PacketId, Slot]]] = defaultdict(
            list
        )
        for slot, pids in contenders.items():
            if len(pids) == 1:
                winner = pids[0]
            else:
                # Active packets outrank pending ones unconditionally; the
                # router's priority breaks ties within each class.  The
                # priority hook is consulted exactly once per contender
                # (it may be stateful or randomized).
                ranked = [
                    (
                        (
                            1 if self.packets[pid].is_active else 0,
                            router.priority(pid, t),
                        ),
                        pid,
                    )
                    for pid in pids
                ]
                top = max(rank for rank, _ in ranked)
                best = [pid for rank, pid in ranked if rank == top]
                winner = (
                    best[int(self.rng.integers(0, len(best)))]
                    if len(best) > 1
                    else best[0]
                )
            used_slots.add(slot)
            granted[winner] = (slot[0], desires[winner].kind)
            if self.packets[winner].is_pending:
                pending_grants[self.packets[winner].node].append((winner, slot))
            for pid in pids:
                if pid == winner:
                    continue
                packet = self.packets[pid]
                if packet.is_active:
                    losers_by_node[packet.node].append(pid)
                # Pending losers simply fail to inject this step.

        # -- deflection slot matching --------------------------------------
        deflected: List[Tuple[PacketId, EdgeId, bool]] = []
        for node, losers in losers_by_node.items():
            if len(losers) > 1:
                self.rng.shuffle(losers)
            safe_here = self.safe_in.get(node, ())
            # Safe backward slots first (Lemma 2.1), then unsafe backward,
            # then forward, mirroring the paper's backward-deflection rule.
            candidates: List[Tuple[EdgeId, bool]] = []
            for e in net.in_edges(node):
                if e in safe_here and (e, Direction.BACKWARD) not in used_slots:
                    candidates.append((e, True))
            for e in net.in_edges(node):
                if e not in safe_here and (e, Direction.BACKWARD) not in used_slots:
                    candidates.append((e, False))
            for e in net.out_edges(node):
                if (e, Direction.FORWARD) not in used_slots:
                    candidates.append((e, False))
            while len(candidates) < len(losers) and pending_grants[node]:
                # Deflected residents must move; revoke an injection grant
                # at this node and recycle its slot ("a packet is injected
                # at any subsequent step in which there is an available
                # link").
                revoked, slot = pending_grants[node].pop()
                del granted[revoked]
                used_slots.discard(slot)
                candidates.append((slot[0], False))
            if len(candidates) < len(losers):
                raise CapacityError(
                    f"step {t}: node {node} has {len(losers)} deflected "
                    f"packets but only {len(candidates)} free slots"
                )
            for pid, (edge, safe) in zip(losers, candidates):
                direction = net.traversal_direction(edge, node)
                used_slots.add((edge, direction))
                deflected.append((pid, edge, safe))

        # -- apply winner moves ---------------------------------------------
        injecting_at: Dict[NodeId, int] = defaultdict(int)
        for pid in granted:
            if self.packets[pid].is_pending:
                injecting_at[self.packets[pid].node] += 1
        for pid, (edge, kind) in granted.items():
            packet = self.packets[pid]
            isolated = True
            if packet.is_pending:
                isolated = (
                    occupants[packet.node] == 0
                    and injecting_at[packet.node] == 1
                )
                packet.status = PacketStatus.ACTIVE
                packet.injected_at = t
                self.eligible.discard(pid)
                self.num_active += 1
                self.active_ids[pid] = None
                if tracing:
                    self.emit(
                        TraceEvent(
                            t,
                            EventKind.INJECT,
                            packet=pid,
                            node=packet.node,
                            detail="isolated" if isolated else "crowded",
                        )
                    )
                router.on_injected(pid, t, isolated)
            self._apply_move(packet, edge, kind)
            if tracing:
                self.emit(
                    TraceEvent(
                        t,
                        EventKind.MOVE,
                        packet=pid,
                        node=packet.node,
                        edge=edge,
                        direction=packet.last_direction,
                    )
                )
            if router.is_delivered(pid):
                self._absorb(packet, t)
            else:
                router.on_moved(pid, t, edge)

        # -- apply deflections ----------------------------------------------
        deflection_kind = getattr(router, "deflection_kind", MoveKind.REVERSE)
        for pid, edge, safe in deflected:
            packet = self.packets[pid]
            self._apply_move(packet, edge, deflection_kind)
            packet.deflections += 1
            if not safe:
                packet.unsafe_deflections += 1
                self.unsafe_deflections += 1
            if tracing:
                self.emit(
                    TraceEvent(
                        t,
                        EventKind.DEFLECT
                        if safe
                        else EventKind.UNSAFE_DEFLECT,
                        packet=pid,
                        node=packet.node,
                        edge=edge,
                        direction=packet.last_direction,
                    )
                )
            if router.is_delivered(pid):
                # Possible for path-less routers deflected into their
                # destination; path routers never deliver by deflection.
                self._absorb(packet, t)
            else:
                router.on_deflected(pid, t, edge, safe)

        # -- safety bookkeeping for the next step ---------------------------
        safe_next: Dict[NodeId, Set[EdgeId]] = defaultdict(set)
        for pid, (edge, kind) in granted.items():
            packet = self.packets[pid]
            if (
                packet.last_direction is Direction.FORWARD
                and kind is not MoveKind.REVERSE
            ):
                safe_next[packet.node].add(edge)
        self.safe_in = dict(safe_next)

        router.post_step(t)
        for hook in self.post_step_hooks:
            hook(self, t)
        self.t = t + 1
        self.steps_executed += 1

    def _apply_move(self, packet: Packet, edge: EdgeId, kind: MoveKind) -> None:
        if kind is MoveKind.FOLLOW:
            packet.apply_follow(self.net, edge)
        elif kind is MoveKind.REVERSE:
            packet.apply_reverse(self.net, edge)
        else:
            packet.apply_free(self.net, edge)

    def _absorb(self, packet: Packet, t: int) -> None:
        packet.status = PacketStatus.ABSORBED
        packet.absorbed_at = t + 1
        self.num_active -= 1
        self.num_absorbed += 1
        del self.active_ids[packet.packet_id]
        if self.tracing:
            self.emit(
                TraceEvent(
                    t, EventKind.ABSORB, packet=packet.packet_id, node=packet.node
                )
            )

    # ---------------------------------------------------------- fast-forward

    def _try_fast_forward(self) -> None:
        """Skip to one step before the router's quiescent horizon."""
        horizon = self.router.quiescent_horizon(self.t)
        if horizon is None:
            return
        target = horizon - 1  # simulate the boundary step normally
        k = target - self.t
        if k <= 0:
            return
        safe_in = self.router.fast_forward(self.t, target)
        self.safe_in = safe_in
        if self.tracing:
            self.emit(
                TraceEvent(
                    self.t,
                    EventKind.FAST_FORWARD,
                    detail=f"skipped {k} steps to {target}",
                )
            )
        self.t = target
        self.steps_skipped += k

    # ------------------------------------------------------------------- run

    @property
    def done(self) -> bool:
        """All packets absorbed."""
        return self.num_absorbed == len(self.packets)

    def run(self, max_steps: int) -> RunResult:
        """Run until delivery or the step budget; return metrics."""
        while not self.done and self.t < max_steps:
            if self._enable_fast_forward:
                self._try_fast_forward()
            self.step()
        return self.result()

    def result(self) -> RunResult:
        """Snapshot the metrics of the run so far."""
        return RunResult(
            router_name=type(self.router).__name__,
            network_name=self.net.name,
            num_packets=len(self.packets),
            congestion=self.problem.congestion,
            dilation=self.problem.dilation,
            depth=self.net.depth,
            delivered=self.num_absorbed,
            makespan=max(
                (p.absorbed_at for p in self.packets if p.absorbed_at is not None),
                default=self.t,
            )
            if self.done
            else self.t,
            steps_executed=self.steps_executed,
            steps_skipped=self.steps_skipped,
            delivery_times=[p.absorbed_at for p in self.packets],
            deflections_per_packet=[p.deflections for p in self.packets],
            unsafe_deflections=self.unsafe_deflections,
            total_moves=sum(p.moves for p in self.packets),
            total_backward_moves=sum(p.backward_moves for p in self.packets),
            extra=dict(getattr(self.router, "extra_metrics", lambda: {})()),
        )
