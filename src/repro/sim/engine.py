"""The synchronous bufferless routing engine.

Implements the machine model of the paper's Section 1.1: synchronous nodes;
at each time step a node receives packets, makes a routing decision, and
forwards every resident packet on some incident link; at most one packet per
link *per direction* per step (footnote 1).  The engine is algorithm-
agnostic — a :class:`~repro.sim.router.Router` supplies desires, priorities
and state transitions — and enforces the mechanics that every hot-potato
algorithm shares:

* **Arbitration.**  Packets contending for the same directed edge slot are
  ranked by router priority; ties break uniformly at random.  Exactly one
  wins; active losers are *deflected*, pending (uninjected) losers stay put.
* **Deflection matching.**  Losers at a node are matched injectively to free
  slots, preferring *safe backward* slots — in-edges that some packet
  traversed forward (by a genuine path-following move) in the previous step,
  exactly Lemma 2.1's edge set ``E'``.  Falling back to an unsafe slot is
  possible for arbitrary routers and is recorded; the paper's algorithm
  never needs it (Lemma 2.1), which invariant ``I_b`` audits.
* **Bookkeeping.**  Forward path moves pop the path head; deflections and
  backward oscillation prepend the traversed edge (Section 2.3).  A packet
  is absorbed the moment it reaches its destination.
* **Quiescence fast-forward.**  When the router certifies that every active
  packet is deterministically oscillating (all in wait state, no pending
  injections) up to some horizon, the engine advances positions analytically
  instead of stepping; see DESIGN.md Section 4.7.

Performance
-----------
:meth:`Engine.step` is the hot loop of every experiment, so it runs on the
network's precomputed :class:`~repro.net.NetworkGeometry` (dense endpoint
and slot-id tables instead of method calls), encodes directed slots as
single ints, reuses per-step scratch containers instead of allocating fresh
dicts, applies moves with inlined path bookkeeping, and computes
injection-isolation occupancy only on steps that actually inject.  The
observable semantics — arbitration order, RNG draw sequence, router hook
order, trace events, error messages — are identical to the straightforward
implementation and are pinned by the golden trace regression tests (see
docs/performance.md for the preserved invariants).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..errors import CapacityError, SimulationError
from ..net import LeveledNetwork
from ..paths import PacketSpec, RoutingProblem
from ..rng import RngLike, make_rng
from ..telemetry.context import current_session
from ..types import Direction, EdgeId, MoveKind, NodeId, PacketId
from .events import EventKind, TraceEvent
from .metrics import RunResult
from .packet import Packet, PacketStatus
from .router import DesiredMove, Router

#: A directed edge slot: ``(edge, traversal direction)``.
Slot = Tuple[EdgeId, Direction]

Observer = Callable[[TraceEvent], None]

_FORWARD = Direction.FORWARD
_BACKWARD = Direction.BACKWARD
_PENDING = PacketStatus.PENDING
_ACTIVE = PacketStatus.ACTIVE
_FOLLOW = MoveKind.FOLLOW
_REVERSE = MoveKind.REVERSE


class Engine:
    """Synchronous simulator for one routing problem and one router."""

    def __init__(
        self,
        problem: RoutingProblem,
        router: Router,
        seed: RngLike = None,
        observers: Sequence[Observer] = (),
        enable_fast_forward: bool = True,
        geometry=None,
    ) -> None:
        self.problem = problem
        self.net: LeveledNetwork = problem.net
        self.router = router
        self.rng = make_rng(seed)
        self.packets: List[Packet] = [Packet(spec) for spec in problem]
        self.t = 0
        self.steps_executed = 0
        self.steps_skipped = 0
        self.num_absorbed = 0
        self.num_active = 0
        #: active packet ids in injection order (dict for deterministic
        #: iteration; values unused) — avoids scanning all packets per step
        self.active_ids: Dict[PacketId, None] = {}
        #: pending packets currently allowed to attempt injection
        self.eligible: Set[PacketId] = set()
        #: arrival schedule gating eligibility (None = ungated)
        self._arrivals = None
        #: router-approved pending packets whose arrival time has not come
        self._held: Set[PacketId] = set()
        #: retired packet slots available for mid-run admission reuse
        self._free_pids: List[PacketId] = []
        #: in-edges traversed forward by a path-following move last step,
        #: keyed by the node they arrived at (Lemma 2.1's ``E'`` per node)
        self.safe_in: Dict[NodeId, Set[EdgeId]] = {}
        self._observers: List[Observer] = list(observers)
        self._enable_fast_forward = enable_fast_forward
        self.unsafe_deflections = 0
        #: called as ``hook(engine, t)`` after each executed step (auditors)
        self.post_step_hooks: List[Callable[["Engine", int], None]] = []
        #: TimingSpans fed by run() when a telemetry session is active
        self._step_timer = None

        # Dense geometry tables (built once per network, shared by engines).
        # ``geometry`` lets warm-cache callers hand in a prebuilt table set
        # explicitly; otherwise the network's own cached build is used.
        geo = geometry if geometry is not None else self.net.geometry()
        self._edge_src = geo.edge_src
        self._edge_dst = geo.edge_dst
        self._in_edges = geo.in_edges
        self._in_slot_ids = geo.in_slot_ids
        self._out_edges = geo.out_edges
        self._out_slot_ids = geo.out_slot_ids

        # Routers inheriting the default delivery rule (path exhausted at
        # the destination) get it inlined in the hot loop; overriding
        # routers keep the virtual call.
        self._default_delivery = type(router).is_delivered is Router.is_delivered

        # Per-step scratch containers, reused across steps.  ``_contenders``
        # maps an encoded slot id to either a single packet id (the common,
        # conflict-free case — no list is allocated) or a list of them.
        self._desired_kinds: Dict[PacketId, MoveKind] = {}
        self._contenders: Dict[int, object] = {}
        self._used_slots: Set[int] = set()
        self._granted: Dict[PacketId, Tuple[EdgeId, MoveKind]] = {}
        self._losers_by_node: Dict[NodeId, List[PacketId]] = {}
        self._deflected: List[Tuple[PacketId, EdgeId, bool]] = []

        # Problems may carry an arrival schedule (dynamic workloads built by
        # repro.traffic.problem_from_arrivals); install it before the router
        # attaches so its eligibility marks are gated from the start.
        schedule = getattr(problem, "arrival_schedule", None)
        if schedule is not None:
            self.set_arrival_schedule(schedule)

        router.attach(self)

        # Scoped observability: engines built under an active telemetry
        # session get its observers/timers; one None check otherwise.
        session = current_session()
        if session is not None:
            session.attach(self)

    # ---------------------------------------------------------------- events

    def add_observer(self, observer: Observer) -> None:
        """Register an event observer (tracer, auditor, ...)."""
        self._observers.append(observer)

    def emit(self, event: TraceEvent) -> None:
        """Deliver an event to all observers."""
        for observer in self._observers:
            observer(event)

    @property
    def tracing(self) -> bool:
        """Whether any observer is attached (guards event construction)."""
        return bool(self._observers)

    # ------------------------------------------------------------- injection

    def set_arrival_schedule(self, schedule) -> None:
        """Gate injection eligibility on an :class:`ArrivalSchedule`.

        Router eligibility marks for packets whose arrival time has not come
        are *held* and released at the top of the step they become due, so a
        packet becomes eligible at ``max(mark time, arrival time)``.  Called
        automatically for problems carrying ``arrival_schedule``; routers
        (the dynamic adapters) may also call it from ``attach``.
        """
        schedule.validate_for(len(self.packets))
        self._arrivals = schedule
        # Re-gate marks made before the schedule was installed.
        if self.eligible:
            t = self.t
            late = [p for p in self.eligible if schedule.time_of(p) > t]
            for pid in late:
                self.eligible.discard(pid)
                self._held.add(pid)
        if self._held:
            t = self.t
            due = [p for p in self._held if schedule.time_of(p) <= t]
            for pid in due:
                self._held.discard(pid)
                if self.packets[pid].is_pending:
                    self.eligible.add(pid)

    def mark_eligible(self, packet_id: PacketId) -> None:
        """Allow a pending packet to attempt injection from this step on.

        With an arrival schedule installed, marks for packets that have not
        arrived yet are held until their arrival step.
        """
        packet = self.packets[packet_id]
        if packet.is_pending:
            schedule = self._arrivals
            if schedule is not None and schedule.time_of(packet_id) > self.t:
                self._held.add(packet_id)
            else:
                self.eligible.add(packet_id)

    def mark_all_eligible(self) -> None:
        """Convenience for routers that inject everything immediately."""
        if self._arrivals is not None:
            for packet in self.packets:
                if packet.is_pending:
                    self.mark_eligible(packet.packet_id)
            return
        for packet in self.packets:
            if packet.is_pending:
                self.eligible.add(packet.packet_id)

    # ------------------------------------------------------------- streaming

    def admit(self, source: NodeId, destination: NodeId, path) -> PacketId:
        """Admit a new packet mid-run; it is immediately eligible.

        ``path`` is a :class:`~repro.paths.Path` from source to destination.
        The open-loop streaming driver (:mod:`repro.traffic.stream`) calls
        this as arrivals come in, pairing it with :meth:`retire` so memory
        stays bounded by the number of packets in flight, not the total
        injected.
        """
        if self._free_pids:
            pid = self._free_pids.pop()
            self.packets[pid] = Packet(PacketSpec(pid, source, destination, path))
        else:
            pid = len(self.packets)
            self.packets.append(Packet(PacketSpec(pid, source, destination, path)))
        self.eligible.add(pid)
        return pid

    def retire(self, packet_id: PacketId) -> None:
        """Release an absorbed packet's slot for reuse by :meth:`admit`."""
        packet = self.packets[packet_id]
        if packet.status is not PacketStatus.ABSORBED:
            raise SimulationError(
                f"cannot retire packet {packet_id}: not absorbed"
            )
        self._free_pids.append(packet_id)

    # ------------------------------------------------------------------ step

    def step(self) -> None:
        """Execute one synchronous time step."""
        t = self.t
        router = self.router
        packets = self.packets
        rng = self.rng
        tracing = bool(self._observers)
        edge_src = self._edge_src
        edge_dst = self._edge_dst

        # -- arrival release ------------------------------------------------
        # Held router marks whose arrival time is due become eligible now,
        # before the router's pre_step hook (which may mark more packets).
        if self._held:
            held = self._held
            for pid in self._arrivals.due_at(t):
                if pid in held:
                    held.discard(pid)
                    if packets[pid].is_pending:
                        self.eligible.add(pid)

        router.pre_step(t)

        # -- gather desires and group contenders per directed slot ---------
        # One merged pass over the participants (active packets in injection
        # order, then eligible pending ones by id): validate each desire,
        # remember its move kind, and bucket the packet under the encoded
        # slot id of its desired traversal.
        desired_kinds = self._desired_kinds
        desired_kinds.clear()
        contenders = self._contenders
        contenders.clear()
        desired_move = router.desired_move

        if self.eligible:
            participants = list(self.active_ids)
            participants.extend(sorted(self.eligible))
        else:
            participants = list(self.active_ids)
        for pid in participants:
            desire = desired_move(pid, t)
            edge = desire.edge
            node = packets[pid].node
            if node == edge_src[edge]:
                slot = edge << 1  # FORWARD
            elif node == edge_dst[edge]:
                slot = (edge << 1) | 1  # BACKWARD
            else:
                raise SimulationError(
                    f"router desired edge {edge} not incident to "
                    f"packet {pid} at node {node}"
                )
            desired_kinds[pid] = desire.kind
            current = contenders.get(slot)
            if current is None:
                contenders[slot] = pid
            elif type(current) is list:
                current.append(pid)
            else:
                contenders[slot] = [current, pid]

        # -- arbitration per directed slot ---------------------------------
        used_slots = self._used_slots
        used_slots.clear()
        granted = self._granted
        granted.clear()
        losers_by_node = self._losers_by_node
        losers_by_node.clear()
        #: slots granted to not-yet-injected packets, revocable per node:
        #: active packets MUST move (hot potato), pending ones can wait
        pending_grants: Optional[Dict[NodeId, List[Tuple[PacketId, int]]]] = None
        priority = router.priority
        for slot, pids in contenders.items():
            if type(pids) is not list:
                # Sole contender: no ranking, no priority call, no RNG draw.
                winner = pids
                used_slots.add(slot)
                granted[winner] = (slot >> 1, desired_kinds[winner])
                wp = packets[winner]
                if wp.status is _PENDING:
                    if pending_grants is None:
                        pending_grants = {}
                    pending_grants.setdefault(wp.node, []).append((winner, slot))
                continue
            # Active packets outrank pending ones unconditionally; the
            # router's priority breaks ties within each class.  The
            # priority hook is consulted exactly once per contender
            # (it may be stateful or randomized).
            best: List[PacketId] = []
            best_cls = -1
            best_prio = 0
            for pid in pids:
                cls = 1 if packets[pid].status is _ACTIVE else 0
                prio = priority(pid, t)
                if cls > best_cls or (cls == best_cls and prio > best_prio):
                    best_cls = cls
                    best_prio = prio
                    best = [pid]
                elif cls == best_cls and prio == best_prio:
                    best.append(pid)
            winner = (
                best[int(rng.integers(0, len(best)))]
                if len(best) > 1
                else best[0]
            )
            used_slots.add(slot)
            granted[winner] = (slot >> 1, desired_kinds[winner])
            wp = packets[winner]
            if wp.status is _PENDING:
                if pending_grants is None:
                    pending_grants = {}
                pending_grants.setdefault(wp.node, []).append((winner, slot))
            for pid in pids:
                if pid == winner:
                    continue
                packet = packets[pid]
                if packet.status is _ACTIVE:
                    losers = losers_by_node.get(packet.node)
                    if losers is None:
                        losers_by_node[packet.node] = [pid]
                    else:
                        losers.append(pid)
                # Pending losers simply fail to inject this step.

        # -- deflection slot matching --------------------------------------
        deflected = self._deflected
        deflected.clear()
        if losers_by_node:
            safe_in = self.safe_in
            in_edges = self._in_edges
            in_slot_ids = self._in_slot_ids
            out_edges = self._out_edges
            out_slot_ids = self._out_slot_ids
            for node, losers in losers_by_node.items():
                if len(losers) > 1:
                    rng.shuffle(losers)
                safe_here = safe_in.get(node, ())
                # Safe backward slots first (Lemma 2.1), then unsafe
                # backward, then forward, mirroring the paper's
                # backward-deflection rule.  Candidates are ``(edge, slot,
                # safe)``; only the first ``len(losers)`` are consumed, so
                # collection stops as soon as enough are found.
                needed = len(losers)
                candidates: List[Tuple[EdgeId, int, bool]] = []
                node_in = in_edges[node]
                node_in_slots = in_slot_ids[node]
                if safe_here:
                    for e, s in zip(node_in, node_in_slots):
                        if e in safe_here and s not in used_slots:
                            candidates.append((e, s, True))
                            if len(candidates) == needed:
                                break
                    if len(candidates) < needed:
                        for e, s in zip(node_in, node_in_slots):
                            if e not in safe_here and s not in used_slots:
                                candidates.append((e, s, False))
                                if len(candidates) == needed:
                                    break
                else:
                    for e, s in zip(node_in, node_in_slots):
                        if s not in used_slots:
                            candidates.append((e, s, False))
                            if len(candidates) == needed:
                                break
                if len(candidates) < needed:
                    for e, s in zip(out_edges[node], out_slot_ids[node]):
                        if s not in used_slots:
                            candidates.append((e, s, False))
                            if len(candidates) == needed:
                                break
                node_pending = (
                    pending_grants.get(node) if pending_grants else None
                )
                while len(candidates) < needed and node_pending:
                    # Deflected residents must move; revoke an injection
                    # grant at this node and recycle its slot ("a packet is
                    # injected at any subsequent step in which there is an
                    # available link").
                    revoked, slot = node_pending.pop()
                    del granted[revoked]
                    used_slots.discard(slot)
                    candidates.append((slot >> 1, slot, False))
                if len(candidates) < needed:
                    raise CapacityError(
                        f"step {t}: node {node} has {needed} deflected "
                        f"packets but only {len(candidates)} free slots"
                    )
                for pid, (edge, slot, safe) in zip(losers, candidates):
                    used_slots.add(slot)
                    deflected.append((pid, edge, safe))

        # -- apply winner moves ---------------------------------------------
        # Injection-isolation bookkeeping is only needed on steps that
        # actually inject; compute the occupancy snapshot lazily, before any
        # packet has moved.
        occupants: Optional[Dict[NodeId, int]] = None
        injecting_at: Optional[Dict[NodeId, int]] = None
        if pending_grants is not None:
            inject_nodes = set()
            for pid, (edge, kind) in granted.items():
                if packets[pid].status is _PENDING:
                    inject_nodes.add(packets[pid].node)
            if inject_nodes:
                occupants = dict.fromkeys(inject_nodes, 0)
                for pid in self.active_ids:
                    node = packets[pid].node
                    if node in occupants:
                        occupants[node] += 1
                injecting_at = dict.fromkeys(inject_nodes, 0)
                for pid in granted:
                    packet = packets[pid]
                    if packet.status is _PENDING:
                        injecting_at[packet.node] += 1

        emit = self.emit
        is_delivered = router.is_delivered
        default_delivery = self._default_delivery
        on_moved = router.on_moved
        safe_next: Dict[NodeId, Set[EdgeId]] = {}
        for pid, (edge, kind) in granted.items():
            packet = packets[pid]
            if packet.status is _PENDING:
                isolated = (
                    occupants[packet.node] == 0
                    and injecting_at[packet.node] == 1
                )
                packet.status = _ACTIVE
                packet.injected_at = t
                self.eligible.discard(pid)
                self.num_active += 1
                self.active_ids[pid] = None
                if tracing:
                    emit(
                        TraceEvent(
                            t,
                            EventKind.INJECT,
                            packet=pid,
                            node=packet.node,
                            detail="isolated" if isolated else "crowded",
                        )
                    )
                router.on_injected(pid, t, isolated)
            # Inlined move application (see Packet.apply_follow/apply_reverse
            # for the reference semantics and Section 2.3 for the rules).
            node = packet.node
            if kind is _FOLLOW:
                path = packet.path
                if not path:
                    raise SimulationError(
                        f"packet {pid} has an empty current path at node "
                        f"{node}"
                    )
                if path[0] != edge:
                    raise SimulationError(
                        f"packet {pid}: FOLLOW move on edge {edge} but "
                        f"path head is {path[0]}"
                    )
                path.popleft()
            elif kind is _REVERSE:
                packet.path.appendleft(edge)
            if node == edge_src[edge]:
                direction = _FORWARD
                packet.node = edge_dst[edge]
            else:
                direction = _BACKWARD
                packet.node = edge_src[edge]
                packet.backward_moves += 1
            packet.last_edge = edge
            packet.last_direction = direction
            packet.moves += 1
            if direction is _FORWARD and kind is not _REVERSE:
                dest_safe = safe_next.get(packet.node)
                if dest_safe is None:
                    safe_next[packet.node] = {edge}
                else:
                    dest_safe.add(edge)
            if tracing:
                emit(
                    TraceEvent(
                        t,
                        EventKind.MOVE,
                        packet=pid,
                        node=packet.node,
                        edge=edge,
                        direction=direction,
                    )
                )
            if (
                (not packet.path and packet.node == packet.destination)
                if default_delivery
                else is_delivered(pid)
            ):
                self._absorb(packet, t)
            else:
                on_moved(pid, t, edge)

        # -- apply deflections ----------------------------------------------
        if deflected:
            deflection_kind = getattr(
                router, "deflection_kind", MoveKind.REVERSE
            )
            on_deflected = router.on_deflected
            for pid, edge, safe in deflected:
                packet = packets[pid]
                if deflection_kind is _FOLLOW:
                    packet.apply_follow(self.net, edge)
                else:
                    if deflection_kind is _REVERSE:
                        packet.path.appendleft(edge)
                    node = packet.node
                    if node == edge_src[edge]:
                        packet.last_direction = _FORWARD
                        packet.node = edge_dst[edge]
                    else:
                        packet.last_direction = _BACKWARD
                        packet.node = edge_src[edge]
                        packet.backward_moves += 1
                    packet.last_edge = edge
                    packet.moves += 1
                packet.deflections += 1
                if not safe:
                    packet.unsafe_deflections += 1
                    self.unsafe_deflections += 1
                if tracing:
                    emit(
                        TraceEvent(
                            t,
                            EventKind.DEFLECT
                            if safe
                            else EventKind.UNSAFE_DEFLECT,
                            packet=pid,
                            node=packet.node,
                            edge=edge,
                            direction=packet.last_direction,
                        )
                    )
                if (
                    (not packet.path and packet.node == packet.destination)
                    if default_delivery
                    else is_delivered(pid)
                ):
                    # Possible for path-less routers deflected into their
                    # destination; path routers never deliver by deflection.
                    self._absorb(packet, t)
                else:
                    on_deflected(pid, t, edge, safe)

        # -- safety bookkeeping for the next step ---------------------------
        # ``safe_next`` was accumulated while applying winner moves; granted
        # and deflected packet sets are disjoint, so deflections cannot
        # invalidate it.
        self.safe_in = safe_next

        router.post_step(t)
        for hook in self.post_step_hooks:
            hook(self, t)
        self.t = t + 1
        self.steps_executed += 1

    def _apply_move(self, packet: Packet, edge: EdgeId, kind: MoveKind) -> None:
        if kind is MoveKind.FOLLOW:
            packet.apply_follow(self.net, edge)
        elif kind is MoveKind.REVERSE:
            packet.apply_reverse(self.net, edge)
        else:
            packet.apply_free(self.net, edge)

    def _absorb(self, packet: Packet, t: int) -> None:
        packet.status = PacketStatus.ABSORBED
        packet.absorbed_at = t + 1
        self.num_active -= 1
        self.num_absorbed += 1
        del self.active_ids[packet.packet_id]
        if self.tracing:
            self.emit(
                TraceEvent(
                    t, EventKind.ABSORB, packet=packet.packet_id, node=packet.node
                )
            )

    # ---------------------------------------------------------- fast-forward

    def _try_fast_forward(self) -> None:
        """Skip to one step before the router's quiescent horizon."""
        horizon = self.router.quiescent_horizon(self.t)
        if horizon is None:
            return
        if self._held:
            # Defensive clamp for routers unaware of arrival gating: never
            # skip past the next held packet's arrival step.  (The frontier
            # router already returns None whenever a marked packet is held,
            # since held marks imply a due injection phase.)
            schedule = self._arrivals
            next_due = min(schedule.time_of(pid) for pid in self._held)
            if next_due < horizon:
                horizon = next_due
        target = horizon - 1  # simulate the boundary step normally
        k = target - self.t
        if k <= 0:
            return
        safe_in = self.router.fast_forward(self.t, target)
        self.safe_in = safe_in
        if self.tracing:
            self.emit(
                TraceEvent(
                    self.t,
                    EventKind.FAST_FORWARD,
                    detail=f"skipped {k} steps to {target}",
                )
            )
        self.t = target
        self.steps_skipped += k

    # ------------------------------------------------------------------- run

    @property
    def done(self) -> bool:
        """All packets absorbed."""
        return self.num_absorbed == len(self.packets)

    def run(self, max_steps: int) -> RunResult:
        """Run until delivery or the step budget; return metrics."""
        timer = self._step_timer
        if timer is None:
            while not self.done and self.t < max_steps:
                if self._enable_fast_forward:
                    self._try_fast_forward()
                self.step()
        else:
            from time import perf_counter

            add_step = timer.add_step
            while not self.done and self.t < max_steps:
                if self._enable_fast_forward:
                    self._try_fast_forward()
                start = perf_counter()
                self.step()
                add_step(perf_counter() - start)
        return self.result()

    def result(self) -> RunResult:
        """Snapshot the metrics of the run so far."""
        return RunResult(
            router_name=type(self.router).__name__,
            network_name=self.net.name,
            num_packets=len(self.packets),
            congestion=self.problem.congestion,
            dilation=self.problem.dilation,
            depth=self.net.depth,
            delivered=self.num_absorbed,
            makespan=max(
                (p.absorbed_at for p in self.packets if p.absorbed_at is not None),
                default=self.t,
            )
            if self.done
            else self.t,
            steps_executed=self.steps_executed,
            steps_skipped=self.steps_skipped,
            delivery_times=[p.absorbed_at for p in self.packets],
            deflections_per_packet=[p.deflections for p in self.packets],
            unsafe_deflections=self.unsafe_deflections,
            total_moves=sum(p.moves for p in self.packets),
            total_backward_moves=sum(p.backward_moves for p in self.packets),
            extra=dict(getattr(self.router, "extra_metrics", lambda: {})()),
        )
