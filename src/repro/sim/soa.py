"""Struct-of-arrays state containers for the vectorized engine kernel.

The reference engine keeps one Python :class:`~repro.sim.packet.Packet`
object per packet and walks them in its hot loop.  The vectorized kernel
(:mod:`repro.sim.engine_vec`) instead keeps every per-packet field in a
dense numpy array indexed by packet id — the struct-of-arrays layout — so
one simulation step becomes a handful of batched array operations.

Two containers live here:

* :class:`GeometryArrays` — the network's endpoint/level tables as int64
  arrays, built once per :class:`~repro.net.NetworkGeometry` and cached on
  it (networks are immutable, so the cache can never go stale).
* :class:`PacketArrays` — the mutable per-packet state: position, status,
  move statistics, and the *current path* of Section 2.3 stored as a
  right-aligned edge buffer with a per-packet cursor.

Path representation
-------------------
``path_buf`` is an ``N x width`` int64 matrix; packet ``p``'s current path
is ``path_buf[p, cursor[p]:width]`` (head first).  A path-following move
pops the head by incrementing the cursor; a deflection/oscillation prepend
decrements it and writes the traversed edge at the new cursor.  The path is
empty exactly when ``cursor[p] == width``.  Prepends normally shrink the
distance-to-go as fast as they grow the path, but *forward* deflections
(unsafe, never taken by the paper's algorithm) can grow it past the initial
headroom; :meth:`PacketArrays.grow_front` reallocates with more front
columns in that rare case.

This module deliberately imports only :mod:`numpy` and the flat geometry
tables — no engine or router types — so it can be loaded lazily from
:meth:`NetworkGeometry.arrays` without import cycles.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

try:  # pragma: no cover - numpy is a hard dependency today, but the
    import numpy as np  # vectorized kernel stays an optional extra.

    NUMPY_AVAILABLE = True
except ImportError:  # pragma: no cover
    np = None
    NUMPY_AVAILABLE = False

if TYPE_CHECKING:  # pragma: no cover
    from ..net.geometry import NetworkGeometry
    from ..paths import RoutingProblem

#: Extra front columns allocated ahead of the longest initial path, so the
#: common backward prepend/pop oscillation never triggers a reallocation.
_FRONT_SLACK = 2


class GeometryArrays:
    """Dense int64 views of one network's geometry tables."""

    __slots__ = ("edge_src", "edge_dst", "node_levels", "num_nodes", "num_edges")

    def __init__(self, geometry: "NetworkGeometry") -> None:
        self.num_nodes: int = geometry.num_nodes
        self.num_edges: int = geometry.num_edges
        self.edge_src = np.asarray(geometry.edge_src, dtype=np.int64)
        self.edge_dst = np.asarray(geometry.edge_dst, dtype=np.int64)
        self.node_levels = np.asarray(geometry.node_levels, dtype=np.int64)


class PacketArrays:
    """Mutable per-packet simulation state in struct-of-arrays layout.

    Field-for-field twin of :class:`~repro.sim.packet.Packet`; sentinel
    ``-1`` stands in for the reference engine's ``None`` (``injected_at``,
    ``absorbed_at``, ``last_edge``, ``last_direction``).
    """

    __slots__ = (
        "num_packets",
        "width",
        "source",
        "destination",
        "node",
        "path_buf",
        "cursor",
        "status",
        "injected_at",
        "absorbed_at",
        "last_edge",
        "last_direction",
        "moves",
        "deflections",
        "unsafe_deflections",
        "backward_moves",
    )

    def __init__(self, num_packets: int, width: int) -> None:
        n = num_packets
        self.num_packets = n
        self.width = width
        self.source = np.zeros(n, dtype=np.int64)
        self.destination = np.zeros(n, dtype=np.int64)
        self.node = np.zeros(n, dtype=np.int64)
        self.path_buf = np.zeros((n, width), dtype=np.int64)
        self.cursor = np.full(n, width, dtype=np.int64)
        self.status = np.zeros(n, dtype=np.int64)  # PacketStatus.PENDING
        self.injected_at = np.full(n, -1, dtype=np.int64)
        self.absorbed_at = np.full(n, -1, dtype=np.int64)
        self.last_edge = np.full(n, -1, dtype=np.int64)
        self.last_direction = np.full(n, -1, dtype=np.int64)
        self.moves = np.zeros(n, dtype=np.int64)
        self.deflections = np.zeros(n, dtype=np.int64)
        self.unsafe_deflections = np.zeros(n, dtype=np.int64)
        self.backward_moves = np.zeros(n, dtype=np.int64)

    # ------------------------------------------------------------- building

    @classmethod
    def from_problem(cls, problem: "RoutingProblem") -> "PacketArrays":
        """Fresh per-run state for one routing problem.

        The immutable parts (sources, destinations, initial paths) are
        built once and cached on the problem; per-run instances copy them,
        so warm-pool sweeps that reuse a problem across seeds skip the
        Python-loop build entirely.
        """
        template = getattr(problem, "_soa_template", None)
        if template is None:
            template = cls._build(problem)
            problem._soa_template = template
        return template.copy()

    @classmethod
    def _build(cls, problem: "RoutingProblem") -> "PacketArrays":
        specs = problem.packets
        max_len = max((len(spec.path) for spec in specs), default=0)
        width = max_len + _FRONT_SLACK
        arrays = cls(len(specs), width)
        for pid, spec in enumerate(specs):
            edges = spec.path.edges
            arrays.source[pid] = spec.source
            arrays.destination[pid] = spec.destination
            arrays.node[pid] = spec.source
            cursor = width - len(edges)
            arrays.cursor[pid] = cursor
            arrays.path_buf[pid, cursor:] = edges
        return arrays

    def copy(self) -> "PacketArrays":
        """Independent deep copy (template -> per-run instance)."""
        out = PacketArrays.__new__(PacketArrays)
        out.num_packets = self.num_packets
        out.width = self.width
        for name in (
            "source",
            "destination",
            "node",
            "path_buf",
            "cursor",
            "status",
            "injected_at",
            "absorbed_at",
            "last_edge",
            "last_direction",
            "moves",
            "deflections",
            "unsafe_deflections",
            "backward_moves",
        ):
            setattr(out, name, getattr(self, name).copy())
        return out

    # ------------------------------------------------------------ path ops

    def grow_front(self) -> None:
        """Double the front headroom of the path buffer.

        Needed only when forward deflections stack prepends past the
        initial slack; backward prepends always have a pop in their future
        before the cursor can underflow again.
        """
        pad = max(4, self.width)
        self.path_buf = np.concatenate(
            [np.zeros((self.num_packets, pad), dtype=np.int64), self.path_buf],
            axis=1,
        )
        self.cursor += pad
        self.width += pad


class StackedPacketArrays:
    """Per-packet state for a whole *batch* of trials: ``(T, N)`` arrays.

    The lockstep kernel (:mod:`repro.sim.engine_lockstep`) advances many
    Monte Carlo trials of one shared :class:`~repro.paths.RoutingProblem`
    at once; every :class:`PacketArrays` field gains a leading trial axis
    (``path_buf`` becomes ``T x N x width``) while the immutable
    ``source``/``destination`` columns stay one-dimensional — they are
    identical across trials by construction.
    """

    __slots__ = (
        "trials",
        "num_packets",
        "width",
        "source",
        "destination",
        "node",
        "path_buf",
        "cursor",
        "status",
        "injected_at",
        "absorbed_at",
        "last_edge",
        "last_direction",
        "moves",
        "deflections",
        "unsafe_deflections",
        "backward_moves",
    )

    _TILED = (
        "node",
        "path_buf",
        "cursor",
        "status",
        "injected_at",
        "absorbed_at",
        "last_edge",
        "last_direction",
        "moves",
        "deflections",
        "unsafe_deflections",
        "backward_moves",
    )

    def __init__(self, template: "PacketArrays", trials: int) -> None:
        self.trials = trials
        self.num_packets = template.num_packets
        self.width = template.width
        self.source = template.source.copy()
        self.destination = template.destination.copy()
        for name in self._TILED:
            field = getattr(template, name)
            setattr(self, name, np.repeat(field[None, ...], trials, axis=0))

    @classmethod
    def from_problem(
        cls, problem: "RoutingProblem", trials: int
    ) -> "StackedPacketArrays":
        """Stacked per-batch state sharing the problem's cached template."""
        template = getattr(problem, "_soa_template", None)
        if template is None:
            template = PacketArrays._build(problem)
            problem._soa_template = template
        return cls(template, trials)

    def grow_front(self) -> None:
        """Double the shared front headroom across every trial at once."""
        pad = max(4, self.width)
        self.path_buf = np.concatenate(
            [
                np.zeros(
                    (self.trials, self.num_packets, pad), dtype=np.int64
                ),
                self.path_buf,
            ],
            axis=2,
        )
        self.cursor += pad
        self.width += pad


class StackedFrontierArrays:
    """Frontier-frame router state with a leading trial axis.

    Twin of :class:`FrontierArrays` for the lockstep kernel; ``set_index``
    (and therefore ``injection_phase``) differs per trial because each
    trial draws its own frontier-set assignment.
    """

    __slots__ = ("state", "wait_node", "wait_edge", "set_index", "injection_phase")

    def __init__(self, set_index, injection_phase) -> None:
        shape = set_index.shape
        self.state = np.full(shape, 2, dtype=np.int64)  # PacketState.NORMAL
        self.wait_node = np.full(shape, -1, dtype=np.int64)
        self.wait_edge = np.full(shape, -1, dtype=np.int64)
        self.set_index = np.asarray(set_index, dtype=np.int64)
        self.injection_phase = np.asarray(injection_phase, dtype=np.int64)


class FrontierArrays:
    """Frontier-frame router state in struct-of-arrays layout.

    Twin of :class:`~repro.core.states.AlgorithmPacketState`: the
    ``wait < normal < excited`` machine (the int value *is* the conflict
    priority), the oscillation anchor, and the frame-schedule constants.
    """

    __slots__ = ("state", "wait_node", "wait_edge", "set_index", "injection_phase")

    def __init__(self, set_index, injection_phase) -> None:
        n = len(set_index)
        self.state = np.full(n, 2, dtype=np.int64)  # PacketState.NORMAL
        self.wait_node = np.full(n, -1, dtype=np.int64)
        self.wait_edge = np.full(n, -1, dtype=np.int64)
        self.set_index = np.asarray(set_index, dtype=np.int64)
        self.injection_phase = np.asarray(injection_phase, dtype=np.int64)


__all__ = [
    "NUMPY_AVAILABLE",
    "GeometryArrays",
    "PacketArrays",
    "FrontierArrays",
    "StackedPacketArrays",
    "StackedFrontierArrays",
]
