"""Runtime packet records.

A :class:`Packet` is the mutable simulation twin of a
:class:`repro.paths.PacketSpec`: it carries the *current path* of Section
2.3 (a deque of edge ids from the current node to the destination), the
paper's pop/prepend bookkeeping, and per-packet statistics.  Algorithm-
specific state (normal/excited/wait) lives in the router, not here, so the
same engine serves every routing algorithm.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Deque, Optional, Tuple

from ..errors import SimulationError
from ..net import LeveledNetwork
from ..paths import PacketSpec
from ..types import Direction, EdgeId, NodeId, PacketId


class PacketStatus(enum.IntEnum):
    """Lifecycle of a packet.

    ``PENDING``
        Waiting at its source, not yet injected ("Initially, a packet waits
        in the source node until it is injected into the network").
    ``ACTIVE``
        In the network, moving every step (hot potato).
    ``ABSORBED``
        Delivered and removed.
    """

    PENDING = 0
    ACTIVE = 1
    ABSORBED = 2


class Packet:
    """Mutable runtime state of one packet."""

    __slots__ = (
        "packet_id",
        "source",
        "destination",
        "node",
        "path",
        "status",
        "injected_at",
        "absorbed_at",
        "last_edge",
        "last_direction",
        "moves",
        "deflections",
        "unsafe_deflections",
        "backward_moves",
    )

    def __init__(self, spec: PacketSpec) -> None:
        self.packet_id: PacketId = spec.packet_id
        self.source: NodeId = spec.source
        self.destination: NodeId = spec.destination
        self.node: NodeId = spec.source
        self.path: Deque[EdgeId] = deque(spec.path.edges)
        self.status = PacketStatus.PENDING
        self.injected_at: Optional[int] = None
        self.absorbed_at: Optional[int] = None
        #: edge traversed in the packet's most recent move, if any
        self.last_edge: Optional[EdgeId] = None
        self.last_direction: Optional[Direction] = None
        self.moves = 0
        self.deflections = 0
        self.unsafe_deflections = 0
        self.backward_moves = 0

    # ------------------------------------------------------------- accessors

    @property
    def is_active(self) -> bool:
        """Whether the packet is currently in the network."""
        return self.status is PacketStatus.ACTIVE

    @property
    def is_pending(self) -> bool:
        """Whether the packet still waits at its source."""
        return self.status is PacketStatus.PENDING

    @property
    def is_absorbed(self) -> bool:
        """Whether the packet has been delivered."""
        return self.status is PacketStatus.ABSORBED

    def head_edge(self) -> EdgeId:
        """First edge of the current path."""
        if not self.path:
            raise SimulationError(
                f"packet {self.packet_id} has an empty current path at node "
                f"{self.node}"
            )
        return self.path[0]

    def current_path_edges(self) -> Tuple[EdgeId, ...]:
        """Snapshot of the current path (for congestion accounting)."""
        return tuple(self.path)

    def delivery_time(self) -> Optional[int]:
        """Absorption time, or ``None`` while in flight."""
        return self.absorbed_at

    # ------------------------------------------------------------ transitions

    def apply_follow(self, net: LeveledNetwork, edge: EdgeId) -> None:
        """Traverse the path head (Section 2.3 forward bookkeeping)."""
        head = self.head_edge()
        if head != edge:
            raise SimulationError(
                f"packet {self.packet_id}: FOLLOW move on edge {edge} but "
                f"path head is {head}"
            )
        self.path.popleft()
        self._traverse(net, edge)

    def apply_reverse(self, net: LeveledNetwork, edge: EdgeId) -> None:
        """Traverse ``edge`` and prepend it (deflection / oscillation rule).

        "When packet π is deflected at time t and sent on edge e, we update
        the current path of packet π so that at time t+1 the first link is e
        and the rest is g."
        """
        self.path.appendleft(edge)
        self._traverse(net, edge)

    def apply_free(self, net: LeveledNetwork, edge: EdgeId) -> None:
        """Traverse ``edge`` without path bookkeeping (path-less baselines)."""
        self._traverse(net, edge)

    def _traverse(self, net: LeveledNetwork, edge: EdgeId) -> None:
        direction = net.traversal_direction(edge, self.node)
        self.node = net.other_endpoint(edge, self.node)
        self.last_edge = edge
        self.last_direction = direction
        self.moves += 1
        if direction is Direction.BACKWARD:
            self.backward_moves += 1

    def toggle_across(self, net: LeveledNetwork, edge: EdgeId) -> None:
        """One oscillation half-step used by the quiescence fast-forward.

        Equivalent to :meth:`apply_reverse` when leaving the wait node and
        :meth:`apply_follow` when returning, but callable without knowing
        which half we are in: it inspects the path head.
        """
        if self.path and self.path[0] == edge and net.edge_dst(edge) != self.node:
            # At the far end with the edge prepended: consume it (forward).
            self.apply_follow(net, edge)
        else:
            self.apply_reverse(net, edge)
