"""Run metrics collected by the engine.

A :class:`RunResult` captures everything the experiment harness reports:
makespan, per-packet delivery times, deflection statistics, and the
problem's congestion/dilation so tables can show ratios to the ``C + D``
lower bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class RunResult:
    """Outcome of one simulated routing run."""

    router_name: str
    network_name: str
    num_packets: int
    congestion: int
    dilation: int
    depth: int
    delivered: int
    #: total simulated time steps (including fast-forwarded ones)
    makespan: int
    #: steps actually executed by the inner loop
    steps_executed: int
    #: steps skipped by quiescence fast-forward
    steps_skipped: int
    delivery_times: List[Optional[int]]
    deflections_per_packet: List[int]
    unsafe_deflections: int
    total_moves: int
    total_backward_moves: int
    #: router-specific extras (phase counts, state statistics, ...)
    extra: Dict[str, float] = field(default_factory=dict)
    #: deterministic telemetry counters snapshot (see repro.telemetry), or
    #: None when the run executed without an active telemetry session
    telemetry: Optional[Dict[str, object]] = None

    @property
    def all_delivered(self) -> bool:
        """Whether every packet reached its destination."""
        return self.delivered == self.num_packets

    @property
    def lower_bound(self) -> int:
        """The trivial bound ``max(C, D)``."""
        return max(self.congestion, self.dilation)

    @property
    def slowdown(self) -> float:
        """Makespan divided by ``max(C, D)`` (the natural figure of merit)."""
        return self.makespan / max(1, self.lower_bound)

    @property
    def total_deflections(self) -> int:
        """Sum of per-packet deflection counts."""
        return sum(self.deflections_per_packet)

    @property
    def mean_delivery_time(self) -> float:
        """Average delivery time of the delivered packets."""
        times = [t for t in self.delivery_times if t is not None]
        return sum(times) / len(times) if times else float("nan")

    def summary(self) -> str:
        """One-line report row."""
        status = "ok" if self.all_delivered else (
            f"{self.num_packets - self.delivered} undelivered"
        )
        return (
            f"{self.router_name} on {self.network_name}: N={self.num_packets} "
            f"C={self.congestion} D={self.dilation} -> T={self.makespan} "
            f"({self.slowdown:.2f}x bound, {self.total_deflections} defl, {status})"
        )
