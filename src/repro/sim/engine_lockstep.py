"""Lockstep multi-trial batch kernel (stacked struct-of-arrays).

:class:`LockstepEngine` advances a whole Monte Carlo batch of trials over
one shared :class:`~repro.paths.RoutingProblem` in lockstep: every
per-packet array of the vectorized kernel (:mod:`repro.sim.engine_vec`)
gains a leading ``trial`` axis (:class:`~repro.sim.soa.StackedPacketArrays`),
so one "tick" of the batch advances every live trial by one executed step
with a handful of numpy operations amortized across the batch.  Trials
share geometry, paths, and initial packet layout exactly — they differ
only in their RNG streams — which is precisely the shape of
``sweep --fixed-problem`` shards and tuning rungs.

Equivalence contract
--------------------
Per trial, a lockstep run is **byte-identical** to the per-trial
:class:`~repro.sim.engine_vec.VecEngine` run (and therefore to the
reference engine) with the same seeds: equal
:class:`~repro.sim.RunResult` fields including delivery times, deflection
counts, and router extras.  The kernel preserves each trial's RNG draw
order exactly:

* excitation coins are drawn per trial as one ``Generator.random(n)``
  call over that trial's active normal packets in active-id order (the
  batched coin buffer is filled trial-segment by trial-segment from each
  trial's own router generator);
* arbitration tie-breaks and loser shuffles come from each trial's own
  engine generator, drawn only when *that trial's* step is contended —
  a conflicted trial falls out of the vectorized fast path for that tick
  and replays the reference arbitration order on its own slot segment,
  while the other trials stay on the batched path.

Per-trial divergence is handled with masks: each trial has its own clock
``t[i]`` (quiescence fast-forward skips different spans per trial),
finished trials drop out of the live set, and the conflict-free fast
path / contended fallback split is decided per ``(trial, slot)`` — a
conflict in one trial never serializes the others.

Not supported (callers peel off to the per-trial engines): observers /
tracing, post-step hooks (the invariant auditor), arrival schedules, and
routers other than the frontier-frame algorithm and the naive
path-following baseline.  ``repro.experiments.batch.TrialExecutor``
applies exactly that peel-off policy when grouping chunks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import CapacityError, ReproError, SimulationError
from ..rng import RngLike, make_rng
from .engine_vec import require_numpy
from .metrics import RunResult
from .soa import StackedFrontierArrays, StackedPacketArrays

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised via monkeypatched flag
    np = None

_PENDING = 0
_ACTIVE = 1
_ABSORBED = 2
_WAIT = 1
_NORMAL = 2
_EXCITED = 3
#: sentinel larger than any injection phase (masked minima)
_NO_PHASE = 2**62


def _isolation_flags(act_nodes: List[int], inj_nodes: List[int]) -> List[bool]:
    """Reference isolation test: alone at the node, sole injector."""
    occ: Dict[int, int] = {}
    for nd in act_nodes:
        occ[nd] = occ.get(nd, 0) + 1
    cnt: Dict[int, int] = {}
    for nd in inj_nodes:
        cnt[nd] = cnt.get(nd, 0) + 1
    return [occ.get(nd, 0) == 0 and cnt[nd] == 1 for nd in inj_nodes]


class LockstepEngine:
    """Stacked-array twin of :class:`VecEngine` for whole trial batches.

    Construct through :meth:`frontier` or :meth:`naive`.  ``run`` returns
    one :class:`RunResult` per trial, in input order, each byte-identical
    to the corresponding per-trial engine run.
    """

    def __init__(
        self,
        problem,
        *,
        mode: str,
        rngs: Sequence,
        router_rngs: Optional[Sequence] = None,
        num_sets: int = 0,
        m: int = 1,
        w: int = 1,
        q: float = 0.0,
        set_rows=None,
        enable_fast_forward: bool = True,
        geometry=None,
    ) -> None:
        require_numpy()
        if getattr(problem, "arrival_schedule", None) is not None:
            raise ReproError(
                "the lockstep kernel does not support arrival schedules; "
                "run those trials on the per-trial engines instead"
            )
        self.problem = problem
        self.net = problem.net
        self.mode = mode
        self.router_name = (
            "FrontierFrameRouter" if mode == "frontier" else "NaivePathRouter"
        )
        self.rngs = [make_rng(r) for r in rngs]
        trials = len(self.rngs)
        self.trials = trials
        self._enable_fast_forward = enable_fast_forward

        geo = geometry if geometry is not None else self.net.geometry()
        self._geo = geo
        ga = geo.arrays()
        self._edge_src = ga.edge_src
        self._edge_dst = ga.edge_dst
        self._node_levels = ga.node_levels
        self._num_nodes = ga.num_nodes
        self._num_edges = ga.num_edges

        self.soa = StackedPacketArrays.from_problem(problem, trials)
        n = self.soa.num_packets
        self.num_packets = n

        def zt():
            return np.zeros(trials, dtype=np.int64)

        self.t = zt()
        self.steps_executed = zt()
        self.steps_skipped = zt()
        self.num_active = zt()
        self.num_absorbed = zt()
        self.unsafe_deflections = zt()
        self.excitations = zt()
        self.wait_entries = zt()
        self.wait_evictions = zt()
        self.phase_releases = zt()
        self.round_calms = zt()
        self.isolation_violations = zt()
        self.num_waiting = zt()
        self.num_excited = zt()
        self.current_phase = np.full(trials, -1, dtype=np.int64)

        #: active packet ids in injection order, row-packed per trial
        self.act_mat = np.zeros((trials, n), dtype=np.int64)
        self.act_cnt = zt()
        #: eligible pending packets (ascending pid order == sorted order)
        self.elig_mask = np.zeros((trials, n), dtype=bool)
        self.elig_cnt = zt()
        #: packets whose (node, last_edge) form last step's safe set E'
        self.safe_mask = np.zeros((trials, n), dtype=bool)

        if mode == "frontier":
            if router_rngs is None or len(router_rngs) != trials:
                raise ReproError(
                    "frontier lockstep needs one router rng per trial"
                )
            self._router_rngs = list(router_rngs)
            self._num_sets = int(num_sets)
            self._m = int(m)
            self._w = int(w)
            self._q = float(q)
            self._spp = self._m * self._w
            set_idx = np.asarray(set_rows, dtype=np.int64)
            if set_idx.shape != (trials, n):
                raise ReproError(
                    f"set_rows must be shaped (trials, packets) = "
                    f"({trials}, {n}); got {set_idx.shape}"
                )
            src_levels = self._node_levels[self.soa.source]
            inj_phase = set_idx * self._m + (self._m - 1) + src_levels[None, :]
            self.fr = StackedFrontierArrays(set_idx, inj_phase)
            self._set_offsets = (
                np.arange(self._num_sets, dtype=np.int64) * self._m
            )
            self._target_by_set = np.zeros(
                (trials, self._num_sets), dtype=np.int64
            )
        else:
            self.fr = None
            self._router_rngs = None
            self._num_sets = 0
            self._m = self._w = 1
            self._q = 0.0
            self._spp = 0
            # NaivePathRouter.attach marks everything eligible immediately.
            self.elig_mask[:] = True
            self.elig_cnt[:] = n

    # ------------------------------------------------------------- factories

    @classmethod
    def frontier(
        cls,
        problem,
        params,
        *,
        router_seeds: Sequence[RngLike],
        engine_seeds: Sequence[RngLike],
        set_rows=None,
        enable_fast_forward: bool = True,
        geometry=None,
    ) -> "LockstepEngine":
        """Batch kernel for the paper's frontier-frame algorithm.

        Trial ``i`` mirrors ``VecEngine.frontier(problem, params,
        router_seed=router_seeds[i], seed=engine_seeds[i])`` exactly: when
        ``set_rows`` is omitted each trial's frontier-set assignment is
        drawn from its own router generator (leaving the excitation-coin
        stream aligned with the reference); pass precomputed rows (e.g.
        conditioned assignments) to skip the draw, exactly as passing
        ``set_of`` does on the per-trial engines.
        """
        require_numpy()
        from ..core.frontier import assign_frontier_sets

        if params.depth != problem.net.depth:
            from ..errors import ParameterError

            raise ParameterError(
                f"params built for depth {params.depth} but network has "
                f"depth {problem.net.depth}"
            )
        if params.num_packets != problem.num_packets:
            from ..errors import ParameterError

            raise ParameterError(
                f"params built for {params.num_packets} packets but "
                f"problem has {problem.num_packets}"
            )
        router_rngs = [make_rng(s) for s in router_seeds]
        if len(router_rngs) != len(list(engine_seeds)):
            raise ReproError("router_seeds and engine_seeds lengths differ")
        if set_rows is None:
            set_rows = [
                assign_frontier_sets(problem, params.num_sets, rng)
                for rng in router_rngs
            ]
        return cls(
            problem,
            mode="frontier",
            rngs=engine_seeds,
            router_rngs=router_rngs,
            num_sets=params.num_sets,
            m=params.m,
            w=params.w,
            q=params.q,
            set_rows=np.asarray(set_rows, dtype=np.int64),
            enable_fast_forward=enable_fast_forward,
            geometry=geometry,
        )

    @classmethod
    def naive(
        cls,
        problem,
        *,
        engine_seeds: Sequence[RngLike],
        geometry=None,
    ) -> "LockstepEngine":
        """Batch kernel for the naive path-following baseline."""
        return cls(
            problem, mode="naive", rngs=engine_seeds, geometry=geometry
        )

    # ------------------------------------------------------------------- run

    @property
    def done(self) -> bool:
        """All packets of every trial absorbed."""
        return bool((self.num_absorbed == self.num_packets).all())

    def run(self, max_steps: int) -> List[RunResult]:
        """Run every trial to delivery or the step budget; per-trial results."""
        frontier = self.fr is not None
        ff = frontier and self._enable_fast_forward
        bulk = frontier and not self._enable_fast_forward
        live = (self.num_absorbed < self.num_packets) & (self.t < max_steps)
        while live.any():
            lt = np.nonzero(live)[0]
            if ff:
                self._fast_forward(lt)
            elif bulk:
                self._bulk_advance(lt, max_steps)
                lt = lt[self.t[lt] < max_steps]
                if not lt.size:
                    break
            self._step(lt)
            live = (self.num_absorbed < self.num_packets) & (
                self.t < max_steps
            )
        return [self.result(i) for i in range(self.trials)]

    # ------------------------------------------------------------------ step

    def _flat_active(self, rows):
        """Flat ``(tid, pid)`` arrays over ``rows``' active packets.

        Row-major order: trials ascending, and within a trial the packed
        ``act_mat`` row order — the reference's injection order.
        """
        acnt = self.act_cnt[rows]
        cols = np.arange(self.num_packets, dtype=np.int64)
        amask = cols[None, :] < acnt[:, None]
        rr = np.nonzero(amask)[0]
        return rows[rr], self.act_mat[rows][amask]

    def _step(self, lt) -> None:
        """Advance every trial in ``lt`` by one executed step."""
        soa = self.soa
        fr = self.fr
        t_lt = self.t[lt]

        a_tid, a_pid = self._flat_active(lt)
        if fr is not None:
            self._pre_step(lt, t_lt, a_tid, a_pid)

        erow, ecol = np.nonzero(self.elig_mask[lt])
        e_tid = lt[erow]
        e_pid = ecol.astype(np.int64)
        na, ne = a_tid.size, e_tid.size
        if na + ne == 0:
            if fr is not None:
                self._post_step(lt, t_lt)
            self.safe_mask[lt] = False
            self.t[lt] += 1
            self.steps_executed[lt] += 1
            return
        if ne:
            tid = np.concatenate([a_tid, e_tid])
            pid = np.concatenate([a_pid, e_pid])
            is_elig = np.zeros(na + ne, dtype=bool)
            is_elig[na:] = True
            # Stable sort groups each trial's segment as [active in
            # injection order, eligible sorted] — the reference's
            # participant order.
            order = np.argsort(tid * 2 + is_elig, kind="stable")
            tid = tid[order]
            pid = pid[order]
            is_elig = is_elig[order]
        else:
            tid, pid = a_tid, a_pid
            is_elig = np.zeros(na, dtype=bool)

        nodes = soa.node[tid, pid]
        cur = soa.cursor[tid, pid]
        width = soa.width
        if fr is not None and self.num_waiting[lt].any():
            wait_at = (fr.state[tid, pid] == _WAIT) & (
                nodes == fr.wait_node[tid, pid]
            )
            any_wait = bool(wait_at.any())
        else:
            wait_at = None
            any_wait = False
        if int(cur.max()) >= width:  # pragma: no cover - malformed guard
            bad = cur >= width
            if any_wait:
                bad &= ~wait_at
            if bad.any():
                b = int(np.argmax(bad))
                raise SimulationError(
                    f"packet {int(pid[b])} has an empty current path at "
                    f"node {int(nodes[b])}"
                )
            cur = np.minimum(cur, width - 1)
        heads = soa.path_buf[tid, pid, cur]
        if any_wait:
            edges = np.where(wait_at, fr.wait_edge[tid, pid], heads)
        else:
            edges = heads
        backward = self._edge_src[edges] != nodes
        slots = (edges << 1) + backward

        # -- (trial, slot) conflict split -----------------------------------
        span = self._num_edges << 1
        key = tid * span + slots
        sk = np.sort(key)
        dup = sk[1:] == sk[:-1]
        conf_rows = np.unique(sk[:-1][dup] // span) if dup.any() else None

        if conf_rows is None:
            self.safe_mask[lt] = False
            self._apply_clean(tid, pid, nodes, edges, backward, wait_at,
                              is_elig)
        else:
            # Snapshot conflicted trials' safe sets before the global clear.
            safe_snap = {}
            for i in conf_rows.tolist():
                sp = np.nonzero(self.safe_mask[i])[0]
                safe_snap[i] = (
                    soa.node[i, sp].tolist(),
                    soa.last_edge[i, sp].tolist(),
                )
            self.safe_mask[lt] = False
            conf_flag = np.zeros(self.trials, dtype=bool)
            conf_flag[conf_rows] = True
            clean = ~conf_flag[tid]
            self._apply_clean(
                tid[clean],
                pid[clean],
                nodes[clean],
                edges[clean],
                backward[clean],
                wait_at[clean] if any_wait else None,
                is_elig[clean],
            )
            start = np.searchsorted(tid, conf_rows, side="left")
            end = np.searchsorted(tid, conf_rows, side="right")
            for idx in range(conf_rows.size):
                s, e = int(start[idx]), int(end[idx])
                self._step_contended_row(
                    int(conf_rows[idx]),
                    pid[s:e],
                    nodes[s:e],
                    edges[s:e],
                    backward[s:e],
                    wait_at[s:e] if any_wait else None,
                    slots[s:e],
                    is_elig[s:e],
                    safe_snap[int(conf_rows[idx])],
                )

        if fr is not None:
            self._post_step(lt, t_lt)
        self.t[lt] += 1
        self.steps_executed[lt] += 1

    # -------------------------------------------------------------- pre-step

    def _pre_step(self, lt, t_lt, a_tid, a_pid) -> None:
        """Frontier pre-step across trials: marks, wait entries, coins."""
        fr = self.fr
        soa = self.soa
        trials = self.trials
        spp, w_, q = self._spp, self._w, self._q
        ps_sel = (t_lt % spp) == 0
        if ps_sel.any():
            ps = lt[ps_sel]
            phase = self.t[ps] // spp
            self.current_phase[ps] = phase
            sub_elig = self.elig_mask[ps]
            newly = (
                (soa.status[ps] == _PENDING)
                & ~sub_elig
                & (fr.injection_phase[ps] <= phase[:, None])
            )
            if newly.any():
                self.elig_mask[ps] = sub_elig | newly
                self.elig_cnt[ps] += newly.sum(axis=1)
        rs_sel = (t_lt % w_) == 0
        if rs_sel.any():
            rs = lt[rs_sel]
            tr = self.t[rs]
            phase = tr // spp
            rnd = (tr % spp) // w_
            tinner = np.where(rnd <= 1, 0, rnd - 1)
            self._target_by_set[rs] = (phase - tinner)[:, None] - (
                self._set_offsets[None, :]
            )
            if a_tid.size:
                rflag = np.zeros(trials, dtype=bool)
                rflag[rs] = True
                sel = rflag[a_tid]
                if sel.any():
                    wt, wp = a_tid[sel], a_pid[sel]
                    mask = (
                        (fr.state[wt, wp] != _WAIT)
                        & (soa.last_direction[wt, wp] == 0)
                        & (
                            self._node_levels[soa.node[wt, wp]]
                            == self._target_by_set[wt, fr.set_index[wt, wp]]
                        )
                    )
                    if mask.any():
                        mt, mp = wt[mask], wp[mask]
                        fr.state[mt, mp] = _WAIT
                        fr.wait_node[mt, mp] = soa.node[mt, mp]
                        fr.wait_edge[mt, mp] = soa.last_edge[mt, mp]
                        wc = np.bincount(mt, minlength=trials)
                        self.wait_entries += wc
                        self.num_waiting += wc
        # Excitation coins: each trial draws one Generator.random(n) over
        # its active normal packets in active-id order, exactly the
        # reference stream; the flat buffer just batches the comparison.
        if q > 0.0 and a_tid.size:
            normal = fr.state[a_tid, a_pid] == _NORMAL
            if normal.any():
                nt = a_tid[normal]
                counts = np.bincount(nt, minlength=trials)
                u = np.empty(nt.size, dtype=np.float64)
                off = 0
                for i in np.nonzero(counts)[0].tolist():
                    c = int(counts[i])
                    u[off:off + c] = self._router_rngs[i].random(c)
                    off += c
                hits = u < q
                if hits.any():
                    et = nt[hits]
                    ep = a_pid[normal][hits]
                    fr.state[et, ep] = _EXCITED
                    ec = np.bincount(et, minlength=trials)
                    self.excitations += ec
                    self.num_excited += ec

    # ------------------------------------------------------------- post-step

    def _post_step(self, lt, t_lt) -> None:
        """Frontier post-step: round-end calms, phase-end releases."""
        fr = self.fr
        trials = self.trials
        round_end = ((t_lt + 1) % self._w) == 0
        phase_end = ((t_lt + 1) % self._spp) == 0
        need = (
            (round_end | phase_end)
            & (
                (self.num_excited[lt] > 0)
                | (phase_end & (self.num_waiting[lt] > 0))
            )
            & (self.act_cnt[lt] > 0)
        )
        if not need.any():
            return
        rows = lt[need]
        f_tid, f_pid = self._flat_active(rows)
        st = fr.state[f_tid, f_pid]
        exc = st == _EXCITED
        if exc.any():
            et, ep = f_tid[exc], f_pid[exc]
            fr.state[et, ep] = _NORMAL
            c = np.bincount(et, minlength=trials)
            self.round_calms += c
            self.num_excited -= c
        pe_flag = np.zeros(trials, dtype=bool)
        pe_flag[lt[need & phase_end]] = True
        wsel = (st == _WAIT) & pe_flag[f_tid]
        if wsel.any():
            wt, wp = f_tid[wsel], f_pid[wsel]
            fr.state[wt, wp] = _NORMAL
            fr.wait_node[wt, wp] = -1
            fr.wait_edge[wt, wp] = -1
            c = np.bincount(wt, minlength=trials)
            self.phase_releases += c
            self.num_waiting -= c

    # ------------------------------------------------- conflict-free apply

    def _apply_clean(
        self, tid, pid, nodes, edges, backward, wait_at, is_elig
    ) -> None:
        """Vectorized winner application for conflict-free trials.

        Every desire is granted; flat order per trial is the reference's
        granted order, so plain scatters reproduce it exactly.
        """
        if not tid.size:
            return
        soa = self.soa
        fr = self.fr
        trials = self.trials
        t_of = self.t

        if is_elig.any():
            inj_t = tid[is_elig]
            inj_p = pid[is_elig]
            soa.status[inj_t, inj_p] = _ACTIVE
            soa.injected_at[inj_t, inj_p] = t_of[inj_t]
            self.elig_mask[inj_t, inj_p] = False
            counts = np.bincount(inj_t, minlength=trials)
            self.elig_cnt -= counts
            seg_start = np.concatenate(
                [np.zeros(1, dtype=np.int64), np.cumsum(counts)]
            )[inj_t]
            rank = np.arange(inj_t.size, dtype=np.int64) - seg_start
            self.act_mat[inj_t, self.act_cnt[inj_t] + rank] = inj_p
            self.act_cnt += counts
            self.num_active += counts
            if fr is not None:
                act_sel = ~is_elig
                occ_keys = tid[act_sel] * self._num_nodes + nodes[act_sel]
                inj_keys = inj_t * self._num_nodes + nodes[is_elig]
                occupied = np.isin(inj_keys, occ_keys)
                uk, inv, cnts = np.unique(
                    inj_keys, return_inverse=True, return_counts=True
                )
                crowded = occupied | (cnts[inv] != 1)
                if crowded.any():
                    self.isolation_violations += np.bincount(
                        inj_t[crowded], minlength=trials
                    )

        if wait_at is not None and wait_at.any():
            rt, rp = tid[wait_at], pid[wait_at]
            if int(soa.cursor[rt, rp].min()) == 0:
                soa.grow_front()
            soa.cursor[rt, rp] -= 1
            soa.path_buf[rt, rp, soa.cursor[rt, rp]] = edges[wait_at]
            nv = ~wait_at
            soa.cursor[tid[nv], pid[nv]] += 1
        else:
            soa.cursor[tid, pid] += 1
        new_nodes = np.where(
            backward, self._edge_src[edges], self._edge_dst[edges]
        )
        if backward.any():
            soa.backward_moves[tid[backward], pid[backward]] += 1
        soa.last_direction[tid, pid] = backward
        soa.node[tid, pid] = new_nodes
        soa.last_edge[tid, pid] = edges
        soa.moves[tid, pid] += 1
        fwd = ~backward
        # REVERSE only happens backward, so forward winners are the safe
        # backward set E' of the next step.
        self.safe_mask[tid[fwd], pid[fwd]] = True

        delivered = (soa.cursor[tid, pid] == soa.width) & (
            new_nodes == soa.destination[pid]
        )
        deliv_any = bool(delivered.any())
        if deliv_any:
            dt_, dp_ = tid[delivered], pid[delivered]
            soa.status[dt_, dp_] = _ABSORBED
            soa.absorbed_at[dt_, dp_] = t_of[dt_] + 1
            dc = np.bincount(dt_, minlength=trials)
            self.num_active -= dc
            self.num_absorbed += dc
            if fr is not None:
                exc = fr.state[dt_, dp_] == _EXCITED
                if exc.any():
                    self.num_excited -= np.bincount(
                        dt_[exc], minlength=trials
                    )
            for i in np.unique(dt_).tolist():
                row = self.act_mat[i, : self.act_cnt[i]]
                kept = row[soa.status[i, row] == _ACTIVE]
                self.act_mat[i, : kept.size] = kept
                self.act_cnt[i] = kept.size

        if fr is not None:
            # on_moved: forward path arrivals on the target level wait.
            cand = (fr.state[tid, pid] != _WAIT) & fwd
            if deliv_any:
                cand &= ~delivered
            if cand.any():
                ct, cp = tid[cand], pid[cand]
                nn = new_nodes[cand]
                lvl_ok = (
                    self._node_levels[nn]
                    == self._target_by_set[ct, fr.set_index[ct, cp]]
                )
                if lvl_ok.any():
                    et, ep = ct[lvl_ok], cp[lvl_ok]
                    fr.state[et, ep] = _WAIT
                    fr.wait_node[et, ep] = nn[lvl_ok]
                    fr.wait_edge[et, ep] = edges[cand][lvl_ok]
                    wc = np.bincount(et, minlength=trials)
                    self.wait_entries += wc
                    self.num_waiting += wc

    # --------------------------------------------------- contended fallback

    def _step_contended_row(
        self, i, pid, nodes, edges, backward, wait_at, slots, is_elig,
        safe_pairs,
    ) -> None:
        """Reference arbitration replay for one conflicted trial's step.

        A verbatim port of the VecEngine contended branch operating on
        this trial's flat participant segment, drawing every tie-break
        and shuffle from this trial's own engine generator.
        """
        fr = self.fr
        rng = self.rngs[i]
        n_parts = pid.size
        n_act = n_parts - int(is_elig.sum())
        pids_list = pid.tolist()
        nodes_list = nodes.tolist()
        slots_list = slots.tolist()
        prio_list = fr.state[i, pid].tolist() if fr is not None else None
        slot_set = set(slots_list)

        contenders: Dict[int, object] = {}
        for pos, slot in enumerate(slots_list):
            prev = contenders.get(slot)
            if prev is None:
                contenders[slot] = pos
            elif type(prev) is list:
                prev.append(pos)
            else:
                contenders[slot] = [prev, pos]
        winner_pos: List[int] = []
        losers_by_node: Dict[int, List[int]] = {}
        pending_grants: Dict[int, List[Tuple[int, int]]] = {}
        for slot, entry in contenders.items():
            if type(entry) is int:
                win = entry
            else:
                first = entry[0]
                best = [first]
                if prio_list is not None:
                    bk = (1 if first < n_act else 0, prio_list[first])
                    for pos in entry[1:]:
                        k = (1 if pos < n_act else 0, prio_list[pos])
                        if k > bk:
                            best = [pos]
                            bk = k
                        elif k == bk:
                            best.append(pos)
                else:
                    bk = 1 if first < n_act else 0
                    for pos in entry[1:]:
                        k = 1 if pos < n_act else 0
                        if k > bk:
                            best = [pos]
                            bk = k
                        elif k == bk:
                            best.append(pos)
                if len(best) > 1:
                    win = best[int(rng.integers(0, len(best)))]
                else:
                    win = best[0]
                for pos in entry:
                    if pos != win and pos < n_act:
                        losers_by_node.setdefault(
                            nodes_list[pos], []
                        ).append(pids_list[pos])
            winner_pos.append(win)
            if win >= n_act:
                pending_grants.setdefault(nodes_list[win], []).append(
                    (pids_list[win], slot)
                )

        deflected = None
        if losers_by_node:
            deflected, revoked = self._match_deflections_row(
                i, losers_by_node, slot_set, pending_grants, safe_pairs
            )
            if revoked:
                winner_pos = [
                    pos for pos in winner_pos
                    if pids_list[pos] not in revoked
                ]
        w_pos = np.asarray(winner_pos, dtype=np.int64)
        w_pids = pid[w_pos]
        w_edges = edges[w_pos]
        w_back = backward[w_pos]
        w_rev = wait_at[w_pos] if wait_at is not None else None
        inj_pos = [pos for pos in winner_pos if pos >= n_act]
        violations = 0
        if inj_pos:
            inj_ids = np.asarray(
                [pids_list[pos] for pos in inj_pos], dtype=np.int64
            )
            if fr is not None:
                isolated = _isolation_flags(
                    nodes_list[:n_act],
                    [nodes_list[pos] for pos in inj_pos],
                )
                violations = isolated.count(False)
        else:
            inj_ids = None
        self._apply_row(
            i, w_pids, w_edges, w_back, w_rev, inj_ids, violations, deflected
        )

    def _match_deflections_row(
        self, i, losers_by_node, used_slots, pending_grants, safe_pairs
    ):
        """Per-trial loser matching (safe in-edges first, Lemma 2.1)."""
        geo = self._geo
        in_edges = geo.in_edges
        in_slot_ids = geo.in_slot_ids
        out_edges = geo.out_edges
        out_slot_ids = geo.out_slot_ids
        safe_by_node: Dict[int, Set[int]] = {}
        for nd, e in zip(*safe_pairs):
            safe_by_node.setdefault(nd, set()).add(e)
        rng = self.rngs[i]
        t = int(self.t[i])
        deflected: List[Tuple[int, int, bool]] = []
        revoked: Optional[Set[int]] = None
        for node, losers in losers_by_node.items():
            if len(losers) > 1:
                rng.shuffle(losers)
            safe_here = safe_by_node.get(node, ())
            needed = len(losers)
            candidates: List[Tuple[int, int, bool]] = []
            node_in = in_edges[node]
            node_in_slots = in_slot_ids[node]
            if safe_here:
                for e, s in zip(node_in, node_in_slots):
                    if e in safe_here and s not in used_slots:
                        candidates.append((e, s, True))
                        if len(candidates) == needed:
                            break
                if len(candidates) < needed:
                    for e, s in zip(node_in, node_in_slots):
                        if e not in safe_here and s not in used_slots:
                            candidates.append((e, s, False))
                            if len(candidates) == needed:
                                break
            else:
                for e, s in zip(node_in, node_in_slots):
                    if s not in used_slots:
                        candidates.append((e, s, False))
                        if len(candidates) == needed:
                            break
            if len(candidates) < needed:
                for e, s in zip(out_edges[node], out_slot_ids[node]):
                    if s not in used_slots:
                        candidates.append((e, s, False))
                        if len(candidates) == needed:
                            break
            node_pending = pending_grants.get(node)
            while len(candidates) < needed and node_pending:
                revoke_pid, slot = node_pending.pop()
                if revoked is None:
                    revoked = set()
                revoked.add(revoke_pid)
                used_slots.discard(slot)
                candidates.append((slot >> 1, slot, False))
            if len(candidates) < needed:
                raise CapacityError(
                    f"step {t}: node {node} has {needed} deflected "
                    f"packets but only {len(candidates)} free slots"
                )
            for pid, (edge, slot, safe) in zip(losers, candidates):
                used_slots.add(slot)
                deflected.append((pid, edge, safe))
        return deflected, revoked

    def _apply_row(
        self, i, w_pids, w_edges, w_back, w_rev, inj_ids, violations,
        deflected,
    ) -> None:
        """Row port of the VecEngine untraced move application."""
        soa = self.soa
        fr = self.fr
        ti = int(self.t[i])

        if inj_ids is not None:
            soa.status[i, inj_ids] = _ACTIVE
            soa.injected_at[i, inj_ids] = ti
            self.elig_mask[i, inj_ids] = False
            self.elig_cnt[i] -= inj_ids.size
            c0 = int(self.act_cnt[i])
            self.act_mat[i, c0:c0 + inj_ids.size] = inj_ids
            self.act_cnt[i] = c0 + inj_ids.size
            self.num_active[i] += inj_ids.size
            self.isolation_violations[i] += violations

        if w_rev is not None and w_rev.any():
            rev_p = w_pids[w_rev]
            if int(soa.cursor[i, rev_p].min()) == 0:
                soa.grow_front()
            soa.cursor[i, rev_p] -= 1
            soa.path_buf[i, rev_p, soa.cursor[i, rev_p]] = w_edges[w_rev]
            soa.cursor[i, w_pids[~w_rev]] += 1
        else:
            soa.cursor[i, w_pids] += 1
        new_nodes = np.where(
            w_back, self._edge_src[w_edges], self._edge_dst[w_edges]
        )
        if w_back.any():
            soa.backward_moves[i, w_pids[w_back]] += 1
        soa.last_direction[i, w_pids] = w_back
        soa.node[i, w_pids] = new_nodes
        soa.last_edge[i, w_pids] = w_edges
        soa.moves[i, w_pids] += 1
        fwd = ~w_back
        self.safe_mask[i, w_pids[fwd]] = True

        delivered = (soa.cursor[i, w_pids] == soa.width) & (
            new_nodes == soa.destination[w_pids]
        )
        deliv_any = bool(delivered.any())
        if deliv_any:
            absorbed = w_pids[delivered]
            soa.status[i, absorbed] = _ABSORBED
            soa.absorbed_at[i, absorbed] = ti + 1
            self.num_active[i] -= absorbed.size
            self.num_absorbed[i] += absorbed.size
            if fr is not None:
                self.num_excited[i] -= int(
                    (fr.state[i, absorbed] == _EXCITED).sum()
                )
            row = self.act_mat[i, : self.act_cnt[i]]
            kept = row[soa.status[i, row] == _ACTIVE]
            self.act_mat[i, : kept.size] = kept
            self.act_cnt[i] = kept.size

        if fr is not None:
            cand = (fr.state[i, w_pids] != _WAIT) & fwd
            if deliv_any:
                cand &= ~delivered
            if cand.any():
                pids = w_pids[cand]
                nn = new_nodes[cand]
                we = w_edges[cand]
                lvl_ok = (
                    self._node_levels[nn]
                    == self._target_by_set[i, fr.set_index[i, pids]]
                )
                if lvl_ok.any():
                    entering = pids[lvl_ok]
                    fr.state[i, entering] = _WAIT
                    fr.wait_node[i, entering] = nn[lvl_ok]
                    fr.wait_edge[i, entering] = we[lvl_ok]
                    self.wait_entries[i] += entering.size
                    self.num_waiting[i] += entering.size

        if deflected:
            pids = np.asarray([d[0] for d in deflected], dtype=np.int64)
            eidx = np.asarray([d[1] for d in deflected], dtype=np.int64)
            unsafe = np.asarray(
                [not d[2] for d in deflected], dtype=bool
            )
            c = soa.cursor[i, pids]
            if int(c.min()) == 0:
                soa.grow_front()
                c = soa.cursor[i, pids]
            soa.cursor[i, pids] = c - 1
            soa.path_buf[i, pids, c - 1] = eidx
            src = self._edge_src[eidx]
            back = soa.node[i, pids] != src
            soa.node[i, pids] = np.where(back, src, self._edge_dst[eidx])
            soa.last_direction[i, pids] = back
            soa.backward_moves[i, pids] += back
            soa.last_edge[i, pids] = eidx
            soa.moves[i, pids] += 1
            soa.deflections[i, pids] += 1
            n_unsafe = int(unsafe.sum())
            if n_unsafe:
                soa.unsafe_deflections[i, pids] += unsafe
                self.unsafe_deflections[i] += n_unsafe
            if fr is not None:
                st = fr.state[i, pids]
                waiting = pids[st == _WAIT]
                if waiting.size:
                    fr.state[i, waiting] = _NORMAL
                    fr.wait_node[i, waiting] = -1
                    fr.wait_edge[i, waiting] = -1
                    self.wait_evictions[i] += waiting.size
                    self.num_waiting[i] -= waiting.size
                excited = pids[st == _EXCITED]
                if excited.size:
                    fr.state[i, excited] = _NORMAL
                    self.num_excited[i] -= excited.size

    # ---------------------------------------------------------- fast-forward

    def _quiescent_rows(self, lt):
        """Trials of ``lt`` that are quiescent, with per-trial horizons."""
        fr = self.fr
        soa = self.soa
        spp = self._spp
        cand = lt[self.elig_cnt[lt] == 0]
        if not cand.size:
            return None, None
        unmarked = (soa.status[cand] == _PENDING) & ~self.elig_mask[cand]
        ip = np.where(unmarked, fr.injection_phase[cand], _NO_PHASE)
        minph = ip.min(axis=1)
        has_pending = minph < _NO_PHASE
        cur_phase = self.t[cand] // spp
        ok = ~has_pending | (minph > cur_phase)
        if not ok.all():
            cand = cand[ok]
            minph = minph[ok]
            has_pending = has_pending[ok]
            cur_phase = cur_phase[ok]
        if not cand.size:
            return None, None
        empty = self.act_cnt[cand] == 0
        horizon = np.where(empty, minph * spp, (cur_phase + 1) * spp)
        keep = np.ones(cand.size, dtype=bool)
        keep[empty & ~has_pending] = False
        nonempty = ~empty
        if nonempty.any():
            all_wait = (
                self.num_waiting[cand] == self.act_cnt[cand]
            ) & nonempty
            keep &= all_wait | empty
            chk = cand[all_wait]
            if chk.size:
                f_tid, f_pid = self._flat_active(chk)
                osc = fr.wait_edge[f_tid, f_pid] * 2 + (
                    soa.node[f_tid, f_pid] == fr.wait_node[f_tid, f_pid]
                )
                span = 2 * self._num_edges + 2
                sk = np.sort(f_tid * span + osc)
                d = sk[1:] == sk[:-1]
                if d.any():  # pragma: no cover - theory says impossible
                    badrows = np.unique(sk[:-1][d] // span)
                    keep &= ~np.isin(cand, badrows)
        rows = cand[keep]
        if not rows.size:
            return None, None
        return rows, horizon[keep]

    def _advance_span(self, rows, k_rows) -> None:
        """Analytically apply ``k_rows`` quiescent oscillation steps."""
        fr = self.fr
        soa = self.soa
        self.safe_mask[rows] = False
        if not self.act_cnt[rows].any():
            return
        k_arr = np.zeros(self.trials, dtype=np.int64)
        k_arr[rows] = k_rows
        f_tid, f_pid = self._flat_active(rows)
        at_wait = soa.node[f_tid, f_pid] == fr.wait_node[f_tid, f_pid]
        kf = k_arr[f_tid]
        soa.moves[f_tid, f_pid] += kf
        soa.backward_moves[f_tid, f_pid] += np.where(
            at_wait, (kf + 1) // 2, kf // 2
        )
        odd = (kf & 1) == 1
        if odd.any():
            leaving = odd & at_wait
            if leaving.any():
                ltid, lpid = f_tid[leaving], f_pid[leaving]
                if int(soa.cursor[ltid, lpid].min()) == 0:
                    soa.grow_front()
                soa.cursor[ltid, lpid] -= 1
                we = fr.wait_edge[ltid, lpid]
                soa.path_buf[ltid, lpid, soa.cursor[ltid, lpid]] = we
                soa.node[ltid, lpid] = self._edge_src[we]
                soa.last_direction[ltid, lpid] = 1
            returning = odd & ~at_wait
            if returning.any():
                rtid, rpid = f_tid[returning], f_pid[returning]
                soa.cursor[rtid, rpid] += 1
                we = fr.wait_edge[rtid, rpid]
                soa.node[rtid, rpid] = self._edge_dst[we]
                soa.last_direction[rtid, rpid] = 0
            ot, op = f_tid[odd], f_pid[odd]
            soa.last_edge[ot, op] = fr.wait_edge[ot, op]
        ended = soa.node[f_tid, f_pid] == fr.wait_node[f_tid, f_pid]
        self.safe_mask[f_tid[ended], f_pid[ended]] = True

    def _fast_forward(self, lt) -> None:
        """Reference-equivalent quiescence skip across trials."""
        rows, horizon = self._quiescent_rows(lt)
        if rows is None:
            return
        target = horizon - 1  # simulate the boundary step normally
        k = target - self.t[rows]
        adv = k > 0
        if not adv.any():
            return
        rows, target, k = rows[adv], target[adv], k[adv]
        self._advance_span(rows, k)
        self.t[rows] = target
        self.steps_skipped[rows] += k

    def _bulk_advance(self, lt, max_steps: int) -> None:
        """Quiescent spans as *executed* steps (fast-forward disabled)."""
        rows, horizon = self._quiescent_rows(lt)
        if rows is None:
            return
        target = np.minimum(horizon - 1, max_steps)
        k = target - self.t[rows]
        adv = k > 0
        if not adv.any():
            return
        rows, target, k = rows[adv], target[adv], k[adv]
        self._advance_span(rows, k)
        phase = (target - 1) // self._spp
        self.current_phase[rows] = np.maximum(self.current_phase[rows], phase)
        self.t[rows] = target
        self.steps_executed[rows] += k

    # ---------------------------------------------------------------- result

    def result(self, i: int) -> RunResult:
        """Trial ``i``'s metrics, field-identical to its per-trial run."""
        soa = self.soa
        n = self.num_packets
        aa = soa.absorbed_at[i]
        if int(self.num_absorbed[i]) == n:
            makespan = int(aa.max()) if n else int(self.t[i])
        else:
            makespan = int(self.t[i])
        delivery_times = [a if a >= 0 else None for a in aa.tolist()]
        extra: Dict[str, float] = {}
        if self.fr is not None:
            extra = {
                "num_sets": float(self._num_sets),
                "m": float(self._m),
                "w": float(self._w),
                "q": float(self._q),
                "excitations": float(self.excitations[i]),
                "wait_entries": float(self.wait_entries[i]),
                "wait_evictions": float(self.wait_evictions[i]),
                "phase_releases": float(self.phase_releases[i]),
                "isolation_violations": float(self.isolation_violations[i]),
                "phases_elapsed": float(self.current_phase[i] + 1),
            }
        return RunResult(
            router_name=self.router_name,
            network_name=self.net.name,
            num_packets=n,
            congestion=self.problem.congestion,
            dilation=self.problem.dilation,
            depth=self.net.depth,
            delivered=int(self.num_absorbed[i]),
            makespan=makespan,
            steps_executed=int(self.steps_executed[i]),
            steps_skipped=int(self.steps_skipped[i]),
            delivery_times=delivery_times,
            deflections_per_packet=soa.deflections[i].tolist(),
            unsafe_deflections=int(self.unsafe_deflections[i]),
            total_moves=int(soa.moves[i].sum()),
            total_backward_moves=int(soa.backward_moves[i].sum()),
            extra=extra,
        )


__all__ = ["LockstepEngine"]
