"""Structured trace events emitted by the engine and routers.

Observers (tracers, invariant auditors, visualizers) register with the
engine and receive every event; when no observer is attached the engine
skips event construction entirely, so tracing costs nothing when off.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..types import Direction, EdgeId, NodeId, PacketId


class EventKind(enum.Enum):
    """What happened."""

    INJECT = "inject"
    MOVE = "move"
    DEFLECT = "deflect"
    UNSAFE_DEFLECT = "unsafe_deflect"
    ABSORB = "absorb"
    STATE = "state"
    ROUND_START = "round_start"
    PHASE_START = "phase_start"
    FAST_FORWARD = "fast_forward"


@dataclass(frozen=True)
class TraceEvent:
    """One simulation event.

    ``time`` is the step during which the event happened; moves recorded at
    step ``t`` place the packet at its new node from step ``t + 1`` on.
    """

    time: int
    kind: EventKind
    packet: Optional[PacketId] = None
    node: Optional[NodeId] = None
    edge: Optional[EdgeId] = None
    direction: Optional[Direction] = None
    detail: Optional[str] = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = [f"t={self.time}", self.kind.value]
        if self.packet is not None:
            parts.append(f"pkt={self.packet}")
        if self.node is not None:
            parts.append(f"node={self.node}")
        if self.edge is not None:
            parts.append(f"edge={self.edge}")
        if self.direction is not None:
            parts.append(self.direction.name.lower())
        if self.detail:
            parts.append(self.detail)
        return " ".join(parts)


class TraceRecorder:
    """The simplest observer: append every event to a list.

    Suitable for small audited runs; long sweeps should use targeted
    observers (e.g. counters) instead of keeping full traces.
    """

    def __init__(self, keep: Optional[set[EventKind]] = None) -> None:
        self.events: list[TraceEvent] = []
        self.keep = keep

    def on_event(self, event: TraceEvent) -> None:
        """Observer hook."""
        if self.keep is None or event.kind in self.keep:
            self.events.append(event)

    def of_kind(self, kind: EventKind) -> list[TraceEvent]:
        """All recorded events of one kind."""
        return [e for e in self.events if e.kind is kind]

    def count(self, kind: EventKind) -> int:
        """Number of recorded events of one kind."""
        return sum(1 for e in self.events if e.kind is kind)

    def clear(self) -> None:
        """Drop all recorded events."""
        self.events.clear()
