"""Synchronous bufferless (hot-potato) simulation engine."""

from .packet import Packet, PacketStatus
from .events import EventKind, TraceEvent, TraceRecorder
from .router import DesiredMove, Router
from .metrics import RunResult
from .engine import Engine, Slot
from .soa import NUMPY_AVAILABLE, FrontierArrays, GeometryArrays, PacketArrays
from .engine_vec import (
    VecEngine,
    VectorBackendUnavailable,
    numpy_available,
)

__all__ = [
    "Packet",
    "PacketStatus",
    "EventKind",
    "TraceEvent",
    "TraceRecorder",
    "DesiredMove",
    "Router",
    "RunResult",
    "Engine",
    "Slot",
    "NUMPY_AVAILABLE",
    "GeometryArrays",
    "PacketArrays",
    "FrontierArrays",
    "VecEngine",
    "VectorBackendUnavailable",
    "numpy_available",
]
