"""Synchronous bufferless (hot-potato) simulation engine."""

from .packet import Packet, PacketStatus
from .events import EventKind, TraceEvent, TraceRecorder
from .router import DesiredMove, Router
from .metrics import RunResult
from .engine import Engine, Slot

__all__ = [
    "Packet",
    "PacketStatus",
    "EventKind",
    "TraceEvent",
    "TraceRecorder",
    "DesiredMove",
    "Router",
    "RunResult",
    "Engine",
    "Slot",
]
