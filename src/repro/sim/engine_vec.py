"""Vectorized struct-of-arrays engine kernel (the ``frontier_vec`` backend).

:class:`VecEngine` replays the reference :class:`~repro.sim.engine.Engine`
semantics with per-packet state held in numpy arrays
(:mod:`repro.sim.soa`) instead of Python objects.  One simulation step is a
handful of batched array operations: desired directed slots are computed
vectorially, excitation coins are drawn as one batched
``Generator.random(n)`` call, and winner moves apply as masked scatters.
A step whose desired slots are pairwise distinct — the overwhelmingly
common case — is **conflict-free**: it skips arbitration entirely (no
priority keys, no RNG) and applies every move in participant order, which
is exactly the reference's granted order.  Contended steps fall back to a
dict-based arbitration pass replaying the reference contender order on
``(class, priority)`` keys; only the genuinely sequential parts —
tie-break draws, loser shuffles, and the deflection matching against the
safe backward slot set (Lemma 2.1's ``E'``) — stay as Python loops over
the (rare) conflicted slots and loser nodes.

Equivalence contract
--------------------
The reference engine remains the semantic oracle.  For the two supported
policies (the paper's frontier-frame algorithm and the naive path-following
baseline) a ``VecEngine`` run is **byte-identical** to the reference run
with the same seeds: equal :class:`~repro.sim.RunResult` fields (delivery
times, deflection counts, move totals, router extras), equal telemetry
counters, and an equal trace event stream when observers are attached.
This holds because the kernel reproduces the reference's RNG draw order
exactly:

* excitation coins: ``Generator.random(n)`` draws the same doubles as
  ``n`` successive scalar ``random()`` calls, in active-packet order;
* arbitration tie-breaks: one scalar ``integers(0, len(best))`` per
  conflicted slot, in slot first-appearance order;
* loser shuffles: one ``shuffle`` per multi-loser node, in node
  first-loser order —

and mirrors every ordering the reference exposes (active ids in injection
order, eligible ids sorted, winner application in slot order).  The
differential fuzz tests in ``tests/test_engine_vec.py`` pin the contract.

Not supported (callers fall back to the reference engine): post-step hooks
(the invariant auditor), routers other than the two above, and
``collect_round_stats``.  When numpy is unavailable the constructor raises
:class:`VectorBackendUnavailable` with an actionable message; the scenario
backend catches this and falls back silently.

Performance
-----------
Dense steps win by batching; sparse schedules win by *bulk advance*: when
every active packet provably oscillates in wait state on pairwise-distinct
slots (or none is active and no injection is due), whole spans of steps are
applied analytically — the same closed form the reference router uses for
quiescence fast-forward — even when fast-forward is disabled and the span
must still be accounted as executed steps.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..errors import CapacityError, ReproError, SimulationError
from ..rng import RngLike, make_rng
from ..telemetry.context import current_session
from ..types import Direction
from .events import EventKind, TraceEvent
from .metrics import RunResult
from .soa import NUMPY_AVAILABLE, FrontierArrays, PacketArrays

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised via monkeypatched flag
    np = None

Observer = Callable[[TraceEvent], None]

_PENDING = 0  # PacketStatus values, as plain ints for array compares
_ACTIVE = 1
_ABSORBED = 2
_WAIT = 1  # PacketState values (the value IS the priority)
_NORMAL = 2
_EXCITED = 3
_STATE_NAMES = {_WAIT: "wait", _NORMAL: "normal", _EXCITED: "excited"}


class VectorBackendUnavailable(ReproError):
    """The vectorized kernel was requested but cannot run here."""


def numpy_available() -> bool:
    """Whether the vectorized kernel can run in this interpreter."""
    return NUMPY_AVAILABLE and np is not None


def require_numpy() -> None:
    """Raise a clear, actionable error when numpy is missing."""
    if not numpy_available():
        raise VectorBackendUnavailable(
            "the vectorized engine backend requires numpy; install it with "
            "'pip install repro[fast]' or select the reference backend "
            "(backend='frontier') instead"
        )


class VecEngine:
    """Array-kernel twin of the reference engine for two fixed policies.

    Construct through :meth:`frontier` or :meth:`naive`; the constructor
    itself is shared plumbing.  ``router_rng`` must already have drawn the
    frontier-set assignment (mirroring ``FrontierFrameRouter.attach``) so
    the excitation-coin stream starts at the same position as the
    reference's.
    """

    def __init__(
        self,
        problem,
        *,
        mode: str,
        seed: RngLike = None,
        observers: Sequence[Observer] = (),
        enable_fast_forward: bool = True,
        geometry=None,
        router_rng=None,
        num_sets: int = 0,
        m: int = 1,
        w: int = 1,
        q: float = 0.0,
        set_of: Optional[Sequence[int]] = None,
    ) -> None:
        require_numpy()
        self.problem = problem
        self.net = problem.net
        self.packets = problem.packets  # specs; len() feeds telemetry
        self.mode = mode
        self.router_name = (
            "FrontierFrameRouter" if mode == "frontier" else "NaivePathRouter"
        )
        self.rng = make_rng(seed)
        self.t = 0
        self.steps_executed = 0
        self.steps_skipped = 0
        self.num_active = 0
        self.num_absorbed = 0
        self.unsafe_deflections = 0
        self._enable_fast_forward = enable_fast_forward
        self._observers: List[Observer] = list(observers)
        self._step_timer = None

        geo = geometry if geometry is not None else self.net.geometry()
        self._geo = geo
        ga = geo.arrays()
        self._edge_src = ga.edge_src
        self._edge_dst = ga.edge_dst
        self._node_levels = ga.node_levels

        self.soa = PacketArrays.from_problem(problem)
        n = self.soa.num_packets
        #: shared empty array (never mutated in place; assignments replace)
        self._empty = np.empty(0, dtype=np.int64)
        #: active packet ids in injection order (mirrors ``Engine.active_ids``)
        self._act = self._empty
        #: eligible pending packet ids, kept sorted (``sorted(eligible)``)
        self._elig = self._empty
        #: safe backward in-edges of last step as (arrival node, edge) pairs
        self._safe_nodes = self._empty
        self._safe_edges = self._empty

        if mode == "frontier":
            self._router_rng = router_rng if router_rng is not None else make_rng()
            self._num_sets = int(num_sets)
            self._m = int(m)
            self._w = int(w)
            self._q = float(q)
            self._spp = self._m * self._w
            src_levels = self._node_levels[self.soa.source]
            set_idx = np.asarray(set_of, dtype=np.int64)
            inj_phase = set_idx * self._m + (self._m - 1) + src_levels
            self.fr = FrontierArrays(set_idx, inj_phase)
            self._elig_by_phase: Dict[int, "np.ndarray"] = {}
            for phase in np.unique(inj_phase):
                pids = np.nonzero(inj_phase == phase)[0].astype(np.int64)
                self._elig_by_phase[int(phase)] = pids  # ascending = sorted
            #: sorted injection phases with a cursor over the unmarked tail;
            #: ``pending and not eligible`` <=> injection phase not yet
            #: marked, so ``_phase_keys[_next_phase_idx]`` is the minimum
            #: pending injection phase with no array scan.
            self._phase_keys: List[int] = sorted(self._elig_by_phase)
            self._next_phase_idx = 0
            self._set_offsets = (
                np.arange(self._num_sets, dtype=np.int64) * self._m
            )
            self._target_by_set = np.zeros(self._num_sets, dtype=np.int64)
        else:
            self.fr = None
            self._router_rng = None
            self._spp = 0
            self._phase_keys = []
            self._next_phase_idx = 0
            # NaivePathRouter.attach marks everything eligible immediately.
            self._elig = np.arange(n, dtype=np.int64)

        # Arrival gating (see Engine.set_arrival_schedule): marks for
        # packets whose arrival time has not come are held and released at
        # the top of their due step, mirroring the reference engine.
        schedule = getattr(problem, "arrival_schedule", None)
        self._sched = schedule
        self._held: Set[int] = set()
        if schedule is not None:
            schedule.validate_for(n)
            self._times = np.asarray(schedule.times, dtype=np.int64)
            if self._elig.size:
                due = self._times[self._elig] <= 0
                if not due.all():
                    self._held = set(self._elig[~due].tolist())
                    self._elig = self._elig[due]
        else:
            self._times = None

        self._current_phase = -1
        self.excitations = 0
        self.wait_entries = 0
        self.wait_evictions = 0
        self.phase_releases = 0
        self.round_calms = 0
        self.isolation_violations = 0
        #: live occupancy counters; when both are zero every active packet
        #: is NORMAL and whole gather/compare blocks can be skipped
        self._num_waiting = 0
        self._num_excited = 0

        session = current_session()
        if session is not None:
            session.attach(self)

    # ------------------------------------------------------------- factories

    @classmethod
    def frontier(
        cls,
        problem,
        params,
        *,
        set_of: Optional[Sequence[int]] = None,
        router_seed: RngLike = None,
        seed: RngLike = None,
        enable_fast_forward: bool = True,
        observers: Sequence[Observer] = (),
        geometry=None,
    ) -> "VecEngine":
        """Kernel for the paper's frontier-frame algorithm.

        Mirrors ``Engine(problem, FrontierFrameRouter(params, set_of,
        router_seed), seed)`` including the router's RNG stream: the
        frontier-set assignment is drawn from ``router_seed`` exactly when
        ``set_of`` is omitted, leaving the excitation-coin stream aligned.
        """
        require_numpy()
        from ..core.frontier import assign_frontier_sets

        if params.depth != problem.net.depth:
            from ..errors import ParameterError

            raise ParameterError(
                f"params built for depth {params.depth} but network has "
                f"depth {problem.net.depth}"
            )
        if params.num_packets != problem.num_packets:
            from ..errors import ParameterError

            raise ParameterError(
                f"params built for {params.num_packets} packets but "
                f"problem has {problem.num_packets}"
            )
        router_rng = make_rng(router_seed)
        if set_of is None:
            set_of = assign_frontier_sets(problem, params.num_sets, router_rng)
        return cls(
            problem,
            mode="frontier",
            seed=seed,
            observers=observers,
            enable_fast_forward=enable_fast_forward,
            geometry=geometry,
            router_rng=router_rng,
            num_sets=params.num_sets,
            m=params.m,
            w=params.w,
            q=params.q,
            set_of=set_of,
        )

    @classmethod
    def naive(
        cls,
        problem,
        *,
        seed: RngLike = None,
        observers: Sequence[Observer] = (),
        geometry=None,
    ) -> "VecEngine":
        """Kernel for the naive path-following baseline."""
        return cls(problem, mode="naive", seed=seed, observers=observers,
                   geometry=geometry)

    # ---------------------------------------------------------------- events

    def add_observer(self, observer: Observer) -> None:
        """Register an event observer (tracer, counters, ...)."""
        self._observers.append(observer)

    def emit(self, event: TraceEvent) -> None:
        """Deliver an event to all observers."""
        for observer in self._observers:
            observer(event)

    @property
    def tracing(self) -> bool:
        """Whether any observer is attached."""
        return bool(self._observers)

    # ------------------------------------------------------------------ time

    def _phase(self, t: int) -> int:
        return t // self._spp

    def _round(self, t: int) -> int:
        return (t % self._spp) // self._w

    # -------------------------------------------------------------- pre-step

    def _pre_step(self, t: int, tracing: bool) -> None:
        """Frontier router pre-step: schedule events, wait entries, coins."""
        fr = self.fr
        soa = self.soa
        if t % self._spp == 0:
            phase = t // self._spp
            self._current_phase = phase
            if tracing:
                self.emit(TraceEvent(t, EventKind.PHASE_START, detail=str(phase)))
            keys = self._phase_keys
            idx = self._next_phase_idx
            while idx < len(keys) and keys[idx] <= phase:
                # mark_eligible: all these are still pending by construction
                newly = self._elig_by_phase[keys[idx]]
                if self._times is not None:
                    due = self._times[newly] <= t
                    if not due.all():
                        self._held.update(newly[~due].tolist())
                        newly = newly[due]
                if newly.size:
                    elig = self._elig
                    self._elig = np.union1d(elig, newly) if elig.size else newly
                idx += 1
            self._next_phase_idx = idx
        if t % self._w == 0:
            phase = t // self._spp
            rnd = (t % self._spp) // self._w
            if tracing:
                self.emit(
                    TraceEvent(t, EventKind.ROUND_START, detail=f"{phase}:{rnd}")
                )
            tinner = 0 if rnd <= 1 else rnd - 1
            self._target_by_set = (phase - tinner) - self._set_offsets
            act = self._act
            if act.size:
                # Packets that forward-arrived on the new round's target
                # level are already standing on their target node.
                st = fr.state[act]
                mask = (
                    (st != _WAIT)
                    & (soa.last_direction[act] == 0)
                    & (
                        self._node_levels[soa.node[act]]
                        == self._target_by_set[fr.set_index[act]]
                    )
                )
                if mask.any():
                    pids = act[mask]
                    if tracing:
                        for pid in pids:
                            old = _STATE_NAMES[int(fr.state[pid])]
                            self._enter_wait_scalar(int(pid))
                            self._emit_state(t, int(pid), f"{old}->wait")
                    else:
                        fr.state[pids] = _WAIT
                        fr.wait_node[pids] = soa.node[pids]
                        fr.wait_edge[pids] = soa.last_edge[pids]
                        self.wait_entries += int(pids.size)
                        self._num_waiting += int(pids.size)
        # Excitation coins: one uniform per active normal packet, in
        # active-id order (Generator.random(n) == n scalar draws).
        if self._q > 0.0:
            act = self._act
            if act.size:
                if self._num_waiting or self._num_excited:
                    normal = act[fr.state[act] == _NORMAL]
                else:
                    normal = act
                if normal.size:
                    hits = self._router_rng.random(normal.size) < self._q
                    if hits.any():
                        excited = normal[hits]
                        fr.state[excited] = _EXCITED
                        self.excitations += int(excited.size)
                        self._num_excited += int(excited.size)
                        if tracing:
                            for pid in excited:
                                self._emit_state(t, int(pid), "normal->excited")

    def _enter_wait_scalar(self, pid: int) -> None:
        fr = self.fr
        fr.state[pid] = _WAIT
        fr.wait_node[pid] = self.soa.node[pid]
        fr.wait_edge[pid] = self.soa.last_edge[pid]
        self.wait_entries += 1
        self._num_waiting += 1

    def _emit_state(self, t: int, pid: int, transition: str) -> None:
        self.emit(
            TraceEvent(
                t,
                EventKind.STATE,
                packet=pid,
                node=int(self.soa.node[pid]),
                detail=transition,
            )
        )

    # ------------------------------------------------------------- post-step

    def _post_step(self, t: int, tracing: bool) -> None:
        """Frontier router post-step: round-end calms, phase-end releases."""
        round_end = (t + 1) % self._w == 0
        phase_end = (t + 1) % self._spp == 0
        if not (round_end or phase_end):
            return
        if not (self._num_excited or (phase_end and self._num_waiting)):
            return
        fr = self.fr
        act = self._act
        if not act.size:
            return
        if tracing:
            for pid in act:
                pid = int(pid)
                st = int(fr.state[pid])
                if st == _EXCITED:
                    fr.state[pid] = _NORMAL
                    self.round_calms += 1
                    self._num_excited -= 1
                    self._emit_state(t, pid, "excited->normal")
                elif phase_end and st == _WAIT:
                    fr.state[pid] = _NORMAL
                    fr.wait_node[pid] = -1
                    fr.wait_edge[pid] = -1
                    self.phase_releases += 1
                    self._num_waiting -= 1
                    self._emit_state(t, pid, "wait->normal")
            return
        st = fr.state[act]
        excited = act[st == _EXCITED]
        if excited.size:
            fr.state[excited] = _NORMAL
            self.round_calms += int(excited.size)
            self._num_excited -= int(excited.size)
        if phase_end:
            waiting = act[st == _WAIT]
            if waiting.size:
                fr.state[waiting] = _NORMAL
                fr.wait_node[waiting] = -1
                fr.wait_edge[waiting] = -1
                self.phase_releases += int(waiting.size)
                self._num_waiting -= int(waiting.size)

    # ------------------------------------------------------------------ step

    def step(self) -> None:
        """Execute one synchronous time step (array semantics)."""
        t = self.t
        soa = self.soa
        fr = self.fr
        tracing = bool(self._observers)

        # -- arrival release (mirrors Engine.step's held-mark release) ------
        if self._held:
            rel = [pid for pid in self._sched.due_at(t) if pid in self._held]
            if rel:
                self._held.difference_update(rel)
                newly = np.asarray(rel, dtype=np.int64)
                elig = self._elig
                self._elig = np.union1d(elig, newly) if elig.size else newly

        if fr is not None:
            self._pre_step(t, tracing)

        # -- gather desires over participants ------------------------------
        act = self._act
        elig = self._elig
        n_act = act.size
        parts = np.concatenate([act, elig]) if elig.size else act
        n_parts = parts.size
        if not n_parts:
            if fr is not None:
                self._post_step(t, tracing)
            self._safe_nodes = self._empty
            self._safe_edges = self._empty
            self.t = t + 1
            self.steps_executed += 1
            return

        nodes = soa.node[parts]
        cur = soa.cursor[parts]
        width = soa.width
        if fr is not None and n_act and self._num_waiting:
            wait_at = (fr.state[parts] == _WAIT) & (nodes == fr.wait_node[parts])
            any_wait = bool(wait_at.any())
        else:
            # pending packets are never in wait state, so an active-free
            # step (and every naive step) has no REVERSE desires at all
            wait_at = None
            any_wait = False
        cmax = int(cur.max())
        if cmax >= width:  # pragma: no cover - malformed problem guard
            bad_mask = cur >= width
            if any_wait:
                bad_mask &= ~wait_at
            if bad_mask.any():
                bad = int(np.argmax(bad_mask))
                raise SimulationError(
                    f"packet {int(parts[bad])} has an empty current path at "
                    f"node {int(nodes[bad])}"
                )
            cur = np.minimum(cur, width - 1)
            cmax = width - 1
        # a FOLLOW can only exhaust its path when some cursor is one off
        # the end already — lets the apply stage skip the delivery check
        maybe_deliver = cmax >= width - 1
        heads = soa.path_buf[parts, cur]
        if any_wait:
            edges = np.where(wait_at, fr.wait_edge[parts], heads)
        else:
            edges = heads
        backward = self._edge_src[edges] != nodes
        any_back = bool(backward.any())
        slots = (edges << 1) + backward if any_back else edges << 1

        # -- arbitration per directed slot ----------------------------------
        # The arbitration itself runs as plain Python over the (small)
        # participant lists: on conflict-free steps nothing runs at all,
        # and on conflicted steps the reference's dict walk beats per-slot
        # numpy group math by an order of magnitude at these sizes.
        slots_list = slots.tolist()
        slot_set = set(slots_list)
        pend_flags: Optional[List[bool]] = None
        if len(slot_set) == n_parts:
            # Conflict-free fast path: every desire is granted, and
            # participant order IS the reference's granted order.
            w_pids = parts
            w_edges = edges
            w_back = backward
            w_rev = wait_at if any_wait else None
            deflected = None
            if n_act < n_parts:
                inj_ids = parts[n_act:]
                if tracing or fr is not None:
                    nodes_list = nodes.tolist()
                    isolated = self._isolation_flags(
                        nodes_list[:n_act], nodes_list[n_act:]
                    )
                else:
                    isolated = None
                if tracing:
                    pend_flags = [i >= n_act for i in range(n_parts)]
            else:
                inj_ids = None
                isolated = None
                if tracing:
                    pend_flags = [False] * n_parts
        else:
            pids_list = parts.tolist()
            nodes_list = nodes.tolist()
            prio_list = fr.state[parts].tolist() if fr is not None else None
            contenders: Dict[int, object] = {}
            for pos, slot in enumerate(slots_list):
                prev = contenders.get(slot)
                if prev is None:
                    contenders[slot] = pos
                elif type(prev) is list:
                    prev.append(pos)
                else:
                    contenders[slot] = [prev, pos]
            rng = self.rng
            winner_pos: List[int] = []
            losers_by_node: Dict[int, List[int]] = {}
            pending_grants: Dict[int, List[Tuple[int, int]]] = {}
            # Contender-dict insertion order = slot first-appearance order,
            # the reference's arbitration (and tie-break draw) order.
            for slot, entry in contenders.items():
                if type(entry) is int:
                    win = entry
                else:
                    # sequential best-keeping on (class, priority), exactly
                    # as the reference: first max wins ties into the pool
                    first = entry[0]
                    best = [first]
                    if prio_list is not None:
                        bk = (
                            1 if first < n_act else 0,
                            prio_list[first],
                        )
                        for pos in entry[1:]:
                            k = (1 if pos < n_act else 0, prio_list[pos])
                            if k > bk:
                                best = [pos]
                                bk = k
                            elif k == bk:
                                best.append(pos)
                    else:
                        bk = 1 if first < n_act else 0
                        for pos in entry[1:]:
                            k = 1 if pos < n_act else 0
                            if k > bk:
                                best = [pos]
                                bk = k
                            elif k == bk:
                                best.append(pos)
                    if len(best) > 1:
                        win = best[int(rng.integers(0, len(best)))]
                    else:
                        win = best[0]
                    for pos in entry:
                        if pos != win and pos < n_act:
                            # pending losers simply fail to inject
                            losers_by_node.setdefault(
                                nodes_list[pos], []
                            ).append(pids_list[pos])
                winner_pos.append(win)
                if win >= n_act:
                    pending_grants.setdefault(nodes_list[win], []).append(
                        (pids_list[win], slot)
                    )

            # -- deflection slot matching -----------------------------------
            deflected = None
            revoked = None
            if losers_by_node:
                deflected, revoked = self._match_deflections(
                    t, losers_by_node, slot_set, pending_grants
                )
                if revoked:
                    winner_pos = [
                        pos
                        for pos in winner_pos
                        if pids_list[pos] not in revoked
                    ]
            w_pos = np.asarray(winner_pos, dtype=np.int64)
            w_pids = parts[w_pos]
            w_edges = edges[w_pos]
            w_back = backward[w_pos]
            any_back = bool(w_back.any())
            w_rev = wait_at[w_pos] if any_wait else None
            inj_pos = [pos for pos in winner_pos if pos >= n_act]
            if inj_pos:
                inj_ids = np.asarray(
                    [pids_list[pos] for pos in inj_pos], dtype=np.int64
                )
                if tracing or fr is not None:
                    isolated = self._isolation_flags(
                        nodes_list[:n_act],
                        [nodes_list[pos] for pos in inj_pos],
                    )
                else:
                    isolated = None
            else:
                inj_ids = None
                isolated = None
            if tracing:
                pend_flags = [pos >= n_act for pos in winner_pos]

        # -- apply winner moves and deflections -----------------------------
        if tracing:
            self._apply_traced(
                t, w_pids, w_edges, w_back, w_rev, pend_flags, isolated,
                deflected,
            )
        else:
            violations = 0
            if fr is not None and isolated is not None:
                violations = isolated.count(False)
            self._apply_vectorized(
                t, w_pids, w_edges, w_back, w_rev, inj_ids, violations,
                deflected, any_back, maybe_deliver,
            )

        if fr is not None:
            self._post_step(t, tracing)
        self.t = t + 1
        self.steps_executed += 1

    @staticmethod
    def _isolation_flags(
        act_nodes: List[int], inj_nodes: List[int]
    ) -> List[bool]:
        """Reference isolation test: alone at the node, sole injector."""
        occ: Dict[int, int] = {}
        for nd in act_nodes:
            occ[nd] = occ.get(nd, 0) + 1
        cnt: Dict[int, int] = {}
        for nd in inj_nodes:
            cnt[nd] = cnt.get(nd, 0) + 1
        return [
            occ.get(nd, 0) == 0 and cnt[nd] == 1 for nd in inj_nodes
        ]

    def _match_deflections(self, t, losers_by_node, used_slots, pending_grants):
        """Match losers to free slots (safe in-edges first, Lemma 2.1)."""
        geo = self._geo
        in_edges = geo.in_edges
        in_slot_ids = geo.in_slot_ids
        out_edges = geo.out_edges
        out_slot_ids = geo.out_slot_ids
        safe_by_node: Dict[int, Set[int]] = {}
        sn = self._safe_nodes
        if sn.size:
            for nd, e in zip(sn.tolist(), self._safe_edges.tolist()):
                safe_by_node.setdefault(nd, set()).add(e)
        rng = self.rng
        deflected: List[Tuple[int, int, bool]] = []
        revoked: Optional[Set[int]] = None
        for node, losers in losers_by_node.items():
            if len(losers) > 1:
                rng.shuffle(losers)
            safe_here = safe_by_node.get(node, ())
            needed = len(losers)
            candidates: List[Tuple[int, int, bool]] = []
            node_in = in_edges[node]
            node_in_slots = in_slot_ids[node]
            if safe_here:
                for e, s in zip(node_in, node_in_slots):
                    if e in safe_here and s not in used_slots:
                        candidates.append((e, s, True))
                        if len(candidates) == needed:
                            break
                if len(candidates) < needed:
                    for e, s in zip(node_in, node_in_slots):
                        if e not in safe_here and s not in used_slots:
                            candidates.append((e, s, False))
                            if len(candidates) == needed:
                                break
            else:
                for e, s in zip(node_in, node_in_slots):
                    if s not in used_slots:
                        candidates.append((e, s, False))
                        if len(candidates) == needed:
                            break
            if len(candidates) < needed:
                for e, s in zip(out_edges[node], out_slot_ids[node]):
                    if s not in used_slots:
                        candidates.append((e, s, False))
                        if len(candidates) == needed:
                            break
            node_pending = pending_grants.get(node)
            while len(candidates) < needed and node_pending:
                # Revoke an injection grant at this node and recycle
                # its slot; the pending packet retries later.
                revoke_pid, slot = node_pending.pop()
                if revoked is None:
                    revoked = set()
                revoked.add(revoke_pid)
                used_slots.discard(slot)
                candidates.append((slot >> 1, slot, False))
            if len(candidates) < needed:
                raise CapacityError(
                    f"step {t}: node {node} has {needed} deflected "
                    f"packets but only {len(candidates)} free slots"
                )
            for pid, (edge, slot, safe) in zip(losers, candidates):
                used_slots.add(slot)
                deflected.append((pid, edge, safe))
        return deflected, revoked

    # ----------------------------------------------------- move application

    def _apply_vectorized(
        self, t, w_pids, w_edges, w_back, w_rev, inj_ids, violations,
        deflected, any_back, maybe_deliver,
    ) -> None:
        soa = self.soa
        fr = self.fr

        # Injections (winner order is already the array order).
        if inj_ids is not None:
            soa.status[inj_ids] = _ACTIVE
            soa.injected_at[inj_ids] = t
            elig = self._elig
            self._elig = elig[soa.status[elig] == _PENDING]
            self._act = np.concatenate([self._act, inj_ids])
            self.num_active += int(inj_ids.size)
            self.isolation_violations += violations

        if w_rev is not None and w_rev.any():
            rev_pids = w_pids[w_rev]
            if int(soa.cursor[rev_pids].min()) == 0:
                soa.grow_front()
            soa.cursor[rev_pids] -= 1
            soa.path_buf[rev_pids, soa.cursor[rev_pids]] = w_edges[w_rev]
            soa.cursor[w_pids[~w_rev]] += 1
        else:
            soa.cursor[w_pids] += 1
        if any_back:
            new_nodes = np.where(
                w_back, self._edge_src[w_edges], self._edge_dst[w_edges]
            )
            soa.backward_moves[w_pids[w_back]] += 1
            # REVERSE only happens backward, so forward winner moves are
            # all FOLLOW: the safe backward set E' is exactly ~backward.
            fwd = ~w_back
            self._safe_nodes = new_nodes[fwd]
            self._safe_edges = w_edges[fwd]
            soa.last_direction[w_pids] = w_back
        else:
            new_nodes = self._edge_dst[w_edges]
            fwd = None
            self._safe_nodes = new_nodes
            self._safe_edges = w_edges
            soa.last_direction[w_pids] = 0
        soa.node[w_pids] = new_nodes
        soa.last_edge[w_pids] = w_edges
        soa.moves[w_pids] += 1

        deliv_any = False
        delivered = None
        if maybe_deliver:
            delivered = soa.cursor[w_pids] == soa.width
            deliv_any = bool(delivered.any())
        if deliv_any:
            delivered &= new_nodes == soa.destination[w_pids]
            deliv_any = bool(delivered.any())
        if deliv_any:
            absorbed = w_pids[delivered]
            soa.status[absorbed] = _ABSORBED
            soa.absorbed_at[absorbed] = t + 1
            self.num_active -= int(absorbed.size)
            self.num_absorbed += int(absorbed.size)
            if fr is not None and self._num_excited:
                self._num_excited -= int(
                    (fr.state[absorbed] == _EXCITED).sum()
                )
            act = self._act
            self._act = act[soa.status[act] == _ACTIVE]
        if fr is not None:
            # on_moved: forward path arrivals on the target level wait.
            cand = None
            if self._num_waiting:
                cand = fr.state[w_pids] != _WAIT
            if deliv_any:
                cand = ~delivered if cand is None else cand & ~delivered
            if any_back:
                cand = fwd if cand is None else cand & fwd
            if cand is None:
                go = w_pids.size > 0
                pids, nn, we = w_pids, new_nodes, w_edges
            else:
                go = bool(cand.any())
                if go:
                    pids = w_pids[cand]
                    nn = new_nodes[cand]
                    we = w_edges[cand]
            if go:
                lvl_ok = (
                    self._node_levels[nn]
                    == self._target_by_set[fr.set_index[pids]]
                )
                if lvl_ok.any():
                    entering = pids[lvl_ok]
                    fr.state[entering] = _WAIT
                    fr.wait_node[entering] = nn[lvl_ok]
                    fr.wait_edge[entering] = we[lvl_ok]
                    self.wait_entries += int(entering.size)
                    self._num_waiting += int(entering.size)

        if deflected:
            self._apply_deflections(t, deflected, tracing=False)

    def _apply_traced(
        self, t, w_pids, w_edges, w_back, w_rev, pend_flags, isolated_flags,
        deflected,
    ) -> None:
        """Scalar application in reference order, emitting every event."""
        soa = self.soa
        fr = self.fr
        emit = self.emit
        self._safe_nodes = self._empty
        self._safe_edges = self._empty
        inj_seen = 0
        for i in range(len(w_pids)):
            pid = int(w_pids[i])
            edge = int(w_edges[i])
            backward = bool(w_back[i])
            rev = bool(w_rev[i]) if w_rev is not None else False
            if pend_flags[i]:
                isolated = bool(isolated_flags[inj_seen])
                inj_seen += 1
                soa.status[pid] = _ACTIVE
                soa.injected_at[pid] = t
                self._elig = self._elig[self._elig != pid]
                self._act = np.concatenate(
                    [self._act, np.asarray([pid], dtype=np.int64)]
                )
                self.num_active += 1
                emit(
                    TraceEvent(
                        t,
                        EventKind.INJECT,
                        packet=pid,
                        node=int(soa.node[pid]),
                        detail="isolated" if isolated else "crowded",
                    )
                )
                if fr is not None and not isolated:
                    self.isolation_violations += 1
            if rev:
                c = int(soa.cursor[pid])
                if c == 0:
                    soa.grow_front()
                    c = int(soa.cursor[pid])
                soa.cursor[pid] = c - 1
                soa.path_buf[pid, c - 1] = edge
            else:
                soa.cursor[pid] += 1
            if backward:
                soa.node[pid] = self._edge_src[edge]
                soa.backward_moves[pid] += 1
                direction = Direction.BACKWARD
            else:
                soa.node[pid] = self._edge_dst[edge]
                direction = Direction.FORWARD
            soa.last_edge[pid] = edge
            soa.last_direction[pid] = int(backward)
            soa.moves[pid] += 1
            if not backward and not rev:
                self._safe_nodes = np.concatenate(
                    [self._safe_nodes, soa.node[pid: pid + 1]]
                )
                self._safe_edges = np.concatenate(
                    [self._safe_edges, np.asarray([edge], dtype=np.int64)]
                )
            emit(
                TraceEvent(
                    t,
                    EventKind.MOVE,
                    packet=pid,
                    node=int(soa.node[pid]),
                    edge=edge,
                    direction=direction,
                )
            )
            if soa.cursor[pid] == soa.width and soa.node[pid] == soa.destination[pid]:
                self._absorb_scalar(t, pid)
            elif fr is not None:
                st = int(fr.state[pid])
                if st != _WAIT and not backward:
                    level = int(self._node_levels[soa.node[pid]])
                    if level == int(
                        self._target_by_set[int(fr.set_index[pid])]
                    ):
                        old = _STATE_NAMES[st]
                        self._enter_wait_scalar(pid)
                        self._emit_state(t, pid, f"{old}->wait")
        if deflected:
            self._apply_deflections(t, deflected, tracing=True)

    def _absorb_scalar(self, t: int, pid: int) -> None:
        soa = self.soa
        soa.status[pid] = _ABSORBED
        soa.absorbed_at[pid] = t + 1
        self.num_active -= 1
        self.num_absorbed += 1
        fr = self.fr
        if fr is not None and int(fr.state[pid]) == _EXCITED:
            # keep the occupancy counter exact across absorptions
            self._num_excited -= 1
        self._act = self._act[self._act != pid]
        if self.tracing:
            self.emit(
                TraceEvent(
                    t, EventKind.ABSORB, packet=pid, node=int(soa.node[pid])
                )
            )

    def _apply_deflections(self, t, deflected, tracing: bool) -> None:
        soa = self.soa
        fr = self.fr
        if not tracing:
            # Order inside the batch is free: each packet deflects at most
            # once per step and the counters are additive.
            pids = np.asarray([d[0] for d in deflected], dtype=np.int64)
            eidx = np.asarray([d[1] for d in deflected], dtype=np.int64)
            unsafe = np.asarray([not d[2] for d in deflected], dtype=bool)
            c = soa.cursor[pids]
            if int(c.min()) == 0:
                soa.grow_front()
                c = soa.cursor[pids]
            soa.cursor[pids] = c - 1
            soa.path_buf[pids, c - 1] = eidx
            src = self._edge_src[eidx]
            back = soa.node[pids] != src
            soa.node[pids] = np.where(back, src, self._edge_dst[eidx])
            soa.last_direction[pids] = back
            soa.backward_moves[pids] += back
            soa.last_edge[pids] = eidx
            soa.moves[pids] += 1
            soa.deflections[pids] += 1
            n_unsafe = int(unsafe.sum())
            if n_unsafe:
                soa.unsafe_deflections[pids] += unsafe
                self.unsafe_deflections += n_unsafe
            if fr is not None and (self._num_waiting or self._num_excited):
                st = fr.state[pids]
                waiting = pids[st == _WAIT]
                if waiting.size:
                    fr.state[waiting] = _NORMAL
                    fr.wait_node[waiting] = -1
                    fr.wait_edge[waiting] = -1
                    self.wait_evictions += int(waiting.size)
                    self._num_waiting -= int(waiting.size)
                excited = pids[st == _EXCITED]
                if excited.size:
                    fr.state[excited] = _NORMAL
                    self._num_excited -= int(excited.size)
            return
        for pid, edge, safe in deflected:
            c = int(soa.cursor[pid])
            if c == 0:
                soa.grow_front()
                c = int(soa.cursor[pid])
            soa.cursor[pid] = c - 1
            soa.path_buf[pid, c - 1] = edge
            if soa.node[pid] == self._edge_src[edge]:
                soa.node[pid] = self._edge_dst[edge]
                soa.last_direction[pid] = 0
                direction = Direction.FORWARD
            else:
                soa.node[pid] = self._edge_src[edge]
                soa.last_direction[pid] = 1
                soa.backward_moves[pid] += 1
                direction = Direction.BACKWARD
            soa.last_edge[pid] = edge
            soa.moves[pid] += 1
            soa.deflections[pid] += 1
            if not safe:
                soa.unsafe_deflections[pid] += 1
                self.unsafe_deflections += 1
            if tracing:
                self.emit(
                    TraceEvent(
                        t,
                        EventKind.DEFLECT if safe else EventKind.UNSAFE_DEFLECT,
                        packet=pid,
                        node=int(soa.node[pid]),
                        edge=edge,
                        direction=direction,
                    )
                )
            # Path routers never deliver by deflection: the prepend leaves
            # the current path non-empty, so the delivery check is skipped.
            if fr is not None:
                st = int(fr.state[pid])
                if st == _WAIT:
                    fr.state[pid] = _NORMAL
                    fr.wait_node[pid] = -1
                    fr.wait_edge[pid] = -1
                    self.wait_evictions += 1
                    self._num_waiting -= 1
                    if tracing:
                        self._emit_state(t, pid, "wait->normal")
                elif st == _EXCITED:
                    fr.state[pid] = _NORMAL
                    self._num_excited -= 1
                    if tracing:
                        self._emit_state(t, pid, "excited->normal")

    # ---------------------------------------------------------- fast-forward

    def _quiescent_horizon(self, t: int) -> Optional[int]:
        """Pointer port of ``FrontierFrameRouter.quiescent_horizon``.

        With eligibility empty, every pending packet's injection phase is
        still unmarked, so the minimum pending phase is the phase cursor's
        current key — no array scan needed.
        """
        if self._elig.size:
            return None
        if self._held:
            # Held marks are due injections the phase cursor no longer
            # tracks; the reference router returns None for them too.
            return None
        keys = self._phase_keys
        idx = self._next_phase_idx
        pending_phase = keys[idx] if idx < len(keys) else None
        current_phase = t // self._spp
        if pending_phase is not None and pending_phase <= current_phase:
            return None
        act = self._act
        if not act.size:
            if pending_phase is None:
                return None
            return pending_phase * self._spp
        fr = self.fr
        st = fr.state[act]
        if int(st.max()) != _WAIT:  # states are >= _WAIT, so max==WAIT <=> all
            return None
        soa = self.soa
        osc = fr.wait_edge[act] * 2 + (soa.node[act] == fr.wait_node[act])
        if np.unique(osc).size != act.size:
            return None  # pragma: no cover - theory says impossible
        return (current_phase + 1) * self._spp

    def _advance_span(self, t: int, target: int) -> None:
        """Analytically apply ``target - t`` quiescent oscillation steps.

        Mirrors ``FrontierFrameRouter.fast_forward``: every active packet
        (all in wait state) oscillates once per step; odd spans toggle it
        across its wait edge.
        """
        k = target - t
        fr = self.fr
        soa = self.soa
        act = self._act
        if not act.size:
            self._safe_nodes = self._empty
            self._safe_edges = self._empty
            return
        at_wait = soa.node[act] == fr.wait_node[act]
        backward_total = np.where(at_wait, (k + 1) // 2, k // 2)
        if k % 2:
            we = fr.wait_edge[act]
            leaving = act[at_wait]
            if leaving.size:
                if (soa.cursor[leaving] == 0).any():
                    soa.grow_front()
                soa.cursor[leaving] -= 1
                soa.path_buf[leaving, soa.cursor[leaving]] = fr.wait_edge[leaving]
                soa.node[leaving] = self._edge_src[fr.wait_edge[leaving]]
                soa.last_direction[leaving] = 1
            returning = act[~at_wait]
            if returning.size:
                soa.cursor[returning] += 1
                soa.node[returning] = self._edge_dst[fr.wait_edge[returning]]
                soa.last_direction[returning] = 0
            soa.last_edge[act] = we
        soa.moves[act] += k
        soa.backward_moves[act] += backward_total
        ended_at_wait = soa.node[act] == fr.wait_node[act]
        self._safe_nodes = fr.wait_node[act][ended_at_wait]
        self._safe_edges = fr.wait_edge[act][ended_at_wait]

    def _try_fast_forward(self) -> None:
        """Reference-equivalent quiescence skip (fast-forward enabled)."""
        horizon = self._quiescent_horizon(self.t)
        if horizon is None:
            return
        target = horizon - 1  # simulate the boundary step normally
        k = target - self.t
        if k <= 0:
            return
        self._advance_span(self.t, target)
        if self.tracing:
            self.emit(
                TraceEvent(
                    self.t,
                    EventKind.FAST_FORWARD,
                    detail=f"skipped {k} steps to {target}",
                )
            )
        self.t = target
        self.steps_skipped += k

    def _try_bulk_advance(self, max_steps: int) -> None:
        """Quiescent span as *executed* steps (fast-forward disabled).

        The reference engine would step through the span one no-RNG,
        no-event step at a time; the closed form lands on the same state,
        so the span is applied analytically and booked as executed steps.
        Only taken when untraced (a traced reference run emits per-step
        events inside the span).
        """
        horizon = self._quiescent_horizon(self.t)
        if horizon is None:
            return
        target = min(horizon - 1, max_steps)
        k = target - self.t
        if k <= 0:
            return
        self._advance_span(self.t, target)
        # The reference executes every phase-start step in the span,
        # tracking the current phase; match the value after the span's
        # last executed step (``target - 1``; step ``target`` runs
        # normally next, or not at all when clamped to the budget).
        phase = (target - 1) // self._spp
        if phase > self._current_phase:
            self._current_phase = phase
        self.t = target
        self.steps_executed += k

    # ------------------------------------------------------------------- run

    @property
    def done(self) -> bool:
        """All packets absorbed."""
        return self.num_absorbed == self.soa.num_packets

    def run(self, max_steps: int) -> RunResult:
        """Run until delivery or the step budget; return metrics."""
        timer = self._step_timer
        frontier = self.fr is not None
        bulk = frontier and not self._enable_fast_forward and not self.tracing
        if timer is None:
            while not self.done and self.t < max_steps:
                if frontier and self._enable_fast_forward:
                    self._try_fast_forward()
                elif bulk:
                    self._try_bulk_advance(max_steps)
                    if self.t >= max_steps:
                        break
                self.step()
        else:
            from time import perf_counter

            add_step = timer.add_step
            while not self.done and self.t < max_steps:
                if frontier and self._enable_fast_forward:
                    self._try_fast_forward()
                elif bulk:
                    self._try_bulk_advance(max_steps)
                    if self.t >= max_steps:
                        break
                start = perf_counter()
                self.step()
                add_step(perf_counter() - start)
        return self.result()

    def result(self) -> RunResult:
        """Snapshot the metrics of the run so far (reference-identical)."""
        soa = self.soa
        absorbed_at = soa.absorbed_at
        if self.done:
            makespan = int(absorbed_at.max()) if soa.num_packets else self.t
        else:
            makespan = self.t
        delivery_times = [
            a if a >= 0 else None for a in absorbed_at.tolist()
        ]
        extra: Dict[str, float] = {}
        if self.fr is not None:
            extra = {
                "num_sets": float(self._num_sets),
                "m": float(self._m),
                "w": float(self._w),
                "q": float(self._q),
                "excitations": float(self.excitations),
                "wait_entries": float(self.wait_entries),
                "wait_evictions": float(self.wait_evictions),
                "phase_releases": float(self.phase_releases),
                "isolation_violations": float(self.isolation_violations),
                "phases_elapsed": float(self._current_phase + 1),
            }
        return RunResult(
            router_name=self.router_name,
            network_name=self.net.name,
            num_packets=soa.num_packets,
            congestion=self.problem.congestion,
            dilation=self.problem.dilation,
            depth=self.net.depth,
            delivered=self.num_absorbed,
            makespan=makespan,
            steps_executed=self.steps_executed,
            steps_skipped=self.steps_skipped,
            delivery_times=delivery_times,
            deflections_per_packet=soa.deflections.tolist(),
            unsafe_deflections=self.unsafe_deflections,
            total_moves=int(soa.moves.sum()),
            total_backward_moves=int(soa.backward_moves.sum()),
            extra=extra,
        )


__all__ = [
    "VecEngine",
    "VectorBackendUnavailable",
    "numpy_available",
    "require_numpy",
]
