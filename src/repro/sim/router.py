"""The router protocol: algorithm-specific behavior plugged into the engine.

The engine owns the mechanics every hot-potato algorithm shares — slot
capacities, conflict arbitration, deflection slot matching, path
bookkeeping, absorption — while a :class:`Router` supplies the policy: when
packets are injected, which move each packet wants, packet priorities, and
state transitions on moves/deflections/step boundaries.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..types import EdgeId, MoveKind, PacketId

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Engine


@dataclass(frozen=True)
class DesiredMove:
    """A packet's requested move for the current step.

    ``edge`` must be incident to the packet's current node; the traversal
    direction is implied by which endpoint the packet is at.  ``kind``
    selects the bookkeeping applied if the move is granted
    (:class:`~repro.types.MoveKind`).
    """

    edge: EdgeId
    kind: MoveKind


class Router(abc.ABC):
    """Base class for routing policies."""

    #: Engine backreference, set by :meth:`attach`.
    engine: "Engine"

    def attach(self, engine: "Engine") -> None:
        """Called once by the engine before the first step."""
        self.engine = engine

    # ------------------------------------------------------------ lifecycle

    def pre_step(self, t: int) -> None:
        """Start-of-step hook: injections become eligible, coins are flipped."""

    def post_step(self, t: int) -> None:
        """End-of-step hook: round/phase boundary state transitions."""

    # --------------------------------------------------------------- policy

    @abc.abstractmethod
    def desired_move(self, packet_id: PacketId, t: int) -> DesiredMove:
        """The move the packet wants this step (it may be denied)."""

    def priority(self, packet_id: PacketId, t: int) -> int:
        """Conflict priority; higher wins.  Default: all equal."""
        return 0

    def is_delivered(self, packet_id: PacketId) -> bool:
        """Whether the packet should be absorbed at its current node.

        Default: the current path is exhausted (path-following routers).
        Path-less routers override to ``node == destination``.
        """
        packet = self.engine.packets[packet_id]
        return not packet.path and packet.node == packet.destination

    # ------------------------------------------------------------ callbacks

    def on_injected(self, packet_id: PacketId, t: int, in_isolation: bool) -> None:
        """The packet entered the network this step."""

    def on_moved(self, packet_id: PacketId, t: int, edge: EdgeId) -> None:
        """The packet's *desired* move was granted."""

    def on_deflected(
        self, packet_id: PacketId, t: int, edge: EdgeId, safe: bool
    ) -> None:
        """The packet lost its conflict and was sent on ``edge`` instead."""

    # --------------------------------------------------------- fast-forward

    def quiescent_horizon(self, t: int) -> Optional[int]:
        """If the steps ``t .. horizon-1`` are deterministic oscillation,
        return ``horizon``; otherwise ``None``.

        Routers without a wait concept simply return ``None`` (the default),
        disabling fast-forward.
        """
        return None

    def fast_forward(self, t_from: int, t_to: int) -> None:
        """Apply boundary bookkeeping for a skipped interval.

        Only called with an interval previously approved by
        :meth:`quiescent_horizon`.
        """
        raise NotImplementedError
