"""The ``Counters`` observer: structured statistics from engine events.

Counters subscribe to the engine's event stream (the same zero-cost hook
used by tracers and the invariant auditor) and accumulate exactly the
quantities the paper's analysis talks about:

* deflections split by kind — safe backward (``DEFLECT``, Lemma 2.1's
  edge set ``E'``) vs unsafe (``UNSAFE_DEFLECT``, which invariant ``I_b``
  says the paper's algorithm never needs);
* absorptions and injections (isolated vs crowded — invariant ``I_a``);
* state transitions of the ``normal / excited / wait`` machine
  (Section 3), keyed ``"old->new"``;
* per-phase/per-round activity for the frontier-frame schedule
  (Section 2.1), bucketed by the ``PHASE_START`` / ``ROUND_START`` events
  the :class:`~repro.core.FrontierFrameRouter` emits while traced;
* fast-forwarded vs executed steps (DESIGN.md Section 4.7);
* per-level peak occupancy — how many packets simultaneously sat on each
  network level, the empirical face of congestion.

Everything counted is a pure function of the event stream, which is itself
a pure function of the run's seeds — so counters are **deterministic
across worker counts and machines**, unlike wall-clock timings, and may be
attached to :class:`~repro.sim.RunResult` without breaking the
serial-vs-parallel byte-identity invariant (pinned by
``tests/test_telemetry.py``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..sim.events import EventKind, TraceEvent

COUNTERS_SCHEMA = 1

#: Fields of one per-phase bucket, in stable render order.
PHASE_FIELDS = (
    "rounds",
    "injections",
    "moves",
    "deflections",
    "unsafe_deflections",
    "absorptions",
    "wait_entries",
    "excitations",
)


def _new_phase_bucket() -> Dict[str, int]:
    return {field: 0 for field in PHASE_FIELDS}


class Counters:
    """Event observer accumulating run statistics (see module docstring).

    ``node_levels`` (node id -> level) enables per-level occupancy
    tracking; it is bound automatically from the engine's geometry when a
    telemetry session attaches the counters, and may be omitted when
    replaying a trace offline (occupancy is then skipped).
    """

    def __init__(self, node_levels: Optional[Sequence[int]] = None) -> None:
        self.node_levels = node_levels
        self.events_total = 0
        self.by_kind: Dict[str, int] = {}
        self.injections = {"isolated": 0, "crowded": 0}
        self.moves = {"forward": 0, "backward": 0}
        self.deflections = {"safe": 0, "unsafe": 0}
        self.absorptions = 0
        self.state_transitions: Dict[str, int] = {}
        self.fast_forwards = 0
        self.steps_fast_forwarded = 0
        self.phases_seen = 0
        self.rounds_seen = 0
        self.first_event_time: Optional[int] = None
        self.last_event_time: Optional[int] = None
        #: per-phase activity buckets, keyed by phase index
        self.per_phase: Dict[int, Dict[str, int]] = {}
        self._phase: Optional[int] = None
        #: live per-packet level and per-level occupancy (needs node_levels)
        self._packet_level: Dict[int, int] = {}
        self._occupancy: Dict[int, int] = {}
        self.level_peaks: Dict[int, int] = {}

    # ------------------------------------------------------------- binding

    def bind(self, engine) -> None:
        """Adopt an engine's node->level table (first engine wins)."""
        if self.node_levels is None:
            self.node_levels = engine.net.geometry().node_levels

    # ------------------------------------------------------------ observer

    def on_event(self, event: TraceEvent) -> None:
        """Observer hook: fold one event into the counters."""
        self.events_total += 1
        kind = event.kind
        key = kind.value
        self.by_kind[key] = self.by_kind.get(key, 0) + 1
        if self.first_event_time is None:
            self.first_event_time = event.time
        self.last_event_time = event.time
        bucket = (
            self.per_phase.get(self._phase) if self._phase is not None else None
        )

        if kind is EventKind.MOVE:
            direction = "backward" if event.direction else "forward"
            self.moves[direction] += 1
            if bucket is not None:
                bucket["moves"] += 1
            self._occupy(event.packet, event.node)
        elif kind is EventKind.DEFLECT or kind is EventKind.UNSAFE_DEFLECT:
            safe = kind is EventKind.DEFLECT
            self.deflections["safe" if safe else "unsafe"] += 1
            if bucket is not None:
                bucket["deflections"] += 1
                if not safe:
                    bucket["unsafe_deflections"] += 1
            self._occupy(event.packet, event.node)
        elif kind is EventKind.ABSORB:
            self.absorptions += 1
            if bucket is not None:
                bucket["absorptions"] += 1
            self._vacate(event.packet)
        elif kind is EventKind.INJECT:
            label = "isolated" if event.detail == "isolated" else "crowded"
            self.injections[label] += 1
            if bucket is not None:
                bucket["injections"] += 1
            self._occupy(event.packet, event.node)
        elif kind is EventKind.STATE:
            transition = event.detail or "?"
            self.state_transitions[transition] = (
                self.state_transitions.get(transition, 0) + 1
            )
            if bucket is not None:
                if transition.endswith("->wait"):
                    bucket["wait_entries"] += 1
                elif transition == "normal->excited":
                    bucket["excitations"] += 1
        elif kind is EventKind.PHASE_START:
            phase = int(event.detail) if event.detail else 0
            self._phase = phase
            self.phases_seen += 1
            self.per_phase.setdefault(phase, _new_phase_bucket())
        elif kind is EventKind.ROUND_START:
            self.rounds_seen += 1
            if bucket is not None:
                bucket["rounds"] += 1
        elif kind is EventKind.FAST_FORWARD:
            self.fast_forwards += 1
            # detail schema: "skipped {k} steps to {target}" (engine-owned).
            if event.detail:
                try:
                    self.steps_fast_forwarded += int(event.detail.split()[1])
                except (IndexError, ValueError):
                    pass

    # ----------------------------------------------------------- occupancy

    def _occupy(self, packet: Optional[int], node: Optional[int]) -> None:
        levels = self.node_levels
        if levels is None or packet is None or node is None:
            return
        level = levels[node]
        previous = self._packet_level.get(packet)
        if previous == level:
            return
        if previous is not None:
            self._occupancy[previous] -= 1
        self._packet_level[packet] = level
        now = self._occupancy.get(level, 0) + 1
        self._occupancy[level] = now
        if now > self.level_peaks.get(level, 0):
            self.level_peaks[level] = now

    def _vacate(self, packet: Optional[int]) -> None:
        level = self._packet_level.pop(packet, None)
        if level is not None:
            self._occupancy[level] -= 1

    # --------------------------------------------------------------- views

    @property
    def total_deflections(self) -> int:
        """Safe plus unsafe deflection events."""
        return self.deflections["safe"] + self.deflections["unsafe"]

    def to_dict(self) -> dict:
        """JSON-safe snapshot (the form attached to ``RunResult.telemetry``).

        Nested keys are strings (JSON object keys), values plain ints; two
        runs of the same spec produce equal dicts at any worker count.
        """
        return {
            "schema": COUNTERS_SCHEMA,
            "runs": 1,
            "events_total": self.events_total,
            "by_kind": {k: self.by_kind[k] for k in sorted(self.by_kind)},
            "injections": dict(self.injections),
            "moves": dict(self.moves),
            "deflections": dict(self.deflections),
            "absorptions": self.absorptions,
            "state_transitions": {
                k: self.state_transitions[k]
                for k in sorted(self.state_transitions)
            },
            "fast_forwards": self.fast_forwards,
            "steps_fast_forwarded": self.steps_fast_forwarded,
            "phases_seen": self.phases_seen,
            "rounds_seen": self.rounds_seen,
            "first_event_time": self.first_event_time,
            "last_event_time": self.last_event_time,
            "level_peaks": {
                str(level): self.level_peaks[level]
                for level in sorted(self.level_peaks)
            },
            "per_phase": {
                str(phase): dict(self.per_phase[phase])
                for phase in sorted(self.per_phase)
            },
        }

    @classmethod
    def replay(
        cls,
        events: Iterable[TraceEvent],
        node_levels: Optional[Sequence[int]] = None,
    ) -> "Counters":
        """Rebuild counters offline from a (loaded) event stream."""
        counters = cls(node_levels=node_levels)
        for event in events:
            counters.on_event(event)
        return counters


def counters_digest(snapshot: Optional[dict]) -> Optional[dict]:
    """Verdict-sized digest of a (possibly aggregated) counters snapshot.

    The parameter tuner folds a whole sweep's telemetry into one
    aggregated snapshot (:func:`aggregate_counters` via the sweep
    engine's :class:`~repro.sweeps.StreamingAggregate`) and keeps only
    the safety-relevant slice per candidate: the deflection safety
    split and the peak simultaneous per-level occupancy.  Returns
    ``None`` for ``None`` input so untelemetered sweeps degrade
    gracefully.
    """
    if not snapshot:
        return None
    deflections = snapshot.get("deflections", {})
    level_peaks = snapshot.get("level_peaks", {})
    peak = max((int(v) for v in level_peaks.values()), default=0)
    return {
        "runs": int(snapshot.get("runs", 1)),
        "events_total": int(snapshot.get("events_total", 0)),
        "deflections_safe": int(deflections.get("safe", 0)),
        "deflections_unsafe": int(deflections.get("unsafe", 0)),
        "occupancy_peak": peak,
        "phases_seen": int(snapshot.get("phases_seen", 0)),
    }


def aggregate_counters(snapshots: Sequence[Optional[dict]]) -> Optional[dict]:
    """Merge per-trial counter snapshots (sweep aggregation).

    Additive fields sum across trials; ``level_peaks`` and
    ``phases_seen``/``rounds_seen`` take the per-trial maximum (a peak over
    independent runs, not a sum); ``per_phase`` buckets sum phase-wise.
    ``None`` entries (trials without telemetry) are skipped; returns None
    when nothing remains.
    """
    snaps: List[dict] = [s for s in snapshots if s]
    if not snaps:
        return None
    out = {
        "schema": COUNTERS_SCHEMA,
        "runs": 0,
        "events_total": 0,
        "by_kind": {},
        "injections": {"isolated": 0, "crowded": 0},
        "moves": {"forward": 0, "backward": 0},
        "deflections": {"safe": 0, "unsafe": 0},
        "absorptions": 0,
        "state_transitions": {},
        "fast_forwards": 0,
        "steps_fast_forwarded": 0,
        "phases_seen": 0,
        "rounds_seen": 0,
        "first_event_time": None,
        "last_event_time": None,
        "level_peaks": {},
        "per_phase": {},
    }
    for snap in snaps:
        out["runs"] += snap.get("runs", 1)
        for field in (
            "events_total",
            "absorptions",
            "fast_forwards",
            "steps_fast_forwarded",
        ):
            out[field] += snap.get(field, 0)
        for field in ("phases_seen", "rounds_seen"):
            out[field] = max(out[field], snap.get(field, 0))
        for field in ("injections", "moves", "deflections"):
            for key, value in snap.get(field, {}).items():
                out[field][key] = out[field].get(key, 0) + value
        for field in ("by_kind", "state_transitions"):
            for key, value in snap.get(field, {}).items():
                out[field][key] = out[field].get(key, 0) + value
        for level, peak in snap.get("level_peaks", {}).items():
            out["level_peaks"][level] = max(
                out["level_peaks"].get(level, 0), peak
            )
        for phase, bucket in snap.get("per_phase", {}).items():
            merged = out["per_phase"].setdefault(phase, _new_phase_bucket())
            for key, value in bucket.items():
                merged[key] = merged.get(key, 0) + value
        for field, pick in (("first_event_time", min), ("last_event_time", max)):
            value = snap.get(field)
            if value is not None:
                current = out[field]
                out[field] = value if current is None else pick(current, value)
    out["by_kind"] = {k: out["by_kind"][k] for k in sorted(out["by_kind"])}
    out["state_transitions"] = {
        k: out["state_transitions"][k] for k in sorted(out["state_transitions"])
    }
    out["level_peaks"] = {
        k: out["level_peaks"][k]
        for k in sorted(out["level_peaks"], key=int)
    }
    out["per_phase"] = {
        k: out["per_phase"][k] for k in sorted(out["per_phase"], key=int)
    }
    return out
