"""JSONL trace export: stream engine events to a (compressed) file.

One JSON object per line, in three flavors distinguished by shape:

* **header** (first line, optional) —
  ``{"kind": "trace_header", "format": 1, ...run metadata...}``;
* **event** (the stream) — compact keys, ``None`` fields omitted::

      {"t": 3, "k": "deflect", "p": 5, "n": 12, "e": 31, "d": 1}

  ``t`` time, ``k`` :class:`~repro.sim.EventKind` value, ``p`` packet id,
  ``n`` node id, ``e`` edge id, ``d`` direction (0 forward / 1 backward),
  ``x`` detail string;
* **footer** (last line, optional) —
  ``{"kind": "trace_footer", "events": ..., ...outcome...}``.

Paths ending in ``.gz`` are gzip-compressed transparently (the recommended
form — event streams compress ~10x).  :func:`load_trace` round-trips the
stream event-for-event back into :class:`~repro.sim.TraceEvent` objects
(pinned by ``tests/test_telemetry.py``), so traces are a stable offline
interchange format: export once, analyze anywhere — including
``python -m repro report trace.jsonl.gz`` which replays a trace through
:class:`~repro.telemetry.Counters` without touching the simulator.
"""

from __future__ import annotations

import gzip
import json
import pathlib
from dataclasses import dataclass, field
from typing import IO, List, Optional, Union

from ..errors import ReproError
from ..sim.events import EventKind, TraceEvent
from ..types import Direction

PathLike = Union[str, pathlib.Path]

TRACE_FORMAT = 1

#: File suffixes recognized as traces by ``repro report``.
TRACE_SUFFIXES = (".jsonl", ".jsonl.gz", ".ndjson", ".ndjson.gz")


def _open_text(path: pathlib.Path, mode: str) -> IO[str]:
    if path.name.endswith(".gz"):
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def event_to_obj(event: TraceEvent) -> dict:
    """Compact JSON-object form of one event (``None`` fields omitted)."""
    obj: dict = {"t": event.time, "k": event.kind.value}
    if event.packet is not None:
        obj["p"] = event.packet
    if event.node is not None:
        obj["n"] = event.node
    if event.edge is not None:
        obj["e"] = event.edge
    if event.direction is not None:
        obj["d"] = int(event.direction)
    if event.detail is not None:
        obj["x"] = event.detail
    return obj


def event_from_obj(obj: dict) -> TraceEvent:
    """Inverse of :func:`event_to_obj`."""
    direction = obj.get("d")
    return TraceEvent(
        time=obj["t"],
        kind=EventKind(obj["k"]),
        packet=obj.get("p"),
        node=obj.get("n"),
        edge=obj.get("e"),
        direction=None if direction is None else Direction(direction),
        detail=obj.get("x"),
    )


class JsonlTraceSink:
    """Event observer streaming every event to a JSONL file.

    The sink writes incrementally (no in-memory event list), so it scales
    to arbitrarily long runs; call :meth:`close` (or use the telemetry
    session, which closes it) to flush.  ``header`` metadata, if provided
    before the first event via :meth:`write_header`, becomes the file's
    first line.
    """

    def __init__(self, path: PathLike) -> None:
        self.path = pathlib.Path(path)
        if self.path.parent and not self.path.parent.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh: Optional[IO[str]] = _open_text(self.path, "w")
        self.events_written = 0
        self._header_written = False
        self._footer_written = False

    def write_header(self, info: dict) -> None:
        """Write the metadata header line (once, before any event)."""
        if self._header_written or self.events_written:
            return
        record = {"kind": "trace_header", "format": TRACE_FORMAT, **info}
        self._write(record)
        self._header_written = True

    def on_event(self, event: TraceEvent) -> None:
        """Observer hook: append one event line."""
        self._write(event_to_obj(event))
        self.events_written += 1

    def write_footer(self, info: Optional[dict] = None) -> None:
        """Write the closing summary line (once)."""
        if self._footer_written or self._fh is None:
            return
        record = {"kind": "trace_footer", "events": self.events_written}
        if info:
            record.update(info)
        self._write(record)
        self._footer_written = True

    def close(self) -> None:
        """Flush and close the file (footer included if not yet written)."""
        if self._fh is None:
            return
        self.write_footer()
        self._fh.close()
        self._fh = None

    def _write(self, obj: dict) -> None:
        if self._fh is None:
            raise ReproError(f"trace sink {self.path} is closed")
        self._fh.write(json.dumps(obj, separators=(",", ":")) + "\n")

    def __enter__(self) -> "JsonlTraceSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@dataclass
class TraceFile:
    """A loaded trace: metadata header, event stream, outcome footer."""

    path: str
    header: Optional[dict] = None
    footer: Optional[dict] = None
    events: List[TraceEvent] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        """Whether the footer is present and agrees with the event count."""
        return (
            self.footer is not None
            and self.footer.get("events") == len(self.events)
        )


def load_trace(path: PathLike) -> TraceFile:
    """Load a JSONL trace written by :class:`JsonlTraceSink`.

    Round-trips event-for-event: ``load_trace(p).events`` equals the
    sequence the sink observed.  Raises :class:`~repro.errors.ReproError`
    on malformed lines (truncated tails from crashed runs included).
    """
    target = pathlib.Path(path)
    if not target.exists():
        raise ReproError(f"trace file not found: {target}")
    trace = TraceFile(path=str(target))
    with _open_text(target, "r") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ReproError(
                    f"{target}:{lineno}: not valid JSON ({exc})"
                ) from exc
            kind = obj.get("kind")
            if kind == "trace_header":
                trace.header = obj
            elif kind == "trace_footer":
                trace.footer = obj
            else:
                try:
                    trace.events.append(event_from_obj(obj))
                except (KeyError, ValueError) as exc:
                    raise ReproError(
                        f"{target}:{lineno}: malformed event line ({exc})"
                    ) from exc
    return trace


def is_trace_path(path: PathLike) -> bool:
    """Whether a path looks like a JSONL trace file (by suffix)."""
    name = pathlib.Path(path).name
    return any(name.endswith(suffix) for suffix in TRACE_SUFFIXES)
