"""``repro report``: render a run summary from artifacts, not re-runs.

The reporter consumes any of the observability artifacts the pipeline
produces — a spec file (looked up in the result cache by content hash), a
bare 16-hex spec hash, a cached scenario record, a saved
:class:`~repro.sim.RunResult` JSON, or a JSONL trace (replayed through
:class:`~repro.telemetry.Counters`) — and renders the same report: outcome
vs the ``C + D`` lower bound, the deflection breakdown, the per-phase
timeline, level occupancy peaks, and wall-clock spans.  Nothing here ever
runs the simulator.
"""

from __future__ import annotations

import json
import pathlib
import re
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Union

from ..errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..sim import RunResult

# The renderer's table helpers live in repro.analysis, which (transitively)
# imports repro.sim — the package this module is imported *from* (the engine
# pulls in repro.telemetry.context at class-definition time).  Import them
# lazily to keep the telemetry package importable from anywhere.

PathLike = Union[str, pathlib.Path]

_HASH_RE = re.compile(r"^[0-9a-f]{16}$")


@dataclass
class ReportSource:
    """Everything the renderer may have about one run (fields optional)."""

    label: str
    result: Optional["RunResult"] = None
    counters: Optional[dict] = None
    timings: Optional[dict] = None
    header: Optional[dict] = None
    footer: Optional[dict] = None
    spec_summary: Optional[str] = None


# ----------------------------------------------------------------- resolve


def _cache(cache_dir):
    from ..scenarios.cache import ResultCache

    if cache_dir is None:
        return ResultCache.default()
    return ResultCache(cache_dir)


def _from_cache_payload(payload: dict, label: str) -> ReportSource:
    from ..io import result_from_dict
    from ..scenarios.spec import RunSpec

    result = result_from_dict(payload["result"])
    spec_summary = None
    if payload.get("spec"):
        try:
            spec_summary = RunSpec.from_dict(payload["spec"]).describe()
        except ReproError:
            spec_summary = None
    return ReportSource(
        label=label,
        result=result,
        counters=result.telemetry,
        timings=payload.get("timings"),
        spec_summary=spec_summary,
    )


def _from_spec(spec, cache_dir, label: str) -> ReportSource:
    cache = _cache(cache_dir)
    payload = cache.load_payload(spec.content_hash())
    if payload is None:
        raise ReproError(
            f"no cached result for spec {spec.content_hash()} in "
            f"{cache.root}; run it first: "
            "python -m repro run --spec <file> --cache"
        )
    source = _from_cache_payload(payload, label)
    source.spec_summary = spec.describe()
    return source


def _from_trace(path: pathlib.Path) -> ReportSource:
    from .counters import Counters
    from .trace import load_trace

    trace = load_trace(path)
    counters = Counters.replay(trace.events)
    return ReportSource(
        label=f"trace {path}",
        counters=counters.to_dict(),
        header=trace.header,
        footer=trace.footer,
    )


def resolve_source(
    target: str, cache_dir: Optional[PathLike] = None
) -> ReportSource:
    """Turn a CLI target (path or spec hash) into a :class:`ReportSource`."""
    from ..io import result_from_dict
    from ..scenarios.spec import RunSpec
    from .trace import is_trace_path

    path = pathlib.Path(target)
    if path.exists():
        if is_trace_path(path):
            return _from_trace(path)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ReproError(f"cannot read {path}: {exc}") from exc
        kind = payload.get("kind")
        if kind == "run_spec":
            return _from_spec(
                RunSpec.from_dict(payload), cache_dir, label=f"spec {path}"
            )
        if kind == "scenario_result":
            return _from_cache_payload(payload, label=f"cached record {path}")
        if kind == "run_result":
            result = result_from_dict(payload)
            return ReportSource(
                label=f"result {path}",
                result=result,
                counters=result.telemetry,
            )
        raise ReproError(
            f"{path}: unrecognized record kind {kind!r} (expected run_spec, "
            "scenario_result, run_result, or a .jsonl/.jsonl.gz trace)"
        )
    if _HASH_RE.match(target):
        cache = _cache(cache_dir)
        payload = cache.load_payload(target)
        if payload is None:
            raise ReproError(
                f"no cached result {target} in {cache.root} "
                "(is --cache-dir right?)"
            )
        return _from_cache_payload(payload, label=f"cache {target}")
    raise ReproError(
        f"report target {target!r} is neither an existing file nor a "
        "16-hex spec content hash"
    )


# ------------------------------------------------------------------ render


def _run_section(source: ReportSource) -> str:
    from ..analysis.report import format_kv

    result = source.result
    header = source.header or {}
    footer = source.footer or {}
    counters = source.counters or {}
    pairs = {}
    if source.spec_summary:
        pairs["spec"] = source.spec_summary
    if result is not None:
        pairs.update(
            {
                "router": result.router_name,
                "network": result.network_name,
                "packets": result.num_packets,
                "delivered": result.delivered,
                "makespan": result.makespan,
                "steps executed": result.steps_executed,
                "steps fast-forwarded": result.steps_skipped,
            }
        )
    else:
        for key, label in (
            ("router", "router"),
            ("network", "network"),
            ("num_packets", "packets"),
            ("spec_hash", "spec hash"),
        ):
            if key in header:
                pairs[label] = header[key]
        for key, label in (
            ("delivered", "delivered"),
            ("makespan", "makespan"),
            ("steps_executed", "steps executed"),
            ("steps_skipped", "steps fast-forwarded"),
        ):
            if key in footer:
                pairs[label] = footer[key]
        if "events_total" in counters:
            pairs["trace events"] = counters["events_total"]
    return format_kv(pairs, title=f"run — {source.label}")


def _bounds_section(source: ReportSource) -> Optional[str]:
    from ..analysis.report import format_kv

    result = source.result
    header = source.header or {}
    footer = source.footer or {}
    if result is not None:
        congestion, dilation = result.congestion, result.dilation
        makespan = result.makespan
    else:
        congestion = header.get("congestion")
        dilation = header.get("dilation")
        makespan = footer.get("makespan")
    if congestion is None or dilation is None or makespan is None:
        return None
    cd = congestion + dilation
    trivial = max(congestion, dilation)
    return format_kv(
        {
            "congestion C": congestion,
            "dilation D": dilation,
            "C + D": cd,
            "max(C, D)": trivial,
            "T / (C + D)": makespan / max(1, cd),
            "T / max(C, D)": makespan / max(1, trivial),
        },
        title="bounds (paper: T = O((C + L) ln^9(LN)) w.h.p.)",
    )


def _deflection_section(source: ReportSource) -> Optional[str]:
    from ..analysis.report import format_table

    counters = source.counters
    result = source.result
    rows: List[list] = []
    if counters and counters.get("deflections"):
        safe = counters["deflections"].get("safe", 0)
        unsafe = counters["deflections"].get("unsafe", 0)
        total = safe + unsafe
        moves = counters.get("moves", {})
        rows.append(["deflect (safe backward)", safe])
        rows.append(["unsafe_deflect", unsafe])
        rows.append(["total deflections", total])
        rows.append(["path moves (forward)", moves.get("forward", 0)])
        rows.append(["path moves (backward)", moves.get("backward", 0)])
    elif result is not None:
        total = result.total_deflections
        unsafe = result.unsafe_deflections
        rows.append(["deflect (safe backward)", total - unsafe])
        rows.append(["unsafe_deflect", unsafe])
        rows.append(["total deflections", total])
    if not rows:
        return None
    if result is not None and result.deflections_per_packet:
        per_packet = result.deflections_per_packet
        rows.append(["max per packet", max(per_packet)])
        rows.append(
            ["mean per packet", round(sum(per_packet) / len(per_packet), 3)]
        )
    return format_table(
        ["deflection breakdown", "count"],
        rows,
        note="the paper's algorithm keeps unsafe_deflect at 0 (Lemma 2.1)",
    )


def _phase_section(source: ReportSource) -> Optional[str]:
    from ..analysis.report import format_bar, format_table

    counters = source.counters
    if not counters or not counters.get("per_phase"):
        return None
    per_phase = counters["per_phase"]
    max_moves = max(
        (bucket.get("moves", 0) for bucket in per_phase.values()), default=0
    )
    rows = []
    for phase in sorted(per_phase, key=int):
        bucket = per_phase[phase]
        rows.append(
            [
                phase,
                bucket.get("rounds", 0),
                bucket.get("injections", 0),
                bucket.get("moves", 0),
                bucket.get("deflections", 0),
                bucket.get("absorptions", 0),
                bucket.get("wait_entries", 0),
                bucket.get("excitations", 0),
                format_bar(bucket.get("moves", 0), max_moves, width=20),
            ]
        )
    return format_table(
        ["phase", "rounds", "inject", "moves", "defl", "absorb", "wait", "excite", "activity"],
        rows,
        title="phase timeline (frontier-frame schedule, Section 2.1)",
        note="phases with no executed steps (quiescence fast-forward) emit "
        "no events and are absent",
    )


def _occupancy_section(source: ReportSource) -> Optional[str]:
    from ..analysis.report import format_bar, format_table

    counters = source.counters
    if not counters or not counters.get("level_peaks"):
        return None
    peaks = counters["level_peaks"]
    max_peak = max(peaks.values())
    rows = [
        [level, peaks[level], format_bar(peaks[level], max_peak, width=20)]
        for level in sorted(peaks, key=int)
    ]
    return format_table(
        ["level", "peak occupancy", ""],
        rows,
        title="per-level peak occupancy (packets simultaneously resident)",
    )


def _state_section(source: ReportSource) -> Optional[str]:
    from ..analysis.report import format_kv

    counters = source.counters
    if not counters or not counters.get("state_transitions"):
        return None
    transitions = counters["state_transitions"]
    return format_kv(
        {name: transitions[name] for name in sorted(transitions)},
        title="state transitions (normal / excited / wait)",
    )


def _timing_section(source: ReportSource) -> Optional[str]:
    from ..analysis.report import format_table

    if not source.timings:
        return None
    rows = []
    for name in sorted(source.timings):
        span = source.timings[name]
        rows.append(
            [
                name,
                round(span.get("total_sec", 0.0), 6),
                int(span.get("count", 0)),
                round(span.get("mean_sec", 0.0), 9),
            ]
        )
    return format_table(
        ["span", "total (s)", "count", "mean (s)"],
        rows,
        title="wall-clock spans (perf_counter; machine-dependent)",
    )


def render_report(source: ReportSource) -> str:
    """The full plain-text report for one resolved source."""
    sections = [
        _run_section(source),
        _bounds_section(source),
        _deflection_section(source),
        _phase_section(source),
        _occupancy_section(source),
        _state_section(source),
        _timing_section(source),
    ]
    body = "\n\n".join(s for s in sections if s)
    if source.counters is None and source.timings is None:
        body += (
            "\n\nnote: no telemetry attached to this record; re-run with "
            "--telemetry (or --trace) for the deflection/phase detail."
        )
    return body
