"""Telemetry sessions: scoped, zero-cost-when-off observability.

A :class:`TelemetrySession` is a context manager that, while active,
instruments every :class:`~repro.sim.Engine` constructed in this process:

* attaches a :class:`~repro.telemetry.Counters` observer (event statistics),
* streams events to a :class:`~repro.telemetry.JsonlTraceSink` when a
  trace path is configured,
* hands the engine a step timer so ``Engine.run`` accumulates
  ``perf_counter`` spans around each executed step, alongside the
  pipeline-stage spans taken by the scenario dispatcher.

Engines discover the active session through
:mod:`repro.telemetry.context` at construction time; with no session
active nothing is attached, the engine's ``tracing`` flag stays False, and
the hot loop's "no observer ⇒ no event construction" fast path is
untouched (one ``None`` check per engine construction, one per
``Engine.run`` call).

The dispatcher (:func:`repro.scenarios.run_trial`) finalizes the session
into its outputs: counters onto ``RunResult.telemetry`` (deterministic —
safe to cache and to compare across worker counts), wall-clock spans onto
``ScenarioRun.timings`` (machine-dependent — kept out of the result).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .context import activate, current_session, deactivate
from .counters import Counters
from .timing import TimingSpans
from .trace import JsonlTraceSink


@dataclass(frozen=True)
class TelemetryConfig:
    """What a session should collect.

    ``counters`` and ``timings`` default on (they are cheap); ``trace_path``
    enables the JSONL sink (``.gz`` suffix compresses).  ``spec_hash``
    labels the trace header with the originating
    :meth:`~repro.scenarios.RunSpec.content_hash`.
    """

    counters: bool = True
    timings: bool = True
    trace_path: Optional[str] = None
    spec_hash: Optional[str] = None


class TelemetrySession:
    """Process-local observability scope (see module docstring)."""

    def __init__(self, config: Optional[TelemetryConfig] = None, **kwargs) -> None:
        self.config = config if config is not None else TelemetryConfig(**kwargs)
        self.counters: Optional[Counters] = (
            Counters() if self.config.counters else None
        )
        self.spans: Optional[TimingSpans] = (
            TimingSpans() if self.config.timings else None
        )
        self.sink: Optional[JsonlTraceSink] = None
        self.engines_attached = 0
        self._last_result = None

    # ------------------------------------------------------------- context

    def __enter__(self) -> "TelemetrySession":
        activate(self)
        if self.config.trace_path is not None:
            self.sink = JsonlTraceSink(self.config.trace_path)
        return self

    def __exit__(self, *exc_info) -> None:
        deactivate(self)
        if self.sink is not None:
            footer = {}
            result = self._last_result
            if result is not None:
                footer = {
                    "makespan": result.makespan,
                    "delivered": result.delivered,
                    "steps_executed": result.steps_executed,
                    "steps_skipped": result.steps_skipped,
                }
            self.sink.write_footer(footer)
            self.sink.close()

    # ------------------------------------------------------------ engines

    def attach(self, engine) -> None:
        """Instrument one engine (called by ``Engine.__init__``)."""
        self.engines_attached += 1
        if self.counters is not None:
            self.counters.bind(engine)
            engine.add_observer(self.counters.on_event)
        if self.sink is not None:
            if self.engines_attached == 1:
                problem = engine.problem
                router_name = getattr(engine, "router_name", None)
                if router_name is None:
                    router_name = type(engine.router).__name__
                header = {
                    "router": router_name,
                    "network": engine.net.name,
                    "num_packets": len(engine.packets),
                    "congestion": problem.congestion,
                    "dilation": problem.dilation,
                    "depth": engine.net.depth,
                }
                if self.config.spec_hash is not None:
                    header["spec_hash"] = self.config.spec_hash
                self.sink.write_header(header)
            engine.add_observer(self.sink.on_event)
        if self.spans is not None:
            engine._step_timer = self.spans

    # ------------------------------------------------------------ results

    def finalize_result(self, result) -> None:
        """Attach the (deterministic) counters to a finished run's result."""
        self._last_result = result
        if self.counters is not None:
            result.telemetry = self.counters.to_dict()

    def timings_dict(self) -> Optional[dict]:
        """Snapshot of the wall-clock spans (None when timing is off)."""
        return self.spans.to_dict() if self.spans is not None else None


__all__ = [
    "TelemetryConfig",
    "TelemetrySession",
    "current_session",
]
