"""Wall-clock timing spans (``time.perf_counter`` accumulators).

A :class:`TimingSpans` aggregates named spans — total seconds and call
count per name — so a run's wall-clock budget can be split into its
pipeline stages: topology build, workload sampling, path selection, the
backend, and the engine's inner step loop (``engine_step``, fed by
:meth:`repro.sim.Engine.run` when a telemetry session is active).

Timings are *observability, not results*: they are machine- and
load-dependent, so they never enter :class:`~repro.sim.RunResult` (whose
serial-vs-parallel byte-identity is a repo invariant).  They ride on
:class:`~repro.scenarios.ScenarioRun` and in the result cache's sidecar
``timings`` key instead.
"""

from __future__ import annotations

import contextlib
from time import perf_counter
from typing import Dict, Iterator

from .context import current_session

#: Span name used for the engine's inner step loop.
ENGINE_STEP_SPAN = "engine_step"


class TimingSpans:
    """Named wall-clock accumulators (total seconds + call counts)."""

    def __init__(self) -> None:
        self._total: Dict[str, float] = {}
        self._count: Dict[str, int] = {}

    def add(self, name: str, seconds: float) -> None:
        """Fold one measured interval into the span ``name``."""
        self._total[name] = self._total.get(name, 0.0) + seconds
        self._count[name] = self._count.get(name, 0) + 1

    def add_step(self, seconds: float) -> None:
        """Engine hook: one executed :meth:`~repro.sim.Engine.step`."""
        self.add(ENGINE_STEP_SPAN, seconds)

    @contextlib.contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Time a ``with`` block under ``name``."""
        start = perf_counter()
        try:
            yield
        finally:
            self.add(name, perf_counter() - start)

    def total(self, name: str) -> float:
        """Accumulated seconds for one span (0.0 if never entered)."""
        return self._total.get(name, 0.0)

    def count(self, name: str) -> int:
        """Number of intervals folded into one span."""
        return self._count.get(name, 0)

    def to_dict(self) -> Dict[str, Dict[str, float]]:
        """JSON-safe snapshot: ``{name: {total_sec, count, mean_sec}}``."""
        out: Dict[str, Dict[str, float]] = {}
        for name in sorted(self._total):
            total = self._total[name]
            count = self._count[name]
            out[name] = {
                "total_sec": total,
                "count": float(count),
                "mean_sec": total / count if count else 0.0,
            }
        return out


@contextlib.contextmanager
def span(name: str) -> Iterator[None]:
    """Time a block against the *active* session's spans (no-op when off).

    The pipeline stages (:mod:`repro.scenarios.dispatch`) wrap themselves in
    this: with no session active it costs one ``None`` check per stage per
    trial — never anything per step or per event.
    """
    session = current_session()
    spans = getattr(session, "spans", None)
    if spans is None:
        yield
        return
    start = perf_counter()
    try:
        yield
    finally:
        spans.add(name, perf_counter() - start)
