"""Observability for routing runs: counters, traces, timings, reports.

The subsystem has four pieces, all riding the engine's existing
zero-cost-when-off event hook (``docs/observability.md`` is the guide):

* :class:`Counters` — an event observer accumulating the quantities the
  paper's analysis talks about (deflections by kind, absorptions, state
  transitions, per-phase activity, per-level occupancy peaks).  Counters
  are deterministic, so they attach to ``RunResult.telemetry`` and survive
  caching and parallel execution unchanged.
* :class:`JsonlTraceSink` / :func:`load_trace` — stream the event stream
  to a (gzip-compressed) JSONL file and round-trip it back,
  event-for-event, for offline analysis.
* :class:`TimingSpans` / :func:`span` — ``perf_counter`` wall-clock spans
  around the engine step loop and the scenario pipeline stages
  (machine-dependent; kept out of results, reported separately).
* ``python -m repro report`` (:mod:`repro.telemetry.report`) — render a
  summary from any artifact (spec, cache record, result file, or trace)
  without re-running anything.

Activation is scoped through a process-local :class:`TelemetrySession`
(``with TelemetrySession(trace_path=...):``); engines discover it at
construction time via :func:`current_session`, so code that never opens a
session pays nothing — the "no observer ⇒ no event construction" fast
path is untouched.
"""

from .context import current_session
from .counters import (
    COUNTERS_SCHEMA,
    PHASE_FIELDS,
    Counters,
    aggregate_counters,
    counters_digest,
)
from .live import WINDOW_SCHEMA, WindowedMetrics
from .report import ReportSource, render_report, resolve_source
from .session import TelemetryConfig, TelemetrySession
from .timing import ENGINE_STEP_SPAN, TimingSpans, span
from .trace import (
    TRACE_FORMAT,
    TRACE_SUFFIXES,
    JsonlTraceSink,
    TraceFile,
    event_from_obj,
    event_to_obj,
    is_trace_path,
    load_trace,
)

__all__ = [
    "COUNTERS_SCHEMA",
    "ENGINE_STEP_SPAN",
    "PHASE_FIELDS",
    "TRACE_FORMAT",
    "TRACE_SUFFIXES",
    "Counters",
    "JsonlTraceSink",
    "ReportSource",
    "TelemetryConfig",
    "TelemetrySession",
    "TimingSpans",
    "TraceFile",
    "WINDOW_SCHEMA",
    "WindowedMetrics",
    "aggregate_counters",
    "counters_digest",
    "current_session",
    "event_from_obj",
    "event_to_obj",
    "is_trace_path",
    "load_trace",
    "render_report",
    "resolve_source",
    "span",
]
