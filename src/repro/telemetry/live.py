"""Windowed live metrics for open-loop streaming runs.

Long-running service runs cannot accumulate per-packet state and report at
the end — they may never end.  :class:`WindowedMetrics` is both an engine
event observer and a stream-driver callback set: it folds events into a
fixed-size rolling window (throughput, latency percentiles, occupancy,
deflection and drop rates) and *flushes* each completed window to a sink
as one JSON-serializable dict, keeping memory bounded by the number of
packets in flight — the rotorsim ``Log`` cache idiom of buffering a small
window and emitting incrementally instead of holding the run's history.

The sink is any callable accepting a dict; the CLI wires it to JSONL
(one object per line) or SSE (``data: {...}\\n\\n`` frames) on stdout.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..sim.events import EventKind, TraceEvent

WINDOW_SCHEMA = (
    "kind",
    "window",
    "t_start",
    "t_end",
    "steps",
    "arrivals",
    "injected",
    "delivered",
    "dropped",
    "deflections",
    "unsafe_deflections",
    "in_flight",
    "occupancy_mean",
    "occupancy_max",
    "throughput",
    "latency_mean",
    "latency_p50",
    "latency_p95",
    "latency_max",
)


def _quantile(sorted_values: List[float], q: float) -> float:
    """Linear-interpolation quantile of pre-sorted data (numpy 'linear')."""
    n = len(sorted_values)
    if n == 1:
        return sorted_values[0]
    pos = q * (n - 1)
    lo = int(pos)
    frac = pos - lo
    if lo + 1 >= n:
        return sorted_values[-1]
    return sorted_values[lo] + frac * (sorted_values[lo + 1] - sorted_values[lo])


class WindowedMetrics:
    """Rolling per-window stream statistics, flushed incrementally.

    Use as an engine observer (``engine.add_observer(metrics.on_event)``)
    plus driver callbacks: :meth:`note_arrival` when the driver admits a
    packet, :meth:`note_drop` when it sheds one, :meth:`end_step` after
    each engine step, and :meth:`close` to flush the final partial window.
    Latency is measured arrival-to-absorption in steps.
    """

    def __init__(
        self,
        window: int = 50,
        sink: Optional[Callable[[Dict[str, object]], None]] = None,
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = int(window)
        self.sink = sink
        self.windows_emitted = 0
        #: arrival step of each packet currently in flight (pid -> step);
        #: entries are removed at absorption, so size tracks live packets
        self._arrival_step: Dict[int, int] = {}
        self._t_start = 0
        self._steps = 0
        self._in_flight = 0
        self._reset_window()

    def _reset_window(self) -> None:
        self._arrivals = 0
        self._injected = 0
        self._delivered = 0
        self._dropped = 0
        self._deflections = 0
        self._unsafe = 0
        self._latencies: List[float] = []
        self._occ_sum = 0
        self._occ_max = 0
        self._steps = 0

    # ------------------------------------------------------- driver callbacks

    def note_arrival(self, packet_id: int, t: int) -> None:
        """Record a packet admitted to the engine at step ``t``."""
        self._arrival_step[packet_id] = t
        self._arrivals += 1

    def note_drop(self, t: int) -> None:
        """Record an arrival shed by the admission policy."""
        self._dropped += 1

    # --------------------------------------------------------- engine events

    def on_event(self, event: TraceEvent) -> None:
        """Engine observer: fold one trace event into the current window."""
        kind = event.kind
        if kind is EventKind.INJECT:
            self._injected += 1
        elif kind is EventKind.ABSORB:
            self._delivered += 1
            arrived = self._arrival_step.pop(event.packet, None)
            if arrived is not None:
                # absorbed_at convention: delivery completes at time + 1
                self._latencies.append(float(event.time + 1 - arrived))
        elif kind is EventKind.DEFLECT:
            self._deflections += 1
        elif kind is EventKind.UNSAFE_DEFLECT:
            self._deflections += 1
            self._unsafe += 1

    # ------------------------------------------------------------ step clock

    def end_step(self, t: int, num_active: int) -> None:
        """Advance the window clock after the engine executed step ``t``."""
        self._steps += 1
        self._in_flight = num_active
        self._occ_sum += num_active
        if num_active > self._occ_max:
            self._occ_max = num_active
        if (t + 1) % self.window == 0:
            self._flush(t)

    def close(self, t: int) -> None:
        """Flush a trailing partial window, if any steps are buffered."""
        if self._steps:
            self._flush(t)

    # ----------------------------------------------------------------- flush

    def _flush(self, t: int) -> None:
        steps = self._steps
        lat = sorted(self._latencies)
        record: Dict[str, object] = {
            "kind": "metrics_window",
            "window": self.windows_emitted,
            "t_start": self._t_start,
            "t_end": t + 1,
            "steps": steps,
            "arrivals": self._arrivals,
            "injected": self._injected,
            "delivered": self._delivered,
            "dropped": self._dropped,
            "deflections": self._deflections,
            "unsafe_deflections": self._unsafe,
            "in_flight": self._in_flight,
            "occupancy_mean": self._occ_sum / steps if steps else 0.0,
            "occupancy_max": self._occ_max,
            "throughput": self._delivered / steps if steps else 0.0,
            "latency_mean": (sum(lat) / len(lat)) if lat else None,
            "latency_p50": _quantile(lat, 0.5) if lat else None,
            "latency_p95": _quantile(lat, 0.95) if lat else None,
            "latency_max": lat[-1] if lat else None,
        }
        self.windows_emitted += 1
        self._t_start = t + 1
        self._reset_window()
        if self.sink is not None:
            self.sink(record)


__all__ = ["WindowedMetrics", "WINDOW_SCHEMA"]
