"""The active-telemetry-session holder.

Kept dependency-free on purpose: :class:`~repro.sim.Engine` imports this
module to ask "is anyone observing?" at construction time, so it must not
(transitively) import the engine, the counters, or anything heavy.  The
cost of telemetry being *off* is exactly one function call and one ``None``
check per engine construction — nothing per step, nothing per event.

Sessions are process-local.  Parallel trial workers each activate their own
session inside their own process (see
:func:`repro.experiments.parallel.run_spec_trials`), so there is no shared
mutable state to synchronize.
"""

from __future__ import annotations

from typing import Optional

#: The currently active session, or None.  Managed exclusively by
#: :class:`repro.telemetry.session.TelemetrySession`'s context protocol.
_ACTIVE: Optional[object] = None


def current_session() -> Optional[object]:
    """The active :class:`~repro.telemetry.TelemetrySession`, if any."""
    return _ACTIVE


def activate(session: object) -> None:
    """Install ``session`` as the process's active session (no nesting)."""
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError(
            "a telemetry session is already active; sessions do not nest"
        )
    _ACTIVE = session


def deactivate(session: object) -> None:
    """Remove ``session`` if it is the active one (idempotent)."""
    global _ACTIVE
    if _ACTIVE is session:
        _ACTIVE = None
