"""JSON (de)serialization of networks, routing problems, and results.

Lets an experiment be captured as a file — exact topology, exact paths —
and replayed later or on another machine, independent of generator seeds.
Node labels may be nested tuples (all builders use them); JSON turns tuples
into lists, so the loader converts lists back to tuples recursively.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import asdict
from typing import Union

from .errors import ReproError
from .net import LeveledNetwork
from .paths import PacketSpec, Path, RoutingProblem
from .sim import RunResult

PathLike = Union[str, pathlib.Path]

FORMAT_VERSION = 1


def _tuplify(value):
    if isinstance(value, list):
        return tuple(_tuplify(item) for item in value)
    return value


def network_to_dict(net: LeveledNetwork) -> dict:
    """Plain-dict form of a leveled network."""
    return {
        "format": FORMAT_VERSION,
        "kind": "leveled_network",
        "name": net.name,
        "levels": [net.level(v) for v in net.nodes()],
        "labels": [net.label(v) for v in net.nodes()],
        "edges": [list(net.edge_endpoints(e)) for e in net.edges()],
    }


def network_from_dict(data: dict) -> LeveledNetwork:
    """Inverse of :func:`network_to_dict`."""
    if data.get("kind") != "leveled_network":
        raise ReproError(f"not a network record: kind={data.get('kind')!r}")
    return LeveledNetwork(
        data["levels"],
        [tuple(edge) for edge in data["edges"]],
        node_labels=[_tuplify(label) for label in data["labels"]],
        name=data.get("name", "loaded"),
    )


def problem_to_dict(problem: RoutingProblem) -> dict:
    """Plain-dict form of a routing problem (network + per-packet paths)."""
    return {
        "format": FORMAT_VERSION,
        "kind": "routing_problem",
        "network": network_to_dict(problem.net),
        "packets": [
            {
                "source": spec.source,
                "destination": spec.destination,
                "path": list(spec.path.edges),
            }
            for spec in problem
        ],
    }


def problem_from_dict(data: dict) -> RoutingProblem:
    """Inverse of :func:`problem_to_dict`."""
    if data.get("kind") != "routing_problem":
        raise ReproError(f"not a problem record: kind={data.get('kind')!r}")
    net = network_from_dict(data["network"])
    specs = [
        PacketSpec(
            k,
            item["source"],
            item["destination"],
            Path(net, item["path"], source=item["source"]),
        )
        for k, item in enumerate(data["packets"])
    ]
    return RoutingProblem(net, specs)


def result_to_dict(result: RunResult) -> dict:
    """Plain-dict form of a run result (for archiving experiment outputs)."""
    record = asdict(result)
    record["format"] = FORMAT_VERSION
    record["kind"] = "run_result"
    return record


def result_from_dict(data: dict) -> RunResult:
    """Inverse of :func:`result_to_dict` (used by the scenario result cache)."""
    kind = data.get("kind", "run_result")
    if kind != "run_result":
        raise ReproError(f"not a run-result record: kind={kind!r}")
    fields = {
        key: value
        for key, value in data.items()
        if key not in ("format", "kind")
    }
    try:
        return RunResult(**fields)
    except TypeError as exc:
        raise ReproError(f"malformed run-result record: {exc}") from exc


def save_json(data: dict, path: PathLike) -> None:
    """Write a record produced by the ``*_to_dict`` functions."""
    pathlib.Path(path).write_text(
        json.dumps(data, indent=1, sort_keys=True), encoding="utf-8"
    )


def load_json(path: PathLike) -> dict:
    """Read a record written by :func:`save_json`."""
    return json.loads(pathlib.Path(path).read_text(encoding="utf-8"))


def save_problem(problem: RoutingProblem, path: PathLike) -> None:
    """Capture a routing problem as a replayable JSON file."""
    save_json(problem_to_dict(problem), path)


def load_problem(path: PathLike) -> RoutingProblem:
    """Load a problem saved with :func:`save_problem`."""
    return problem_from_dict(load_json(path))
