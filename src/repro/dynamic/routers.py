"""Dynamic-traffic router wrappers.

Arrival release now lives in the engines themselves (both the reference
:class:`~repro.sim.Engine` and the vectorized kernel gate injection
eligibility on an :class:`~repro.traffic.ArrivalSchedule`), so these
routers are thin adapters: they carry the schedule, install it at attach
time, and otherwise behave exactly like their static baselines.  Runs are
byte-identical to the old mixin-based release (same eligible set at every
step, same RNG draw sequence).
"""

from __future__ import annotations

import warnings
from typing import Sequence

from ..baselines import GreedyHotPotatoRouter, NaivePathRouter
from ..rng import RngLike
from ..sim import Engine
from ..traffic import ArrivalSchedule


class DynamicNaiveRouter(NaivePathRouter):
    """Path-following deflection routing with timed arrivals."""

    def __init__(self, arrival_times: Sequence[int]) -> None:
        self.schedule = ArrivalSchedule(arrival_times)
        self.arrival_times = list(self.schedule.times)

    def attach(self, engine: Engine) -> None:
        engine.set_arrival_schedule(self.schedule)
        NaivePathRouter.attach(self, engine)


class DynamicGreedyRouter(GreedyHotPotatoRouter):
    """Distance-greedy deflection routing with timed arrivals."""

    def __init__(self, arrival_times: Sequence[int], seed: RngLike = None) -> None:
        GreedyHotPotatoRouter.__init__(self, seed=seed)
        self.schedule = ArrivalSchedule(arrival_times)
        self.arrival_times = list(self.schedule.times)

    def attach(self, engine: Engine) -> None:
        engine.set_arrival_schedule(self.schedule)
        GreedyHotPotatoRouter.attach(self, engine)


def router_attach(router, engine: Engine) -> None:
    """Attach without the static baselines' mark-all-eligible behavior."""
    from ..sim import Router

    Router.attach(router, engine)


def Router_attach(router, engine: Engine) -> None:  # noqa: N802
    """Deprecated alias of :func:`router_attach`."""
    warnings.warn(
        "Router_attach is deprecated; use router_attach instead",
        DeprecationWarning,
        stacklevel=2,
    )
    router_attach(router, engine)
