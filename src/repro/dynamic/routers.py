"""Dynamic-traffic router wrappers.

The engine's eligibility mechanism already supports timed injection; these
routers mark packets eligible at their arrival times instead of all at
once.  Deflection policies are inherited from the static baselines.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..baselines import GreedyHotPotatoRouter, NaivePathRouter
from ..errors import WorkloadError
from ..rng import RngLike
from ..sim import Engine
from ..types import PacketId


class _ArrivalSchedule:
    """Mixin: mark packets eligible when their arrival time comes."""

    def _init_schedule(self, arrival_times: Sequence[int]) -> None:
        if any(t < 0 for t in arrival_times):
            raise WorkloadError("arrival times must be non-negative")
        self._by_time: Dict[int, List[PacketId]] = {}
        for pid, t in enumerate(arrival_times):
            self._by_time.setdefault(int(t), []).append(pid)
        self.arrival_times = list(arrival_times)

    def _attach_schedule(self, engine: Engine) -> None:
        if len(self.arrival_times) != len(engine.packets):
            raise WorkloadError(
                f"{len(self.arrival_times)} arrival times for "
                f"{len(engine.packets)} packets"
            )

    def _release(self, engine: Engine, t: int) -> None:
        for pid in self._by_time.get(t, ()):
            engine.mark_eligible(pid)


class DynamicNaiveRouter(_ArrivalSchedule, NaivePathRouter):
    """Path-following deflection routing with timed arrivals."""

    def __init__(self, arrival_times: Sequence[int]) -> None:
        self._init_schedule(arrival_times)

    def attach(self, engine: Engine) -> None:
        Router_attach(self, engine)
        self._attach_schedule(engine)

    def pre_step(self, t: int) -> None:
        self._release(self.engine, t)


class DynamicGreedyRouter(_ArrivalSchedule, GreedyHotPotatoRouter):
    """Distance-greedy deflection routing with timed arrivals."""

    def __init__(self, arrival_times: Sequence[int], seed: RngLike = None) -> None:
        GreedyHotPotatoRouter.__init__(self, seed=seed)
        self._init_schedule(arrival_times)

    def attach(self, engine: Engine) -> None:
        Router_attach(self, engine)
        self._attach_schedule(engine)

    def pre_step(self, t: int) -> None:
        self._release(self.engine, t)


def Router_attach(router, engine: Engine) -> None:
    """Attach without the static baselines' mark-all-eligible behavior."""
    from ..sim import Router

    Router.attach(router, engine)
