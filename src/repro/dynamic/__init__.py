"""Dynamic (continuous-injection) routing, after the paper's reference [9].

Arrival release now lives in the engines themselves (any backend accepts a
schedule-carrying problem), so this package is a thin compatibility layer
over :mod:`repro.traffic`: arrival-process adapters (:mod:`arrivals`),
routers that install a schedule on attach (:mod:`routers`), and
latency/stability metrics (:mod:`metrics`).  Experiment T9 sweeps the
injection rate toward the bandwidth limit and watches latency diverge —
the classic stability picture.
"""

from .arrivals import Arrival, arrivals_to_problem, bernoulli_arrivals, offered_load
from .routers import (
    DynamicGreedyRouter,
    DynamicNaiveRouter,
    Router_attach,
    router_attach,
)
from .metrics import DynamicStats, dynamic_stats

__all__ = [
    "Arrival",
    "arrivals_to_problem",
    "bernoulli_arrivals",
    "offered_load",
    "DynamicGreedyRouter",
    "DynamicNaiveRouter",
    "DynamicStats",
    "dynamic_stats",
    "Router_attach",
    "router_attach",
]
