"""Dynamic (continuous-injection) routing, after the paper's reference [9].

The static engine already supports timed eligibility, so dynamic routing
is: an arrival process (:mod:`arrivals`), a router that releases packets at
their arrival times (:mod:`routers`), and latency/stability metrics
(:mod:`metrics`).  Experiment T9 sweeps the injection rate toward the
bandwidth limit and watches latency diverge — the classic stability
picture.
"""

from .arrivals import Arrival, arrivals_to_problem, bernoulli_arrivals, offered_load
from .routers import DynamicGreedyRouter, DynamicNaiveRouter
from .metrics import DynamicStats, dynamic_stats

__all__ = [
    "Arrival",
    "arrivals_to_problem",
    "bernoulli_arrivals",
    "offered_load",
    "DynamicGreedyRouter",
    "DynamicNaiveRouter",
    "DynamicStats",
    "dynamic_stats",
]
