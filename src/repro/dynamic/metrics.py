"""Latency and stability metrics for dynamic runs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..sim import RunResult


@dataclass(frozen=True)
class DynamicStats:
    """Latency/stability summary of one dynamic run."""

    offered: int
    delivered: int
    drained: bool
    mean_latency: float
    p50_latency: float
    p95_latency: float
    max_latency: float
    mean_hop_stretch: float

    def as_row(self) -> tuple:
        """Bench table row."""
        return (
            self.offered,
            self.delivered,
            "yes" if self.drained else "NO",
            f"{self.mean_latency:.1f}",
            f"{self.p50_latency:.0f}",
            f"{self.p95_latency:.0f}",
            f"{self.mean_hop_stretch:.2f}",
        )


def dynamic_stats(
    result: RunResult,
    arrival_times: Sequence[int],
    path_lengths: Optional[Sequence[int]] = None,
) -> DynamicStats:
    """Compute latency statistics (absorption − arrival) for a dynamic run."""
    latencies: List[float] = []
    stretches: List[float] = []
    for pid, delivered_at in enumerate(result.delivery_times):
        if delivered_at is None:
            continue
        latency = delivered_at - arrival_times[pid]
        latencies.append(latency)
        if path_lengths is not None and path_lengths[pid] > 0:
            stretches.append(latency / path_lengths[pid])
    if latencies:
        arr = np.asarray(latencies, dtype=float)
        mean = float(arr.mean())
        p50, p95 = (float(q) for q in np.quantile(arr, [0.5, 0.95]))
        worst = float(arr.max())
    else:
        mean = p50 = p95 = worst = float("nan")
    return DynamicStats(
        offered=result.num_packets,
        delivered=result.delivered,
        drained=result.all_delivered,
        mean_latency=mean,
        p50_latency=p50,
        p95_latency=p95,
        max_latency=worst,
        mean_hop_stretch=(
            float(np.mean(stretches)) if stretches else float("nan")
        ),
    )
