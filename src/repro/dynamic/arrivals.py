"""Stochastic arrival processes for dynamic routing experiments.

Thin adapter over :mod:`repro.traffic` kept for backwards compatibility:
the injection sources themselves now live in
:mod:`repro.traffic.sources` (Bernoulli, Poisson, trace-driven, batch),
and materialization in :mod:`repro.traffic.materialize`.  These wrappers
preserve the original call signatures and are draw-for-draw identical to
the pre-refactor generators.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..net import LeveledNetwork
from ..paths import RoutingProblem
from ..rng import RngLike
from ..traffic import (
    Arrival,
    BernoulliSource,
    collect_arrivals,
    offered_load,
    problem_from_arrivals,
)

__all__ = [
    "Arrival",
    "bernoulli_arrivals",
    "arrivals_to_problem",
    "offered_load",
]


def bernoulli_arrivals(
    net: LeveledNetwork,
    rate: float,
    horizon: int,
    seed: RngLike = None,
    source_levels: Optional[Sequence[int]] = None,
    min_hops: int = 1,
) -> List[Arrival]:
    """Per-step, per-source Bernoulli(`rate`) arrivals over ``horizon`` steps.

    Equivalent to materializing a :class:`~repro.traffic.BernoulliSource`
    over its horizon (same seed, same draw sequence).
    """
    source = BernoulliSource(
        net,
        rate,
        seed=seed,
        horizon=int(horizon),
        source_levels=source_levels,
        min_hops=min_hops,
    )
    return collect_arrivals(source)


def arrivals_to_problem(
    net: LeveledNetwork,
    arrivals: Sequence[Arrival],
    seed: RngLike = None,
) -> Tuple[RoutingProblem, List[int]]:
    """Materialize arrivals as a multi-source routing problem.

    Returns ``(problem, arrival_times)`` with packet ``k`` scheduled to
    become injectable at ``arrival_times[k]``; the problem also carries the
    times as ``problem.arrival_schedule``, which both engines honor
    natively (see :func:`repro.traffic.problem_from_arrivals`).
    """
    return problem_from_arrivals(net, arrivals, seed=seed)
