"""Stochastic arrival processes for dynamic routing experiments.

The paper studies *static* (batch) problems; the deflection-routing
literature it cites (Broder & Upfal, "Dynamic deflection routing on
arrays", STOC'96 — reference [9]) studies packets arriving continuously.
This module generates such traffic for the leveled setting: per-step
Bernoulli/Poisson arrivals at injection-capable nodes, each packet drawn
with a random forward destination and a monotone path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..errors import WorkloadError
from ..net import LeveledNetwork
from ..paths import PacketSpec, RoutingProblem, random_monotone_path
from ..rng import RngLike, make_rng
from ..types import NodeId


@dataclass(frozen=True)
class Arrival:
    """One dynamically arriving packet."""

    time: int
    source: NodeId
    destination: NodeId


def bernoulli_arrivals(
    net: LeveledNetwork,
    rate: float,
    horizon: int,
    seed: RngLike = None,
    source_levels: Optional[Sequence[int]] = None,
    min_hops: int = 1,
) -> List[Arrival]:
    """Per-step, per-source Bernoulli(`rate`) arrivals over ``horizon`` steps.

    ``rate`` is the injection probability per eligible source per step;
    aggregate offered load is ``rate · |sources|`` packets/step.  Each
    arrival's destination is uniform over forward-reachable nodes at least
    ``min_hops`` ahead.
    """
    if not 0.0 <= rate <= 1.0:
        raise WorkloadError(f"rate must be a probability, got {rate}")
    if horizon < 1:
        raise WorkloadError(f"horizon must be >= 1, got {horizon}")
    rng = make_rng(seed)
    levels = (
        range(net.depth)
        if source_levels is None
        else [l for l in source_levels if 0 <= l < net.depth]
    )
    sources: List[NodeId] = []
    reach_cache = {}
    for level in levels:
        for v in net.nodes_at_level(level):
            if net.out_degree(v) == 0:
                continue
            options = [
                u
                for u in sorted(net.forward_reachable(v))
                if net.level(u) >= net.level(v) + min_hops
            ]
            if options:
                sources.append(v)
                reach_cache[v] = options
    if not sources:
        raise WorkloadError("no injection-capable sources")
    arrivals: List[Arrival] = []
    for t in range(horizon):
        coins = rng.random(len(sources))
        for idx, v in enumerate(sources):
            if coins[idx] < rate:
                options = reach_cache[v]
                dest = options[int(rng.integers(0, len(options)))]
                arrivals.append(Arrival(time=t, source=v, destination=dest))
    return arrivals


def arrivals_to_problem(
    net: LeveledNetwork,
    arrivals: Sequence[Arrival],
    seed: RngLike = None,
) -> Tuple[RoutingProblem, List[int]]:
    """Materialize arrivals as a multi-source routing problem.

    Returns ``(problem, arrival_times)`` with packet ``k`` scheduled to
    become injectable at ``arrival_times[k]``.  Paths are random monotone
    paths drawn per packet.
    """
    rng = make_rng(seed)
    specs = []
    times = []
    for k, arrival in enumerate(arrivals):
        path = random_monotone_path(net, arrival.source, arrival.destination, rng)
        specs.append(PacketSpec(k, arrival.source, arrival.destination, path))
        times.append(arrival.time)
    problem = RoutingProblem(net, specs, allow_multi_source=True)
    return problem, times


def offered_load(
    net: LeveledNetwork, arrivals: Sequence[Arrival], horizon: int
) -> float:
    """Average offered load in packet-hops per step per unit bandwidth.

    The natural utilization measure: total requested hops divided by
    ``horizon · (forward edges)``; saturation is expected as this
    approaches the bottleneck utilization 1.
    """
    if horizon < 1:
        raise WorkloadError(f"horizon must be >= 1, got {horizon}")
    hops = sum(
        net.level(a.destination) - net.level(a.source) for a in arrivals
    )
    return hops / (horizon * max(1, net.num_edges))
