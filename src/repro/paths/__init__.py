"""Preselected paths, routing problems, and congestion/dilation measures."""

from .path import (
    Path,
    is_valid_edge_sequence,
    random_monotone_path,
    first_monotone_path,
)
from .problem import PacketSpec, RoutingProblem
from .congestion import (
    edge_congestion_counts,
    max_edge_congestion,
    dilation,
    per_set_congestion,
    congested_edges,
    level_occupancy,
    congestion_histogram,
)
from .select import (
    select_paths_random,
    select_paths_bottleneck,
    min_bottleneck_path,
    paths_through_edge,
)
from .mesh_paths import (
    is_monotone_pair,
    dimension_order_path,
    select_paths_dimension_order,
    monotone_classes,
)
from .butterfly_paths import bit_fixing_path, select_paths_bit_fixing
from .valiant import valiant_path, select_paths_valiant

__all__ = [
    "Path",
    "is_valid_edge_sequence",
    "random_monotone_path",
    "first_monotone_path",
    "PacketSpec",
    "RoutingProblem",
    "edge_congestion_counts",
    "max_edge_congestion",
    "dilation",
    "per_set_congestion",
    "congested_edges",
    "level_occupancy",
    "congestion_histogram",
    "select_paths_random",
    "select_paths_bottleneck",
    "min_bottleneck_path",
    "paths_through_edge",
    "is_monotone_pair",
    "dimension_order_path",
    "select_paths_dimension_order",
    "monotone_classes",
    "bit_fixing_path",
    "select_paths_bit_fixing",
    "valiant_path",
    "select_paths_valiant",
]
