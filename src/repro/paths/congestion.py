"""Congestion and dilation measurement (the paper's Section 2.4).

These helpers operate on *current* path collections during routing as well
as preselected paths, because the paper tracks the time-indexed quantities
``C^t`` (max edge congestion of current paths at step ``t``), ``D^t`` (max
current path length), and the per-frontier-set congestion ``C_i^t`` — the
invariant auditor calls into this module every step.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Sequence, Tuple

from ..net import LeveledNetwork
from ..types import EdgeId


def edge_congestion_counts(
    edge_lists: Iterable[Sequence[EdgeId]], num_edges: int
) -> List[int]:
    """Per-edge multiplicity over a collection of edge lists.

    Each list is one packet's (preselected or current) path; a packet
    crossing an edge twice (possible transiently for a recycled oscillation
    edge) counts twice, matching the paper's path-list semantics.
    """
    counts = [0] * num_edges
    for edges in edge_lists:
        for e in edges:
            counts[e] += 1
    return counts


def max_edge_congestion(
    edge_lists: Iterable[Sequence[EdgeId]], num_edges: int
) -> int:
    """The paper's ``C^t``: maximum per-edge multiplicity."""
    counts = edge_congestion_counts(edge_lists, num_edges)
    return max(counts) if counts else 0


def dilation(edge_lists: Iterable[Sequence[EdgeId]]) -> int:
    """The paper's ``D^t``: maximum path length."""
    return max((len(edges) for edges in edge_lists), default=0)


def per_set_congestion(
    edge_lists: Sequence[Sequence[EdgeId]],
    set_of: Sequence[int],
    num_sets: int,
    num_edges: int,
) -> List[int]:
    """The frontier-set congestions ``C_i`` (Section 2.4).

    ``set_of[k]`` is the frontier-set index of packet ``k`` (aligned with
    ``edge_lists``); the result is ``[C_0, ..., C_{num_sets-1}]``.
    """
    if len(set_of) != len(edge_lists):
        raise ValueError(
            f"{len(edge_lists)} paths but {len(set_of)} set assignments"
        )
    per_edge: List[Dict[int, int]] = [dict() for _ in range(num_sets)]
    maxima = [0] * num_sets
    for edges, set_index in zip(edge_lists, set_of):
        bucket = per_edge[set_index]
        for e in edges:
            value = bucket.get(e, 0) + 1
            bucket[e] = value
            if value > maxima[set_index]:
                maxima[set_index] = value
    return maxima


def congested_edges(
    edge_lists: Iterable[Sequence[EdgeId]],
    num_edges: int,
    threshold: int,
) -> List[Tuple[EdgeId, int]]:
    """Edges whose multiplicity is at least ``threshold`` (edge, count)."""
    counts = edge_congestion_counts(edge_lists, num_edges)
    return [(e, c) for e, c in enumerate(counts) if c >= threshold]


def level_occupancy(
    net: LeveledNetwork, node_positions: Iterable[int]
) -> List[int]:
    """Number of packets per level, from a collection of current nodes.

    Feeds the Figure 2 style occupancy timelines in :mod:`repro.viz`.
    """
    counts = [0] * net.num_levels
    for node in node_positions:
        counts[net.level(node)] += 1
    return counts


def congestion_histogram(
    edge_lists: Iterable[Sequence[EdgeId]], num_edges: int
) -> Counter:
    """Histogram {multiplicity: #edges}; used by the T4 concentration bench."""
    counts = edge_congestion_counts(edge_lists, num_edges)
    return Counter(counts)
