"""Routing problems: packets with preselected paths.

The paper's problem model (Section 1.1): a set of ``N`` packets, each with a
source and a destination node and a *preselected valid path*; at most one
packet originates at any node (many-to-one: arbitrarily many may share a
destination).  "In this work we do not consider how these paths are
selected, but how to design fast routing algorithms given the paths" — so a
:class:`RoutingProblem` is exactly that given: network + per-packet paths,
with congestion ``C`` and dilation ``D`` derivable from it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from ..errors import WorkloadError
from ..net import LeveledNetwork
from ..types import NodeId, PacketId
from .path import Path


@dataclass(frozen=True)
class PacketSpec:
    """One packet of a routing problem."""

    packet_id: PacketId
    source: NodeId
    destination: NodeId
    path: Path

    def __post_init__(self) -> None:
        if self.path.source != self.source:
            raise WorkloadError(
                f"packet {self.packet_id}: path starts at {self.path.source}, "
                f"not at its source {self.source}"
            )
        if self.path.destination != self.destination:
            raise WorkloadError(
                f"packet {self.packet_id}: path ends at {self.path.destination}, "
                f"not at its destination {self.destination}"
            )


class RoutingProblem:
    """A network plus ``N`` packets with preselected paths.

    Enforces the paper's model: at most one packet per source node, and no
    zero-length packets (a packet whose source equals its destination needs
    no routing and would break injection-in-isolation accounting).
    """

    def __init__(
        self,
        net: LeveledNetwork,
        packets: Sequence[PacketSpec],
        allow_multi_source: bool = False,
    ) -> None:
        self.net = net
        self.packets: Tuple[PacketSpec, ...] = tuple(packets)
        for index, spec in enumerate(self.packets):
            if spec.packet_id != index:
                raise WorkloadError(
                    f"packet ids must be dense 0..N-1; slot {index} holds "
                    f"id {spec.packet_id}"
                )
            if len(spec.path) == 0:
                raise WorkloadError(
                    f"packet {index} has a zero-length path (source == dest)"
                )
        if not allow_multi_source:
            seen: set[NodeId] = set()
            for spec in self.packets:
                if spec.source in seen:
                    raise WorkloadError(
                        f"two packets share source node {spec.source}; the "
                        "paper's model injects at most one packet per node"
                    )
                seen.add(spec.source)
        #: optional per-packet injection times (repro.traffic.ArrivalSchedule);
        #: engines gate eligibility on it when present
        self.arrival_schedule = None

    # ------------------------------------------------------------- accessors

    @property
    def num_packets(self) -> int:
        """The paper's ``N``."""
        return len(self.packets)

    def __len__(self) -> int:
        return len(self.packets)

    def __iter__(self) -> Iterator[PacketSpec]:
        return iter(self.packets)

    def __getitem__(self, packet_id: PacketId) -> PacketSpec:
        return self.packets[packet_id]

    # ---------------------------------------------------------------- stats

    def edge_congestion(self) -> List[int]:
        """Per-edge packet counts of the preselected paths."""
        counts = [0] * self.net.num_edges
        for spec in self.packets:
            for e in spec.path.edges:
                counts[e] += 1
        return counts

    @property
    def congestion(self) -> int:
        """The paper's ``C``: max packets crossing any single edge."""
        counts = self.edge_congestion()
        return max(counts) if counts else 0

    @property
    def dilation(self) -> int:
        """The paper's ``D``: maximum preselected path length."""
        return max((len(spec.path) for spec in self.packets), default=0)

    @property
    def lower_bound(self) -> int:
        """The trivial routing lower bound ``max(C, D) = Θ(C + D)``."""
        return max(self.congestion, self.dilation)

    def describe(self) -> str:
        """One-line description used in experiment reports."""
        return (
            f"{self.net.name}: N={self.num_packets} C={self.congestion} "
            f"D={self.dilation} L={self.net.depth}"
        )
