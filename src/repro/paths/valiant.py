"""Valiant-style two-phase random-intermediate path selection.

Routing every packet through a uniformly random intermediate node on a
middle level smooths worst-case endpoint patterns into average-case
congestion; classic for butterflies and other regular leveled networks.
Included because the scaling experiments need workloads whose congestion is
close to the bandwidth lower bound rather than endpoint-driven.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..errors import PathError
from ..net import LeveledNetwork
from ..rng import RngLike, make_rng
from ..types import NodeId
from .path import Path, random_monotone_path
from .problem import PacketSpec, RoutingProblem


def valiant_path(
    net: LeveledNetwork,
    source: NodeId,
    destination: NodeId,
    rng,
    intermediate_level: int | None = None,
) -> Path:
    """Path through a random feasible node on an intermediate level.

    The intermediate level defaults to the midpoint of the source and
    destination levels.  The intermediate node is drawn uniformly from nodes
    on that level that are forward-reachable from the source *and* can reach
    the destination; raises :class:`~repro.errors.PathError` if none exists.
    """
    src_level = net.level(source)
    dst_level = net.level(destination)
    if dst_level < src_level:
        raise PathError("valiant paths go from lower to higher levels")
    mid = (
        intermediate_level
        if intermediate_level is not None
        else (src_level + dst_level) // 2
    )
    if not src_level <= mid <= dst_level:
        raise PathError(
            f"intermediate level {mid} outside [{src_level}, {dst_level}]"
        )
    ahead = net.forward_reachable(source)
    behind = net.backward_reachable(destination)
    candidates = [
        v for v in net.nodes_at_level(mid) if v in ahead and v in behind
    ]
    if not candidates:
        raise PathError(
            f"no feasible intermediate on level {mid} between "
            f"{source} and {destination}"
        )
    via = candidates[int(rng.integers(0, len(candidates)))]
    first = random_monotone_path(net, source, via, rng)
    second = random_monotone_path(net, via, destination, rng)
    return Path(net, first.edges + second.edges, source=source)


def select_paths_valiant(
    net: LeveledNetwork,
    endpoints: Sequence[Tuple[NodeId, NodeId]],
    seed: RngLike = None,
    intermediate_level: int | None = None,
) -> RoutingProblem:
    """Valiant paths for every endpoint pair."""
    rng = make_rng(seed)
    specs = [
        PacketSpec(
            k, src, dst, valiant_path(net, src, dst, rng, intermediate_level)
        )
        for k, (src, dst) in enumerate(endpoints)
    ]
    return RoutingProblem(net, specs)
