"""Mesh path construction for the paper's Section 5 application.

"In [16] the authors describe how to obtain optimal paths for the n x n mesh
with congestion and dilation n, and our algorithm can be used to route these
packets with time close to the optimal up to polylogarithmic factors."

We substitute dimension-order (row-then-column) monotone paths: for a
monotone problem on an ``n x n`` mesh they give dilation ``D <= 2(n-1)`` and
congestion ``C <= n`` per class of packets turning at a column (each column
edge carries at most the ``n`` packets of its column's row band), i.e. both
``O(n)`` — exactly the property Section 5 needs (see DESIGN.md, Section 6).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..errors import PathError
from ..net import LeveledNetwork, mesh_coords, mesh_node
from ..types import NodeId
from .path import Path
from .problem import PacketSpec, RoutingProblem


def is_monotone_pair(
    net: LeveledNetwork, source: NodeId, destination: NodeId
) -> bool:
    """Whether destination is weakly down-right of source (NW orientation)."""
    si, sj = mesh_coords(net, source)
    di, dj = mesh_coords(net, destination)
    return di >= si and dj >= sj


def dimension_order_path(
    net: LeveledNetwork,
    source: NodeId,
    destination: NodeId,
    row_first: bool = True,
) -> Path:
    """Row-then-column (or column-then-row) monotone path on a NW mesh.

    Raises :class:`~repro.errors.PathError` for non-monotone pairs; general
    mesh problems must first be decomposed into the four monotone classes
    (see ``examples/mesh_routing.py``).
    """
    si, sj = mesh_coords(net, source)
    di, dj = mesh_coords(net, destination)
    if di < si or dj < sj:
        raise PathError(
            f"({si},{sj}) -> ({di},{dj}) is not monotone for this orientation"
        )
    edges = []
    i, j = si, sj
    if row_first:
        while j < dj:
            edges.append(net.find_edge(mesh_node(net, i, j), mesh_node(net, i, j + 1)))
            j += 1
        while i < di:
            edges.append(net.find_edge(mesh_node(net, i, j), mesh_node(net, i + 1, j)))
            i += 1
    else:
        while i < di:
            edges.append(net.find_edge(mesh_node(net, i, j), mesh_node(net, i + 1, j)))
            i += 1
        while j < dj:
            edges.append(net.find_edge(mesh_node(net, i, j), mesh_node(net, i, j + 1)))
            j += 1
    return Path(net, edges, source=source)


def select_paths_dimension_order(
    net: LeveledNetwork,
    endpoints: Sequence[Tuple[NodeId, NodeId]],
    row_first: bool = True,
) -> RoutingProblem:
    """Dimension-order paths for a monotone mesh problem.

    For a (partial) permutation this yields ``C <= 2n`` and ``D <= 2(n-1)``
    on an ``n x n`` mesh — the ``O(n)`` path family of Section 5.
    """
    specs = [
        PacketSpec(k, src, dst, dimension_order_path(net, src, dst, row_first))
        for k, (src, dst) in enumerate(endpoints)
    ]
    return RoutingProblem(net, specs)


def monotone_classes(
    net: LeveledNetwork, endpoints: Sequence[Tuple[NodeId, NodeId]]
) -> List[List[Tuple[NodeId, NodeId]]]:
    """Split arbitrary mesh endpoint pairs into the 4 monotone classes.

    Class order: (down-right, down-left, up-right, up-left) relative to grid
    coordinates.  Each class is monotone for one of the paper's four corner
    orientations of the mesh; pairs on a shared row/column go to the first
    class that fits.
    """
    classes: List[List[Tuple[NodeId, NodeId]]] = [[], [], [], []]
    for src, dst in endpoints:
        si, sj = mesh_coords(net, src)
        di, dj = mesh_coords(net, dst)
        down = di >= si
        right = dj >= sj
        if down and right:
            classes[0].append((src, dst))
        elif down:
            classes[1].append((src, dst))
        elif right:
            classes[2].append((src, dst))
        else:
            classes[3].append((src, dst))
    return classes
