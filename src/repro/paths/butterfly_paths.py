"""Bit-fixing paths on the butterfly.

From level-0 row ``r`` to level-``dim`` row ``r'`` there is a *unique* path
in the butterfly: at level ``l`` take the straight edge if bit ``dim-1-l``
of ``r`` and ``r'`` agree, else the cross edge.  Uniqueness makes the
butterfly the canonical congestion testbed: the congestion of a workload is
fully determined by its endpoints, and random many-to-one endpoint sets give
``C = Θ(log N / log log N)`` w.h.p. while hot-spot sets drive ``C`` up to
``N``.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..errors import PathError
from ..net import LeveledNetwork, butterfly_node
from ..types import NodeId
from .path import Path
from .problem import PacketSpec, RoutingProblem


def _butterfly_coord(net: LeveledNetwork, node: NodeId) -> Tuple[int, int]:
    label = net.label(node)
    if not (isinstance(label, tuple) and len(label) == 3 and label[0] == "bf"):
        raise PathError(f"node {node} is not a butterfly node (label {label!r})")
    return label[1], label[2]


def bit_fixing_path(
    net: LeveledNetwork, source: NodeId, destination: NodeId
) -> Path:
    """The unique monotone butterfly path between two nodes.

    Works for any source/destination levels ``l_s <= l_d``: only the bits at
    positions ``dim-1-l`` for ``l in [l_s, l_d)`` are fixed en route, so the
    destination row must agree with the source row outside that bit window.
    """
    dim = net.depth
    src_level, src_row = _butterfly_coord(net, source)
    dst_level, dst_row = _butterfly_coord(net, destination)
    if dst_level < src_level:
        raise PathError("butterfly paths go from lower to higher levels")
    fixable = 0
    for level in range(src_level, dst_level):
        fixable |= 1 << (dim - 1 - level)
    if (src_row ^ dst_row) & ~fixable:
        raise PathError(
            f"row {dst_row} unreachable from row {src_row} between levels "
            f"{src_level} and {dst_level}"
        )
    edges = []
    row = src_row
    for level in range(src_level, dst_level):
        bit = 1 << (dim - 1 - level)
        next_row = (row & ~bit) | (dst_row & bit)
        edges.append(
            net.find_edge(
                butterfly_node(net, level, row),
                butterfly_node(net, level + 1, next_row),
            )
        )
        row = next_row
    return Path(net, edges, source=source)


def select_paths_bit_fixing(
    net: LeveledNetwork, endpoints: Sequence[Tuple[NodeId, NodeId]]
) -> RoutingProblem:
    """Bit-fixing paths for every endpoint pair on a butterfly."""
    specs = [
        PacketSpec(k, src, dst, bit_fixing_path(net, src, dst))
        for k, (src, dst) in enumerate(endpoints)
    ]
    return RoutingProblem(net, specs)
