"""Path-selection strategies for generic leveled networks.

The paper assumes paths are given; these selectors produce them.  Besides
uniform random monotone paths, :func:`select_paths_bottleneck` implements a
greedy congestion-minimizing selection (route packets one by one, each along
a path minimizing the maximum resulting edge load — computable exactly on a
leveled DAG by a min-bottleneck dynamic program), which is how the scaling
experiments hold ``C`` down while sweeping ``L`` and vice versa.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..errors import PathError
from ..net import LeveledNetwork
from ..rng import RngLike, make_rng, shuffled
from ..types import EdgeId, NodeId
from .path import Path, random_monotone_path
from .problem import PacketSpec, RoutingProblem


def select_paths_random(
    net: LeveledNetwork,
    endpoints: Sequence[Tuple[NodeId, NodeId]],
    seed: RngLike = None,
) -> RoutingProblem:
    """Give every (source, destination) pair a random monotone path."""
    rng = make_rng(seed)
    specs = [
        PacketSpec(k, src, dst, random_monotone_path(net, src, dst, rng))
        for k, (src, dst) in enumerate(endpoints)
    ]
    return RoutingProblem(net, specs)


def min_bottleneck_path(
    net: LeveledNetwork,
    source: NodeId,
    destination: NodeId,
    load: Sequence[int],
    rng=None,
) -> Path:
    """A source->destination path minimizing ``max(load[e] + 1)`` over edges.

    Dynamic program backward from the destination over the leveled DAG:
    ``best[v]`` is the smallest achievable bottleneck from ``v`` to the
    destination.  Ties broken randomly when ``rng`` is given, else by edge id.
    """
    feasible = net.backward_reachable(destination)
    if source not in feasible:
        raise PathError(f"no forward path from {source} to {destination}")
    best: dict[NodeId, int] = {destination: 0}
    # Process feasible nodes from the destination's level downward.
    by_level: dict[int, List[NodeId]] = {}
    for v in feasible:
        by_level.setdefault(net.level(v), []).append(v)
    for level in range(net.level(destination) - 1, net.level(source) - 1, -1):
        for v in by_level.get(level, ()):
            value = None
            for e in net.out_edges(v):
                head = net.edge_dst(e)
                if head in best:
                    candidate = max(load[e] + 1, best[head])
                    if value is None or candidate < value:
                        value = candidate
            if value is not None:
                best[v] = value
    if source not in best:  # pragma: no cover - feasibility guarantees this
        raise PathError(f"no forward path from {source} to {destination}")

    edges: List[EdgeId] = []
    here = source
    while here != destination:
        options = [
            e
            for e in net.out_edges(here)
            if net.edge_dst(e) in best
            and max(load[e] + 1, best[net.edge_dst(e)]) == best[here]
        ]
        pick = (
            options[int(rng.integers(0, len(options)))]
            if rng is not None and len(options) > 1
            else options[0]
        )
        edges.append(pick)
        here = net.edge_dst(pick)
    return Path(net, edges, source=source)


def select_paths_bottleneck(
    net: LeveledNetwork,
    endpoints: Sequence[Tuple[NodeId, NodeId]],
    seed: RngLike = None,
) -> RoutingProblem:
    """Greedy congestion-minimizing selection over all packets.

    Packets are processed in random order; each takes a min-bottleneck path
    against the load of the already-routed packets.  Not optimal in general
    but close in practice, and deterministic given the seed.
    """
    rng = make_rng(seed)
    load = [0] * net.num_edges
    order = shuffled(rng, range(len(endpoints)))
    chosen: List[Optional[Path]] = [None] * len(endpoints)
    for k in order:
        src, dst = endpoints[k]
        path = min_bottleneck_path(net, src, dst, load, rng=rng)
        chosen[k] = path
        for e in path.edges:
            load[e] += 1
    specs = [
        PacketSpec(k, endpoints[k][0], endpoints[k][1], path)
        for k, path in enumerate(chosen)
        if path is not None
    ]
    return RoutingProblem(net, specs)


def paths_through_edge(
    net: LeveledNetwork,
    edge: EdgeId,
    sources: Sequence[NodeId],
    destinations: Sequence[NodeId],
    seed: RngLike = None,
) -> RoutingProblem:
    """Route packet ``k`` from ``sources[k]`` to ``destinations[k]`` *through*
    the given edge.

    Used by adversarial workloads that force congestion ``C = N`` on one
    edge.  Each source must reach the edge tail and each destination must be
    reachable from the edge head.
    """
    if len(sources) != len(destinations):
        raise PathError("sources and destinations must align")
    rng = make_rng(seed)
    tail, head = net.edge_endpoints(edge)
    specs = []
    for k, (src, dst) in enumerate(zip(sources, destinations)):
        before = random_monotone_path(net, src, tail, rng)
        after = random_monotone_path(net, head, dst, rng)
        combined = Path(net, before.edges + (edge,) + after.edges, source=src)
        specs.append(PacketSpec(k, src, dst, combined))
    return RoutingProblem(net, specs)
