"""Valid leveled paths (the paper's Section 2.2).

A *valid path* is an edge sequence whose nodes sit on consecutive,
increasing levels.  :class:`Path` is the immutable preselected path stored
"in the header of a packet ... in the form of a list of edges which we refer
to as the path list"; the mutable per-packet *current path* lives in
:class:`repro.sim.packet.Packet` and follows the pop/prepend bookkeeping of
Section 2.3.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

from ..errors import PathError
from ..net import LeveledNetwork
from ..types import EdgeId, NodeId


class Path:
    """An immutable valid path through a leveled network.

    Parameters
    ----------
    net:
        The network the path lives in.
    edges:
        Edge-id sequence; must chain head-to-tail through consecutive
        ascending levels or :class:`~repro.errors.PathError` is raised.
    source:
        Required when ``edges`` is empty (a zero-length path needs to know
        its single node); otherwise inferred and cross-checked.
    """

    __slots__ = ("_edges", "_nodes")

    def __init__(
        self,
        net: LeveledNetwork,
        edges: Sequence[EdgeId],
        source: NodeId | None = None,
    ) -> None:
        edge_tuple = tuple(edges)
        if not edge_tuple:
            if source is None:
                raise PathError("an empty path needs an explicit source node")
            self._edges: Tuple[EdgeId, ...] = ()
            self._nodes: Tuple[NodeId, ...] = (source,)
            return
        nodes: List[NodeId] = [net.edge_src(edge_tuple[0])]
        for e in edge_tuple:
            src, dst = net.edge_endpoints(e)
            if src != nodes[-1]:
                raise PathError(
                    f"edge {e} starts at node {src}, expected {nodes[-1]}"
                )
            nodes.append(dst)
        if source is not None and source != nodes[0]:
            raise PathError(f"path starts at {nodes[0]}, caller claimed {source}")
        self._edges = edge_tuple
        self._nodes = tuple(nodes)

    # ------------------------------------------------------------- accessors

    @property
    def edges(self) -> Tuple[EdgeId, ...]:
        """The edge-id sequence (the paper's "path list")."""
        return self._edges

    @property
    def nodes(self) -> Tuple[NodeId, ...]:
        """Node sequence, one longer than the edge sequence."""
        return self._nodes

    @property
    def source(self) -> NodeId:
        """First node."""
        return self._nodes[0]

    @property
    def destination(self) -> NodeId:
        """Last node."""
        return self._nodes[-1]

    def __len__(self) -> int:
        """Path length = number of edges (the paper's definition)."""
        return len(self._edges)

    def __iter__(self) -> Iterator[EdgeId]:
        return iter(self._edges)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Path)
            and self._edges == other._edges
            and self._nodes[0] == other._nodes[0]
        )

    def __hash__(self) -> int:
        return hash((self._edges, self._nodes[0]))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Path {self.source}->{self.destination} len={len(self)}>"
        )

    # ------------------------------------------------------------ operations

    def node_at_level(self, net: LeveledNetwork, level: int) -> NodeId | None:
        """The node where this path crosses ``level``, or ``None``.

        A valid path visits each level at most once, so the crossing node is
        unique; this is how a packet finds its *target node* when the target
        level lies on its current path (Section 2.5).
        """
        lo = net.level(self._nodes[0])
        hi = net.level(self._nodes[-1])
        if not lo <= level <= hi:
            return None
        return self._nodes[level - lo]

    def subpath_from(self, net: LeveledNetwork, node: NodeId) -> "Path":
        """The suffix starting at ``node`` (must lie on the path)."""
        try:
            index = self._nodes.index(node)
        except ValueError:
            raise PathError(f"node {node} not on path") from None
        return Path(net, self._edges[index:], source=node)

    def contains_edge(self, edge: EdgeId) -> bool:
        """Whether the given edge appears on the path."""
        return edge in self._edges


def is_valid_edge_sequence(
    net: LeveledNetwork, edges: Sequence[EdgeId], source: NodeId
) -> bool:
    """Check the paper's validity condition on a raw edge list.

    ``True`` iff starting from ``source`` every edge continues from the
    previous endpoint toward the next higher level.  Used by the invariant
    auditor on packets' *current* paths (which must stay valid throughout
    routing by Lemma 2.1).
    """
    here = source
    for e in edges:
        src, dst = net.edge_endpoints(e)
        if src != here:
            return False
        here = dst
    return True


def random_monotone_path(
    net: LeveledNetwork,
    source: NodeId,
    destination: NodeId,
    rng,
) -> Path:
    """Sample a uniformly *locally* random valid path from source to dest.

    Walk forward, at each node choosing uniformly among outgoing edges whose
    head can still reach the destination (computed from one backward BFS).
    Raises :class:`~repro.errors.PathError` when no valid path exists.
    """
    if net.level(destination) < net.level(source):
        raise PathError(
            f"destination level {net.level(destination)} below source level "
            f"{net.level(source)}; leveled paths only go forward"
        )
    feasible = net.backward_reachable(destination)
    if source not in feasible:
        raise PathError(f"no forward path from {source} to {destination}")
    edges: List[EdgeId] = []
    here = source
    while here != destination:
        options = [e for e in net.out_edges(here) if net.edge_dst(e) in feasible]
        if not options:  # pragma: no cover - feasibility guarantees options
            raise PathError(f"dead end at node {here}")
        pick = options[int(rng.integers(0, len(options)))] if len(options) > 1 else options[0]
        edges.append(pick)
        here = net.edge_dst(pick)
    return Path(net, edges, source=source)


def first_monotone_path(
    net: LeveledNetwork, source: NodeId, destination: NodeId
) -> Path:
    """Deterministic variant of :func:`random_monotone_path` (first option)."""
    feasible = net.backward_reachable(destination)
    if source not in feasible:
        raise PathError(f"no forward path from {source} to {destination}")
    edges: List[EdgeId] = []
    here = source
    while here != destination:
        for e in net.out_edges(here):
            if net.edge_dst(e) in feasible:
                edges.append(e)
                here = net.edge_dst(e)
                break
        else:  # pragma: no cover - feasibility guarantees an option
            raise PathError(f"dead end at node {here}")
    return Path(net, edges, source=source)
