"""Plugin registries for the scenario layer.

A :class:`Registry` maps stable string names to builder callables, so the
components of a routing experiment — topology, workload, path selector,
routing backend — can be named in data (a :class:`~repro.scenarios.RunSpec`)
instead of being wired in code.  Registries are plain dictionaries with two
additions that keep them pleasant at the CLI boundary:

* **aliases** — one callable may answer to several names (``fattree`` and
  ``fat_tree``) without being listed twice;
* **suggestions** — a failed lookup raises :class:`UnknownNameError` (a
  :class:`~repro.errors.ReproError`) that lists every registered name and
  the closest match by edit distance, so a typo in a JSON spec is a
  one-glance fix.
"""

from __future__ import annotations

import difflib
from typing import Callable, Dict, Iterable, List, Optional

from ..errors import ReproError


class UnknownNameError(ReproError):
    """A registry lookup failed; the message lists the available names."""

    def __init__(self, kind: str, name: str, available: Iterable[str]) -> None:
        self.kind = kind
        self.name = name
        self.available = sorted(available)
        message = (
            f"unknown {kind} {name!r}; available: "
            + ", ".join(self.available)
        )
        close = difflib.get_close_matches(name, self.available, n=1)
        if close:
            message += f" (did you mean {close[0]!r}?)"
        super().__init__(message)


class Registry:
    """Name -> builder mapping for one component kind."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: Dict[str, Callable] = {}
        self._aliases: Dict[str, str] = {}

    def register(
        self, name: str, *aliases: str, **attributes
    ) -> Callable[[Callable], Callable]:
        """Decorator: register the function under ``name`` (plus aliases).

        ``attributes`` are set on the function (e.g. a backend's ``needs``),
        letting the dispatcher read per-entry metadata without a side table.
        """

        def decorate(fn: Callable) -> Callable:
            if name in self._entries or name in self._aliases:
                raise ReproError(
                    f"{self.kind} {name!r} registered twice"
                )
            for key, value in attributes.items():
                setattr(fn, key, value)
            self._entries[name] = fn
            fn.registered_name = name
            for alias in aliases:
                if alias in self._entries or alias in self._aliases:
                    raise ReproError(
                        f"{self.kind} alias {alias!r} registered twice"
                    )
                self._aliases[alias] = name
            return fn

        return decorate

    def canonical(self, name: str) -> str:
        """Resolve aliases to the canonical registered name (no lookup error)."""
        return self._aliases.get(name, name)

    def get(self, name: str) -> Callable:
        """Look up a builder; raise :class:`UnknownNameError` with hints."""
        key = self.canonical(name)
        try:
            return self._entries[key]
        except KeyError:
            raise UnknownNameError(self.kind, name, self.names()) from None

    def __contains__(self, name: str) -> bool:
        return self.canonical(name) in self._entries

    def names(self) -> List[str]:
        """Canonical registered names, sorted."""
        return sorted(self._entries)

    def describe(self) -> Dict[str, str]:
        """Name -> first docstring line, for ``repro list``."""
        out = {}
        for name in self.names():
            doc = self._entries[name].__doc__ or ""
            out[name] = doc.strip().splitlines()[0] if doc.strip() else ""
        return out


#: The five component registries of the scenario layer.  Populated by
#: :mod:`repro.scenarios.components` at import time; external code may add
#: its own entries before building specs.
TOPOLOGIES = Registry("topology")
WORKLOADS = Registry("workload")
PATH_SELECTORS = Registry("path selector")
BACKENDS = Registry("backend")
ARRIVALS = Registry("arrival process")


def closest_name(
    name: str, available: Iterable[str]
) -> Optional[str]:
    """Best fuzzy match for ``name`` among ``available`` (None if hopeless)."""
    matches = difflib.get_close_matches(name, list(available), n=1)
    return matches[0] if matches else None
