"""Result and scenario caches keyed by spec content.

Two memoization layers, both hanging off the purity of the scenario
pipeline (single-seed determinism is the repo's core invariant):

* :class:`ResultCache` — **on disk, across processes.**  Keyed by
  :meth:`RunSpec.content_hash`; the payload stores the full spec dict
  alongside the serialized :class:`~repro.sim.RunResult`, letting a hit
  verify it belongs to the requesting spec (a hash collision or
  hand-edited file degrades to a miss, never to a wrong answer).
* :class:`ScenarioCache` — **in process, within a sweep.**  Keyed by
  :meth:`RunSpec.scenario_hash`; holds materialized ``(network, geometry,
  paths)`` builds so trials that share a scenario (Monte Carlo sweeps over
  routing coins, see :meth:`RunSpec.with_pinned_scenario`) pay problem
  construction once.  Safe because trials never mutate their problem —
  the fixed-problem parallel runners have relied on that since PR 1.

The default on-disk location is ``$REPRO_CACHE_DIR`` or ``.repro_cache/``
under the current directory; sweeps and the CLI pass an explicit directory.
"""

from __future__ import annotations

import json
import os
import pathlib
from collections import OrderedDict
from typing import TYPE_CHECKING, Optional, Tuple, Union

from ..io import result_from_dict, result_to_dict
from ..sim import RunResult
from .spec import RunSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..net import LeveledNetwork
    from ..paths import RoutingProblem

PathLike = Union[str, pathlib.Path]

CACHE_ENV_VAR = "REPRO_CACHE_DIR"
DEFAULT_CACHE_DIRNAME = ".repro_cache"
CACHE_FORMAT = 1

#: Default bound on distinct warm scenarios held in memory per process.
DEFAULT_SCENARIO_CAPACITY = 32


class ScenarioCache:
    """LRU cache of materialized scenarios, keyed by scenario hash.

    One instance lives in each sweep worker (and in the parent for serial
    sweeps).  ``problem_for`` returns the *same* problem object for every
    spec sharing a scenario hash; reuse is semantically safe because
    engines and schedulers treat problems as read-only plain data.
    Networks are cached separately so network-level (dynamic) backends and
    problem builds share topology construction too.
    """

    def __init__(self, capacity: int = DEFAULT_SCENARIO_CAPACITY) -> None:
        self.capacity = max(1, int(capacity))
        self._problems: "OrderedDict[str, RoutingProblem]" = OrderedDict()
        self._networks: "OrderedDict[str, LeveledNetwork]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._problems)

    def _get(self, table: OrderedDict, key: str):
        entry = table.get(key)
        if entry is not None:
            table.move_to_end(key)
            self.hits += 1
        else:
            self.misses += 1
        return entry

    def _put(self, table: OrderedDict, key: str, value) -> None:
        table[key] = value
        if len(table) > self.capacity:
            table.popitem(last=False)

    def network_for(self, spec: RunSpec) -> "LeveledNetwork":
        """The spec's topology, built once per distinct topology content."""
        from .dispatch import build_network

        key = _network_key(spec)
        net = self._get(self._networks, key)
        if net is None:
            net = build_network(spec)
            net.geometry()  # precompute the dense tables while warm
            self._put(self._networks, key, net)
        return net

    def problem_for(self, spec: RunSpec) -> "RoutingProblem":
        """The spec's routing problem, built once per scenario hash."""
        from .dispatch import build_problem

        key = spec.scenario_hash()
        problem = self._get(self._problems, key)
        if problem is None:
            problem = build_problem(spec, net=self.network_for(spec))
            self._put(self._problems, key, problem)
        return problem

    def stats(self) -> dict:
        """Hit/miss counters plus current occupancy (for bench reports)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "problems": len(self._problems),
            "networks": len(self._networks),
        }

    def clear(self) -> None:
        """Drop every cached build (counters keep accumulating)."""
        self._problems.clear()
        self._networks.clear()


def _network_key(spec: RunSpec) -> str:
    """Cache key for the topology component alone."""
    params = dict(spec.topology_params)
    params["seed"] = spec.topology_seed()
    return json.dumps(
        {"topology": spec.topology, "params": params},
        sort_keys=True,
        separators=(",", ":"),
    )


class ResultCache:
    """Directory of ``<content_hash>.json`` result records."""

    def __init__(self, root: PathLike) -> None:
        self.root = pathlib.Path(root)

    @classmethod
    def default(cls) -> "ResultCache":
        """Cache at ``$REPRO_CACHE_DIR`` or ``./.repro_cache``."""
        root = os.environ.get(CACHE_ENV_VAR) or DEFAULT_CACHE_DIRNAME
        return cls(root)

    def path_for(self, spec: RunSpec) -> pathlib.Path:
        """The file that would hold this spec's cached result."""
        return self.root / f"{spec.content_hash()}.json"

    def load_payload(self, content_hash: str) -> Optional[dict]:
        """The raw record payload for a content hash, or None.

        No spec validation is possible from a bare hash; callers that hold
        the spec should use :meth:`load` / :meth:`load_record` instead.
        ``repro report`` uses this to render from a hash alone.
        """
        path = self.root / f"{content_hash}.json"
        if not path.exists():
            return None
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        if payload.get("kind") != "scenario_result":
            return None
        return payload

    def _validated_payload(self, spec: RunSpec) -> Optional[dict]:
        payload = self.load_payload(spec.content_hash())
        if payload is None:
            return None
        expected = spec.to_dict()
        expected.pop("name")
        stored = dict(payload.get("spec", {}))
        stored.pop("name", None)
        if stored != expected:
            # Hash collision or stale/edited record: treat as a miss.
            return None
        return payload

    def load(self, spec: RunSpec) -> Optional[RunResult]:
        """The cached result for ``spec``, or None on miss/corruption."""
        payload = self._validated_payload(spec)
        if payload is None:
            return None
        try:
            return result_from_dict(payload["result"])
        except Exception:
            return None

    def load_record(
        self, spec: RunSpec
    ) -> Optional[Tuple[RunResult, Optional[dict]]]:
        """Cached ``(result, timings)`` for ``spec``, or None on miss.

        ``timings`` is the wall-clock sidecar recorded when the result was
        produced under telemetry (None otherwise) — advisory data, kept out
        of the result itself.
        """
        payload = self._validated_payload(spec)
        if payload is None:
            return None
        try:
            result = result_from_dict(payload["result"])
        except Exception:
            return None
        return result, payload.get("timings")

    def store(
        self,
        spec: RunSpec,
        result: RunResult,
        timings: Optional[dict] = None,
    ) -> pathlib.Path:
        """Persist one result; returns the record path."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(spec)
        payload = {
            "kind": "scenario_result",
            "format": CACHE_FORMAT,
            "hash": spec.content_hash(),
            "spec": spec.to_dict(),
            "result": result_to_dict(result),
        }
        if timings is not None:
            payload["timings"] = timings
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(
            json.dumps(payload, indent=1, sort_keys=True), encoding="utf-8"
        )
        tmp.replace(path)
        return path

    def clear(self) -> int:
        """Delete every record; returns how many were removed."""
        removed = 0
        if self.root.is_dir():
            for record in self.root.glob("*.json"):
                record.unlink()
                removed += 1
        return removed
