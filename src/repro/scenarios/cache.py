"""On-disk result cache keyed by spec content hash.

Scenario runs are pure functions of their :class:`~repro.scenarios.RunSpec`
(single-seed determinism is the repo's core invariant), so results can be
memoized on disk: the cache key is :meth:`RunSpec.content_hash` and the
payload stores the full spec dict alongside the serialized
:class:`~repro.sim.RunResult`, letting a hit verify it belongs to the
requesting spec (a hash collision or hand-edited file degrades to a miss,
never to a wrong answer).

The default location is ``$REPRO_CACHE_DIR`` or ``.repro_cache/`` under the
current directory; sweeps and the CLI pass an explicit directory.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Optional, Tuple, Union

from ..io import result_from_dict, result_to_dict
from ..sim import RunResult
from .spec import RunSpec

PathLike = Union[str, pathlib.Path]

CACHE_ENV_VAR = "REPRO_CACHE_DIR"
DEFAULT_CACHE_DIRNAME = ".repro_cache"
CACHE_FORMAT = 1


class ResultCache:
    """Directory of ``<content_hash>.json`` result records."""

    def __init__(self, root: PathLike) -> None:
        self.root = pathlib.Path(root)

    @classmethod
    def default(cls) -> "ResultCache":
        """Cache at ``$REPRO_CACHE_DIR`` or ``./.repro_cache``."""
        root = os.environ.get(CACHE_ENV_VAR) or DEFAULT_CACHE_DIRNAME
        return cls(root)

    def path_for(self, spec: RunSpec) -> pathlib.Path:
        """The file that would hold this spec's cached result."""
        return self.root / f"{spec.content_hash()}.json"

    def load_payload(self, content_hash: str) -> Optional[dict]:
        """The raw record payload for a content hash, or None.

        No spec validation is possible from a bare hash; callers that hold
        the spec should use :meth:`load` / :meth:`load_record` instead.
        ``repro report`` uses this to render from a hash alone.
        """
        path = self.root / f"{content_hash}.json"
        if not path.exists():
            return None
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        if payload.get("kind") != "scenario_result":
            return None
        return payload

    def _validated_payload(self, spec: RunSpec) -> Optional[dict]:
        payload = self.load_payload(spec.content_hash())
        if payload is None:
            return None
        expected = spec.to_dict()
        expected.pop("name")
        stored = dict(payload.get("spec", {}))
        stored.pop("name", None)
        if stored != expected:
            # Hash collision or stale/edited record: treat as a miss.
            return None
        return payload

    def load(self, spec: RunSpec) -> Optional[RunResult]:
        """The cached result for ``spec``, or None on miss/corruption."""
        payload = self._validated_payload(spec)
        if payload is None:
            return None
        try:
            return result_from_dict(payload["result"])
        except Exception:
            return None

    def load_record(
        self, spec: RunSpec
    ) -> Optional[Tuple[RunResult, Optional[dict]]]:
        """Cached ``(result, timings)`` for ``spec``, or None on miss.

        ``timings`` is the wall-clock sidecar recorded when the result was
        produced under telemetry (None otherwise) — advisory data, kept out
        of the result itself.
        """
        payload = self._validated_payload(spec)
        if payload is None:
            return None
        try:
            result = result_from_dict(payload["result"])
        except Exception:
            return None
        return result, payload.get("timings")

    def store(
        self,
        spec: RunSpec,
        result: RunResult,
        timings: Optional[dict] = None,
    ) -> pathlib.Path:
        """Persist one result; returns the record path."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(spec)
        payload = {
            "kind": "scenario_result",
            "format": CACHE_FORMAT,
            "hash": spec.content_hash(),
            "spec": spec.to_dict(),
            "result": result_to_dict(result),
        }
        if timings is not None:
            payload["timings"] = timings
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(
            json.dumps(payload, indent=1, sort_keys=True), encoding="utf-8"
        )
        tmp.replace(path)
        return path

    def clear(self) -> int:
        """Delete every record; returns how many were removed."""
        removed = 0
        if self.root.is_dir():
            for record in self.root.glob("*.json"):
                record.unlink()
                removed += 1
        return removed
