"""The single ``run(spec)`` entry point over all backend families.

The dispatcher materializes a :class:`~repro.scenarios.RunSpec` in stages —
topology, workload, path selection, backend — resolving each name through
its registry, and returns the same :class:`~repro.sim.RunResult` record the
legacy hand-wired call paths produced (pinned by
``tests/test_scenarios.py``).  Batch backends consume a
:class:`~repro.paths.RoutingProblem`; dynamic backends (registered with
``needs="network"``) consume the bare network and generate their own timed
traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import ReproError
from ..net import LeveledNetwork
from ..paths import RoutingProblem
from ..sim import RunResult
from ..telemetry.context import current_session
from ..telemetry.timing import span
from ..workloads import Workload
from .registry import ARRIVALS, BACKENDS, PATH_SELECTORS, TOPOLOGIES, WORKLOADS
from .spec import RunSpec


@dataclass
class ScenarioRun:
    """Outcome of dispatching one spec."""

    spec: RunSpec
    result: RunResult
    #: invariant-audit report when the backend was asked to audit
    audit: Optional[object] = None
    #: the materialized problem (None for dynamic backends and cache hits)
    problem: Optional[RoutingProblem] = None
    #: whether the result came from the on-disk cache
    cached: bool = False
    #: wall-clock pipeline spans (repro.telemetry.TimingSpans.to_dict());
    #: machine-dependent, so they live here — never on the RunResult
    timings: Optional[dict] = None
    #: which execution path produced the result: "" for the ordinary
    #: per-trial dispatch, ``"lockstep[w=K]"`` when the stacked batch
    #: kernel ran this trial as one of K lockstep trials.  Advisory
    #: (surfaced in sweep heartbeats) — never serialized with results,
    #: so it cannot leak into record or shard byte-identity.
    executor: str = ""

    @property
    def ok(self) -> bool:
        """Delivered everything and (if audited) kept every invariant."""
        audit_ok = self.audit is None or getattr(self.audit, "ok", True)
        return self.result.all_delivered and audit_ok


def build_network(spec: RunSpec) -> LeveledNetwork:
    """Materialize the spec's topology."""
    builder = TOPOLOGIES.get(spec.topology)
    params = dict(spec.topology_params)
    params["seed"] = spec.topology_seed()
    with span("build_network"):
        return builder(**params)


def build_problem(
    spec: RunSpec, net: Optional[LeveledNetwork] = None
) -> RoutingProblem:
    """Materialize topology + workload + paths into a routing problem."""
    if net is None:
        net = build_network(spec)
    if spec.arrival:
        return _build_arrival_problem(spec, net)
    if not spec.workload:
        raise ReproError(
            f"spec {spec.name or spec.content_hash()!r} has no workload; "
            f"only network-level backends ({_network_backend_names()}) "
            "run without one"
        )
    workload_fn = WORKLOADS.get(spec.workload)
    wparams = dict(spec.workload_params)
    wparams["seed"] = spec.workload_seed()
    with span("build_workload"):
        built = workload_fn(net, **wparams)
    if isinstance(built, RoutingProblem):
        # Adversarial workloads carry their paths; a non-trivial selector
        # would silently be ignored, so reject the combination.
        if spec.selector not in ("none", "random"):
            raise ReproError(
                f"workload {spec.workload!r} already fixes its paths; "
                f"use selector 'none' (got {spec.selector!r})"
            )
        return built
    if not isinstance(built, Workload):
        raise ReproError(
            f"workload {spec.workload!r} returned "
            f"{type(built).__name__}, expected Workload or RoutingProblem"
        )
    selector = PATH_SELECTORS.get(spec.selector)
    sparams = dict(spec.selector_params)
    sparams["seed"] = spec.selector_seed()
    with span("path_selection"):
        return selector(net, built.endpoints, **sparams)


def _build_arrival_problem(
    spec: RunSpec, net: LeveledNetwork
) -> RoutingProblem:
    """Materialize an arrival process into a schedule-carrying problem.

    The source is collected over its horizon and each packet gets a random
    monotone path drawn from the selector seed, so the problem — arrival
    times included — is a pure function of the scenario fields and runs on
    any problem-level backend (reference, frontier_vec, baselines).
    """
    from ..errors import WorkloadError
    from ..traffic import collect_arrivals, problem_from_arrivals

    if spec.selector != "random":
        raise ReproError(
            f"arrival process {spec.arrival!r} draws random monotone paths; "
            f"use selector 'random' (got {spec.selector!r})"
        )
    source_fn = ARRIVALS.get(spec.arrival)
    aparams = dict(spec.arrival_params)
    aparams["seed"] = spec.arrival_seed()
    with span("build_workload"):
        source = source_fn(net, **aparams)
        arrivals = collect_arrivals(source)
    if not arrivals:
        raise WorkloadError(
            f"arrival process {spec.arrival!r} generated no arrivals on "
            f"{net.name} (rate too low?)"
        )
    with span("path_selection"):
        problem, _ = problem_from_arrivals(
            net, arrivals, seed=spec.selector_seed()
        )
    return problem


def _network_backend_names() -> str:
    names = [
        name
        for name in BACKENDS.names()
        if getattr(BACKENDS.get(name), "needs", "problem") == "network"
    ]
    return ", ".join(names)


def _dispatch(
    spec: RunSpec, problem: Optional[RoutingProblem], warm=None
) -> ScenarioRun:
    backend = BACKENDS.get(spec.backend)
    needs = getattr(backend, "needs", "problem")
    params = dict(spec.backend_params)
    if needs == "network":
        net = warm.network_for(spec) if warm is not None else build_network(spec)
        with span("backend"):
            result, audit = backend(net, spec.seed, params)
        return ScenarioRun(spec=spec, result=result, audit=audit)
    if problem is None:
        problem = (
            warm.problem_for(spec) if warm is not None else build_problem(spec)
        )
    with span("backend"):
        result, audit = backend(problem, spec.seed, params)
    return ScenarioRun(spec=spec, result=result, audit=audit, problem=problem)


def _finalize(record: ScenarioRun, session) -> ScenarioRun:
    session.finalize_result(record.result)
    record.timings = session.timings_dict()
    return record


def run_trial(
    spec: RunSpec,
    problem: Optional[RoutingProblem] = None,
    telemetry: bool = False,
    trace_path=None,
    warm=None,
) -> ScenarioRun:
    """Dispatch one spec and return the full record (result + audit).

    ``problem`` may pass a pre-materialized :func:`build_problem` output to
    avoid rebuilding (the CLI prints the instance before running it);
    callers are responsible for it matching the spec.

    ``warm`` may pass a :class:`~repro.scenarios.cache.ScenarioCache`: the
    problem (or network) is then fetched by scenario hash and built only on
    a miss, so trials sharing a scenario amortize construction.  Results
    are byte-identical with and without a warm cache — the cache only
    deduplicates pure builds (pinned by ``tests/test_scenarios.py``).

    ``telemetry=True`` (or a ``trace_path``) runs the trial under a
    :class:`~repro.telemetry.TelemetrySession`: counters land on
    ``result.telemetry``, wall-clock spans on the record's ``timings``, and
    the event stream goes to ``trace_path`` when given.  A session already
    active in this process is reused instead (its counters span every trial
    it covers).  Build spans only appear on warm-cache misses (a hit does
    no building); event counters never differ.
    """
    ambient = current_session()
    if ambient is None and (telemetry or trace_path is not None):
        from ..telemetry.session import TelemetrySession

        with TelemetrySession(
            trace_path=trace_path, spec_hash=spec.content_hash()
        ) as session:
            return _finalize(_dispatch(spec, problem, warm), session)
    record = _dispatch(spec, problem, warm)
    if ambient is not None:
        _finalize(record, ambient)
    return record


def run(spec: RunSpec) -> RunResult:
    """Run one spec end to end; the universal execution path."""
    return run_trial(spec).result


def run_cached(
    spec: RunSpec,
    cache=None,
    telemetry: bool = False,
    trace_path=None,
    warm=None,
) -> ScenarioRun:
    """Like :func:`run_trial`, backed by an on-disk result cache.

    ``cache`` is a :class:`~repro.scenarios.cache.ResultCache`, a directory
    path, or None (the default cache location).  Audit reports and
    materialized problems are not cached; a hit returns the cached result —
    including any telemetry counters stored with it — plus the recorded
    pipeline timings, without re-running anything (``repro report`` relies
    on this).  ``warm`` passes a scenario cache through to
    :func:`run_trial` for disk misses.
    """
    from .cache import ResultCache

    if cache is None:
        cache = ResultCache.default()
    elif not isinstance(cache, ResultCache):
        cache = ResultCache(cache)
    hit = cache.load_record(spec)
    if hit is not None:
        result, timings = hit
        return ScenarioRun(spec=spec, result=result, cached=True, timings=timings)
    record = run_trial(spec, telemetry=telemetry, trace_path=trace_path, warm=warm)
    cache.store(spec, record.result, timings=record.timings)
    return record
