"""Serializable run specifications.

A :class:`RunSpec` names every ingredient of one routing experiment —
topology, workload, path selection, routing backend, their parameter dicts,
and a single integer seed — as plain JSON-able data.  Two properties make
it the unit of the experiment pipeline:

* **Round-trippable.** ``RunSpec.from_dict(spec.to_dict()) == spec`` and the
  same through JSON text, so specs can live in files, CLI arguments, result
  archives, and process pools without loss.
* **Content-addressed.** :meth:`RunSpec.content_hash` is a deterministic
  function of the spec's semantic fields (the display ``name`` is excluded),
  computed via :func:`repro.rng.stable_hash_seed` over canonical JSON bytes —
  stable across processes, machines, and ``PYTHONHASHSEED`` — and keys the
  on-disk result cache.

Seed policy
-----------
``seed`` is the only RNG input.  The dispatcher derives per-component
streams with :func:`~repro.rng.stable_hash_seed`: topology
``(seed, 11)``, workload ``(seed, 12)``, path selector ``(seed, 13)`` —
the same constants the legacy instance builders used — while a component's
params may pin an explicit ``"seed"`` to override the derivation (the
catalog uses this to stay byte-identical with historical instances).
Backends receive the raw ``seed`` and apply their own legacy derivation
(see :mod:`repro.scenarios.components`).
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Union

from ..errors import ReproError
from ..rng import stable_hash_seed

PathLike = Union[str, pathlib.Path]

SPEC_KIND = "run_spec"
SPEC_FORMAT = 1

#: stable_hash_seed stream tags for the derived per-component seeds.
TOPOLOGY_SEED_TAG = 11
WORKLOAD_SEED_TAG = 12
SELECTOR_SEED_TAG = 13
ARRIVAL_SEED_TAG = 14


def _plain(value: Any) -> Any:
    """Canonicalize a params value to plain JSON types (tuples -> lists)."""
    if isinstance(value, Mapping):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if isinstance(value, (str, bool, type(None))):
        return value
    if isinstance(value, int):
        return int(value)
    if isinstance(value, float):
        return float(value)
    raise ReproError(
        f"spec params must be JSON-serializable, got {type(value).__name__}"
    )


@dataclass(frozen=True)
class RunSpec:
    """One fully specified routing experiment, as data.

    ``topology`` and ``backend`` are required registry names; ``workload``
    may be empty for backends that generate their own traffic (the dynamic
    family), and ``selector`` defaults to random monotone paths.  As an
    alternative to ``workload``, ``arrival`` names an injection process
    (``bernoulli``, ``poisson``, ``trace``): the process is materialized
    over its horizon into a schedule-carrying problem, so streaming
    scenarios hash, cache, and dispatch like batch ones and run on any
    problem-level backend.
    """

    topology: str
    backend: str
    workload: str = ""
    selector: str = "random"
    topology_params: Dict[str, Any] = field(default_factory=dict)
    workload_params: Dict[str, Any] = field(default_factory=dict)
    selector_params: Dict[str, Any] = field(default_factory=dict)
    backend_params: Dict[str, Any] = field(default_factory=dict)
    seed: int = 0
    name: str = ""
    # Appended after ``name`` so positional construction order is unchanged.
    arrival: str = ""
    arrival_params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.topology:
            raise ReproError("RunSpec requires a topology name")
        if not self.backend:
            raise ReproError("RunSpec requires a backend name")
        if self.arrival and self.workload:
            raise ReproError(
                "RunSpec takes a workload or an arrival process, not both"
            )
        if self.arrival_params and not self.arrival:
            raise ReproError("arrival_params given without an arrival process")
        # Canonicalize params so equality and hashing are representation-
        # independent (tuples vs lists, numpy ints vs ints).
        for fname in (
            "topology_params",
            "workload_params",
            "selector_params",
            "backend_params",
            "arrival_params",
        ):
            object.__setattr__(self, fname, _plain(getattr(self, fname)))
        object.__setattr__(self, "seed", int(self.seed))

    # ------------------------------------------------------------- variants

    def with_seed(self, seed: int) -> "RunSpec":
        """A copy of this spec under a different master seed."""
        return dataclasses.replace(self, seed=int(seed))

    def with_params(self, **backend_params) -> "RunSpec":
        """A copy with extra backend params merged in."""
        merged = {**self.backend_params, **backend_params}
        return dataclasses.replace(self, backend_params=merged)

    def with_pinned_scenario(self) -> "RunSpec":
        """A copy whose component seeds are pinned to their resolved values.

        After pinning, changing ``seed`` re-randomizes only what the backend
        draws (frontier-set assignment, arbitration tie-breaks) — the
        topology, workload, and selected paths stay byte-identical, which is
        the Monte Carlo design of the paper's probabilistic guarantees: many
        coin flips over one fixed instance.  All pinned variants share a
        :meth:`scenario_hash`, so sweeps over them hit the warm scenario
        cache after the first build.
        """
        pinned = dataclasses.replace(
            self,
            topology_params={**self.topology_params, "seed": self.topology_seed()},
            workload_params={**self.workload_params, "seed": self.workload_seed()},
            selector_params={**self.selector_params, "seed": self.selector_seed()},
        )
        if self.arrival:
            pinned = dataclasses.replace(
                pinned,
                arrival_params={**self.arrival_params, "seed": self.arrival_seed()},
            )
        return pinned

    # -------------------------------------------------------- derived seeds

    def topology_seed(self) -> int:
        """Seed for topology generation (explicit param wins)."""
        explicit = self.topology_params.get("seed")
        return (
            int(explicit)
            if explicit is not None
            else stable_hash_seed(self.seed, TOPOLOGY_SEED_TAG)
        )

    def workload_seed(self) -> int:
        """Seed for workload sampling (explicit param wins)."""
        explicit = self.workload_params.get("seed")
        return (
            int(explicit)
            if explicit is not None
            else stable_hash_seed(self.seed, WORKLOAD_SEED_TAG)
        )

    def selector_seed(self) -> int:
        """Seed for path selection (explicit param wins)."""
        explicit = self.selector_params.get("seed")
        return (
            int(explicit)
            if explicit is not None
            else stable_hash_seed(self.seed, SELECTOR_SEED_TAG)
        )

    def arrival_seed(self) -> int:
        """Seed for the arrival process (explicit param wins)."""
        explicit = self.arrival_params.get("seed")
        return (
            int(explicit)
            if explicit is not None
            else stable_hash_seed(self.seed, ARRIVAL_SEED_TAG)
        )

    # -------------------------------------------------------- serialization

    def to_dict(self) -> dict:
        """Plain-dict form (canonical field order, JSON-safe values)."""
        record = {
            "kind": SPEC_KIND,
            "format": SPEC_FORMAT,
            "name": self.name,
            "topology": self.topology,
            "topology_params": _plain(self.topology_params),
            "workload": self.workload,
            "workload_params": _plain(self.workload_params),
            "selector": self.selector,
            "selector_params": _plain(self.selector_params),
            "backend": self.backend,
            "backend_params": _plain(self.backend_params),
            "seed": self.seed,
        }
        # Emitted (and hashed) only when set, so every pre-existing spec
        # keeps its serialized form and content hash.
        if self.arrival:
            record["arrival"] = self.arrival
            record["arrival_params"] = _plain(self.arrival_params)
        return record

    @classmethod
    def from_dict(cls, data: Mapping) -> "RunSpec":
        """Inverse of :meth:`to_dict`; rejects unknown keys (typo guard)."""
        if not isinstance(data, Mapping):
            raise ReproError(
                f"run spec must be a JSON object, got {type(data).__name__}"
            )
        kind = data.get("kind", SPEC_KIND)
        if kind != SPEC_KIND:
            raise ReproError(f"not a run spec: kind={kind!r}")
        known = {
            "kind",
            "format",
            "name",
            "topology",
            "topology_params",
            "workload",
            "workload_params",
            "selector",
            "selector_params",
            "backend",
            "backend_params",
            "seed",
            "arrival",
            "arrival_params",
        }
        unknown = set(data) - known
        if unknown:
            raise ReproError(
                f"unknown run-spec keys: {sorted(unknown)} "
                f"(known: {sorted(known)})"
            )
        if "topology" not in data or "backend" not in data:
            raise ReproError("run spec requires 'topology' and 'backend'")
        return cls(
            topology=data["topology"],
            backend=data["backend"],
            workload=data.get("workload", ""),
            selector=data.get("selector", "random"),
            topology_params=dict(data.get("topology_params", {})),
            workload_params=dict(data.get("workload_params", {})),
            selector_params=dict(data.get("selector_params", {})),
            backend_params=dict(data.get("backend_params", {})),
            seed=int(data.get("seed", 0)),
            name=data.get("name", ""),
            arrival=data.get("arrival", ""),
            arrival_params=dict(data.get("arrival_params", {})),
        )

    def to_json(self, indent: Optional[int] = 1) -> str:
        """JSON text form (stable key order)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        """Parse JSON text produced by :meth:`to_json` (or hand-written)."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ReproError(f"run spec is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    # --------------------------------------------------------------- hashing

    def hash_payload(self) -> bytes:
        """Canonical JSON bytes of the semantic fields (``name`` excluded)."""
        record = self.to_dict()
        record.pop("name")
        return json.dumps(
            record, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")

    def content_hash(self) -> str:
        """Deterministic 16-hex-digit content address of this spec.

        Stable across processes and machines (no ``PYTHONHASHSEED``
        dependence): the canonical JSON bytes are folded through
        :func:`repro.rng.stable_hash_seed`.  Memoized per instance — the
        spec is frozen, so the hash can never go stale, and sweep hot
        paths (shard writers, lockstep grouping) ask repeatedly.
        """
        cached = self.__dict__.get("_content_hash_cache")
        if cached is None:
            payload = self.hash_payload()
            cached = format(stable_hash_seed(len(payload), *payload), "016x")
            object.__setattr__(self, "_content_hash_cache", cached)
        return cached

    def scenario_payload(self) -> bytes:
        """Canonical JSON bytes of the *problem-determining* fields.

        The materialized instance — network, geometry, workload endpoints,
        selected paths — is a pure function of the topology / workload /
        selector names, their params, and the three *resolved* component
        seeds.  The backend, its params, and the master ``seed`` (which the
        backend alone consumes once component seeds are resolved) are
        excluded: two specs with equal scenario payloads build identical
        :class:`~repro.paths.RoutingProblem` instances even when their
        routing coins differ.
        """
        # Each component hashes the exact params its builder receives (the
        # dispatcher merges the resolved seed in), so a pinned spec and its
        # unpinned original share a scenario hash.
        record = {
            "topology": self.topology,
            "topology_params": _plain(
                {**self.topology_params, "seed": self.topology_seed()}
            ),
            "workload": self.workload,
            "workload_params": _plain(
                {**self.workload_params, "seed": self.workload_seed()}
            ),
            "selector": self.selector,
            "selector_params": _plain(
                {**self.selector_params, "seed": self.selector_seed()}
            ),
        }
        if self.arrival:
            record["arrival"] = self.arrival
            record["arrival_params"] = _plain(
                {**self.arrival_params, "seed": self.arrival_seed()}
            )
        return json.dumps(
            record, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")

    def scenario_hash(self) -> str:
        """16-hex-digit address of the problem this spec materializes.

        Keys the in-process warm scenario cache
        (:class:`~repro.scenarios.cache.ScenarioCache`): specs sharing a
        scenario hash share one ``(network, geometry, paths)`` build.
        Memoized per instance like :meth:`content_hash`.
        """
        cached = self.__dict__.get("_scenario_hash_cache")
        if cached is None:
            payload = self.scenario_payload()
            cached = format(stable_hash_seed(len(payload), *payload), "016x")
            object.__setattr__(self, "_scenario_hash_cache", cached)
        return cached

    def describe(self) -> str:
        """One-line human summary."""
        label = self.name or "spec"
        wl = self.workload or (f"~{self.arrival}" if self.arrival else "-")
        return (
            f"{label}: {self.topology} / {wl} / {self.selector} "
            f"-> {self.backend} (seed {self.seed}, {self.content_hash()})"
        )


def save_spec(spec: RunSpec, path: PathLike) -> None:
    """Write a spec as a JSON file."""
    pathlib.Path(path).write_text(spec.to_json() + "\n", encoding="utf-8")


def load_spec(path: PathLike) -> RunSpec:
    """Load a spec from a JSON file written by :func:`save_spec`."""
    target = pathlib.Path(path)
    if not target.exists():
        raise ReproError(f"spec file not found: {target}")
    return RunSpec.from_json(target.read_text(encoding="utf-8"))
