"""The scenario layer: named, serializable, cacheable experiment specs.

Every execution path in the repo — the frontier algorithm, the deflection
and buffered baselines, and dynamic continuous-injection routing — runs
through one pipeline::

    RunSpec  --build_network-->  LeveledNetwork
             --workload/selector-->  RoutingProblem
             --backend-->  RunResult

Components are resolved by name through five plugin registries
(:data:`TOPOLOGIES`, :data:`WORKLOADS`, :data:`ARRIVALS`,
:data:`PATH_SELECTORS`, :data:`BACKENDS`); a :class:`RunSpec` is frozen,
JSON-round-trippable data
with a stable content hash, so scenarios can be cataloged, shipped as
files, fanned across process pools, and memoized on disk
(:class:`ResultCache`).  See docs/architecture.md for the full picture.
"""

from .registry import (
    ARRIVALS,
    BACKENDS,
    PATH_SELECTORS,
    TOPOLOGIES,
    WORKLOADS,
    Registry,
    UnknownNameError,
)
from .spec import RunSpec, load_spec, save_spec
from .dispatch import (
    ScenarioRun,
    build_network,
    build_problem,
    run,
    run_cached,
    run_trial,
)
from .cache import CACHE_ENV_VAR, ResultCache, ScenarioCache
from . import components  # noqa: F401  (populates the registries on import)

__all__ = [
    "Registry",
    "UnknownNameError",
    "TOPOLOGIES",
    "WORKLOADS",
    "ARRIVALS",
    "PATH_SELECTORS",
    "BACKENDS",
    "RunSpec",
    "load_spec",
    "save_spec",
    "ScenarioRun",
    "build_network",
    "build_problem",
    "run",
    "run_trial",
    "run_cached",
    "ResultCache",
    "ScenarioCache",
    "CACHE_ENV_VAR",
]
