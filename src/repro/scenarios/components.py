"""Registry entries for every built-in topology, workload, selector, backend.

Importing this module (which :mod:`repro.scenarios` does automatically)
populates the four registries with wrappers over the existing builders in
:mod:`repro.net`, :mod:`repro.workloads`, :mod:`repro.paths`,
:mod:`repro.baselines`, :mod:`repro.core`, and :mod:`repro.dynamic`.

Conventions
-----------
* **Topology** entries: ``fn(*, seed, **params) -> LeveledNetwork``.
  Deterministic topologies accept and ignore ``seed``.
* **Workload** entries: ``fn(net, *, seed, **params)`` returning either a
  :class:`~repro.workloads.Workload` (endpoints; paths still to be chosen)
  or a full :class:`~repro.paths.RoutingProblem` (adversarial workloads
  where the paths *are* the point).
* **Path-selector** entries: ``fn(net, endpoints, *, seed, **params) ->
  RoutingProblem``.
* **Backend** entries: ``fn(problem, seed, params) -> (RunResult, audit)``
  for the batch families, mirroring each family's legacy call path
  seed-for-seed (the parametrized equality tests in
  ``tests/test_scenarios.py`` pin this).  Backends registered with
  ``needs="network"`` (the dynamic family) instead receive the bare
  network and generate their own timed traffic, exactly like the legacy
  ``repro dynamic`` command.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..errors import ReproError, WorkloadError
from ..net import (
    benes,
    butterfly,
    complete_binary_tree,
    diamond,
    fat_tree,
    hypercube,
    layered_complete,
    line,
    mesh,
    multidim_array,
    omega_network,
    random_leveled,
)
from ..paths import (
    select_paths_bit_fixing,
    select_paths_bottleneck,
    select_paths_dimension_order,
    select_paths_random,
    select_paths_valiant,
)
from ..workloads import (
    butterfly_workloads,
    funnel_through_edge,
    hotspot,
    level_to_level,
    mesh_workloads,
    random_many_to_one,
    single_destination,
)
from ..workloads.generators import end_to_end_permutation
from .registry import ARRIVALS, BACKENDS, PATH_SELECTORS, TOPOLOGIES, WORKLOADS

# --------------------------------------------------------------- topologies


@TOPOLOGIES.register("butterfly")
def _topology_butterfly(*, dim: int, seed=None):
    """Wrapped butterfly of the given dimension (2^dim rows)."""
    return butterfly(int(dim))


@TOPOLOGIES.register("mesh")
def _topology_mesh(*, rows: int, cols: Optional[int] = None, seed=None):
    """n x m mesh in its NORTH_WEST leveled orientation."""
    return mesh(int(rows), int(cols if cols is not None else rows))


@TOPOLOGIES.register("hypercube")
def _topology_hypercube(*, dim: int, seed=None):
    """Leveled (unrolled) hypercube of the given dimension."""
    return hypercube(int(dim))


@TOPOLOGIES.register("line")
def _topology_line(*, length: int, seed=None):
    """Path network with one node per level."""
    return line(int(length))


@TOPOLOGIES.register("omega")
def _topology_omega(*, dim: int, seed=None):
    """Omega (shuffle-exchange) network of the given dimension."""
    return omega_network(int(dim))


@TOPOLOGIES.register("fat_tree", "fattree")
def _topology_fat_tree(
    *, height: int, branching: int = 2, capacity_cap: int = 8, seed=None
):
    """Fat tree (leaves to root) with capacity-capped upper links."""
    return fat_tree(int(height), int(branching), int(capacity_cap))


@TOPOLOGIES.register("btree")
def _topology_btree(*, height: int, root_at_top: bool = True, seed=None):
    """Complete binary tree, leveled leaf-to-root."""
    return complete_binary_tree(int(height), bool(root_at_top))


@TOPOLOGIES.register("benes")
def _topology_benes(*, dim: int, seed=None):
    """Benes network (back-to-back butterflies)."""
    return benes(int(dim))


@TOPOLOGIES.register("multidim")
def _topology_multidim(*, shape: Sequence[int], seed=None):
    """Multidimensional array in leveled orientation."""
    return multidim_array([int(s) for s in shape])


@TOPOLOGIES.register("layered")
def _topology_layered(*, level_sizes: Sequence[int], seed=None):
    """Layered-complete network (every consecutive pair fully connected)."""
    return layered_complete([int(s) for s in level_sizes])


@TOPOLOGIES.register("diamond")
def _topology_diamond(*, width: int, depth: int, seed=None):
    """Diamond network: single source/sink around wide middle levels."""
    return diamond(int(width), int(depth))


@TOPOLOGIES.register("random_leveled", "random")
def _topology_random_leveled(
    *,
    width: int,
    depth: int,
    edge_probability: float = 0.5,
    min_out_degree: int = 2,
    min_in_degree: int = 2,
    seed=None,
):
    """Random leveled network of uniform width (seeded)."""
    return random_leveled(
        [int(width)] * (int(depth) + 1),
        edge_probability=float(edge_probability),
        seed=seed,
        min_out_degree=int(min_out_degree),
        min_in_degree=int(min_in_degree),
    )


# ---------------------------------------------------------------- workloads


def _default_count(net) -> int:
    """The CLI's historical default packet count."""
    return max(2, net.num_nodes // 8)


@WORKLOADS.register("random_many_to_one", "random")
def _workload_random_many_to_one(
    net,
    *,
    seed=None,
    num_packets: Optional[int] = None,
    source_levels: Optional[Sequence[int]] = None,
    min_dest_level: Optional[int] = None,
):
    """Distinct random sources, uniform forward destinations."""
    count = int(num_packets) if num_packets is not None else _default_count(net)
    return random_many_to_one(
        net,
        count,
        seed=seed,
        source_levels=source_levels,
        min_dest_level=min_dest_level,
    )


@WORKLOADS.register("hotspot")
def _workload_hotspot(
    net,
    *,
    seed=None,
    num_packets: Optional[int] = None,
    num_hotspots: int = 1,
    hotspot_level: Optional[int] = None,
):
    """Many-to-few traffic into a handful of hot destinations."""
    count = int(num_packets) if num_packets is not None else _default_count(net)
    return hotspot(
        net,
        count,
        num_hotspots=int(num_hotspots),
        seed=seed,
        hotspot_level=hotspot_level,
    )


@WORKLOADS.register("single_destination")
def _workload_single_destination(
    net, *, seed=None, num_packets: int, destination=None
):
    """Every packet shares one destination node."""
    return single_destination(
        net, int(num_packets), destination=destination, seed=seed
    )


@WORKLOADS.register("level_to_level")
def _workload_level_to_level(
    net, *, seed=None, num_packets: int, source_level: int, dest_level: int
):
    """Random sources on one level, reachable destinations on another."""
    return level_to_level(
        net, int(num_packets), int(source_level), int(dest_level), seed=seed
    )


@WORKLOADS.register("end_to_end_permutation")
def _workload_end_to_end_permutation(net, *, seed=None):
    """Random bijection from level-0 nodes onto top-level nodes."""
    return end_to_end_permutation(net, seed=seed)


@WORKLOADS.register("bf_random_end_to_end")
def _workload_bf_random(net, *, seed=None, num_packets: Optional[int] = None):
    """Butterfly rows send to uniformly random output rows."""
    return butterfly_workloads.random_end_to_end(
        net, num_packets=num_packets, seed=seed
    )


@WORKLOADS.register("bf_permutation")
def _workload_bf_permutation(net, *, seed=None):
    """Full random row permutation on a butterfly."""
    return butterfly_workloads.full_permutation(net, seed=seed)


@WORKLOADS.register("bf_hot_row")
def _workload_bf_hot_row(net, *, seed=None, num_packets: Optional[int] = None):
    """All packets target one butterfly output row (C = Theta(N))."""
    return butterfly_workloads.hot_row(net, num_packets=num_packets, seed=seed)


@WORKLOADS.register("bf_bit_complement")
def _workload_bf_bit_complement(net, *, seed=None):
    """Butterfly row r sends to row ~r."""
    return butterfly_workloads.bit_complement(net)


@WORKLOADS.register("mesh_monotone")
def _workload_mesh_monotone(
    net, *, seed=None, num_packets: int, min_displacement: int = 1
):
    """Random monotone (weakly down-right) mesh pairs."""
    return mesh_workloads.monotone_random_pairs(
        net, int(num_packets), seed=seed, min_displacement=int(min_displacement)
    )


@WORKLOADS.register("mesh_corner_shift")
def _workload_mesh_corner_shift(net, *, seed=None, block: Optional[int] = None):
    """Deterministic corner-to-corner block shift on a mesh."""
    return mesh_workloads.corner_shift(
        net, block=None if block is None else int(block)
    )


@WORKLOADS.register("funnel_through_edge", "funnel")
def _workload_funnel(net, *, seed=None, num_packets: int, edge=None):
    """Adversarial: every path crosses one chosen edge (returns a problem)."""
    return funnel_through_edge(
        net, int(num_packets), edge=edge, seed=seed
    )


# --------------------------------------------------------- arrival processes
#
# Arrival entries: ``fn(net, *, seed, **params) -> InjectionSource``.  The
# dispatcher collects the source over its horizon and materializes a
# schedule-carrying problem (selector 'random' draws the paths), so these
# run on any problem-level backend.


@ARRIVALS.register("bernoulli")
def _arrival_bernoulli(
    net,
    *,
    seed=None,
    rate: float = 0.3,
    horizon: Optional[int] = 200,
    source_levels: Optional[Sequence[int]] = None,
    min_hops: int = 1,
):
    """Per-step, per-source Bernoulli(rate) arrivals (horizon None = open-loop)."""
    from ..traffic import BernoulliSource

    return BernoulliSource(
        net,
        float(rate),
        seed=seed,
        horizon=None if horizon is None else int(horizon),
        source_levels=source_levels,
        min_hops=int(min_hops),
    )


@ARRIVALS.register("poisson")
def _arrival_poisson(
    net,
    *,
    seed=None,
    mean_rate: float = 1.0,
    horizon: Optional[int] = 200,
    source_levels: Optional[Sequence[int]] = None,
    min_hops: int = 1,
):
    """Poisson(mean_rate) aggregate arrivals per step, placed uniformly."""
    from ..traffic import PoissonSource

    return PoissonSource(
        net,
        float(mean_rate),
        seed=seed,
        horizon=None if horizon is None else int(horizon),
        source_levels=source_levels,
        min_hops=int(min_hops),
    )


@ARRIVALS.register("trace")
def _arrival_trace(net, *, seed=None, arrivals: Sequence[Sequence[int]] = ()):
    """Replay recorded ``[time, source, destination]`` triples."""
    from ..traffic import Arrival, TraceSource

    return TraceSource(
        Arrival(int(t), int(src), int(dst)) for t, src, dst in arrivals
    )


# ----------------------------------------------------------- path selectors


@PATH_SELECTORS.register("random")
def _select_random(net, endpoints, *, seed=None):
    """Uniformly random monotone path per packet."""
    return select_paths_random(net, endpoints, seed=seed)


@PATH_SELECTORS.register("bottleneck")
def _select_bottleneck(net, endpoints, *, seed=None):
    """Greedy congestion-minimizing (min-bottleneck DP) selection."""
    return select_paths_bottleneck(net, endpoints, seed=seed)


@PATH_SELECTORS.register("bit_fixing")
def _select_bit_fixing(net, endpoints, *, seed=None):
    """Unique bit-fixing butterfly paths (deterministic)."""
    return select_paths_bit_fixing(net, endpoints)


@PATH_SELECTORS.register("dimension_order")
def _select_dimension_order(net, endpoints, *, seed=None, row_first: bool = True):
    """Dimension-order mesh paths (deterministic)."""
    return select_paths_dimension_order(net, endpoints, row_first=bool(row_first))


@PATH_SELECTORS.register("valiant")
def _select_valiant(net, endpoints, *, seed=None, intermediate_level=None):
    """Two-phase paths through random intermediate nodes."""
    return select_paths_valiant(
        net,
        endpoints,
        seed=seed,
        intermediate_level=(
            None if intermediate_level is None else int(intermediate_level)
        ),
    )


@PATH_SELECTORS.register("none")
def _select_none(net, endpoints, *, seed=None):
    """Placeholder for workloads that already carry their paths."""
    raise ReproError(
        "selector 'none' cannot build paths; use it only with workloads "
        "that return a full routing problem (e.g. 'funnel_through_edge')"
    )


# ----------------------------------------------------------------- backends
#
# Batch backends mirror their family's legacy call path exactly:
#
# * frontier      -> experiments.runner.run_frontier_trial(problem, seed)
# * deflection    -> experiments.runner.run_router_trial(problem, factory,
#   (naive/greedy/    seed, baseline_budget(problem))
#    randgreedy)
# * storeforward  -> StoreForwardScheduler(problem, policy, seed).run()
# * random_delay  -> run_random_delay(problem, alpha, seed)
# * bounded_buffer-> BoundedBufferScheduler(problem, k, seed).run()
# * dynamic_*     -> the legacy ``repro dynamic`` pipeline (seed..seed+3)


def _budget(problem, params) -> int:
    from ..experiments.configs import baseline_budget

    explicit = params.get("max_steps")
    return int(explicit) if explicit is not None else baseline_budget(problem)


def _env_backend() -> Optional[str]:
    """The ``REPRO_BACKEND`` engine override, if set.

    Lets CI (and users) rerun frontier-family scenarios on the vectorized
    kernel without touching specs: ``REPRO_BACKEND=frontier_vec`` reroutes
    the ``frontier`` backend to :func:`run_frontier_vec_trial`, which is
    byte-identical to the reference path (the equivalence contract in
    :mod:`repro.sim.engine_vec`).
    """
    import os

    value = os.environ.get("REPRO_BACKEND")
    return value if value else None


@BACKENDS.register("frontier", needs="problem", family="frontier")
def _backend_frontier(problem, seed: int, params: dict):
    """The paper's frontier-frame algorithm (Theorem 4.26)."""
    if _env_backend() == "frontier_vec":
        from ..experiments.runner import run_frontier_vec_trial

        record = run_frontier_vec_trial(problem, seed=seed, **params)
        return record.result, record.audit
    from ..experiments.runner import run_frontier_trial

    record = run_frontier_trial(problem, seed=seed, **params)
    return record.result, record.audit


@BACKENDS.register("frontier_vec", needs="problem", family="frontier")
def _backend_frontier_vec(problem, seed: int, params: dict):
    """Frontier-frame algorithm on the vectorized array kernel.

    Same RunResult digests as ``frontier`` for any (problem, seed); falls
    back to the reference engine when auditing is requested or numpy is
    missing.
    """
    from ..experiments.runner import run_frontier_vec_trial

    record = run_frontier_vec_trial(problem, seed=seed, **params)
    return record.result, record.audit


def _naive_factory(router_seed: int):
    from ..baselines import NaivePathRouter

    return NaivePathRouter()


def _greedy_factory(router_seed: int):
    from ..baselines import GreedyHotPotatoRouter

    return GreedyHotPotatoRouter(seed=router_seed)


def _randgreedy_factory(router_seed: int):
    from ..baselines import RandomizedGreedyRouter

    return RandomizedGreedyRouter(seed=router_seed)


@BACKENDS.register("naive", needs="problem", family="deflection")
def _backend_naive(problem, seed: int, params: dict):
    """Uncoordinated path-following hot-potato strawman."""
    from ..experiments.runner import run_router_trial

    return (
        run_router_trial(problem, _naive_factory, seed, _budget(problem, params)),
        None,
    )


@BACKENDS.register("naive_vec", needs="problem", family="deflection")
def _backend_naive_vec(problem, seed: int, params: dict):
    """Naive path-following baseline on the vectorized array kernel."""
    from ..experiments.runner import run_naive_vec_trial

    return (
        run_naive_vec_trial(problem, seed, _budget(problem, params)),
        None,
    )


@BACKENDS.register("greedy", needs="problem", family="deflection")
def _backend_greedy(problem, seed: int, params: dict):
    """Distance-greedy hot-potato deflection routing."""
    from ..experiments.runner import run_router_trial

    return (
        run_router_trial(problem, _greedy_factory, seed, _budget(problem, params)),
        None,
    )


@BACKENDS.register("randgreedy", needs="problem", family="deflection")
def _backend_randgreedy(problem, seed: int, params: dict):
    """Randomized greedy hot-potato deflection routing."""
    from ..experiments.runner import run_router_trial

    return (
        run_router_trial(
            problem, _randgreedy_factory, seed, _budget(problem, params)
        ),
        None,
    )


@BACKENDS.register("storeforward", needs="problem", family="store_forward")
def _backend_storeforward(problem, seed: int, params: dict):
    """Store-and-forward with unbounded buffers (the buffered reference)."""
    from ..baselines import QueuePolicy, StoreForwardScheduler

    policy = QueuePolicy(params.get("policy", "fifo"))
    scheduler = StoreForwardScheduler(problem, policy=policy, seed=seed)
    max_steps = params.get("max_steps")
    result = scheduler.run(None if max_steps is None else int(max_steps))
    return result, None


@BACKENDS.register("random_delay", needs="problem", family="store_forward")
def _backend_random_delay(problem, seed: int, params: dict):
    """LMRR random-initial-delay store-and-forward (O(C+L+log N) yardstick)."""
    from ..baselines import run_random_delay

    max_steps = params.get("max_steps")
    result = run_random_delay(
        problem,
        alpha=float(params.get("alpha", 1.0)),
        seed=seed,
        max_steps=None if max_steps is None else int(max_steps),
    )
    return result, None


@BACKENDS.register("bounded_buffer", needs="problem", family="bounded_buffer")
def _backend_bounded_buffer(problem, seed: int, params: dict):
    """Store-and-forward with bounded per-edge buffers and backpressure."""
    from ..baselines import BoundedBufferScheduler

    scheduler = BoundedBufferScheduler(
        problem, buffer_size=int(params.get("buffer_size", 2)), seed=seed
    )
    max_steps = params.get("max_steps")
    result = scheduler.run(None if max_steps is None else int(max_steps))
    return result, None


def _run_dynamic(net, seed: int, params: dict, greedy: bool):
    from ..dynamic import (
        DynamicGreedyRouter,
        DynamicNaiveRouter,
        arrivals_to_problem,
        bernoulli_arrivals,
        dynamic_stats,
        offered_load,
    )
    from ..sim import Engine

    rate = float(params.get("rate", 0.3))
    horizon = int(params.get("horizon", 200))
    drain = int(params.get("drain", 50000))
    arrivals = bernoulli_arrivals(net, rate, horizon=horizon, seed=seed)
    if not arrivals:
        raise WorkloadError(
            f"no arrivals generated on {net.name} at rate {rate} "
            f"over {horizon} steps (rate too low?)"
        )
    problem, times = arrivals_to_problem(net, arrivals, seed=seed + 1)
    if greedy:
        router = DynamicGreedyRouter(times, seed=seed + 2)
    else:
        router = DynamicNaiveRouter(times)
    engine = Engine(problem, router, seed=seed + 3)
    result = engine.run(horizon + drain)
    stats = dynamic_stats(result, times, [len(s.path) for s in problem])
    result.extra.update(
        {
            "rate": rate,
            "horizon": float(horizon),
            "offered": float(stats.offered),
            "delivered": float(stats.delivered),
            "drained": 1.0 if stats.drained else 0.0,
            "mean_latency": float(stats.mean_latency),
            "p50_latency": float(stats.p50_latency),
            "p95_latency": float(stats.p95_latency),
            "max_latency": float(stats.max_latency),
            "mean_hop_stretch": float(stats.mean_hop_stretch),
            "offered_load": float(offered_load(net, arrivals, horizon)),
        }
    )
    return result, None


@BACKENDS.register("dynamic_naive", needs="network", family="dynamic")
def _backend_dynamic_naive(net, seed: int, params: dict):
    """Continuous Bernoulli injection, path-following deflection routing."""
    return _run_dynamic(net, seed, params, greedy=False)


@BACKENDS.register("dynamic_greedy", needs="network", family="dynamic")
def _backend_dynamic_greedy(net, seed: int, params: dict):
    """Continuous Bernoulli injection, distance-greedy deflection routing."""
    return _run_dynamic(net, seed, params, greedy=True)
