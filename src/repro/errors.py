"""Exception hierarchy for the :mod:`repro` package.

All errors raised by this library derive from :class:`ReproError`, so callers
can catch everything library-specific with a single ``except`` clause while
still being able to distinguish the failure domains (topology construction,
path selection, simulation, algorithm parameterization, invariant auditing).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class TopologyError(ReproError):
    """A leveled network is structurally invalid or cannot be built.

    Raised, for example, when an edge is added between nodes that are not on
    consecutive levels, or when a builder parameter is out of range.
    """


class PathError(ReproError):
    """A path is invalid (broken edge chain, wrong orientation, no route)."""


class WorkloadError(ReproError):
    """A routing workload violates the paper's problem model.

    The paper studies many-to-one problems with at most one packet injected
    per source node; generators raise this error rather than silently produce
    an out-of-model instance.
    """


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent state.

    This signals a bug (e.g. two packets granted the same directed edge slot
    in one step), never an expected runtime condition.
    """


class CapacityError(SimulationError):
    """A node had more resident packets than outgoing directed-edge slots."""


class ParameterError(ReproError):
    """Algorithm parameters are inconsistent or out of their legal range."""


class InvariantViolation(ReproError):
    """An audited run violated one of the paper's invariants I_a..I_f.

    Only raised when the auditor runs in ``strict`` mode; otherwise
    violations are recorded and reported.
    """
