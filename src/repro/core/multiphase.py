"""Composing leveled routing instances into multi-phase schedules.

The paper routes a *single* leveled instance; its Section 5 application and
discussion point at richer problems that decompose into several leveled
instances run back to back:

* arbitrary mesh traffic → four monotone classes, one per corner
  orientation (§1.1: "the mesh network can be viewed in four different
  ways as a leveled network");
* arbitrary hypercube traffic → an *up* phase (set missing 1-bits,
  Hamming-leveled) followed by a *down* phase (clear extra 1-bits, the
  complement leveling);
* the general pattern: any path system that factors into monotone legs
  over (re-)levelings of the same node set.

:func:`run_multiphase` executes such a decomposition sequentially with the
frontier-frame algorithm: phase ``k+1``'s sources are phase ``k``'s
destinations, and the reported makespan is the sum (phases could also be
run concurrently with disjoint priorities; the sequential bound is the
conservative one).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..errors import WorkloadError
from ..paths import RoutingProblem
from ..rng import stable_hash_seed
from ..sim import RunResult
from .algorithm import FrontierFrameRouter
from .params import AlgorithmParams


@dataclass
class MultiphaseResult:
    """Outcome of a sequential multi-phase route."""

    phase_results: List[RunResult]

    @property
    def total_makespan(self) -> int:
        """Sum of per-phase makespans (sequential execution)."""
        return sum(result.makespan for result in self.phase_results)

    @property
    def all_delivered(self) -> bool:
        """Every packet of every phase arrived."""
        return all(result.all_delivered for result in self.phase_results)

    @property
    def num_packets(self) -> int:
        """Packets routed in the widest phase (phases share packets)."""
        return max(
            (result.num_packets for result in self.phase_results), default=0
        )

    def summary(self) -> str:
        """One-line report."""
        phases = ", ".join(
            f"T{k}={result.makespan}"
            for k, result in enumerate(self.phase_results)
        )
        status = "ok" if self.all_delivered else "INCOMPLETE"
        return (
            f"multiphase x{len(self.phase_results)}: total="
            f"{self.total_makespan} ({phases}) {status}"
        )


def run_multiphase(
    problems: Sequence[RoutingProblem],
    seed: int = 0,
    params_list: Optional[Sequence[AlgorithmParams]] = None,
    **params_kwargs,
) -> MultiphaseResult:
    """Route a sequence of leveled instances with the paper's algorithm.

    Each problem is routed independently (the physical interpretation:
    phase ``k+1`` begins after a barrier when phase ``k`` has drained —
    bufferless networks hold no residual packets between phases).
    """
    from ..sim import Engine  # local import to avoid cycle at module load

    if not problems:
        raise WorkloadError("multiphase schedule needs at least one problem")
    results = []
    for k, problem in enumerate(problems):
        if params_list is not None:
            params = params_list[k]
        else:
            params = AlgorithmParams.practical(
                max(1, problem.congestion),
                problem.net.depth,
                problem.num_packets,
                **params_kwargs,
            )
        router = FrontierFrameRouter(params, seed=stable_hash_seed(seed, 11 + k))
        engine = Engine(problem, router, seed=stable_hash_seed(seed, 31 + k))
        results.append(engine.run(params.total_steps))
    return MultiphaseResult(phase_results=results)
