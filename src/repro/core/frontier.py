"""Frontier-set assignment (Section 2.4).

"To reduce the congestion we separate the packets into aC sets
S_0, ..., S_{aC−1}, which we call frontier-sets.  Each packet belongs to
exactly one frontier-set and this set is chosen uniformly and at random
among the aC frontier-sets, before routing begins."

Lemma 2.2 then gives per-set congestion at most ``ln(LN)`` w.h.p.;
:func:`frontier_set_congestions` measures the realized values so experiment
T4 can compare them with the Chernoff prediction.
"""

from __future__ import annotations

from typing import List, Sequence

from ..errors import ParameterError
from ..paths import RoutingProblem, per_set_congestion
from ..rng import RngLike, make_rng


def assign_frontier_sets(
    problem: RoutingProblem, num_sets: int, seed: RngLike = None
) -> List[int]:
    """Uniform random frontier-set index for each packet.

    Returns ``set_of`` with ``set_of[k]`` in ``0..num_sets−1``.
    """
    if num_sets < 1:
        raise ParameterError(f"num_sets must be >= 1, got {num_sets}")
    rng = make_rng(seed)
    return [int(s) for s in rng.integers(0, num_sets, size=problem.num_packets)]


def frontier_set_congestions(
    problem: RoutingProblem, set_of: Sequence[int], num_sets: int
) -> List[int]:
    """The realized per-set congestions ``C_i`` of the preselected paths."""
    edge_lists = [spec.path.edges for spec in problem]
    return per_set_congestion(edge_lists, set_of, num_sets, problem.net.num_edges)


def max_frontier_set_congestion(
    problem: RoutingProblem, set_of: Sequence[int], num_sets: int
) -> int:
    """``max_i C_i`` — the quantity Lemma 2.2 bounds by ``ln(LN)``."""
    congestions = frontier_set_congestions(problem, set_of, num_sets)
    return max(congestions) if congestions else 0


def set_sizes(set_of: Sequence[int], num_sets: int) -> List[int]:
    """``|S_i|`` for each frontier-set."""
    sizes = [0] * num_sets
    for s in set_of:
        sizes[s] += 1
    return sizes


def resample_until_bounded(
    problem: RoutingProblem,
    num_sets: int,
    bound: float,
    seed: RngLike = None,
    max_attempts: int = 100,
) -> List[int]:
    """Redraw frontier-set assignments until every ``C_i <= bound``.

    The paper simply accepts the w.h.p. failure; for *audited* runs (T3) we
    optionally condition on Lemma 2.2's good event so invariant ``I_e``
    starts out satisfied.  Raises ``ParameterError`` after ``max_attempts``.
    """
    rng = make_rng(seed)
    for _ in range(max_attempts):
        set_of = assign_frontier_sets(problem, num_sets, rng)
        if max_frontier_set_congestion(problem, set_of, num_sets) <= bound:
            return set_of
    raise ParameterError(
        f"could not realize per-set congestion <= {bound} with {num_sets} "
        f"sets in {max_attempts} attempts (C={problem.congestion})"
    )


def expected_set_congestion(congestion: int, num_sets: int) -> float:
    """Expected per-edge per-set congestion ``C / num_sets`` (the ``1/a``)."""
    if num_sets < 1:
        raise ParameterError(f"num_sets must be >= 1, got {num_sets}")
    return congestion / num_sets
