"""Invariant auditing (the paper's Section 4 invariants ``I_a .. I_f``).

The analysis proves six invariants hold at the end of every phase with high
probability; :class:`InvariantAuditor` checks them *empirically* during a
run:

``I_a``  packets are injected in isolation;
``I_b``  deflections are backward and safe, and current paths stay valid;
``I_c``  active packets stay inside their own frontier-frame;
``I_d``  packets of different frontier-sets never meet;
``I_e``  per-frontier-set congestion never exceeds its bound;
``I_f``  at each phase end, every active packet of frame ``F_i`` sits at an
         inner-level ``<= m − 4`` (the last three inner levels are empty).

Experiment T3 runs audited trials and reports the violation counts (expected
all-zero for ``I_a``–``I_d`` whenever ``I_e`` holds at time 0, and for
``I_e``/``I_f`` with the paper-faithful probability story).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import InvariantViolation
from ..paths import is_valid_edge_sequence, per_set_congestion
from ..sim import Engine, EventKind, TraceEvent
from ..types import Direction
from .algorithm import FrontierFrameRouter


@dataclass
class Violation:
    """One recorded invariant violation."""

    invariant: str
    time: int
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.invariant} @ t={self.time}] {self.detail}"


@dataclass
class AuditReport:
    """Aggregated audit outcome."""

    violations: List[Violation] = field(default_factory=list)
    checks_run: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    max_set_congestion_seen: int = 0

    @property
    def ok(self) -> bool:
        """Whether every checked invariant held throughout."""
        return not self.violations

    def count(self, invariant: str) -> int:
        """Violations recorded for one invariant."""
        return sum(1 for v in self.violations if v.invariant == invariant)

    def summary(self) -> str:
        """One-line report row."""
        if self.ok:
            return (
                "all invariants held "
                f"(max C_i^t seen: {self.max_set_congestion_seen})"
            )
        parts = [
            f"{name}:{self.count(name)}"
            for name in (
                "I_a",
                "I_b",
                "I_c",
                "I_d",
                "I_e",
                "I_e_conservation",
                "I_f",
            )
            if self.count(name)
        ]
        return f"{len(self.violations)} violation(s): " + ", ".join(parts)


class InvariantAuditor:
    """Observes an engine running :class:`FrontierFrameRouter`.

    Parameters
    ----------
    router:
        The frontier-frame router under audit.
    check_paths_every:
        Steps between full current-path validity scans (``I_b``'s expensive
        part); event-driven checks (backwardness/safety of deflections,
        isolation) are always on.
    check_congestion_every:
        Steps between per-set congestion scans (``I_e``).
    strict:
        Raise :class:`~repro.errors.InvariantViolation` on the first
        violation instead of recording it.
    """

    def __init__(
        self,
        router: FrontierFrameRouter,
        check_paths_every: int = 1,
        check_congestion_every: int = 1,
        strict: bool = False,
        congestion_bound: Optional[float] = None,
    ) -> None:
        self.router = router
        self.report = AuditReport()
        self.check_paths_every = max(1, check_paths_every)
        self.check_congestion_every = max(1, check_congestion_every)
        self.strict = strict
        #: bound for the paper-faithful I_e check; ``None`` means audit only
        #: congestion *conservation* against the realized initial ``C_i^0``
        #: (Lemma 4.10), skipping the probabilistic Lemma 2.2 part.
        self.congestion_bound = congestion_bound
        self._initial_set_congestions: Optional[List[int]] = None

    # -------------------------------------------------------------- plumbing

    def install(self, engine: Engine) -> None:
        """Register with an engine (event observer + post-step hook)."""
        engine.add_observer(self.on_event)
        engine.post_step_hooks.append(self.post_step)

    def _record(self, invariant: str, time: int, detail: str) -> None:
        violation = Violation(invariant, time, detail)
        self.report.violations.append(violation)
        if self.strict:
            raise InvariantViolation(str(violation))

    # ------------------------------------------------------- event-driven

    def on_event(self, event: TraceEvent) -> None:
        """Check the injection (I_a) and deflection (I_b) events."""
        if event.kind is EventKind.INJECT:
            self.report.checks_run["I_a"] += 1
            if event.detail != "isolated":
                self._record(
                    "I_a",
                    event.time,
                    f"packet {event.packet} injected at node {event.node} "
                    "while other packets were present",
                )
        elif event.kind is EventKind.DEFLECT:
            self.report.checks_run["I_b"] += 1
            if event.direction is not Direction.BACKWARD:
                self._record(
                    "I_b",
                    event.time,
                    f"packet {event.packet} deflected forward on edge "
                    f"{event.edge}",
                )
        elif event.kind is EventKind.UNSAFE_DEFLECT:
            self.report.checks_run["I_b"] += 1
            self._record(
                "I_b",
                event.time,
                f"packet {event.packet} deflected unsafely on edge "
                f"{event.edge}",
            )

    # ---------------------------------------------------------- step-driven

    def post_step(self, engine: Engine, t: int) -> None:
        """Run the per-step and phase-end scans."""
        router = self.router
        net = engine.net
        clock = router.clock
        geometry = router.geometry
        phase = clock.phase(t)

        active = [p for p in engine.packets if p.is_active]

        # I_b: current paths remain valid (periodic full scan).
        if t % self.check_paths_every == 0:
            self.report.checks_run["I_b_paths"] += 1
            for packet in active:
                if not is_valid_edge_sequence(net, packet.path, packet.node):
                    self._record(
                        "I_b",
                        t,
                        f"packet {packet.packet_id} has an invalid current "
                        f"path at node {packet.node}",
                    )

        # I_c: active packets stay inside their frame.
        self.report.checks_run["I_c"] += 1
        for packet in active:
            set_index = router.set_of[packet.packet_id]
            level = net.level(packet.node)
            if not geometry.in_frame(set_index, phase, level):
                self._record(
                    "I_c",
                    t,
                    f"packet {packet.packet_id} (set {set_index}) at level "
                    f"{level}, frame spans "
                    f"{list(geometry.frame_levels(set_index, phase))}",
                )

        # I_d: different frontier-sets never meet at a node.
        self.report.checks_run["I_d"] += 1
        sets_at_node: Dict[int, int] = {}
        for packet in active:
            set_index = router.set_of[packet.packet_id]
            previous = sets_at_node.setdefault(packet.node, set_index)
            if previous != set_index:
                self._record(
                    "I_d",
                    t,
                    f"sets {previous} and {set_index} meet at node "
                    f"{packet.node}",
                )

        # I_e: per-set current congestion.  Two sub-checks: the paper's bound
        # (Lemma 2.2 event, probabilistic, only if a bound is configured) and
        # congestion conservation against C_i^0 (Lemma 4.10, deterministic
        # given safe deflections).
        if t % self.check_congestion_every == 0:
            self.report.checks_run["I_e"] += 1
            edge_lists = []
            set_list = []
            for packet in engine.packets:
                if packet.is_absorbed:
                    continue
                edge_lists.append(packet.current_path_edges())
                set_list.append(router.set_of[packet.packet_id])
            congestions = per_set_congestion(
                edge_lists, set_list, router.params.num_sets, net.num_edges
            )
            if self._initial_set_congestions is None:
                # First scan: C_i^0 of the preselected paths (all packets,
                # active or not, per Section 2.4).
                initial_lists = [spec.path.edges for spec in engine.problem]
                initial_sets = [router.set_of[k] for k in range(len(initial_lists))]
                self._initial_set_congestions = per_set_congestion(
                    initial_lists,
                    initial_sets,
                    router.params.num_sets,
                    net.num_edges,
                )
            worst = max(congestions) if congestions else 0
            if worst > self.report.max_set_congestion_seen:
                self.report.max_set_congestion_seen = worst
            for set_index, value in enumerate(congestions):
                if value > self._initial_set_congestions[set_index]:
                    self._record(
                        "I_e_conservation",
                        t,
                        f"set {set_index} congestion grew to {value} from "
                        f"C_i^0 = {self._initial_set_congestions[set_index]}",
                    )
                if (
                    self.congestion_bound is not None
                    and value > self.congestion_bound
                ):
                    self._record(
                        "I_e",
                        t,
                        f"set {set_index} congestion {value} exceeds bound "
                        f"{self.congestion_bound:.2f}",
                    )

        # I_f: at phase end the last three inner levels are empty.
        if clock.is_phase_end(t):
            self.report.checks_run["I_f"] += 1
            for packet in active:
                set_index = router.set_of[packet.packet_id]
                inner = geometry.inner_level(
                    set_index, phase, net.level(packet.node)
                )
                if inner > geometry.m - 4:
                    self._record(
                        "I_f",
                        t,
                        f"packet {packet.packet_id} (set {set_index}) ends "
                        f"phase {phase} at inner-level {inner} > m-4 = "
                        f"{geometry.m - 4}",
                    )


def audited_run(
    engine: Engine,
    auditor: Optional[InvariantAuditor] = None,
    max_steps: Optional[int] = None,
):
    """Convenience: install an auditor, run, return ``(result, report)``.

    The router must be a :class:`FrontierFrameRouter`; ``max_steps``
    defaults to the parameterization's full schedule.
    """
    router = engine.router
    if not isinstance(router, FrontierFrameRouter):
        raise TypeError("audited_run requires a FrontierFrameRouter engine")
    if auditor is None:
        auditor = InvariantAuditor(router)
    auditor.install(engine)
    budget = max_steps if max_steps is not None else router.params.total_steps
    result = engine.run(budget)
    return result, auditor.report
