"""Phase/round/step clock and frontier-frame geometry (Sections 2.5 and 3).

Time is divided into *phases* of ``m`` *rounds* of ``w`` steps.  Frontier
``i`` points at level ``f_i(k) = k − i·m`` during phase ``k`` (so frame
``F_i`` enters the network at phase ``i·m`` and the frames are pipelined
``m`` levels apart, never overlapping).  Frame ``F_i`` spans the levels
``f_i .. f_i − m + 1``; *inner-level* ``j`` of the frame is network level
``f_i − j``.  The *target level* is inner-level 0 during rounds 0 and 1 and
inner-level ``j − 1`` during round ``j ≥ 2`` — it recedes one inner level
per round while the frame as a whole advances one network level per phase.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ParameterError
from .params import AlgorithmParams


@dataclass(frozen=True)
class PhaseClock:
    """Pure time arithmetic for a given ``(m, w)``."""

    m: int
    w: int

    def __post_init__(self) -> None:
        if self.m < 1 or self.w < 1:
            raise ParameterError(f"need m, w >= 1, got m={self.m}, w={self.w}")

    @property
    def steps_per_phase(self) -> int:
        """``m · w``."""
        return self.m * self.w

    def phase(self, t: int) -> int:
        """Phase containing step ``t``."""
        return t // self.steps_per_phase

    def round(self, t: int) -> int:
        """Round (0..m-1) within the phase containing step ``t``."""
        return (t % self.steps_per_phase) // self.w

    def step_in_round(self, t: int) -> int:
        """Offset (0..w-1) within the round."""
        return t % self.w

    def is_phase_start(self, t: int) -> bool:
        """Whether ``t`` is the first step of a phase."""
        return t % self.steps_per_phase == 0

    def is_phase_end(self, t: int) -> bool:
        """Whether ``t`` is the last step of a phase."""
        return (t + 1) % self.steps_per_phase == 0

    def is_round_start(self, t: int) -> bool:
        """Whether ``t`` is the first step of a round."""
        return t % self.w == 0

    def is_round_end(self, t: int) -> bool:
        """Whether ``t`` is the last step of a round."""
        return (t + 1) % self.w == 0

    def phase_start(self, phase: int) -> int:
        """First step of the given phase."""
        return phase * self.steps_per_phase

    def next_phase_start(self, t: int) -> int:
        """First step of the phase after the one containing ``t``."""
        return (self.phase(t) + 1) * self.steps_per_phase


@dataclass(frozen=True)
class FrameGeometry:
    """Frontier-frame positions for a given parameterization and depth."""

    params: AlgorithmParams

    @property
    def m(self) -> int:
        """Frame size (inner levels)."""
        return self.params.m

    @property
    def depth(self) -> int:
        """Network depth ``L``."""
        return self.params.depth

    def frontier(self, set_index: int, phase: int) -> int:
        """Level pointed at by frontier ``i`` during the given phase.

        ``f_i = −i·m`` at phase 0, advancing one level per phase; the value
        may lie outside ``0..L`` while the frame is outside the network.
        """
        self._check_set(set_index)
        return phase - set_index * self.m

    def frame_levels(self, set_index: int, phase: int) -> range:
        """Network levels of frame ``F_i`` during ``phase`` (clipped to 0..L).

        The range may be empty while the frame is entirely outside the
        network.
        """
        f = self.frontier(set_index, phase)
        lo = max(0, f - self.m + 1)
        hi = min(self.depth, f)
        return range(lo, hi + 1)

    def inner_level(self, set_index: int, phase: int, level: int) -> int:
        """Inner-level index of a network level within frame ``F_i``.

        Inner-level ``k`` is network level ``f_i − k``; the result is
        negative or ``>= m`` when the level is outside the frame.
        """
        return self.frontier(set_index, phase) - level

    def in_frame(self, set_index: int, phase: int, level: int) -> bool:
        """Whether a network level lies inside frame ``F_i``."""
        k = self.inner_level(set_index, phase, level)
        return 0 <= k < self.m

    def target_inner_level(self, round_index: int) -> int:
        """Inner level targeted during the given round (Section 2.5)."""
        if not 0 <= round_index < self.m:
            raise ParameterError(
                f"round {round_index} outside 0..{self.m - 1}"
            )
        return 0 if round_index <= 1 else round_index - 1

    def target_level(self, set_index: int, phase: int, round_index: int) -> int:
        """Network level targeted by frame ``F_i`` in the given round."""
        return self.frontier(set_index, phase) - self.target_inner_level(round_index)

    def injection_level(self, set_index: int, phase: int) -> int:
        """Network level of inner-level ``m−1``, where packets are injected."""
        return self.frontier(set_index, phase) - (self.m - 1)

    def injection_phase(self, set_index: int, source_level: int) -> int:
        """The phase at whose start a packet of set ``i`` is injected.

        The packet is injected when its source sits at inner-level ``m−1``:
        ``f_i(k) − (m−1) = source_level`` gives ``k = i·m + m − 1 + level``.
        """
        self._check_set(set_index)
        if not 0 <= source_level <= self.depth:
            raise ParameterError(
                f"source level {source_level} outside 0..{self.depth}"
            )
        return set_index * self.m + self.m - 1 + source_level

    def exit_phase(self, set_index: int) -> int:
        """First phase in which frame ``F_i`` has completely left the network."""
        # The frame's lowest level f_i − m + 1 exceeds L when
        # phase − i·m − m + 1 > L.
        return set_index * self.m + self.m + self.depth

    def _check_set(self, set_index: int) -> None:
        if not 0 <= set_index < self.params.num_sets:
            raise ParameterError(
                f"frontier-set {set_index} outside 0..{self.params.num_sets - 1}"
            )
