"""Algorithm parameters (the paper's Section 2.1).

Two constructors:

* :meth:`AlgorithmParams.theory` computes the exact reconstructed formulas
  (see DESIGN.md "OCR reconstruction"):

  ==========  =====================================================
  ``a``       ``2·e³ / ln(LN)``
  ``m``       ``ln²(LN) + 5``
  ``q``       ``1 / (m² · ln(LN))``
  ``w``       ``4·e·m²·ln(LN)·ln(1/p₁) + 3m + 1``
  ``p₀``      ``1 − 1/(2LN)``
  ``p₁``      ``1 / ((amC+L) · 2amC·L·N²)``
  ``p(k)``    ``p₀ · (1 − amC·N·p₁)^k``
  ==========  =====================================================

  The paper itself notes the resulting constants make the algorithm "not
  really practical"; ``w`` runs into the millions even for toy networks.

* :meth:`AlgorithmParams.practical` keeps the *structure* — packets split
  into enough frontier-sets that per-set congestion is a small target
  ``c*``, frames of ``m`` inner levels, ``m`` rounds of ``w = Θ(m)`` steps,
  excitation probability ``q = Θ(1/m)`` — with small constants suited to
  simulation.  EXPERIMENTS.md records which mode each experiment used.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from ..errors import ParameterError

#: Named parameterization families for :meth:`AlgorithmParams.from_preset`.
#:
#: Each entry is a kwargs dict for :meth:`AlgorithmParams.practical`;
#: ``"paper-faithful"`` is empty on purpose — it *is* the practical
#: constructor's structural defaults, which mirror the paper's choices
#: (``c* = min(3, ln LN)``, ``m = Θ(c*·ln N)``, ``w = 8m``, ``q = 1/m``)
#: at simulation-sized constants.  ``"practical"`` holds the values found
#: by the ``repro tune`` successive-halving study checked in at
#: ``benchmarks/studies/practical_preset_study.json`` (see docs/tuning.md
#: for the search procedure and the measured margins); it trades the
#: paper-shaped slack for the smallest schedule that still passed the
#: full invariant audit and a >=99% empirical delivery-success gate.
PRESETS: Dict[str, Dict[str, float]] = {
    "paper-faithful": {},
    "practical": {
        "set_congestion_target": 3.0,
        "m": 6,
        "w_factor": 0.75,
        "q": 0.5,
        "oversplit": 1.0,
    },
}


def preset_kwargs(name: str) -> Dict[str, float]:
    """The :meth:`AlgorithmParams.practical` kwargs behind a preset name."""
    try:
        return dict(PRESETS[name])
    except KeyError:
        known = ", ".join(sorted(PRESETS))
        raise ParameterError(
            f"unknown parameter preset {name!r} (known presets: {known})"
        ) from None


def ln_ln_factor(depth: int, num_packets: int) -> float:
    """``ln(L·N)``, clamped below at 1 so tiny instances stay sane."""
    if depth < 1 or num_packets < 1:
        raise ParameterError(
            f"need depth >= 1 and packets >= 1, got L={depth}, N={num_packets}"
        )
    return max(1.0, math.log(depth * num_packets))


@dataclass(frozen=True)
class TheoryValues:
    """The exact (real-valued) quantities of Section 2.1, for reporting."""

    a: float
    m: float
    q: float
    w: float
    p0: float
    p1: float
    amc: float
    total_phases: float
    total_steps: float


def compute_theory_values(
    congestion: int, depth: int, num_packets: int
) -> TheoryValues:
    """Evaluate the reconstructed formulas exactly (floats, no ceiling)."""
    if congestion < 1:
        raise ParameterError(f"congestion must be >= 1, got {congestion}")
    lnln = ln_ln_factor(depth, num_packets)
    a = 2.0 * math.e**3 / lnln
    m = lnln**2 + 5.0
    q = 1.0 / (m**2 * lnln)
    amc = a * m * congestion
    p0 = 1.0 - 1.0 / (2.0 * depth * num_packets)
    p1 = 1.0 / ((amc + depth) * 2.0 * amc * depth * num_packets**2)
    w = 4.0 * math.e * m**2 * lnln * math.log(1.0 / p1) + 3.0 * m + 1.0
    total_phases = amc + depth
    total_steps = total_phases * m * w
    return TheoryValues(
        a=a,
        m=m,
        q=q,
        w=w,
        p0=p0,
        p1=p1,
        amc=amc,
        total_phases=total_phases,
        total_steps=total_steps,
    )


def theorem_success_probability(
    congestion: int, depth: int, num_packets: int
) -> float:
    """``p(amC + L)`` unfolded: ``p₀·(1 − amC·N·p₁)^{amC+L} ≥ 1 − 1/LN``."""
    tv = compute_theory_values(congestion, depth, num_packets)
    k = tv.total_phases
    return tv.p0 * (1.0 - tv.amc * num_packets * tv.p1) ** k


def theorem_time_bound(congestion: int, depth: int, num_packets: int) -> float:
    """Theorem 4.26's step bound ``(amC + L)·m·w = O((C+L)·ln⁹(LN))``."""
    return compute_theory_values(congestion, depth, num_packets).total_steps


def polylog_exponent_check(congestion: int, depth: int, num_packets: int) -> float:
    """The bound divided by ``(C+L)``, i.e. the polylog factor itself."""
    tv = compute_theory_values(congestion, depth, num_packets)
    return tv.total_steps / (congestion + depth)


@dataclass(frozen=True)
class AlgorithmParams:
    """Integer parameters actually driving a simulated run.

    Attributes
    ----------
    num_sets:
        Number of frontier-sets (the paper's ``aC``); also the number of
        frontier-frames.
    m:
        Inner levels per frame = rounds per phase.
    w:
        Steps per round.
    q:
        Per-step excitation probability of a normal packet.
    set_congestion_bound:
        The per-set congestion the parameterization is designed for (the
        paper's ``ln(LN)``); invariant ``I_e`` audits against it.
    mode:
        ``"theory"`` or ``"practical"`` — recorded in reports.
    theory:
        The exact real-valued Section 2.1 quantities for the instance, kept
        alongside whichever integers are in force.
    """

    num_sets: int
    m: int
    w: int
    q: float
    set_congestion_bound: float
    mode: str
    depth: int
    num_packets: int
    congestion: int
    theory: TheoryValues = field(repr=False, compare=False, default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.num_sets < 1:
            raise ParameterError(f"num_sets must be >= 1, got {self.num_sets}")
        if self.m < 4:
            raise ParameterError(
                f"m must be >= 4 (invariant I_f empties the last 3 inner "
                f"levels), got {self.m}"
            )
        if self.w < 1:
            raise ParameterError(f"w must be >= 1, got {self.w}")
        if not 0.0 <= self.q <= 1.0:
            raise ParameterError(f"q must be a probability, got {self.q}")

    # ------------------------------------------------------------- schedule

    @property
    def steps_per_phase(self) -> int:
        """``m · w``."""
        return self.m * self.w

    @property
    def total_phases(self) -> int:
        """Phases until the last frame leaves the network: ``num_sets·m + L``.

        Frame ``i`` enters at phase ``i·m`` (frontier reaches level 0) and
        leaves after phase ``i·m + L + m``; the last frame is
        ``i = num_sets − 1``.
        """
        return self.num_sets * self.m + self.depth

    @property
    def total_steps(self) -> int:
        """Step budget of the full schedule."""
        return self.total_phases * self.steps_per_phase

    # ---------------------------------------------------------- constructors

    @classmethod
    def theory_exact(
        cls, congestion: int, depth: int, num_packets: int
    ) -> "AlgorithmParams":
        """Ceil the exact Section 2.1 values into usable integers.

        Warning: ``w`` is astronomically large; only usable on the tiniest
        instances, and mostly via the quiescence fast-forward.
        """
        tv = compute_theory_values(congestion, depth, num_packets)
        return cls(
            num_sets=max(1, math.ceil(tv.a * congestion)),
            m=math.ceil(tv.m),
            w=math.ceil(tv.w),
            q=tv.q,
            set_congestion_bound=ln_ln_factor(depth, num_packets),
            mode="theory",
            depth=depth,
            num_packets=num_packets,
            congestion=congestion,
            theory=tv,
        )

    @classmethod
    def practical(
        cls,
        congestion: int,
        depth: int,
        num_packets: int,
        set_congestion_target: Optional[float] = None,
        m: Optional[int] = None,
        w_factor: float = 8.0,
        w: Optional[int] = None,
        q: Optional[float] = None,
        oversplit: float = 2.0,
    ) -> "AlgorithmParams":
        """Scaled parameterization with the same structure, small constants.

        Defaults: per-set congestion *bound* ``c* = min(3, ln(LN))``, with
        ``num_sets = ceil(C·oversplit/c*)`` so the expected per-set
        congestion is ``c*/oversplit`` — mirroring (mildly) the paper's
        ``a = 2e³/ln(LN)`` slack that makes Lemma 2.2's bound hold w.h.p.;
        frame size ``m = ceil(c*·ln(N+1)) + 6`` (enough rounds for the
        geometric settling of Lemma 4.20 plus the 3-level margin of
        invariant I_f), round length ``w = w_factor · m`` (room for one trip
        across the frame plus deflection retries), excitation probability
        ``q = 1/m``.
        """
        if congestion < 1:
            raise ParameterError(f"congestion must be >= 1, got {congestion}")
        if oversplit < 1.0:
            raise ParameterError(f"oversplit must be >= 1, got {oversplit}")
        lnln = ln_ln_factor(depth, num_packets)
        c_star = (
            float(set_congestion_target)
            if set_congestion_target is not None
            else min(3.0, max(2.0, lnln))
        )
        if c_star < 1.0:
            raise ParameterError(f"set congestion target must be >= 1, got {c_star}")
        num_sets = max(1, math.ceil(congestion * oversplit / c_star))
        if m is None:
            m = max(6, math.ceil(c_star * math.log(num_packets + 1)) + 6)
        if w is None:
            w = max(4, math.ceil(w_factor * m))
        if q is None:
            q = min(1.0, 1.0 / m)
        return cls(
            num_sets=num_sets,
            m=m,
            w=w,
            q=q,
            set_congestion_bound=c_star,
            mode="practical",
            depth=depth,
            num_packets=num_packets,
            congestion=congestion,
            theory=compute_theory_values(congestion, depth, num_packets),
        )

    @classmethod
    def from_preset(
        cls,
        preset: str,
        congestion: int,
        depth: int,
        num_packets: int,
        **overrides,
    ) -> "AlgorithmParams":
        """Instantiate a named parameterization family for an instance.

        Looks up ``preset`` in :data:`PRESETS`, merges any explicit
        ``overrides`` on top (an override wins over the preset's value),
        and builds through :meth:`practical`; ``mode`` records the preset
        name so reports show which family produced the numbers.  Scenario
        specs select a preset with ``backend_params={"preset": name}`` —
        see the ``*_practical`` / ``*_paper_faithful`` catalog entries.
        """
        kwargs = preset_kwargs(preset)
        kwargs.update(overrides)
        params = cls.practical(congestion, depth, num_packets, **kwargs)
        return replace(params, mode=preset)

    def describe(self) -> Dict[str, float]:
        """Key/value record for report tables."""
        return {
            "mode": self.mode,  # type: ignore[dict-item]
            "num_sets": self.num_sets,
            "m": self.m,
            "w": self.w,
            "q": self.q,
            "steps_per_phase": self.steps_per_phase,
            "total_phases": self.total_phases,
            "total_steps": self.total_steps,
            "set_congestion_bound": self.set_congestion_bound,
        }
