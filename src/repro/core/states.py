"""Per-packet algorithm state (the paper's Section 3 state machine).

States and priorities, highest first: ``excited > normal > wait``.

* A packet is injected ``normal`` and follows its current path toward its
  target node.
* A ``normal`` packet becomes ``excited`` with probability ``q`` each step;
  an excited packet reverts to normal when deflected and at each round end.
* Reaching the target node puts the packet in ``wait``: it oscillates on the
  last edge it traversed, reverting to normal when deflected and at each
  phase end.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..types import EdgeId, NodeId


class PacketState(enum.IntEnum):
    """Algorithm state; the numeric value *is* the conflict priority."""

    WAIT = 1
    NORMAL = 2
    EXCITED = 3

    @property
    def priority(self) -> int:
        """Conflict priority (higher wins)."""
        return int(self)


@dataclass
class AlgorithmPacketState:
    """Mutable per-packet record kept by the frontier-frame router."""

    set_index: int
    injection_phase: int
    state: PacketState = PacketState.NORMAL
    #: node the packet waits on (its target node), when in WAIT
    wait_node: Optional[NodeId] = None
    #: edge ``(v', v)`` the packet oscillates on, when in WAIT
    wait_edge: Optional[EdgeId] = None
    #: statistics
    excitations: int = 0
    wait_entries: int = 0
    wait_evictions: int = 0

    def enter_wait(self, node: NodeId, edge: EdgeId) -> None:
        """Transition (normal|excited) -> wait on reaching the target node."""
        self.state = PacketState.WAIT
        self.wait_node = node
        self.wait_edge = edge
        self.wait_entries += 1

    def leave_wait(self, evicted: bool) -> None:
        """Transition wait -> normal (deflection or phase end)."""
        self.state = PacketState.NORMAL
        self.wait_node = None
        self.wait_edge = None
        if evicted:
            self.wait_evictions += 1

    def excite(self) -> None:
        """Transition normal -> excited (probability-q coin)."""
        self.state = PacketState.EXCITED
        self.excitations += 1

    def calm(self) -> None:
        """Transition excited -> normal (deflection or round end)."""
        self.state = PacketState.NORMAL


@dataclass
class StateCounters:
    """Aggregate state statistics reported by the router.

    ``per_state_steps`` accumulates packet-steps per state; the router
    updates it on fast-forwarded spans (where it is cheap and exact) —
    during executed steps the counters above carry the signal instead.
    """

    excitations: int = 0
    wait_entries: int = 0
    wait_evictions: int = 0
    round_calms: int = 0
    phase_releases: int = 0
    per_state_steps: Dict[str, int] = field(
        default_factory=lambda: {s.name: 0 for s in PacketState}
    )
