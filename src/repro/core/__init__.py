"""The paper's primary contribution: frontier-frame hot-potato routing."""

from .params import (
    PRESETS,
    AlgorithmParams,
    TheoryValues,
    compute_theory_values,
    preset_kwargs,
    theorem_success_probability,
    theorem_time_bound,
    polylog_exponent_check,
    ln_ln_factor,
)
from .schedule import PhaseClock, FrameGeometry
from .frontier import (
    assign_frontier_sets,
    frontier_set_congestions,
    max_frontier_set_congestion,
    set_sizes,
    resample_until_bounded,
    expected_set_congestion,
)
from .states import PacketState, AlgorithmPacketState, StateCounters
from .algorithm import FrontierFrameRouter
from .multiphase import MultiphaseResult, run_multiphase
from .invariants import InvariantAuditor, AuditReport, Violation, audited_run

__all__ = [
    "PRESETS",
    "preset_kwargs",
    "AlgorithmParams",
    "TheoryValues",
    "compute_theory_values",
    "theorem_success_probability",
    "theorem_time_bound",
    "polylog_exponent_check",
    "ln_ln_factor",
    "PhaseClock",
    "FrameGeometry",
    "assign_frontier_sets",
    "frontier_set_congestions",
    "max_frontier_set_congestion",
    "set_sizes",
    "resample_until_bounded",
    "expected_set_congestion",
    "PacketState",
    "AlgorithmPacketState",
    "StateCounters",
    "FrontierFrameRouter",
    "MultiphaseResult",
    "run_multiphase",
    "InvariantAuditor",
    "AuditReport",
    "Violation",
    "audited_run",
]
