"""The paper's hot-potato routing algorithm (Section 3).

:class:`FrontierFrameRouter` plugs the frontier-frame policy into the
generic engine:

* **Injection** — a packet enters at the start of the phase in which its
  source lies on inner-level ``m−1`` of its frame (retrying on later steps
  if every link is busy).
* **States** — ``normal`` packets follow their current path and become
  ``excited`` with probability ``q`` each step; ``excited`` packets do the
  same at top priority and calm down on deflection or at round end; a packet
  arriving at its round's target node enters ``wait`` and oscillates on the
  edge it arrived by until deflected or the phase ends.
* **Targets** — during round ``j`` of a phase the target level of frame
  ``F_i`` is its inner-level ``max(0, j−1)``; a packet whose current path
  does not cross the target level races for its destination instead.  A
  packet's current path starts at its current node, so it stands on its
  target node exactly when its level equals the target level — no explicit
  path scan is needed.

Deflection mechanics (backward + safe, Lemma 2.1) are engine-provided.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from ..errors import ParameterError, SimulationError
from ..rng import RngLike, make_rng
from ..sim import DesiredMove, Engine, EventKind, Router, TraceEvent
from ..types import Direction, EdgeId, MoveKind, NodeId, PacketId
from .frontier import assign_frontier_sets
from .params import AlgorithmParams
from .schedule import FrameGeometry, PhaseClock
from .states import AlgorithmPacketState, PacketState, StateCounters


class FrontierFrameRouter(Router):
    """The paper's randomized frontier-frame hot-potato router.

    Parameters
    ----------
    params:
        Parameterization (theory-exact or practical).
    set_of:
        Optional externally chosen frontier-set assignment (e.g. one
        conditioned on Lemma 2.2's good event); drawn uniformly at random
        when omitted, as in the paper.
    seed:
        Seed for the router's own randomness (frontier-set draw and
        excitation coins); tie-breaking randomness lives in the engine.
    """

    deflection_kind = MoveKind.REVERSE

    def __init__(
        self,
        params: AlgorithmParams,
        set_of: Optional[Sequence[int]] = None,
        seed: RngLike = None,
        collect_round_stats: bool = False,
    ) -> None:
        self.params = params
        self.clock = PhaseClock(params.m, params.w)
        self.geometry = FrameGeometry(params)
        self._rng = make_rng(seed)
        self._given_set_of = list(set_of) if set_of is not None else None
        self.set_of: List[int] = []
        self.states: List[AlgorithmPacketState] = []
        self.counters = StateCounters()
        self.isolation_violations = 0
        self._eligible_by_phase: Dict[int, List[PacketId]] = {}
        self._current_phase = -1
        self.collect_round_stats = collect_round_stats
        #: per (phase, round): |B_j| = active packets not in wait at the
        #: round start (Lemma 4.20's settling sequence), summed over frames
        self.round_stats: List[tuple] = []

    # ------------------------------------------------------------- lifecycle

    def attach(self, engine: Engine) -> None:
        super().attach(engine)
        problem = engine.problem
        if self.params.depth != problem.net.depth:
            raise ParameterError(
                f"params built for depth {self.params.depth} but network has "
                f"depth {problem.net.depth}"
            )
        if self.params.num_packets != problem.num_packets:
            raise ParameterError(
                f"params built for {self.params.num_packets} packets but "
                f"problem has {problem.num_packets}"
            )
        if self._given_set_of is not None:
            if len(self._given_set_of) != problem.num_packets:
                raise ParameterError(
                    f"{len(self._given_set_of)} set assignments for "
                    f"{problem.num_packets} packets"
                )
            if any(
                not 0 <= s < self.params.num_sets for s in self._given_set_of
            ):
                raise ParameterError("set assignment index out of range")
            self.set_of = list(self._given_set_of)
        else:
            self.set_of = assign_frontier_sets(
                problem, self.params.num_sets, self._rng
            )
        net = problem.net
        self.states = [
            AlgorithmPacketState(
                set_index=self.set_of[spec.packet_id],
                injection_phase=self.geometry.injection_phase(
                    self.set_of[spec.packet_id], net.level(spec.source)
                ),
            )
            for spec in problem
        ]
        self._eligible_by_phase = {}
        for pid, st in enumerate(self.states):
            self._eligible_by_phase.setdefault(st.injection_phase, []).append(pid)

    # ---------------------------------------------------------------- hooks

    def _emit_state(self, t: int, pid: PacketId, transition: str) -> None:
        """Emit one STATE event (caller has checked ``engine.tracing``)."""
        engine = self.engine
        engine.emit(
            TraceEvent(
                t,
                EventKind.STATE,
                packet=pid,
                node=engine.packets[pid].node,
                detail=transition,
            )
        )

    def pre_step(self, t: int) -> None:
        clock = self.clock
        if clock.is_phase_start(t):
            phase = clock.phase(t)
            self._current_phase = phase
            if self.engine.tracing:
                self.engine.emit(
                    TraceEvent(t, EventKind.PHASE_START, detail=str(phase))
                )
            for pid in self._eligible_by_phase.get(phase, ()):
                self.engine.mark_eligible(pid)
        if clock.is_round_start(t) and self.collect_round_stats:
            # Lemma 4.20's |B_j|: active packets not (yet) settled in wait.
            active = 0
            unsettled = 0
            for pid in self.engine.active_ids:
                active += 1
                if self.states[pid].state is not PacketState.WAIT:
                    unsettled += 1
            if active:
                self.round_stats.append(
                    (clock.phase(t), clock.round(t), active, unsettled)
                )
        if clock.is_round_start(t):
            if self.engine.tracing:
                self.engine.emit(
                    TraceEvent(
                        t,
                        EventKind.ROUND_START,
                        detail=f"{clock.phase(t)}:{clock.round(t)}",
                    )
                )
            # A packet that forward-arrived on the new round's target level
            # in the closing steps of the previous round is already standing
            # on its (new) target node; it "reaches" it trivially and enters
            # the wait state, else it would overshoot and leave the frame.
            net = self.engine.net
            for pid in list(self.engine.active_ids):
                packet = self.engine.packets[pid]
                st = self.states[pid]
                if st.state is PacketState.WAIT:
                    continue
                if (
                    packet.last_direction is Direction.FORWARD
                    and net.level(packet.node)
                    == self.target_level(st.set_index, t)
                ):
                    old = st.state.name.lower()
                    st.enter_wait(packet.node, packet.last_edge)
                    self.counters.wait_entries += 1
                    if self.engine.tracing:
                        self._emit_state(t, pid, f"{old}->wait")
        # Excitation coins: every active normal packet, every step.
        q = self.params.q
        if q > 0.0:
            states = self.states
            for pid in self.engine.active_ids:
                if states[pid].state is PacketState.NORMAL:
                    if self._rng.random() < q:
                        states[pid].excite()
                        self.counters.excitations += 1
                        if self.engine.tracing:
                            self._emit_state(t, pid, "normal->excited")

    def post_step(self, t: int) -> None:
        clock = self.clock
        round_end = clock.is_round_end(t)
        phase_end = clock.is_phase_end(t)
        if not (round_end or phase_end):
            return
        tracing = self.engine.tracing
        for pid in self.engine.active_ids:
            st = self.states[pid]
            if st.state is PacketState.EXCITED:
                st.calm()
                self.counters.round_calms += 1
                if tracing:
                    self._emit_state(t, pid, "excited->normal")
            elif phase_end and st.state is PacketState.WAIT:
                st.leave_wait(evicted=False)
                self.counters.phase_releases += 1
                if tracing:
                    self._emit_state(t, pid, "wait->normal")

    # ---------------------------------------------------------------- policy

    def desired_move(self, packet_id: PacketId, t: int) -> DesiredMove:
        packet = self.engine.packets[packet_id]
        st = self.states[packet_id]
        if packet.is_active and st.state is PacketState.WAIT:
            if packet.node == st.wait_node:
                # Backward half of the oscillation: re-traverse the wait
                # edge toward the lower level (prepending it).
                return DesiredMove(st.wait_edge, MoveKind.REVERSE)
            head = packet.head_edge()
            if head != st.wait_edge:  # pragma: no cover - defensive
                raise SimulationError(
                    f"packet {packet_id} in wait at {packet.node} but path "
                    f"head {head} != wait edge {st.wait_edge}"
                )
            return DesiredMove(head, MoveKind.FOLLOW)
        return DesiredMove(packet.head_edge(), MoveKind.FOLLOW)

    def priority(self, packet_id: PacketId, t: int) -> int:
        packet = self.engine.packets[packet_id]
        if packet.is_pending:
            return PacketState.NORMAL.priority
        return self.states[packet_id].state.priority

    # -------------------------------------------------------------- targets

    def target_level(self, set_index: int, t: int) -> int:
        """Network level targeted by frame ``F_i`` at step ``t``."""
        return self.geometry.target_level(
            set_index, self.clock.phase(t), self.clock.round(t)
        )

    # ------------------------------------------------------------- callbacks

    def on_injected(self, packet_id: PacketId, t: int, in_isolation: bool) -> None:
        if not in_isolation:
            self.isolation_violations += 1

    def on_moved(self, packet_id: PacketId, t: int, edge: EdgeId) -> None:
        st = self.states[packet_id]
        if st.state is PacketState.WAIT:
            return  # oscillation continues
        packet = self.engine.packets[packet_id]
        if packet.last_direction is not Direction.FORWARD:
            return
        # A packet's current path starts at its node, so standing on the
        # target level means standing on its target node.
        level = self.engine.net.level(packet.node)
        if level == self.target_level(st.set_index, t):
            old = st.state.name.lower()
            st.enter_wait(packet.node, edge)
            self.counters.wait_entries += 1
            if self.engine.tracing:
                self._emit_state(t, packet_id, f"{old}->wait")

    def on_deflected(
        self, packet_id: PacketId, t: int, edge: EdgeId, safe: bool
    ) -> None:
        st = self.states[packet_id]
        if st.state is PacketState.WAIT:
            st.leave_wait(evicted=True)
            self.counters.wait_evictions += 1
            if self.engine.tracing:
                self._emit_state(t, packet_id, "wait->normal")
        elif st.state is PacketState.EXCITED:
            st.calm()
            if self.engine.tracing:
                self._emit_state(t, packet_id, "excited->normal")

    # --------------------------------------------------------- fast-forward

    def quiescent_horizon(self, t: int) -> Optional[int]:
        engine = self.engine
        if engine.eligible:
            return None
        current_phase = self.clock.phase(t)
        pending_phases = [
            st.injection_phase
            for pid, st in enumerate(self.states)
            if engine.packets[pid].is_pending
        ]
        if pending_phases and min(pending_phases) <= current_phase:
            # Injections are due in the current phase but pre_step has not
            # marked them eligible yet (t is the phase-start step).
            return None
        if engine.num_active == 0:
            # Nothing in flight: jump to the next phase with an injection.
            if not pending_phases:
                return None
            return self.clock.phase_start(min(pending_phases))
        # All active packets must be waiting, with pairwise distinct
        # oscillation slots (same edge + same parity would conflict).
        slots: Set[tuple] = set()
        for pid in engine.active_ids:
            packet = engine.packets[pid]
            st = self.states[pid]
            if st.state is not PacketState.WAIT:
                return None
            slot = (st.wait_edge, packet.node == st.wait_node)
            if slot in slots:  # pragma: no cover - theory says impossible
                return None
            slots.add(slot)
        return self.clock.next_phase_start(t)

    def fast_forward(self, t_from: int, t_to: int) -> Dict[NodeId, Set[EdgeId]]:
        k = t_to - t_from
        net = self.engine.net
        safe_in: Dict[NodeId, Set[EdgeId]] = {}
        waiting = 0
        for pid in self.engine.active_ids:
            packet = self.engine.packets[pid]
            st = self.states[pid]
            waiting += 1
            # Move accounting: the packet oscillates once per skipped step;
            # starting at the wait node its first (and every odd) move is
            # backward.
            backward_total = (
                (k + 1) // 2 if packet.node == st.wait_node else k // 2
            )
            counted_backward = 0
            if k % 2:
                packet.toggle_across(net, st.wait_edge)
                if packet.last_direction is Direction.BACKWARD:
                    counted_backward = 1
            packet.moves += k - (k % 2)
            packet.backward_moves += backward_total - counted_backward
            if packet.node == st.wait_node:
                # Last (virtual) move arrived forward on the wait edge.
                safe_in.setdefault(packet.node, set()).add(st.wait_edge)
        self.counters.per_state_steps[PacketState.WAIT.name] += k * waiting
        return safe_in

    # -------------------------------------------------------------- metrics

    def extra_metrics(self) -> Dict[str, float]:
        """Router statistics merged into :class:`~repro.sim.RunResult`."""
        return {
            "num_sets": float(self.params.num_sets),
            "m": float(self.params.m),
            "w": float(self.params.w),
            "q": float(self.params.q),
            "excitations": float(self.counters.excitations),
            "wait_entries": float(self.counters.wait_entries),
            "wait_evictions": float(self.counters.wait_evictions),
            "phase_releases": float(self.counters.phase_releases),
            "isolation_violations": float(self.isolation_violations),
            "phases_elapsed": float(self._current_phase + 1),
        }
