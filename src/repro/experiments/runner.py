"""Seeded multi-trial experiment runner.

Shared by the benchmark harness and the examples: builds the router for a
problem, runs it (optionally under the invariant auditor), and collects
per-trial records so benches only format tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..core import (
    AlgorithmParams,
    AuditReport,
    FrontierFrameRouter,
    InvariantAuditor,
    resample_until_bounded,
)
from ..paths import RoutingProblem
from ..rng import stable_hash_seed
from ..sim import Engine, RunResult, Router


def resolve_trial_params(
    problem: RoutingProblem, **params_kwargs
) -> AlgorithmParams:
    """Build the parameterization a trial's keyword arguments describe.

    A ``preset`` key selects a named family from
    :data:`repro.core.PRESETS` (remaining kwargs override its values);
    otherwise the kwargs go straight to
    :meth:`~repro.core.AlgorithmParams.practical`.  This is the single
    funnel through which scenario ``backend_params`` become
    :class:`~repro.core.AlgorithmParams`, shared by the reference and
    vectorized trial runners.
    """
    preset = params_kwargs.pop("preset", None)
    congestion = max(1, problem.congestion)
    if preset is not None:
        return AlgorithmParams.from_preset(
            preset,
            congestion,
            problem.net.depth,
            problem.num_packets,
            **params_kwargs,
        )
    return AlgorithmParams.practical(
        congestion,
        problem.net.depth,
        problem.num_packets,
        **params_kwargs,
    )


@dataclass
class TrialRecord:
    """One routing trial."""

    seed: int
    result: RunResult
    audit: Optional[AuditReport] = None

    @property
    def ok(self) -> bool:
        """Delivered everything and (if audited) kept every invariant."""
        delivered = self.result.all_delivered
        return delivered and (self.audit is None or self.audit.ok)


def run_frontier_trial(
    problem: RoutingProblem,
    seed: int,
    params: Optional[AlgorithmParams] = None,
    audit: bool = False,
    condition_sets: bool = False,
    fast_forward: bool = True,
    max_steps: Optional[int] = None,
    audit_congestion_bound: Optional[float] = None,
    **params_kwargs,
) -> TrialRecord:
    """Run the frontier-frame algorithm once on ``problem``.

    ``condition_sets`` resamples the frontier-set assignment until Lemma
    2.2's good event holds (per-set congestion within the configured bound);
    otherwise the assignment is drawn uniformly as in the paper.
    """
    if params is None:
        params = resolve_trial_params(problem, **params_kwargs)
    set_of = None
    if condition_sets:
        set_of = resample_until_bounded(
            problem,
            params.num_sets,
            params.set_congestion_bound,
            seed=stable_hash_seed(seed, 1),
        )
    router = FrontierFrameRouter(
        params, set_of=set_of, seed=stable_hash_seed(seed, 2)
    )
    engine = Engine(
        problem,
        router,
        seed=stable_hash_seed(seed, 3),
        enable_fast_forward=fast_forward,
    )
    report = None
    if audit:
        auditor = InvariantAuditor(
            router, congestion_bound=audit_congestion_bound
        )
        auditor.install(engine)
        report = auditor.report
    budget = max_steps if max_steps is not None else params.total_steps
    result = engine.run(budget)
    return TrialRecord(seed=seed, result=result, audit=report)


def run_frontier_vec_trial(
    problem: RoutingProblem,
    seed: int,
    params: Optional[AlgorithmParams] = None,
    audit: bool = False,
    condition_sets: bool = False,
    fast_forward: bool = True,
    max_steps: Optional[int] = None,
    audit_congestion_bound: Optional[float] = None,
    **params_kwargs,
) -> TrialRecord:
    """Run one frontier trial on the vectorized kernel.

    Byte-identical to :func:`run_frontier_trial` with the same arguments
    (same RNG stream derivations, same result digests) — see the
    equivalence contract in :mod:`repro.sim.engine_vec`.  Falls back to
    the reference engine when auditing is requested (the invariant
    auditor needs the reference engine's post-step hooks) or when numpy
    is unavailable.
    """
    from ..sim.engine_vec import VecEngine, numpy_available

    if audit or not numpy_available():
        return run_frontier_trial(
            problem,
            seed,
            params=params,
            audit=audit,
            condition_sets=condition_sets,
            fast_forward=fast_forward,
            max_steps=max_steps,
            audit_congestion_bound=audit_congestion_bound,
            **params_kwargs,
        )
    if params is None:
        params = resolve_trial_params(problem, **params_kwargs)
    set_of = None
    if condition_sets:
        set_of = resample_until_bounded(
            problem,
            params.num_sets,
            params.set_congestion_bound,
            seed=stable_hash_seed(seed, 1),
        )
    engine = VecEngine.frontier(
        problem,
        params,
        set_of=set_of,
        router_seed=stable_hash_seed(seed, 2),
        seed=stable_hash_seed(seed, 3),
        enable_fast_forward=fast_forward,
    )
    budget = max_steps if max_steps is not None else params.total_steps
    result = engine.run(budget)
    return TrialRecord(seed=seed, result=result)


def run_frontier_trials_lockstep(
    problem: RoutingProblem,
    seeds: Sequence[int],
    params: Optional[AlgorithmParams] = None,
    condition_sets: bool = False,
    fast_forward: bool = True,
    max_steps: Optional[int] = None,
    geometry=None,
    **params_kwargs,
) -> List[TrialRecord]:
    """Run one frontier trial per seed on the lockstep batch kernel.

    Byte-identical, per trial, to :func:`run_frontier_vec_trial` (and the
    reference :func:`run_frontier_trial`) with the same seed: the same RNG
    stream derivations feed one per-trial generator pair each, and the
    stacked kernel preserves every per-trial draw order — see
    :mod:`repro.sim.engine_lockstep`.  Requires numpy and a problem
    without an arrival schedule; callers peel such trials off to the
    per-trial paths.
    """
    from ..sim.engine_lockstep import LockstepEngine

    if params is None:
        params = resolve_trial_params(problem, **params_kwargs)
    set_rows = None
    if condition_sets:
        set_rows = [
            resample_until_bounded(
                problem,
                params.num_sets,
                params.set_congestion_bound,
                seed=stable_hash_seed(seed, 1),
            )
            for seed in seeds
        ]
    engine = LockstepEngine.frontier(
        problem,
        params,
        router_seeds=[stable_hash_seed(seed, 2) for seed in seeds],
        engine_seeds=[stable_hash_seed(seed, 3) for seed in seeds],
        set_rows=set_rows,
        enable_fast_forward=fast_forward,
        geometry=geometry,
    )
    budget = max_steps if max_steps is not None else params.total_steps
    results = engine.run(budget)
    return [
        TrialRecord(seed=seed, result=result)
        for seed, result in zip(seeds, results)
    ]


def run_naive_trials_lockstep(
    problem: RoutingProblem,
    seeds: Sequence[int],
    max_steps: int,
    geometry=None,
) -> List[RunResult]:
    """Run the naive baseline once per seed on the lockstep batch kernel.

    Byte-identical, per trial, to :func:`run_naive_vec_trial` with the
    same seed.
    """
    from ..sim.engine_lockstep import LockstepEngine

    engine = LockstepEngine.naive(
        problem,
        engine_seeds=[stable_hash_seed(seed, 5) for seed in seeds],
        geometry=geometry,
    )
    return engine.run(max_steps)


def run_naive_vec_trial(
    problem: RoutingProblem,
    seed: int,
    max_steps: int,
) -> RunResult:
    """Run the naive baseline on the vectorized kernel.

    Byte-identical to ``run_router_trial`` with a ``NaivePathRouter``
    factory and the same seed (the naive router draws no randomness of
    its own, so only the engine stream matters).  Falls back to the
    reference engine when numpy is unavailable.
    """
    from ..sim.engine_vec import VecEngine, numpy_available

    if not numpy_available():
        from ..baselines import NaivePathRouter

        return run_router_trial(
            problem, lambda _seed: NaivePathRouter(), seed, max_steps
        )
    engine = VecEngine.naive(problem, seed=stable_hash_seed(seed, 5))
    return engine.run(max_steps)


def run_router_trial(
    problem: RoutingProblem,
    router_factory: Callable[[int], Router],
    seed: int,
    max_steps: int,
) -> RunResult:
    """Run an arbitrary engine router once (baseline comparisons)."""
    router = router_factory(stable_hash_seed(seed, 4))
    engine = Engine(problem, router, seed=stable_hash_seed(seed, 5))
    return engine.run(max_steps)


def run_frontier_trials(
    problem_factory: Callable[[int], RoutingProblem],
    seeds: Sequence[int],
    workers: int = 1,
    chunksize: Optional[int] = None,
    **kwargs,
) -> List[TrialRecord]:
    """One frontier trial per seed, each on a freshly generated problem.

    ``workers > 1`` fans the seeds across a process pool (see
    :mod:`repro.experiments.parallel`); every trial's RNG streams derive
    from its own seed, so the records are identical to a serial run and
    come back in seed order.  ``problem_factory`` must then be picklable.
    """
    if workers is not None and workers > 1:
        from .parallel import run_frontier_trials_parallel

        return run_frontier_trials_parallel(
            problem_factory,
            seeds,
            workers=workers,
            chunksize=chunksize,
            **kwargs,
        )
    return [
        run_frontier_trial(problem_factory(seed), seed=seed, **kwargs)
        for seed in seeds
    ]
