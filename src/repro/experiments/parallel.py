"""Parallel trial execution across a process pool.

Trial sweeps are embarrassingly parallel: every trial derives its RNG
streams from its own integer seed via :func:`repro.rng.stable_hash_seed`,
so a trial's outcome is a pure function of ``(problem_factory, seed,
kwargs)`` and is *identical* no matter which process (or machine) runs it.
This module fans sweeps across a :class:`concurrent.futures.
ProcessPoolExecutor` in seed-order-preserving chunks; ``workers=1`` (the
default everywhere) short-circuits to plain in-process loops, so serial and
parallel runs return byte-identical records for the same seeds.

Requirements for ``workers > 1``: the problem factory / router factory and
their captured arguments must be picklable (module-level functions and
:func:`functools.partial` over them are; lambdas and closures are not), as
must the routing problem itself — :class:`~repro.net.LeveledNetwork` and
:class:`~repro.paths.RoutingProblem` are plain-data containers, so every
instance built by :mod:`repro.experiments.configs` qualifies.
"""

from __future__ import annotations

import functools
import math
import os
from typing import Callable, List, Optional, Sequence, TypeVar

from ..paths import RoutingProblem
from ..rng import stable_hash_seed
from ..sim import Router, RunResult

T = TypeVar("T")
U = TypeVar("U")

#: Environment knob read by the benchmark harness (see benchmarks/_common.py
#: and ``python -m repro experiment --workers``).
WORKERS_ENV_VAR = "REPRO_BENCH_WORKERS"


def resolve_workers(workers: Optional[int]) -> int:
    """Clamp a worker count: ``None``/0/negatives mean serial."""
    if workers is None or workers < 1:
        return 1
    return workers


#: Minimum wall-clock duration one dispatched chunk should represent: for
#: very cheap items, chunks grow beyond the count-based default so pickling
#: and queue round-trips stay amortized.
MIN_CHUNK_SEC = 0.025

#: Maximum wall-clock duration one dispatched chunk should represent.
#: Progress callbacks fire as whole chunks stream back to the parent, so
#: uncapped chunks on very large batches (a 10^5-trial shard split 4 ways
#: is a 6000+-trial chunk) would go *minutes* between callbacks — starving
#: sweep heartbeats, lease liveness, and resume granularity.
MAX_CHUNK_SEC = 2.0

#: Absolute chunk cap when no per-item cost estimate is available: bounds
#: worst-case callback latency and the records held in flight per chunk.
MAX_CHUNK_ITEMS = 512


def default_chunksize(
    num_items: int,
    workers: int,
    per_item_sec: Optional[float] = None,
    min_chunk_sec: float = MIN_CHUNK_SEC,
    max_chunk_sec: float = MAX_CHUNK_SEC,
) -> int:
    """Chunked dispatch: ~4 chunks per worker bounds scheduling overhead
    while keeping the pool load-balanced when trial durations vary.

    When the caller knows the per-item cost (the adaptive dispatcher's
    probe measures it), chunks are additionally sized up to a minimum
    duration target — capped at one chunk per worker so every worker still
    gets work — and *down* to a maximum duration target, so progress
    callbacks keep firing every few seconds on 10^5-item batches.  Without
    a cost estimate the count-based heuristic applies under an absolute
    ``MAX_CHUNK_ITEMS`` cap.
    """
    if workers <= 1:
        return max(1, num_items)
    size = max(1, math.ceil(num_items / (workers * 4)))
    if per_item_sec is not None and per_item_sec > 0:
        by_duration = math.ceil(min_chunk_sec / per_item_sec)
        per_worker_cap = max(1, math.ceil(num_items / workers))
        size = max(size, min(by_duration, per_worker_cap))
        size = min(size, max(1, int(max_chunk_sec / per_item_sec)))
    return min(size, MAX_CHUNK_ITEMS)


#: Per-item progress callback: ``progress(done, total, item_result)``.
ProgressFn = Callable[[int, int, object], None]


def parallel_map(
    fn: Callable[[T], U],
    items: Sequence[T],
    workers: int = 1,
    chunksize: Optional[int] = None,
    progress: Optional[ProgressFn] = None,
) -> List[U]:
    """Order-preserving map over a process pool (serial when ``workers<=1``).

    ``fn`` and every item must be picklable when ``workers > 1``.
    ``progress`` fires in the parent process after each item's result is
    available, in item order (``pool.map`` streams results back in order,
    so progress over a parallel run advances as chunks complete).
    """
    workers = resolve_workers(workers)
    items = list(items)
    total = len(items)
    if workers <= 1 or total <= 1:
        out: List[U] = []
        for item in items:
            value = fn(item)
            out.append(value)
            if progress is not None:
                progress(len(out), total, value)
        return out
    from concurrent.futures import ProcessPoolExecutor

    if chunksize is None:
        chunksize = default_chunksize(total, workers)
    with ProcessPoolExecutor(max_workers=min(workers, total)) as pool:
        if progress is None:
            return list(pool.map(fn, items, chunksize=chunksize))
        out = []
        for value in pool.map(fn, items, chunksize=chunksize):
            out.append(value)
            progress(len(out), total, value)
        return out


# ------------------------------------------------------------ trial workers
#
# Module-level functions (not closures) so the pool can pickle them; the
# sweep parameters ride along via functools.partial.


def _frontier_trial_task(problem_factory, kwargs: dict, seed: int):
    from .runner import run_frontier_trial

    return run_frontier_trial(problem_factory(seed), seed=seed, **kwargs)


def _frontier_fixed_problem_task(problem: RoutingProblem, kwargs: dict, seed: int):
    from .runner import run_frontier_trial

    return run_frontier_trial(problem, seed=seed, **kwargs)


def _router_trial_task(
    problem: RoutingProblem, router_factory, max_steps: int, seed: int
) -> RunResult:
    from .runner import run_router_trial

    return run_router_trial(problem, router_factory, seed, max_steps)


# ---------------------------------------------------------------- sweep API


def run_frontier_trials_parallel(
    problem_factory: Callable[[int], RoutingProblem],
    seeds: Sequence[int],
    workers: int = 1,
    chunksize: Optional[int] = None,
    **kwargs,
):
    """One frontier trial per seed, fanned across ``workers`` processes.

    Each trial regenerates its problem from its seed inside the worker, so
    only the (small) factory and sweep kwargs cross the process boundary.
    Records come back in seed order and match ``workers=1`` exactly.
    """
    task = functools.partial(_frontier_trial_task, problem_factory, kwargs)
    return parallel_map(task, seeds, workers=workers, chunksize=chunksize)


def run_trials_for_problem(
    problem: RoutingProblem,
    seeds: Sequence[int],
    workers: int = 1,
    chunksize: Optional[int] = None,
    **kwargs,
):
    """Frontier trials of one *fixed* problem under several seeds.

    The sweep shape used by the T1 benchmarks: the instance is held fixed
    while the algorithm's coins vary.  The problem is pickled once per
    worker (chunked dispatch), not once per seed.
    """
    task = functools.partial(_frontier_fixed_problem_task, problem, kwargs)
    return parallel_map(task, seeds, workers=workers, chunksize=chunksize)


def run_router_trials(
    problem: RoutingProblem,
    router_factory: Callable[[int], Router],
    seeds: Sequence[int],
    max_steps: int,
    workers: int = 1,
    chunksize: Optional[int] = None,
) -> List[RunResult]:
    """Baseline-router sweep over seeds (serial or parallel).

    ``router_factory`` must be picklable for ``workers > 1`` (the baseline
    router classes themselves are; pass the class or a ``partial``).
    """
    task = functools.partial(
        _router_trial_task, problem, router_factory, max_steps
    )
    return parallel_map(task, seeds, workers=workers, chunksize=chunksize)


def run_spec_trials(
    specs: Sequence,
    workers: int = 1,
    chunksize: Optional[int] = None,
    cache=None,
    telemetry: bool = False,
    progress: Optional[ProgressFn] = None,
    warm: bool = True,
    dispatch: str = "auto",
    lockstep: bool = True,
):
    """Dispatch a list of :class:`~repro.scenarios.RunSpec` (serial/parallel).

    The scenario-layer sweep primitive: each spec runs through
    :func:`repro.scenarios.run_trial` (or :func:`~repro.scenarios.run_cached`
    when ``cache`` names a cache directory), records come back in spec
    order, and — because a spec's outcome is a pure function of its content
    — serial and parallel runs are byte-identical.  Specs are plain data,
    so they pickle across the pool by construction.

    Execution goes through the batched layer
    (:mod:`repro.experiments.batch`): trials sharing a scenario reuse one
    materialized problem per process (``warm=True``, the default — disable
    to force a fresh build per trial), and ``workers > 1`` dispatches
    chunks of specs to a persistent pool only when the adaptive probe
    decides the batch amortizes pool spin-up; small batches always run the
    warm serial path.  ``dispatch`` overrides the strategy (``"auto"`` /
    ``"serial"`` / ``"pool"``, see
    :func:`~repro.experiments.batch.run_spec_trials_batched`).

    Records are data-only: ``record.problem`` is ``None`` (the build lives
    in the warm cache, not on the record), so sweeps never pickle networks
    back from workers.

    ``telemetry=True`` runs every trial under its own telemetry session
    (one per worker process): each record comes back with
    ``result.telemetry`` counters and pipeline ``timings`` attached, ready
    for :func:`repro.telemetry.aggregate_counters`.  ``progress`` is the
    per-trial callback of :func:`parallel_map`.

    Fixed-problem seed sweeps additionally execute on the lockstep stacked
    kernel in batches (``lockstep=False`` forces per-trial execution;
    records are byte-identical either way — see
    :meth:`~repro.experiments.batch.TrialExecutor.run_chunk`).
    """
    from .batch import run_spec_trials_batched

    return run_spec_trials_batched(
        specs,
        workers=workers,
        chunksize=chunksize,
        cache=cache,
        telemetry=telemetry,
        progress=progress,
        warm=warm,
        dispatch=dispatch,
        lockstep=lockstep,
    )


def run_specs(
    specs: Sequence,
    workers: int = 1,
    chunksize: Optional[int] = None,
    cache=None,
) -> List[RunResult]:
    """Like :func:`run_spec_trials`, returning bare results."""
    return [
        record.result
        for record in run_spec_trials(
            specs, workers=workers, chunksize=chunksize, cache=cache
        )
    ]


def env_workers(default: int = 1) -> int:
    """Worker count from ``$REPRO_BENCH_WORKERS`` (benchmark harness knob)."""
    raw = os.environ.get(WORKERS_ENV_VAR)
    if not raw:
        return default
    try:
        return resolve_workers(int(raw))
    except ValueError:
        return default


def derive_sweep_seeds(base_seed: int, count: int) -> List[int]:
    """Deterministic, well-separated per-trial seeds for a sweep."""
    return [stable_hash_seed(base_seed, index) for index in range(count)]
