"""Experiment harness shared by benchmarks/ and examples/."""

from .runner import (
    TrialRecord,
    run_frontier_trial,
    run_router_trial,
    run_frontier_trials,
)
from .parallel import (
    WORKERS_ENV_VAR,
    default_chunksize,
    derive_sweep_seeds,
    env_workers,
    parallel_map,
    resolve_workers,
    run_frontier_trials_parallel,
    run_router_trials,
    run_trials_for_problem,
)
from .configs import (
    butterfly_random_instance,
    butterfly_hotrow_instance,
    deep_random_instance,
    mesh_monotone_instance,
    mesh_corner_shift_instance,
    funnel_instance,
    small_audit_suite,
    baseline_budget,
    BASELINE_BUDGET_FACTOR,
)

__all__ = [
    "TrialRecord",
    "run_frontier_trial",
    "run_router_trial",
    "run_frontier_trials",
    "WORKERS_ENV_VAR",
    "default_chunksize",
    "derive_sweep_seeds",
    "env_workers",
    "parallel_map",
    "resolve_workers",
    "run_frontier_trials_parallel",
    "run_router_trials",
    "run_trials_for_problem",
    "butterfly_random_instance",
    "butterfly_hotrow_instance",
    "deep_random_instance",
    "mesh_monotone_instance",
    "mesh_corner_shift_instance",
    "funnel_instance",
    "small_audit_suite",
    "baseline_budget",
    "BASELINE_BUDGET_FACTOR",
]
