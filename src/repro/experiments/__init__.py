"""Experiment harness shared by benchmarks/ and examples/.

Instances live in :mod:`repro.experiments.configs` as a catalog of named
:class:`~repro.scenarios.RunSpec` factories; trial execution fans out
through :mod:`repro.experiments.parallel` and dispatches through the
scenario layer (:mod:`repro.scenarios`).
"""

from .runner import (
    TrialRecord,
    run_frontier_trial,
    run_frontier_vec_trial,
    run_naive_vec_trial,
    run_router_trial,
    run_frontier_trials,
)
from .parallel import (
    WORKERS_ENV_VAR,
    default_chunksize,
    derive_sweep_seeds,
    env_workers,
    parallel_map,
    resolve_workers,
    run_frontier_trials_parallel,
    run_router_trials,
    run_spec_trials,
    run_specs,
    run_trials_for_problem,
)
from .batch import (
    TrialExecutor,
    run_spec_trials_batched,
    should_use_pool,
    usable_cpus,
)
from .configs import (
    CATALOG,
    sweep_specs,
    butterfly_random_instance,
    butterfly_random_spec,
    butterfly_hotrow_instance,
    butterfly_hotrow_spec,
    catalog_spec,
    deep_random_instance,
    deep_random_spec,
    dynamic_spec,
    funnel_instance,
    funnel_spec,
    mesh_monotone_instance,
    mesh_monotone_spec,
    mesh_corner_shift_instance,
    mesh_corner_shift_spec,
    small_audit_suite,
    baseline_budget,
    BASELINE_BUDGET_FACTOR,
)

__all__ = [
    "TrialRecord",
    "run_frontier_trial",
    "run_frontier_vec_trial",
    "run_naive_vec_trial",
    "run_router_trial",
    "run_frontier_trials",
    "WORKERS_ENV_VAR",
    "default_chunksize",
    "derive_sweep_seeds",
    "env_workers",
    "parallel_map",
    "resolve_workers",
    "run_frontier_trials_parallel",
    "run_router_trials",
    "run_spec_trials",
    "run_specs",
    "run_trials_for_problem",
    "TrialExecutor",
    "run_spec_trials_batched",
    "should_use_pool",
    "usable_cpus",
    "sweep_specs",
    "CATALOG",
    "catalog_spec",
    "butterfly_random_instance",
    "butterfly_random_spec",
    "butterfly_hotrow_instance",
    "butterfly_hotrow_spec",
    "deep_random_instance",
    "deep_random_spec",
    "dynamic_spec",
    "mesh_monotone_instance",
    "mesh_monotone_spec",
    "mesh_corner_shift_instance",
    "mesh_corner_shift_spec",
    "funnel_instance",
    "funnel_spec",
    "small_audit_suite",
    "baseline_budget",
    "BASELINE_BUDGET_FACTOR",
]
