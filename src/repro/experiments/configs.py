"""Canonical experiment instances.

Each builder returns a labeled :class:`~repro.paths.RoutingProblem` used by
one or more benches; centralizing them here keeps EXPERIMENTS.md's "workload
and parameters" column authoritative.
"""

from __future__ import annotations

from typing import List, Tuple

from ..net import butterfly, mesh, random_leveled
from ..paths import (
    RoutingProblem,
    select_paths_bit_fixing,
    select_paths_bottleneck,
    select_paths_dimension_order,
    select_paths_random,
)
from ..rng import make_rng, stable_hash_seed
from ..workloads import (
    butterfly_workloads,
    mesh_workloads,
    random_many_to_one,
)


def butterfly_random_instance(dim: int, seed: int) -> RoutingProblem:
    """Random end-to-end traffic on a butterfly (unique bit-fixing paths)."""
    net = butterfly(dim)
    workload = butterfly_workloads.random_end_to_end(net, seed=seed)
    return select_paths_bit_fixing(net, workload.endpoints)


def butterfly_hotrow_instance(dim: int, num_packets: int, seed: int) -> RoutingProblem:
    """Hot-row butterfly traffic: congestion ``C = Θ(num_packets)``.

    The C-sweep axis of experiment T1 (depth fixed at ``dim``).
    """
    net = butterfly(dim)
    workload = butterfly_workloads.hot_row(net, num_packets, seed=seed)
    return select_paths_bit_fixing(net, workload.endpoints)


def deep_random_instance(
    depth: int,
    width: int,
    num_packets: int,
    seed: int,
    low_congestion: bool = True,
) -> RoutingProblem:
    """Random many-to-one on a width-``width`` random leveled network.

    The L-sweep axis of experiment T1 (congestion held low by bottleneck
    path selection when ``low_congestion``).
    """
    net = random_leveled(
        [width] * (depth + 1),
        edge_probability=0.5,
        seed=stable_hash_seed(seed, 11),
        min_out_degree=2,
        min_in_degree=2,
    )
    workload = random_many_to_one(
        net,
        num_packets,
        seed=stable_hash_seed(seed, 12),
        source_levels=range(0, max(1, depth // 4)),
        min_dest_level=max(1, (3 * depth) // 4),
    )
    selector_seed = stable_hash_seed(seed, 13)
    if low_congestion:
        return select_paths_bottleneck(net, workload.endpoints, seed=selector_seed)
    return select_paths_random(net, workload.endpoints, seed=selector_seed)


def mesh_monotone_instance(n: int, num_packets: int, seed: int) -> RoutingProblem:
    """Section 5's application: monotone traffic + dimension-order paths."""
    net = mesh(n, n)
    workload = mesh_workloads.monotone_random_pairs(net, num_packets, seed=seed)
    return select_paths_dimension_order(net, workload.endpoints)


def mesh_corner_shift_instance(n: int, block: int | None = None) -> RoutingProblem:
    """Deterministic high-congestion monotone mesh instance."""
    net = mesh(n, n)
    workload = mesh_workloads.corner_shift(net, block=block)
    return select_paths_dimension_order(net, workload.endpoints)


def funnel_instance(dim: int, num_packets: int, seed: int) -> RoutingProblem:
    """Adversarial butterfly instance: every path crosses one edge (C = N)."""
    from ..workloads import funnel_through_edge

    net = butterfly(dim)
    return funnel_through_edge(net, num_packets, seed=stable_hash_seed(seed, 17))


def small_audit_suite(seed: int) -> List[Tuple[str, RoutingProblem]]:
    """The audited-invariant battery of experiment T3 (varied topologies)."""
    rng = make_rng(seed)
    suite: List[Tuple[str, RoutingProblem]] = []
    suite.append(("butterfly(4) random", butterfly_random_instance(4, int(rng.integers(1 << 30)))))
    suite.append(
        (
            "butterfly(4) hot-row",
            butterfly_hotrow_instance(4, 8, int(rng.integers(1 << 30))),
        )
    )
    suite.append(
        (
            "random L=20 w=6",
            deep_random_instance(20, 6, 12, int(rng.integers(1 << 30))),
        )
    )
    suite.append(
        ("mesh 8x8 monotone", mesh_monotone_instance(8, 16, int(rng.integers(1 << 30))))
    )
    return suite


#: Baseline step budget multiplier: bufferless baselines may thrash, so give
#: them a generous multiple of the trivial bound before declaring livelock.
BASELINE_BUDGET_FACTOR = 400


def baseline_budget(problem: RoutingProblem) -> int:
    """Step budget for baseline routers on one problem."""
    scale = max(problem.congestion + problem.dilation, 1)
    return BASELINE_BUDGET_FACTOR * scale + 2000
