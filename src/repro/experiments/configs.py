"""The experiment catalog: canonical instances as named, serializable specs.

Every canonical instance used by the benches and docs is defined here as a
:class:`~repro.scenarios.RunSpec` factory, and the legacy instance builders
(:func:`butterfly_random_instance`, ...) are thin wrappers that materialize
the corresponding spec through the scenario dispatcher — so EXPERIMENTS.md's
"workload and parameters" column, the benches, ``repro list``, and
``repro run --spec`` all share one source of truth.

Spec factories pin explicit component seeds where the historical builders
used them, which keeps every materialized instance byte-identical to the
pre-catalog code (asserted by the golden regression tests).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..paths import RoutingProblem
from ..rng import make_rng, stable_hash_seed
from ..scenarios import RunSpec, build_problem
from ..scenarios.registry import UnknownNameError

# ------------------------------------------------------------ spec factories


def butterfly_random_spec(
    dim: int = 4, seed: int = 0, backend: str = "frontier", **backend_params
) -> RunSpec:
    """Random end-to-end butterfly traffic (unique bit-fixing paths)."""
    return RunSpec(
        name=f"butterfly_random(dim={dim})",
        topology="butterfly",
        topology_params={"dim": dim},
        workload="bf_random_end_to_end",
        workload_params={"seed": seed},
        selector="bit_fixing",
        backend=backend,
        backend_params=backend_params,
        seed=seed,
    )


def butterfly_hotrow_spec(
    dim: int = 4,
    num_packets: int = 8,
    seed: int = 0,
    backend: str = "frontier",
    **backend_params,
) -> RunSpec:
    """Hot-row butterfly traffic: congestion ``C = Θ(num_packets)``."""
    return RunSpec(
        name=f"butterfly_hotrow(dim={dim}, N={num_packets})",
        topology="butterfly",
        topology_params={"dim": dim},
        workload="bf_hot_row",
        workload_params={"num_packets": num_packets, "seed": seed},
        selector="bit_fixing",
        backend=backend,
        backend_params=backend_params,
        seed=seed,
    )


def deep_random_spec(
    depth: int = 20,
    width: int = 6,
    num_packets: int = 12,
    seed: int = 0,
    low_congestion: bool = True,
    backend: str = "frontier",
    **backend_params,
) -> RunSpec:
    """Random many-to-one on a random leveled network (the L-sweep axis).

    Component seeds use the default spec derivation — ``(seed, 11/12/13)``
    for topology/workload/selector — which is exactly the historical
    builder's scheme.
    """
    return RunSpec(
        name=f"deep_random(L={depth}, w={width}, N={num_packets})",
        topology="random_leveled",
        topology_params={"width": width, "depth": depth},
        workload="random_many_to_one",
        workload_params={
            "num_packets": num_packets,
            "source_levels": list(range(0, max(1, depth // 4))),
            "min_dest_level": max(1, (3 * depth) // 4),
        },
        selector="bottleneck" if low_congestion else "random",
        backend=backend,
        backend_params=backend_params,
        seed=seed,
    )


def mesh_monotone_spec(
    n: int = 8,
    num_packets: int = 16,
    seed: int = 0,
    backend: str = "frontier",
    **backend_params,
) -> RunSpec:
    """Section 5's application: monotone traffic + dimension-order paths."""
    return RunSpec(
        name=f"mesh_monotone(n={n}, N={num_packets})",
        topology="mesh",
        topology_params={"rows": n},
        workload="mesh_monotone",
        workload_params={"num_packets": num_packets, "seed": seed},
        selector="dimension_order",
        backend=backend,
        backend_params=backend_params,
        seed=seed,
    )


def mesh_corner_shift_spec(
    n: int = 8,
    block: int | None = None,
    backend: str = "frontier",
    **backend_params,
) -> RunSpec:
    """Deterministic high-congestion monotone mesh instance."""
    params = {} if block is None else {"block": block}
    return RunSpec(
        name=f"mesh_corner_shift(n={n})",
        topology="mesh",
        topology_params={"rows": n},
        workload="mesh_corner_shift",
        workload_params=params,
        selector="dimension_order",
        backend=backend,
        backend_params=backend_params,
        seed=0,
    )


def funnel_spec(
    dim: int = 4,
    num_packets: int = 8,
    seed: int = 0,
    backend: str = "frontier",
    **backend_params,
) -> RunSpec:
    """Adversarial butterfly instance: every path crosses one edge (C = N)."""
    return RunSpec(
        name=f"funnel(dim={dim}, N={num_packets})",
        topology="butterfly",
        topology_params={"dim": dim},
        workload="funnel_through_edge",
        workload_params={
            "num_packets": num_packets,
            "seed": stable_hash_seed(seed, 17),
        },
        selector="none",
        backend=backend,
        backend_params=backend_params,
        seed=seed,
    )


def dynamic_spec(
    dim: int = 4,
    rate: float = 0.3,
    horizon: int = 200,
    drain: int = 50000,
    seed: int = 0,
    greedy: bool = True,
) -> RunSpec:
    """Continuous Bernoulli injection on a butterfly (experiment T9)."""
    router = "greedy" if greedy else "naive"
    return RunSpec(
        name=f"dynamic_{router}(dim={dim}, rate={rate})",
        topology="butterfly",
        topology_params={"dim": dim, "seed": seed},
        workload="",
        selector="none",
        backend=f"dynamic_{router}",
        backend_params={"rate": rate, "horizon": horizon, "drain": drain},
        seed=seed,
    )


#: Frontier catalog families that get a ``<name>_<preset>`` variant per
#: entry in :data:`repro.core.PRESETS`.
PRESET_FAMILIES = (
    "butterfly_random",
    "butterfly_hotrow",
    "deep_random",
    "mesh_monotone",
    "funnel",
)


def _catalog() -> Dict[str, RunSpec]:
    entries = {
        "butterfly_random": butterfly_random_spec(4, seed=0),
        "butterfly_hotrow": butterfly_hotrow_spec(4, 8, seed=0),
        "deep_random": deep_random_spec(20, 6, 12, seed=0),
        "mesh_monotone": mesh_monotone_spec(8, 16, seed=0),
        "mesh_corner_shift": mesh_corner_shift_spec(8),
        "funnel": funnel_spec(4, 8, seed=0),
        "butterfly_naive": butterfly_random_spec(4, seed=0, backend="naive"),
        "butterfly_greedy": butterfly_random_spec(4, seed=0, backend="greedy"),
        "butterfly_randgreedy": butterfly_random_spec(
            4, seed=0, backend="randgreedy"
        ),
        "butterfly_storeforward": butterfly_random_spec(
            4, seed=0, backend="storeforward"
        ),
        "butterfly_random_delay": butterfly_random_spec(
            4, seed=0, backend="random_delay"
        ),
        "butterfly_bounded_buffer": butterfly_random_spec(
            4, seed=0, backend="bounded_buffer", buffer_size=2
        ),
        "dynamic_naive": dynamic_spec(4, seed=0, greedy=False),
        "dynamic_greedy": dynamic_spec(4, seed=0, greedy=True),
    }
    # Explicit parameter-preset variants of the frontier families: the
    # same pinned scenarios run under each named family in
    # repro.core.PRESETS (selected via backend_params={"preset": ...}).
    # "paper-faithful" matches the bare entries' defaults — it exists so
    # both sides of the docs/tuning.md comparison are addressable specs;
    # "practical" is the tuned family (see docs/tuning.md).
    from ..core import PRESETS

    for base_name in PRESET_FAMILIES:
        for preset in PRESETS:
            slug = preset.replace("-", "_")
            entries[f"{base_name}_{slug}"] = entries[base_name].with_params(
                preset=preset
            )
    import dataclasses

    return {
        key: dataclasses.replace(spec, name=key)
        for key, spec in entries.items()
    }


#: Named ready-to-run specs (``repro list`` / ``repro spec <name>``), one
#: per backend family plus the canonical frontier instances.
CATALOG: Dict[str, RunSpec] = _catalog()


def catalog_spec(name: str, seed: int | None = None) -> RunSpec:
    """Look up a catalog spec by name (optionally re-seeded)."""
    try:
        spec = CATALOG[name]
    except KeyError:
        raise UnknownNameError("catalog spec", name, CATALOG) from None
    return spec if seed is None else spec.with_seed(seed)


def sweep_specs(
    base: RunSpec, num_trials: int, base_seed: int | None = None
) -> List[RunSpec]:
    """A fixed-problem Monte Carlo sweep: one spec per trial seed.

    The paper's guarantees (Theorem 4.26) are probabilistic over the
    *algorithm's* coins for a fixed instance, so the canonical sweep holds
    the problem constant and re-rolls only the routing randomness: the
    base spec's component seeds are pinned to their resolved values
    (:meth:`~repro.scenarios.RunSpec.with_pinned_scenario`), then the
    master seed — which only the backend consumes once components are
    pinned — is varied per trial via :func:`derive_sweep_seeds`.

    Every returned spec shares the base's scenario hash, so batched
    execution (:func:`~repro.experiments.run_spec_trials`) builds the
    ``(network, geometry, paths)`` triple once per worker and reuses it
    across the whole sweep.
    """
    from .parallel import derive_sweep_seeds

    pinned = base.with_pinned_scenario()
    seeds = derive_sweep_seeds(
        base.seed if base_seed is None else base_seed, num_trials
    )
    return [pinned.with_seed(seed) for seed in seeds]


# ----------------------------------------------------- legacy instance views
#
# The historical builder API, now materialized through the dispatcher.  The
# golden regression tests pin that these produce byte-identical instances
# to the pre-catalog hand-wired builders.


def butterfly_random_instance(dim: int, seed: int) -> RoutingProblem:
    """Random end-to-end traffic on a butterfly (unique bit-fixing paths)."""
    return build_problem(butterfly_random_spec(dim, seed=seed))


def butterfly_hotrow_instance(dim: int, num_packets: int, seed: int) -> RoutingProblem:
    """Hot-row butterfly traffic: congestion ``C = Θ(num_packets)``.

    The C-sweep axis of experiment T1 (depth fixed at ``dim``).
    """
    return build_problem(butterfly_hotrow_spec(dim, num_packets, seed=seed))


def deep_random_instance(
    depth: int,
    width: int,
    num_packets: int,
    seed: int,
    low_congestion: bool = True,
) -> RoutingProblem:
    """Random many-to-one on a width-``width`` random leveled network.

    The L-sweep axis of experiment T1 (congestion held low by bottleneck
    path selection when ``low_congestion``).
    """
    return build_problem(
        deep_random_spec(
            depth, width, num_packets, seed=seed, low_congestion=low_congestion
        )
    )


def mesh_monotone_instance(n: int, num_packets: int, seed: int) -> RoutingProblem:
    """Section 5's application: monotone traffic + dimension-order paths."""
    return build_problem(mesh_monotone_spec(n, num_packets, seed=seed))


def mesh_corner_shift_instance(n: int, block: int | None = None) -> RoutingProblem:
    """Deterministic high-congestion monotone mesh instance."""
    return build_problem(mesh_corner_shift_spec(n, block=block))


def funnel_instance(dim: int, num_packets: int, seed: int) -> RoutingProblem:
    """Adversarial butterfly instance: every path crosses one edge (C = N)."""
    return build_problem(funnel_spec(dim, num_packets, seed=seed))


def small_audit_suite(seed: int) -> List[Tuple[str, RoutingProblem]]:
    """The audited-invariant battery of experiment T3 (varied topologies)."""
    rng = make_rng(seed)
    suite: List[Tuple[str, RoutingProblem]] = []
    suite.append(("butterfly(4) random", butterfly_random_instance(4, int(rng.integers(1 << 30)))))
    suite.append(
        (
            "butterfly(4) hot-row",
            butterfly_hotrow_instance(4, 8, int(rng.integers(1 << 30))),
        )
    )
    suite.append(
        (
            "random L=20 w=6",
            deep_random_instance(20, 6, 12, int(rng.integers(1 << 30))),
        )
    )
    suite.append(
        ("mesh 8x8 monotone", mesh_monotone_instance(8, 16, int(rng.integers(1 << 30))))
    )
    return suite


#: Baseline step budget multiplier: bufferless baselines may thrash, so give
#: them a generous multiple of the trivial bound before declaring livelock.
BASELINE_BUDGET_FACTOR = 400


def baseline_budget(problem: RoutingProblem) -> int:
    """Step budget for baseline routers on one problem."""
    scale = max(problem.congestion + problem.dilation, 1)
    return BASELINE_BUDGET_FACTOR * scale + 2000
