"""Warm-pool batched trial execution: the sweep throughput layer.

The paper's guarantees are probabilistic, so every experiment is a Monte
Carlo sweep over many seeded trials — which makes *trial throughput*, not
single-run step rate, the binding constraint on sweep wall-clock.  The
naive fan-out (one pickled task per trial, a fresh problem build per
trial) pays three overheads that dwarf the PR-1-optimized engine loop:
process/task dispatch, per-trial re-pickling, and redundant
``(network, geometry, paths)`` construction.  This module removes all
three while keeping the pinned guarantee that serial and parallel sweeps
return **byte-identical** records for the same specs:

* **Persistent workers.**  One :class:`~concurrent.futures.
  ProcessPoolExecutor` per sweep, whose initializer pre-imports the
  scenario registries and opens the on-disk :class:`~repro.scenarios.
  ResultCache` once, so no per-trial import or open cost remains.
* **Chunked dispatch.**  Workers receive chunks of
  :class:`~repro.scenarios.RunSpec` (sized by
  :func:`~repro.experiments.parallel.default_chunksize`, which respects a
  minimum per-chunk duration) instead of one pickled task per trial, and
  return chunks of data-only records — the materialized problem never
  crosses the process boundary.
* **Per-worker scenario warm cache.**  Each worker holds a
  :class:`~repro.scenarios.ScenarioCache` keyed by
  :meth:`RunSpec.scenario_hash`, so all trials sharing a scenario (seeds
  re-randomize frontier-set assignment and tie-breaks, never the problem —
  see :meth:`RunSpec.with_pinned_scenario`) build the problem once per
  worker.
* **Adaptive dispatch.**  :func:`run_spec_trials_batched` first runs a
  small probe chunk in the parent, estimates per-trial cost, and falls
  back to (warm) serial execution when the remaining batch is too small to
  amortize pool spin-up — so tiny sweeps are never slower than a plain
  loop.  Requested workers are also clamped to the CPUs actually usable in
  this process: on a single-core host a ``workers=4`` sweep runs the warm
  serial path instead of paying fork-and-pickle for no parallelism.

Determinism: a trial's outcome is a pure function of its spec, the warm
cache only deduplicates pure builds, and records are assembled in spec
order — so the execution strategy (serial, warm serial, pooled, any chunk
size) can never leak into results, telemetry counters, or trace digests
(pinned by ``tests/test_scenarios.py`` and ``tests/test_telemetry.py``).
"""

from __future__ import annotations

import json
import os
import pathlib
from time import perf_counter
from typing import List, Optional, Sequence

from ..scenarios import ScenarioCache
from ..scenarios.cache import DEFAULT_SCENARIO_CAPACITY

#: Budget for spinning up a worker pool (fork/spawn, initializer imports,
#: first-chunk latency).  Deliberately pessimistic: when in doubt the
#: dispatcher stays serial, which is never worse than today's loop.
POOL_SPINUP_SEC = 0.35

#: Projected pool savings must exceed spin-up by this factor before the
#: dispatcher commits to forking (guards against estimate noise).
POOL_ADVANTAGE_MARGIN = 1.25

#: Trials executed in the parent to estimate per-trial cost ("the first
#: completed chunk" of the adaptive dispatcher).
PROBE_TRIALS = 4

#: Widest batch one lockstep kernel instance advances at once.  Wider
#: batches amortize dispatch better but pay more memory and more masked
#: work per straggler trial; 64 matches the fixed-problem bench and keeps
#: the stacked arrays comfortably in cache for typical problem sizes.
LOCKSTEP_MAX_TRIALS = 64

#: Spec backends the lockstep kernel can execute, mapped to the kernel
#: family that runs them.  ``frontier``/``frontier_vec`` (and the
#: ``REPRO_BACKEND`` reroute between them) are byte-identical per trial,
#: so they share one lockstep family; likewise the naive pair.
_LOCKSTEP_FAMILIES = {
    "frontier": "frontier",
    "frontier_vec": "frontier",
    "naive": "naive",
    "naive_vec": "naive",
}


def usable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def should_use_pool(
    num_trials: int,
    per_trial_sec: float,
    workers: int,
    spinup_sec: float = POOL_SPINUP_SEC,
) -> bool:
    """The serial-fallback boundary of the adaptive dispatcher.

    Pool dispatch is worth it only when the projected wall-clock saving of
    fanning ``num_trials`` across ``workers`` processes exceeds the pool's
    spin-up cost with a safety margin.  Small or cheap batches therefore
    stay on the (warm) serial path — never slower than a plain loop.
    """
    if workers <= 1 or num_trials <= 1:
        return False
    serial_sec = num_trials * max(per_trial_sec, 0.0)
    projected_saving = serial_sec * (1.0 - 1.0 / workers)
    return projected_saving > spinup_sec * POOL_ADVANTAGE_MARGIN


class TrialExecutor:
    """Executes specs with warm scenario reuse; one per process.

    Bundles the per-process execution state — the scenario warm cache, the
    optional on-disk result-cache root, and the telemetry flag — so the
    same code path serves the parent (serial and probe execution) and
    every pool worker.
    """

    def __init__(
        self,
        cache_root: Optional[pathlib.Path] = None,
        telemetry: bool = False,
        warm: bool = True,
        capacity: int = DEFAULT_SCENARIO_CAPACITY,
        lockstep: bool = True,
    ) -> None:
        self.cache_root = cache_root
        self.telemetry = telemetry
        # ``warm`` may pass an existing ScenarioCache so callers running
        # many batches over one scenario (the sweep driver's shard loop)
        # share a single problem build across executors.
        if isinstance(warm, ScenarioCache):
            self.scenarios = warm
        else:
            self.scenarios = ScenarioCache(capacity) if warm else None
        self.lockstep = lockstep

    def run(self, spec):
        """Execute one spec, returning a data-only record (no problem)."""
        from ..scenarios import run_cached, run_trial

        if self.cache_root is not None:
            record = run_cached(
                spec,
                self.cache_root,
                telemetry=self.telemetry,
                warm=self.scenarios,
            )
        else:
            record = run_trial(
                spec, telemetry=self.telemetry, warm=self.scenarios
            )
        # Sweep records are plain data: the materialized problem is shared
        # with the warm cache and must not ride back across process
        # boundaries (pickling it per trial is what made the old pool 5x
        # slower than serial).
        record.problem = None
        return record

    # --------------------------------------------------- lockstep batching

    def _group_key(self, spec):
        """Lockstep grouping key for ``spec``, or None when ineligible.

        Two specs with equal keys are guaranteed to materialize the *same*
        routing problem (``scenario_hash`` covers every resolved component
        seed) and run it under the same backend family and parameters, so
        the stacked kernel can advance them in one set of arrays.  Trials
        needing per-trial machinery peel off to :meth:`run`: telemetry or
        an ambient trace session (the lockstep kernel carries no
        observers), invariant audits, arrival schedules, non-lockstep
        backends, or a missing numpy.
        """
        if not self.lockstep or self.telemetry:
            return None
        family = _LOCKSTEP_FAMILIES.get(spec.backend)
        if family is None or spec.arrival:
            return None
        if family == "frontier" and spec.backend_params.get("audit"):
            return None
        from ..sim.soa import NUMPY_AVAILABLE

        if not NUMPY_AVAILABLE:
            return None
        from ..telemetry.context import current_session

        if current_session() is not None:
            return None
        return (
            spec.scenario_hash(),
            family,
            json.dumps(dict(spec.backend_params), sort_keys=True),
        )

    def run_chunk(self, specs: Sequence) -> List:
        """Execute a chunk of specs in order, lockstepping where possible.

        Consecutive specs sharing a :meth:`_group_key` (a fixed-problem
        Monte Carlo run differing only in seed) execute as one stacked
        batch of up to :data:`LOCKSTEP_MAX_TRIALS` trials; everything else
        falls through to the ordinary per-trial :meth:`run`.  Records come
        back in spec order and are byte-identical to a per-trial loop —
        the kernel's per-trial RNG streams replay the serial draws exactly
        (pinned by ``tests/test_engine_lockstep.py``).
        """
        specs = list(specs)
        records: List = []
        i, n = 0, len(specs)
        while i < n:
            key = self._group_key(specs[i])
            if key is None:
                records.append(self.run(specs[i]))
                i += 1
                continue
            j = i + 1
            while (
                j < n
                and j - i < LOCKSTEP_MAX_TRIALS
                and self._group_key(specs[j]) == key
            ):
                j += 1
            records.extend(self._run_lockstep(specs[i:j], key[1]))
            i = j
        return records

    def _run_lockstep(self, group: Sequence, family: str) -> List:
        """Run one homogeneous group on the stacked kernel, in spec order.

        Disk-cache hits peel out first (returned exactly as :func:`~repro.
        scenarios.run_cached` would return them); the remaining misses run
        as one lockstep batch over the group's shared warm problem and are
        stored back, so cache contents match the per-trial path byte for
        byte.
        """
        from ..scenarios.dispatch import ScenarioRun, build_problem

        cache = None
        if self.cache_root is not None:
            from ..scenarios.cache import ResultCache

            cache = ResultCache(self.cache_root)
        slots: List[Optional[ScenarioRun]] = []
        misses: List[int] = []
        for spec in group:
            hit = cache.load_record(spec) if cache is not None else None
            if hit is not None:
                result, timings = hit
                slots.append(
                    ScenarioRun(
                        spec=spec, result=result, cached=True, timings=timings
                    )
                )
            else:
                slots.append(None)
                misses.append(len(slots) - 1)
        if not misses:
            return slots
        first = group[misses[0]]
        problem = (
            self.scenarios.problem_for(first)
            if self.scenarios is not None
            else build_problem(first)
        )
        seeds = [group[k].seed for k in misses]
        tag = f"lockstep[w={len(seeds)}]"
        if family == "frontier":
            from .runner import run_frontier_trials_lockstep

            params = dict(first.backend_params)
            params.pop("audit", None)
            params.pop("audit_congestion_bound", None)
            results = [
                rec.result
                for rec in run_frontier_trials_lockstep(
                    problem,
                    seeds,
                    condition_sets=bool(params.pop("condition_sets", False)),
                    fast_forward=bool(params.pop("fast_forward", True)),
                    max_steps=params.pop("max_steps", None),
                    **params,
                )
            ]
        else:
            from .configs import baseline_budget
            from .runner import run_naive_trials_lockstep

            explicit = first.backend_params.get("max_steps")
            budget = (
                int(explicit)
                if explicit is not None
                else baseline_budget(problem)
            )
            results = run_naive_trials_lockstep(problem, seeds, budget)
        for k, result in zip(misses, results):
            spec = group[k]
            if cache is not None:
                cache.store(spec, result)
            slots[k] = ScenarioRun(spec=spec, result=result, executor=tag)
        return slots


# ------------------------------------------------------- pool worker plumbing
#
# Module-level state + functions (not closures) so the pool can pickle the
# chunk task; the initializer runs once per worker process.

_WORKER: Optional[TrialExecutor] = None


def _init_worker(
    cache_root: Optional[pathlib.Path],
    telemetry: bool,
    warm: bool,
    capacity: int,
    lockstep: bool = True,
) -> None:
    """Pool initializer: pre-import the pipeline, set up per-worker state."""
    global _WORKER
    # Importing the scenario package populates all four component
    # registries; the runner import pulls in the frontier algorithm stack.
    # Under the spawn start method this moves the entire import cost out of
    # the first chunk; under fork it is a no-op revalidation.
    import repro.experiments.runner  # noqa: F401
    import repro.scenarios  # noqa: F401

    _WORKER = TrialExecutor(
        cache_root,
        telemetry=telemetry,
        warm=warm,
        capacity=capacity,
        lockstep=lockstep,
    )


def _run_chunk(chunk: Sequence) -> List:
    """Execute one chunk of specs in a pool worker, in order."""
    executor = _WORKER
    if executor is None:  # pool built without the initializer; be safe
        executor = TrialExecutor(warm=False)
    return executor.run_chunk(chunk)


# ------------------------------------------------------------ sweep dispatch


def _cache_root(cache) -> Optional[pathlib.Path]:
    if cache is None:
        return None
    if isinstance(cache, (str, pathlib.Path)):
        # Paths are the root themselves; PosixPath.root is the filesystem
        # anchor ("/"), so the getattr below must never see them.
        return pathlib.Path(cache)
    return pathlib.Path(getattr(cache, "root", cache))


def run_spec_trials_batched(
    specs: Sequence,
    workers: int = 1,
    chunksize: Optional[int] = None,
    cache=None,
    telemetry: bool = False,
    progress=None,
    warm: bool = True,
    dispatch: str = "auto",
    collect: bool = True,
    lockstep: bool = True,
):
    """Batched spec sweep: warm serial, or chunked over a persistent pool.

    The implementation behind :func:`repro.experiments.run_spec_trials`;
    see its docstring for the caller-facing contract.  ``dispatch`` picks
    the strategy:

    * ``"auto"`` (default) — clamp ``workers`` to usable CPUs, run a probe
      chunk in the parent to estimate per-trial cost, then either finish
      serially (batch too small to amortize pool spin-up) or fan the rest
      across a persistent worker pool in duration-sized chunks;
    * ``"serial"`` — force the warm in-process loop;
    * ``"pool"`` — force pool dispatch for every spec (no probe, no CPU
      clamp); used by tests and benchmarks that must exercise the pool
      machinery regardless of host shape.

    Records come back in spec order and are byte-identical across every
    strategy.

    ``collect=False`` switches to streaming mode for very large batches:
    each record is handed to ``progress`` exactly as usual but *not*
    retained, and the return value is an empty list — so peak memory is
    one chunk of records, independent of ``len(specs)``.  The sweep store
    (:mod:`repro.sweeps`) runs every shard this way.

    Within every strategy, consecutive specs that differ only in seed
    (fixed-problem Monte Carlo batches) execute on the lockstep stacked
    kernel in groups of up to :data:`LOCKSTEP_MAX_TRIALS` — process-level
    parallelism multiplies lockstep width instead of replacing it.
    ``lockstep=False`` forces the per-trial path everywhere (benchmarks
    use it to measure the kernel's speedup; results are byte-identical
    either way).
    """
    from .parallel import default_chunksize, resolve_workers

    if dispatch not in ("auto", "serial", "pool"):
        raise ValueError(
            f"dispatch must be 'auto', 'serial', or 'pool', got {dispatch!r}"
        )
    specs = list(specs)
    total = len(specs)
    root = _cache_root(cache)
    workers = resolve_workers(workers)
    if dispatch == "auto":
        workers = min(workers, usable_cpus())

    executor = TrialExecutor(
        root, telemetry=telemetry, warm=warm, lockstep=lockstep
    )
    records: List = []
    done = 0

    def _emit(record) -> None:
        nonlocal done
        done += 1
        if collect:
            records.append(record)
        if progress is not None:
            progress(done, total, record)

    def _serial(batch) -> None:
        for record in executor.run_chunk(batch):
            _emit(record)

    if dispatch == "serial" or (dispatch == "auto" and (workers <= 1 or total <= 1)):
        _serial(specs)
        return records

    remaining = specs
    per_trial: Optional[float] = None
    if dispatch == "auto":
        # Probe chunk: run a few trials in the parent (warm), time them,
        # and only fork when the remainder amortizes pool spin-up.
        probe = specs[: min(PROBE_TRIALS, total)]
        start = perf_counter()
        _serial(probe)
        per_trial = (perf_counter() - start) / len(probe)
        remaining = specs[len(probe):]
        if not remaining or not should_use_pool(
            len(remaining), per_trial, workers
        ):
            _serial(remaining)
            return records

    from concurrent.futures import ProcessPoolExecutor

    if chunksize is None:
        chunksize = default_chunksize(
            len(remaining), workers, per_item_sec=per_trial
        )
    chunks = [
        remaining[i : i + chunksize]
        for i in range(0, len(remaining), chunksize)
    ]
    capacity = (
        executor.scenarios.capacity
        if executor.scenarios is not None
        else DEFAULT_SCENARIO_CAPACITY
    )
    with ProcessPoolExecutor(
        max_workers=min(workers, len(chunks)),
        initializer=_init_worker,
        # A ScenarioCache instance cannot cross the process boundary;
        # workers get a fresh warm cache of the same capacity instead.
        initargs=(root, telemetry, bool(warm), capacity, lockstep),
    ) as pool:
        # chunksize=1: each mapped item is already a chunk of specs.
        for chunk_records in pool.map(_run_chunk, chunks):
            for record in chunk_records:
                _emit(record)
    return records
