"""Warm-pool batched trial execution: the sweep throughput layer.

The paper's guarantees are probabilistic, so every experiment is a Monte
Carlo sweep over many seeded trials — which makes *trial throughput*, not
single-run step rate, the binding constraint on sweep wall-clock.  The
naive fan-out (one pickled task per trial, a fresh problem build per
trial) pays three overheads that dwarf the PR-1-optimized engine loop:
process/task dispatch, per-trial re-pickling, and redundant
``(network, geometry, paths)`` construction.  This module removes all
three while keeping the pinned guarantee that serial and parallel sweeps
return **byte-identical** records for the same specs:

* **Persistent workers.**  One :class:`~concurrent.futures.
  ProcessPoolExecutor` per sweep, whose initializer pre-imports the
  scenario registries and opens the on-disk :class:`~repro.scenarios.
  ResultCache` once, so no per-trial import or open cost remains.
* **Chunked dispatch.**  Workers receive chunks of
  :class:`~repro.scenarios.RunSpec` (sized by
  :func:`~repro.experiments.parallel.default_chunksize`, which respects a
  minimum per-chunk duration) instead of one pickled task per trial, and
  return chunks of data-only records — the materialized problem never
  crosses the process boundary.
* **Per-worker scenario warm cache.**  Each worker holds a
  :class:`~repro.scenarios.ScenarioCache` keyed by
  :meth:`RunSpec.scenario_hash`, so all trials sharing a scenario (seeds
  re-randomize frontier-set assignment and tie-breaks, never the problem —
  see :meth:`RunSpec.with_pinned_scenario`) build the problem once per
  worker.
* **Adaptive dispatch.**  :func:`run_spec_trials_batched` first runs a
  small probe chunk in the parent, estimates per-trial cost, and falls
  back to (warm) serial execution when the remaining batch is too small to
  amortize pool spin-up — so tiny sweeps are never slower than a plain
  loop.  Requested workers are also clamped to the CPUs actually usable in
  this process: on a single-core host a ``workers=4`` sweep runs the warm
  serial path instead of paying fork-and-pickle for no parallelism.

Determinism: a trial's outcome is a pure function of its spec, the warm
cache only deduplicates pure builds, and records are assembled in spec
order — so the execution strategy (serial, warm serial, pooled, any chunk
size) can never leak into results, telemetry counters, or trace digests
(pinned by ``tests/test_scenarios.py`` and ``tests/test_telemetry.py``).
"""

from __future__ import annotations

import os
import pathlib
from time import perf_counter
from typing import List, Optional, Sequence

from ..scenarios import ScenarioCache
from ..scenarios.cache import DEFAULT_SCENARIO_CAPACITY

#: Budget for spinning up a worker pool (fork/spawn, initializer imports,
#: first-chunk latency).  Deliberately pessimistic: when in doubt the
#: dispatcher stays serial, which is never worse than today's loop.
POOL_SPINUP_SEC = 0.35

#: Projected pool savings must exceed spin-up by this factor before the
#: dispatcher commits to forking (guards against estimate noise).
POOL_ADVANTAGE_MARGIN = 1.25

#: Trials executed in the parent to estimate per-trial cost ("the first
#: completed chunk" of the adaptive dispatcher).
PROBE_TRIALS = 4


def usable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def should_use_pool(
    num_trials: int,
    per_trial_sec: float,
    workers: int,
    spinup_sec: float = POOL_SPINUP_SEC,
) -> bool:
    """The serial-fallback boundary of the adaptive dispatcher.

    Pool dispatch is worth it only when the projected wall-clock saving of
    fanning ``num_trials`` across ``workers`` processes exceeds the pool's
    spin-up cost with a safety margin.  Small or cheap batches therefore
    stay on the (warm) serial path — never slower than a plain loop.
    """
    if workers <= 1 or num_trials <= 1:
        return False
    serial_sec = num_trials * max(per_trial_sec, 0.0)
    projected_saving = serial_sec * (1.0 - 1.0 / workers)
    return projected_saving > spinup_sec * POOL_ADVANTAGE_MARGIN


class TrialExecutor:
    """Executes specs with warm scenario reuse; one per process.

    Bundles the per-process execution state — the scenario warm cache, the
    optional on-disk result-cache root, and the telemetry flag — so the
    same code path serves the parent (serial and probe execution) and
    every pool worker.
    """

    def __init__(
        self,
        cache_root: Optional[pathlib.Path] = None,
        telemetry: bool = False,
        warm: bool = True,
        capacity: int = DEFAULT_SCENARIO_CAPACITY,
    ) -> None:
        self.cache_root = cache_root
        self.telemetry = telemetry
        self.scenarios = ScenarioCache(capacity) if warm else None

    def run(self, spec):
        """Execute one spec, returning a data-only record (no problem)."""
        from ..scenarios import run_cached, run_trial

        if self.cache_root is not None:
            record = run_cached(
                spec,
                self.cache_root,
                telemetry=self.telemetry,
                warm=self.scenarios,
            )
        else:
            record = run_trial(
                spec, telemetry=self.telemetry, warm=self.scenarios
            )
        # Sweep records are plain data: the materialized problem is shared
        # with the warm cache and must not ride back across process
        # boundaries (pickling it per trial is what made the old pool 5x
        # slower than serial).
        record.problem = None
        return record


# ------------------------------------------------------- pool worker plumbing
#
# Module-level state + functions (not closures) so the pool can pickle the
# chunk task; the initializer runs once per worker process.

_WORKER: Optional[TrialExecutor] = None


def _init_worker(
    cache_root: Optional[pathlib.Path],
    telemetry: bool,
    warm: bool,
    capacity: int,
) -> None:
    """Pool initializer: pre-import the pipeline, set up per-worker state."""
    global _WORKER
    # Importing the scenario package populates all four component
    # registries; the runner import pulls in the frontier algorithm stack.
    # Under the spawn start method this moves the entire import cost out of
    # the first chunk; under fork it is a no-op revalidation.
    import repro.experiments.runner  # noqa: F401
    import repro.scenarios  # noqa: F401

    _WORKER = TrialExecutor(
        cache_root, telemetry=telemetry, warm=warm, capacity=capacity
    )


def _run_chunk(chunk: Sequence) -> List:
    """Execute one chunk of specs in a pool worker, in order."""
    executor = _WORKER
    if executor is None:  # pool built without the initializer; be safe
        return [TrialExecutor(warm=False).run(spec) for spec in chunk]
    return [executor.run(spec) for spec in chunk]


# ------------------------------------------------------------ sweep dispatch


def _cache_root(cache) -> Optional[pathlib.Path]:
    if cache is None:
        return None
    if isinstance(cache, (str, pathlib.Path)):
        # Paths are the root themselves; PosixPath.root is the filesystem
        # anchor ("/"), so the getattr below must never see them.
        return pathlib.Path(cache)
    return pathlib.Path(getattr(cache, "root", cache))


def run_spec_trials_batched(
    specs: Sequence,
    workers: int = 1,
    chunksize: Optional[int] = None,
    cache=None,
    telemetry: bool = False,
    progress=None,
    warm: bool = True,
    dispatch: str = "auto",
    collect: bool = True,
):
    """Batched spec sweep: warm serial, or chunked over a persistent pool.

    The implementation behind :func:`repro.experiments.run_spec_trials`;
    see its docstring for the caller-facing contract.  ``dispatch`` picks
    the strategy:

    * ``"auto"`` (default) — clamp ``workers`` to usable CPUs, run a probe
      chunk in the parent to estimate per-trial cost, then either finish
      serially (batch too small to amortize pool spin-up) or fan the rest
      across a persistent worker pool in duration-sized chunks;
    * ``"serial"`` — force the warm in-process loop;
    * ``"pool"`` — force pool dispatch for every spec (no probe, no CPU
      clamp); used by tests and benchmarks that must exercise the pool
      machinery regardless of host shape.

    Records come back in spec order and are byte-identical across every
    strategy.

    ``collect=False`` switches to streaming mode for very large batches:
    each record is handed to ``progress`` exactly as usual but *not*
    retained, and the return value is an empty list — so peak memory is
    one chunk of records, independent of ``len(specs)``.  The sweep store
    (:mod:`repro.sweeps`) runs every shard this way.
    """
    from .parallel import default_chunksize, resolve_workers

    if dispatch not in ("auto", "serial", "pool"):
        raise ValueError(
            f"dispatch must be 'auto', 'serial', or 'pool', got {dispatch!r}"
        )
    specs = list(specs)
    total = len(specs)
    root = _cache_root(cache)
    workers = resolve_workers(workers)
    if dispatch == "auto":
        workers = min(workers, usable_cpus())

    executor = TrialExecutor(root, telemetry=telemetry, warm=warm)
    records: List = []
    done = 0

    def _emit(record) -> None:
        nonlocal done
        done += 1
        if collect:
            records.append(record)
        if progress is not None:
            progress(done, total, record)

    def _serial(batch) -> None:
        for spec in batch:
            _emit(executor.run(spec))

    if dispatch == "serial" or (dispatch == "auto" and (workers <= 1 or total <= 1)):
        _serial(specs)
        return records

    remaining = specs
    per_trial: Optional[float] = None
    if dispatch == "auto":
        # Probe chunk: run a few trials in the parent (warm), time them,
        # and only fork when the remainder amortizes pool spin-up.
        probe = specs[: min(PROBE_TRIALS, total)]
        start = perf_counter()
        _serial(probe)
        per_trial = (perf_counter() - start) / len(probe)
        remaining = specs[len(probe):]
        if not remaining or not should_use_pool(
            len(remaining), per_trial, workers
        ):
            _serial(remaining)
            return records

    from concurrent.futures import ProcessPoolExecutor

    if chunksize is None:
        chunksize = default_chunksize(
            len(remaining), workers, per_item_sec=per_trial
        )
    chunks = [
        remaining[i : i + chunksize]
        for i in range(0, len(remaining), chunksize)
    ]
    capacity = (
        executor.scenarios.capacity
        if executor.scenarios is not None
        else DEFAULT_SCENARIO_CAPACITY
    )
    with ProcessPoolExecutor(
        max_workers=min(workers, len(chunks)),
        initializer=_init_worker,
        initargs=(root, telemetry, warm, capacity),
    ) as pool:
        # chunksize=1: each mapped item is already a chunk of specs.
        for chunk_records in pool.map(_run_chunk, chunks):
            for record in chunk_records:
                _emit(record)
    return records
