"""Store-and-forward routing with *bounded* buffers and backpressure.

The paper's context sentence: Leighton–Maggs–Ranade–Rao route leveled
networks in ``O(C + L + log N)`` with **constant-size buffers** [16], while
hot-potato routing is the extreme case of **zero** buffers.  This scheduler
fills in the spectrum: every node holds at most ``buffer_size`` packets per
outgoing edge; a packet may only traverse an edge if the destination node
has a free slot for its *next* edge (backpressure), and injections stall
while the source buffer is full.

With ``buffer_size = 1`` this is near the bufferless regime (but with
blocking instead of deflection); as ``buffer_size → ∞`` it converges to
:class:`repro.baselines.store_forward.StoreForwardScheduler`.  Experiment
A4 sweeps the knob.

Deadlock note: on a *leveled* network the buffer-wait graph follows edges
toward higher levels only and packets at the top level always drain, so
backpressure cannot deadlock — a nice corollary of levelness that the unit
tests assert.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from ..errors import SimulationError
from ..paths import RoutingProblem
from ..rng import RngLike, make_rng
from ..sim import RunResult
from ..types import EdgeId, PacketId


class BoundedBufferScheduler:
    """Synchronous store-and-forward with per-edge output buffers.

    Parameters
    ----------
    problem:
        Routing problem; packets follow their preselected paths.
    buffer_size:
        Capacity of each (node, outgoing edge) FIFO buffer, in packets.
    """

    def __init__(
        self,
        problem: RoutingProblem,
        buffer_size: int = 2,
        seed: RngLike = None,
    ) -> None:
        if buffer_size < 1:
            raise SimulationError(
                f"buffer size must be >= 1, got {buffer_size}"
            )
        self.problem = problem
        self.buffer_size = buffer_size
        self.rng = make_rng(seed)
        self._paths = [spec.path.edges for spec in problem]
        self._next_index = [0] * problem.num_packets
        #: FIFO buffer at the tail of each edge
        self.buffers: Dict[EdgeId, Deque[PacketId]] = {}
        self.delivery_times: List[Optional[int]] = [None] * problem.num_packets
        self.injected = [False] * problem.num_packets
        self.t = 0
        self.delivered = 0
        self.blocked_steps = 0
        self.stalled_injections = 0
        self.peak_occupancy = 0

    # -------------------------------------------------------------- helpers

    def _buffer(self, edge: EdgeId) -> Deque[PacketId]:
        buf = self.buffers.get(edge)
        if buf is None:
            buf = deque()
            self.buffers[edge] = buf
        return buf

    def _has_room(self, edge: EdgeId, incoming: Dict[EdgeId, int]) -> bool:
        """Whether ``edge``'s buffer can accept one more packet this step.

        ``incoming`` counts packets already promised to each buffer during
        the current step's resolution; the live deque length already
        reflects departures (popped when their move was resolved).
        """
        return (
            len(self.buffers.get(edge, ())) + incoming.get(edge, 0)
            < self.buffer_size
        )

    # ----------------------------------------------------------------- step

    def step(self) -> None:
        """One synchronous step with backpressure.

        Processing order is by the tail level of the edge, *highest first*,
        so a packet freeing a buffer this step makes room for the level
        below — the drain direction of the leveled DAG.
        """
        net = self.problem.net
        incoming: Dict[EdgeId, int] = {}
        moves: List[PacketId] = []

        edges_by_level = sorted(
            (e for e, buf in self.buffers.items() if buf),
            key=lambda e: -net.level(net.edge_src(e)),
        )
        for edge in edges_by_level:
            buf = self.buffers[edge]
            pid = buf[0]
            index = self._next_index[pid] + 1
            path = self._paths[pid]
            if index >= len(path):
                # Next hop is the destination: always accepted (absorbed).
                buf.popleft()
                moves.append(pid)
                continue
            nxt = path[index]
            # Higher levels were processed first, so nxt's deque already
            # reflects this step's departure (if any); only same-step
            # arrivals need explicit accounting.
            if self._has_room(nxt, incoming):
                buf.popleft()
                moves.append(pid)
                incoming[nxt] = incoming.get(nxt, 0) + 1
            else:
                self.blocked_steps += 1

        # Injections: a packet enters its first buffer when there is room.
        for pid in range(self.problem.num_packets):
            if self.injected[pid]:
                continue
            first = self._paths[pid][0]
            if self._has_room(first, incoming):
                self.injected[pid] = True
                self._buffer(first).append(pid)
                incoming[first] = incoming.get(first, 0) + 1
            else:
                self.stalled_injections += 1

        # Apply moves: advance cursors and enqueue at the next buffer.
        for pid in moves:
            self._next_index[pid] += 1
            index = self._next_index[pid]
            path = self._paths[pid]
            if index >= len(path):
                self.delivery_times[pid] = self.t + 1
                self.delivered += 1
            else:
                self._buffer(path[index]).append(pid)
        depth = max((len(buf) for buf in self.buffers.values()), default=0)
        if depth > self.peak_occupancy:
            self.peak_occupancy = depth
        self.t += 1

    @property
    def done(self) -> bool:
        """All packets delivered."""
        return self.delivered == self.problem.num_packets

    def run(self, max_steps: Optional[int] = None) -> RunResult:
        """Run to completion (or budget); return engine-compatible metrics."""
        budget = (
            max_steps
            if max_steps is not None
            else (self.problem.congestion + 2)
            * (self.problem.dilation + 2)
            * max(2, self.buffer_size)
            + 4 * self.problem.num_packets
            + 64
        )
        while not self.done and self.t < budget:
            self.step()
        return RunResult(
            router_name=f"BoundedBuffers(k={self.buffer_size})",
            network_name=self.problem.net.name,
            num_packets=self.problem.num_packets,
            congestion=self.problem.congestion,
            dilation=self.problem.dilation,
            depth=self.problem.net.depth,
            delivered=self.delivered,
            makespan=self.t
            if not self.done
            else max(t for t in self.delivery_times if t is not None),
            steps_executed=self.t,
            steps_skipped=0,
            delivery_times=list(self.delivery_times),
            deflections_per_packet=[0] * self.problem.num_packets,
            unsafe_deflections=0,
            total_moves=sum(self._next_index),
            total_backward_moves=0,
            extra={
                "buffer_size": float(self.buffer_size),
                "blocked_steps": float(self.blocked_steps),
                "stalled_injections": float(self.stalled_injections),
                "max_buffer_occupancy": float(self.peak_occupancy),
            },
        )
