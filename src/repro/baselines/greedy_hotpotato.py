"""Greedy hot-potato routing.

The classic deflection baseline (cf. Ben-Dor/Halevi/Schuster's potential-
function greedy, ref [5] of the paper): a packet always requests an
incident link that reduces its distance to its destination (hop distance in
the undirected network, since deflected packets recover by moving backward);
conflicts are broken uniformly at random and losers take whatever free link
the node hands them.

This router is *path-less*: preselected paths are ignored (only the
endpoints matter), so its performance is not congestion/dilation-of-paths
bound but endpoint driven — the contrast the paper's introduction draws.
"""

from __future__ import annotations

from typing import Dict, List

from ..rng import RngLike, make_rng
from ..sim import DesiredMove, Engine, Router
from ..types import MoveKind, NodeId, PacketId


class GreedyHotPotatoRouter(Router):
    """Distance-greedy deflection routing."""

    deflection_kind = MoveKind.FREE

    def __init__(self, seed: RngLike = None) -> None:
        self._rng = make_rng(seed)
        self._distance_cache: Dict[NodeId, List[int]] = {}

    def attach(self, engine: Engine) -> None:
        super().attach(engine)
        engine.mark_all_eligible()

    def _distances(self, destination: NodeId) -> List[int]:
        table = self._distance_cache.get(destination)
        if table is None:
            table = self.engine.net.undirected_distances(destination)
            self._distance_cache[destination] = table
        return table

    def desired_move(self, packet_id: PacketId, t: int) -> DesiredMove:
        packet = self.engine.packets[packet_id]
        net = self.engine.net
        dist = self._distances(packet.destination)
        best_edge = None
        best_value = None
        ties: List[int] = []
        for edge in net.incident_edges(packet.node):
            value = dist[net.other_endpoint(edge, packet.node)]
            if value < 0:
                continue  # dead region
            if best_value is None or value < best_value:
                best_value = value
                best_edge = edge
                ties = [edge]
            elif value == best_value:
                ties.append(edge)
        if best_edge is None:  # pragma: no cover - destination unreachable
            ties = list(net.incident_edges(packet.node))
        pick = (
            ties[int(self._rng.integers(0, len(ties)))]
            if len(ties) > 1
            else ties[0]
        )
        return DesiredMove(pick, MoveKind.FREE)

    def is_delivered(self, packet_id: PacketId) -> bool:
        packet = self.engine.packets[packet_id]
        return packet.node == packet.destination
