"""Store-and-forward routing with unbounded buffers.

The buffered comparator for experiment T2: packets follow their preselected
paths; each edge transmits one packet per step (in its forward direction)
and everyone else queues at the edge tail.  With FIFO or
furthest-to-go scheduling the completion time is ``O(C·D)`` worst case and
close to ``C + D`` for typical workloads — the quantity the paper's
``Ω(C + D)`` lower bound refers to.  Comparing this against the bufferless
routers measures "the benefit from using buffers", which Theorem 4.26 caps
at a polylog factor.

This simulator is deliberately separate from :class:`repro.sim.Engine`:
buffered routing has no deflections, no per-direction slot game, and no
hot-potato constraint, so a queue-per-edge model is both simpler and
faithful.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence

from ..errors import SimulationError
from ..paths import RoutingProblem
from ..rng import RngLike, make_rng
from ..sim import RunResult
from ..types import EdgeId, PacketId


class QueuePolicy(enum.Enum):
    """How an edge picks among queued packets."""

    FIFO = "fifo"
    FURTHEST_TO_GO = "furthest_to_go"
    RANDOM = "random"


class StoreForwardScheduler:
    """Synchronous store-and-forward simulator with unbounded buffers.

    Parameters
    ----------
    problem:
        The routing problem (packets follow their preselected paths).
    policy:
        Edge scheduling policy.
    injection_delays:
        Optional per-packet initial delays (used by the random-delay
        scheduler of :mod:`repro.baselines.random_delay`); packet ``k``
        joins its first queue at step ``injection_delays[k]``.
    """

    def __init__(
        self,
        problem: RoutingProblem,
        policy: QueuePolicy = QueuePolicy.FIFO,
        seed: RngLike = None,
        injection_delays: Optional[Sequence[int]] = None,
    ) -> None:
        self.problem = problem
        self.policy = policy
        self.rng = make_rng(seed)
        if injection_delays is None:
            self.delays = [0] * problem.num_packets
        else:
            if len(injection_delays) != problem.num_packets:
                raise SimulationError(
                    f"{len(injection_delays)} delays for "
                    f"{problem.num_packets} packets"
                )
            self.delays = [int(d) for d in injection_delays]
            if any(d < 0 for d in self.delays):
                raise SimulationError("injection delays must be non-negative")
        # Per-packet remaining-path cursor.
        self._next_index = [0] * problem.num_packets
        self._paths = [spec.path.edges for spec in problem]
        self.delivery_times: List[Optional[int]] = [None] * problem.num_packets
        self.queue_of: Dict[EdgeId, Deque[PacketId]] = {}
        self.t = 0
        self.delivered = 0
        self.max_queue_seen = 0
        self.total_queue_steps = 0

    # -------------------------------------------------------------- helpers

    def _enqueue(self, packet_id: PacketId) -> None:
        index = self._next_index[packet_id]
        path = self._paths[packet_id]
        if index >= len(path):
            # Only reachable after a move: the packet finished its last hop
            # during step t, so it arrives at time t + 1 (engine convention).
            self.delivery_times[packet_id] = self.t + 1
            self.delivered += 1
            return
        edge = path[index]
        self.queue_of.setdefault(edge, deque()).append(packet_id)

    def _remaining(self, packet_id: PacketId) -> int:
        return len(self._paths[packet_id]) - self._next_index[packet_id]

    def _pick(self, queue: Deque[PacketId]) -> PacketId:
        if len(queue) == 1 or self.policy is QueuePolicy.FIFO:
            return queue.popleft()
        if self.policy is QueuePolicy.RANDOM:
            index = int(self.rng.integers(0, len(queue)))
        else:  # FURTHEST_TO_GO
            index = max(range(len(queue)), key=lambda i: self._remaining(queue[i]))
        queue.rotate(-index)
        winner = queue.popleft()
        queue.rotate(index)
        return winner

    # ----------------------------------------------------------------- step

    def step(self) -> None:
        """One synchronous step: every non-empty edge transmits one packet."""
        # Admit packets whose delay expires now.
        for pid, delay in enumerate(self.delays):
            if delay == self.t:
                self._enqueue(pid)
        moved: List[PacketId] = []
        for edge, queue in self.queue_of.items():
            if queue:
                moved.append(self._pick(queue))
        for pid in moved:
            self._next_index[pid] += 1
            self._enqueue(pid)
        self.total_queue_steps += sum(len(q) for q in self.queue_of.values())
        depth = max((len(q) for q in self.queue_of.values()), default=0)
        if depth > self.max_queue_seen:
            self.max_queue_seen = depth
        self.t += 1

    @property
    def done(self) -> bool:
        """All packets delivered."""
        return self.delivered == self.problem.num_packets

    def run(self, max_steps: Optional[int] = None) -> RunResult:
        """Run to completion (or budget) and return engine-compatible metrics."""
        pending_admissions = max(self.delays, default=0)
        budget = (
            max_steps
            if max_steps is not None
            else (self.problem.congestion + 1)
            * (self.problem.dilation + 1)
            + pending_admissions
            + 16
        )
        while not self.done and self.t < budget:
            self.step()
        moves = sum(self._next_index)
        return RunResult(
            router_name=f"StoreForward({self.policy.value})",
            network_name=self.problem.net.name,
            num_packets=self.problem.num_packets,
            congestion=self.problem.congestion,
            dilation=self.problem.dilation,
            depth=self.problem.net.depth,
            delivered=self.delivered,
            makespan=self.t
            if not self.done
            else max(t for t in self.delivery_times if t is not None),
            steps_executed=self.t,
            steps_skipped=0,
            delivery_times=list(self.delivery_times),
            deflections_per_packet=[0] * self.problem.num_packets,
            unsafe_deflections=0,
            total_moves=moves,
            total_backward_moves=0,
            extra={
                "max_queue_depth": float(self.max_queue_seen),
                "mean_queued_per_step": (
                    self.total_queue_steps / self.t if self.t else 0.0
                ),
            },
        )
