"""Comparator algorithms: bufferless strawmen and buffered references."""

from .naive import NaivePathRouter
from .greedy_hotpotato import GreedyHotPotatoRouter
from .randomized_greedy import RandomizedGreedyRouter
from .store_forward import QueuePolicy, StoreForwardScheduler
from .bounded_buffers import BoundedBufferScheduler
from .random_delay import random_delay_scheduler, run_random_delay

__all__ = [
    "NaivePathRouter",
    "GreedyHotPotatoRouter",
    "RandomizedGreedyRouter",
    "QueuePolicy",
    "StoreForwardScheduler",
    "BoundedBufferScheduler",
    "random_delay_scheduler",
    "run_random_delay",
]
