"""Naive hot-potato path following.

Every packet is injected as soon as a link is free and simply follows its
preselected path; conflicts are resolved uniformly at random and losers are
deflected (backward + safe when possible, by the engine).  This is the
"no coordination" strawman: it shows what the frontier-frame machinery buys
over doing nothing, and doubles as the engine's reference router in tests.
"""

from __future__ import annotations

from ..sim import DesiredMove, Engine, Router
from ..types import MoveKind, PacketId


class NaivePathRouter(Router):
    """Inject immediately; always follow the current path head."""

    deflection_kind = MoveKind.REVERSE

    def attach(self, engine: Engine) -> None:
        super().attach(engine)
        engine.mark_all_eligible()

    def desired_move(self, packet_id: PacketId, t: int) -> DesiredMove:
        packet = self.engine.packets[packet_id]
        return DesiredMove(packet.head_edge(), MoveKind.FOLLOW)
