"""Random-initial-delay store-and-forward scheduling on leveled networks.

After Leighton, Maggs, Ranade and Rao (the paper's reference [16]), who
showed that on leveled networks a uniformly random initial delay in
``[0, αC)`` followed by plain synchronous forwarding delivers all packets in
``O(C + L + log N)`` steps with constant-size buffers w.h.p.  We keep the
unbounded-buffer queue model (buffer occupancy is reported, and stays small
when the delay spreading works) — the point of the baseline is the time
bound, which is the ``O(C + L)`` yardstick Theorem 4.26 is measured against.
"""

from __future__ import annotations

import math
from typing import Optional

from ..paths import RoutingProblem
from ..rng import RngLike, make_rng
from ..sim import RunResult
from .store_forward import QueuePolicy, StoreForwardScheduler


def random_delay_scheduler(
    problem: RoutingProblem,
    alpha: float = 1.0,
    seed: RngLike = None,
    policy: QueuePolicy = QueuePolicy.FIFO,
) -> StoreForwardScheduler:
    """Build a store-and-forward scheduler with LMRR random initial delays.

    Each packet independently waits a uniform delay in
    ``[0, ceil(alpha·C))`` before entering its first queue.
    """
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    rng = make_rng(seed)
    window = max(1, math.ceil(alpha * problem.congestion))
    delays = [int(d) for d in rng.integers(0, window, size=problem.num_packets)]
    scheduler = StoreForwardScheduler(
        problem, policy=policy, seed=rng, injection_delays=delays
    )
    return scheduler


def run_random_delay(
    problem: RoutingProblem,
    alpha: float = 1.0,
    seed: RngLike = None,
    max_steps: Optional[int] = None,
) -> RunResult:
    """Convenience: build, run, and relabel the result."""
    scheduler = random_delay_scheduler(problem, alpha=alpha, seed=seed)
    result = scheduler.run(max_steps=max_steps)
    result.router_name = f"RandomDelay(alpha={alpha})"
    return result
