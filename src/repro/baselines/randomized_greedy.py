"""Randomized greedy hot-potato routing with priorities.

After Busch, Herlihy and Wattenhofer, *Randomized greedy hot-potato
routing* (SODA 2000 — the paper's reference [11], which introduced the
packet-state/priority technique the frontier-frame algorithm reuses): a
deflected packet becomes *running* (excited) with some probability; running
packets move at top priority toward their destination and revert to normal
when deflected.  The high-priority "home run" lets unlucky packets punch
through congestion instead of being deflected forever.
"""

from __future__ import annotations

from typing import Dict, List

from ..rng import RngLike, make_rng
from ..sim import DesiredMove, Engine, Router
from ..types import MoveKind, NodeId, PacketId


class RandomizedGreedyRouter(Router):
    """Greedy deflection routing with randomized running priorities."""

    deflection_kind = MoveKind.FREE

    def __init__(self, excite_probability: float = 0.1, seed: RngLike = None) -> None:
        if not 0.0 <= excite_probability <= 1.0:
            raise ValueError(
                f"excite probability must be in [0, 1], got {excite_probability}"
            )
        self.excite_probability = excite_probability
        self._rng = make_rng(seed)
        self._distance_cache: Dict[NodeId, List[int]] = {}
        self._running: List[bool] = []
        self.excitations = 0

    def attach(self, engine: Engine) -> None:
        super().attach(engine)
        engine.mark_all_eligible()
        self._running = [False] * len(engine.packets)

    def _distances(self, destination: NodeId) -> List[int]:
        table = self._distance_cache.get(destination)
        if table is None:
            table = self.engine.net.undirected_distances(destination)
            self._distance_cache[destination] = table
        return table

    def desired_move(self, packet_id: PacketId, t: int) -> DesiredMove:
        packet = self.engine.packets[packet_id]
        net = self.engine.net
        dist = self._distances(packet.destination)
        ties: List[int] = []
        best_value = None
        for edge in net.incident_edges(packet.node):
            value = dist[net.other_endpoint(edge, packet.node)]
            if value < 0:
                continue
            if best_value is None or value < best_value:
                best_value = value
                ties = [edge]
            elif value == best_value:
                ties.append(edge)
        if not ties:  # pragma: no cover - destination unreachable
            ties = list(net.incident_edges(packet.node))
        pick = (
            ties[int(self._rng.integers(0, len(ties)))]
            if len(ties) > 1
            else ties[0]
        )
        return DesiredMove(pick, MoveKind.FREE)

    def priority(self, packet_id: PacketId, t: int) -> int:
        packet = self.engine.packets[packet_id]
        if packet.is_active and self._running[packet_id]:
            return 1
        return 0

    def on_deflected(self, packet_id: PacketId, t: int, edge, safe: bool) -> None:
        if self._running[packet_id]:
            self._running[packet_id] = False
        elif self._rng.random() < self.excite_probability:
            self._running[packet_id] = True
            self.excitations += 1

    def is_delivered(self, packet_id: PacketId) -> bool:
        packet = self.engine.packets[packet_id]
        return packet.node == packet.destination

    def extra_metrics(self) -> Dict[str, float]:
        """Router statistics for the run result."""
        return {"excitations": float(self.excitations)}
