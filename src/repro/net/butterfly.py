"""Butterfly networks (the paper's Figure 1, left).

A ``dim``-dimensional butterfly has ``dim + 1`` levels of ``2**dim`` rows
each.  Node ``(l, r)`` connects to ``(l+1, r)`` (the *straight* edge) and to
``(l+1, r XOR 2**(dim-1-l))`` (the *cross* edge), so a packet entering at
level 0 can reach any row at level ``dim`` by fixing one address bit per
level — the classic bit-fixing property used by
:func:`repro.paths.butterfly_paths.bit_fixing_path`.
"""

from __future__ import annotations

from ..errors import TopologyError
from ..types import NodeId
from .leveled import LeveledNetwork, LeveledNetworkBuilder


def butterfly(dim: int) -> LeveledNetwork:
    """Build the ``dim``-dimensional butterfly.

    Parameters
    ----------
    dim:
        Number of address bits; the network has ``(dim+1) * 2**dim`` nodes
        and depth ``L = dim``.
    """
    if dim < 1:
        raise TopologyError(f"butterfly dimension must be >= 1, got {dim}")
    rows = 1 << dim
    builder = LeveledNetworkBuilder(name=f"butterfly({dim})")
    for level in range(dim + 1):
        for row in range(rows):
            builder.add_node(level, label=("bf", level, row))
    for level in range(dim):
        bit = 1 << (dim - 1 - level)
        for row in range(rows):
            src = builder.node(("bf", level, row))
            builder.add_edge(src, builder.node(("bf", level + 1, row)))
            builder.add_edge(src, builder.node(("bf", level + 1, row ^ bit)))
    return builder.build()


def butterfly_node(net: LeveledNetwork, level: int, row: int) -> NodeId:
    """Node id of butterfly coordinate ``(level, row)``."""
    return net.node_by_label(("bf", level, row))


def butterfly_dim(net: LeveledNetwork) -> int:
    """Recover ``dim`` from a butterfly built by :func:`butterfly`."""
    return net.depth


def wrapped_butterfly_rows(net: LeveledNetwork) -> int:
    """Number of rows (``2**dim``) of a butterfly network."""
    return len(net.nodes_at_level(0))
