"""Fat-trees as leveled networks.

The paper lists the fat-tree among leveled-network topologies.  We level the
tree by depth with the *leaves* at level 0 and the root at level ``height``,
so the up-phase of fat-tree routing (leaf to least common ancestor) is a
forward leveled route.  "Fatness" is modeled by parallel edges: a node at
tree depth ``d`` below the root is joined to its parent by
``min(capacity_cap, branching**(height-d) / branching**(height-d))``-style
multiplicity; concretely we use ``fatness(level) = min(cap, 2**level)``,
doubling toward the root as in the classic area-universal fat-tree.
"""

from __future__ import annotations

from typing import Tuple

from ..errors import TopologyError
from ..types import NodeId
from .leveled import LeveledNetwork, LeveledNetworkBuilder


def fat_tree(height: int, branching: int = 2, capacity_cap: int = 8) -> LeveledNetwork:
    """Build a fat-tree with ``branching**height`` leaves.

    Level ``l`` holds the ``branching**(height-l)`` tree nodes at depth
    ``height - l``; leaves are level 0 and the root is level ``height``.
    Each child is joined to its parent by ``min(capacity_cap, 2**l)``
    parallel edges where ``l`` is the child's level.
    """
    if height < 1:
        raise TopologyError(f"fat-tree height must be >= 1, got {height}")
    if branching < 2:
        raise TopologyError(f"fat-tree branching must be >= 2, got {branching}")
    if capacity_cap < 1:
        raise TopologyError(f"capacity cap must be >= 1, got {capacity_cap}")
    builder = LeveledNetworkBuilder(name=f"fat_tree(h={height},b={branching})")
    for level in range(height + 1):
        for index in range(branching ** (height - level)):
            builder.add_node(level, label=("ft", level, index))
    for level in range(height):
        fatness = min(capacity_cap, 1 << level)
        for index in range(branching ** (height - level)):
            child = builder.node(("ft", level, index))
            parent = builder.node(("ft", level + 1, index // branching))
            for _ in range(fatness):
                builder.add_edge(child, parent)
    return builder.build()


def fat_tree_node(net: LeveledNetwork, level: int, index: int) -> NodeId:
    """Node id of fat-tree coordinate ``(level, index)``."""
    return net.node_by_label(("ft", level, index))


def fat_tree_leaf_count(net: LeveledNetwork) -> int:
    """Number of leaves (level-0 nodes)."""
    return len(net.nodes_at_level(0))


def fat_tree_shape(net: LeveledNetwork) -> Tuple[int, int]:
    """``(height, branching)`` recovered from a fat-tree network."""
    height = net.depth
    leaves = fat_tree_leaf_count(net)
    level1 = len(net.nodes_at_level(1)) if height >= 1 else 1
    branching = leaves // max(1, level1)
    return height, branching
