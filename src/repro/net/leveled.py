"""The leveled-network substrate.

A *leveled network* with depth ``L`` (the paper's Section 1.1) consists of
``L + 1`` levels of nodes, numbered ``0`` to ``L``, such that every node
belongs to exactly one level and every edge connects nodes on consecutive
levels.  Edges are *oriented* from the lower to the higher level, but during
hot-potato routing they are traversed in both directions, at most one packet
per direction per time step (paper footnote 1).

:class:`LeveledNetwork` is an immutable, densely indexed structure: nodes and
edges are integers, adjacency is stored in tuples, and per-level node lists
are precomputed.  Construction goes through :class:`LeveledNetworkBuilder`,
which validates the leveled property edge by edge.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import TopologyError
from ..types import Direction, EdgeId, NodeId, NodeLabel


class LeveledNetwork:
    """An immutable leveled network.

    Instances should be created through :class:`LeveledNetworkBuilder` or one
    of the topology factories in :mod:`repro.net`; the constructor performs
    full structural validation regardless, so a network object is always
    well-formed.

    Parameters
    ----------
    node_levels:
        ``node_levels[v]`` is the level of node ``v``; node ids must be the
        dense range ``0 .. len(node_levels) - 1``.
    edges:
        Sequence of ``(src, dst)`` pairs with ``level(dst) == level(src)+1``.
    node_labels:
        Optional human-readable labels, one per node.
    name:
        Optional topology name used in reports.
    """

    __slots__ = (
        "_levels_of",
        "_labels",
        "_edge_src",
        "_edge_dst",
        "_out",
        "_in",
        "_levels",
        "_label_index",
        "_edge_index",
        "_geometry",
        "name",
    )

    def __init__(
        self,
        node_levels: Sequence[int],
        edges: Sequence[Tuple[NodeId, NodeId]],
        node_labels: Optional[Sequence[NodeLabel]] = None,
        name: str = "leveled",
    ) -> None:
        self.name = name
        self._levels_of: Tuple[int, ...] = tuple(int(level) for level in node_levels)
        n = len(self._levels_of)
        if n == 0:
            raise TopologyError("a leveled network needs at least one node")
        for v, level in enumerate(self._levels_of):
            if level < 0:
                raise TopologyError(f"node {v} has negative level {level}")

        if node_labels is None:
            self._labels: Tuple[NodeLabel, ...] = tuple(range(n))
        else:
            if len(node_labels) != n:
                raise TopologyError(
                    f"{len(node_labels)} labels for {n} nodes"
                )
            self._labels = tuple(node_labels)

        depth = max(self._levels_of)
        level_lists: List[List[NodeId]] = [[] for _ in range(depth + 1)]
        for v, level in enumerate(self._levels_of):
            level_lists[level].append(v)
        for level, members in enumerate(level_lists):
            if not members:
                raise TopologyError(f"level {level} has no nodes")
        self._levels: Tuple[Tuple[NodeId, ...], ...] = tuple(
            tuple(members) for members in level_lists
        )

        out_lists: List[List[EdgeId]] = [[] for _ in range(n)]
        in_lists: List[List[EdgeId]] = [[] for _ in range(n)]
        edge_src: List[NodeId] = []
        edge_dst: List[NodeId] = []
        for e, (src, dst) in enumerate(edges):
            if not (0 <= src < n and 0 <= dst < n):
                raise TopologyError(f"edge {e} endpoints ({src}, {dst}) out of range")
            if self._levels_of[dst] != self._levels_of[src] + 1:
                raise TopologyError(
                    f"edge {e} = ({src}, {dst}) joins levels "
                    f"{self._levels_of[src]} and {self._levels_of[dst]}; "
                    "leveled networks only allow consecutive levels"
                )
            edge_src.append(src)
            edge_dst.append(dst)
            out_lists[src].append(e)
            in_lists[dst].append(e)
        self._edge_src: Tuple[NodeId, ...] = tuple(edge_src)
        self._edge_dst: Tuple[NodeId, ...] = tuple(edge_dst)
        self._out: Tuple[Tuple[EdgeId, ...], ...] = tuple(
            tuple(lst) for lst in out_lists
        )
        self._in: Tuple[Tuple[EdgeId, ...], ...] = tuple(tuple(lst) for lst in in_lists)

        self._label_index: Dict[NodeLabel, NodeId] = {}
        for v, label in enumerate(self._labels):
            # Labels may repeat (default int labels never do); the index only
            # keeps unambiguous labels.
            if label in self._label_index:
                self._label_index[label] = -1
            else:
                self._label_index[label] = v
        self._edge_index: Dict[Tuple[NodeId, NodeId], EdgeId] = {}
        for e in range(len(self._edge_src)):
            key = (self._edge_src[e], self._edge_dst[e])
            # Parallel edges (fat-trees) keep the first id; find_edges returns all.
            self._edge_index.setdefault(key, e)
        #: lazily built dense lookup tables for the simulation hot path
        self._geometry = None

    # ------------------------------------------------------------------ size

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self._levels_of)

    @property
    def num_edges(self) -> int:
        """Number of edges."""
        return len(self._edge_src)

    @property
    def depth(self) -> int:
        """The paper's ``L``: the highest level number (levels are 0..L)."""
        return len(self._levels) - 1

    @property
    def num_levels(self) -> int:
        """``L + 1``."""
        return len(self._levels)

    # ----------------------------------------------------------------- nodes

    def level(self, node: NodeId) -> int:
        """Level of ``node``."""
        return self._levels_of[node]

    def label(self, node: NodeId) -> NodeLabel:
        """Human-readable label of ``node``."""
        return self._labels[node]

    def node_by_label(self, label: NodeLabel) -> NodeId:
        """Inverse of :meth:`label`; raises if the label is absent/ambiguous."""
        node = self._label_index.get(label, None)
        if node is None or node < 0:
            raise TopologyError(f"label {label!r} is absent or ambiguous")
        return node

    def nodes(self) -> range:
        """All node ids."""
        return range(self.num_nodes)

    def nodes_at_level(self, level: int) -> Tuple[NodeId, ...]:
        """Nodes on one level."""
        if not (0 <= level <= self.depth):
            raise TopologyError(f"level {level} outside 0..{self.depth}")
        return self._levels[level]

    def level_sizes(self) -> Tuple[int, ...]:
        """Number of nodes on each level, 0..L."""
        return tuple(len(members) for members in self._levels)

    # ----------------------------------------------------------------- edges

    def edges(self) -> range:
        """All edge ids."""
        return range(self.num_edges)

    def edge_endpoints(self, edge: EdgeId) -> Tuple[NodeId, NodeId]:
        """``(src, dst)`` with ``level(dst) == level(src) + 1``."""
        return self._edge_src[edge], self._edge_dst[edge]

    def edge_src(self, edge: EdgeId) -> NodeId:
        """Lower-level endpoint."""
        return self._edge_src[edge]

    def edge_dst(self, edge: EdgeId) -> NodeId:
        """Higher-level endpoint."""
        return self._edge_dst[edge]

    def other_endpoint(self, edge: EdgeId, node: NodeId) -> NodeId:
        """The endpoint of ``edge`` that is not ``node``."""
        src, dst = self._edge_src[edge], self._edge_dst[edge]
        if node == src:
            return dst
        if node == dst:
            return src
        raise TopologyError(f"node {node} is not an endpoint of edge {edge}")

    def out_edges(self, node: NodeId) -> Tuple[EdgeId, ...]:
        """Edges from ``node`` to the next higher level."""
        return self._out[node]

    def in_edges(self, node: NodeId) -> Tuple[EdgeId, ...]:
        """Edges from the next lower level into ``node``."""
        return self._in[node]

    def incident_edges(self, node: NodeId) -> Tuple[EdgeId, ...]:
        """All incident edges (in + out)."""
        return self._in[node] + self._out[node]

    def degree(self, node: NodeId) -> int:
        """Total degree (in + out)."""
        return len(self._in[node]) + len(self._out[node])

    def out_degree(self, node: NodeId) -> int:
        """Number of forward edges."""
        return len(self._out[node])

    def in_degree(self, node: NodeId) -> int:
        """Number of backward edges."""
        return len(self._in[node])

    def max_degree(self) -> int:
        """Maximum total degree over all nodes."""
        return max(self.degree(v) for v in self.nodes())

    def find_edge(self, src: NodeId, dst: NodeId) -> EdgeId:
        """The (first) edge from ``src`` to ``dst``; raises if absent."""
        edge = self._edge_index.get((src, dst))
        if edge is None:
            raise TopologyError(f"no edge ({src}, {dst})")
        return edge

    def find_edges(self, src: NodeId, dst: NodeId) -> Tuple[EdgeId, ...]:
        """All parallel edges from ``src`` to ``dst`` (may be empty)."""
        return tuple(
            e for e in self._out[src] if self._edge_dst[e] == dst
        )

    def has_edge(self, src: NodeId, dst: NodeId) -> bool:
        """Whether an edge ``src -> dst`` exists."""
        return (src, dst) in self._edge_index

    def traversal_direction(self, edge: EdgeId, from_node: NodeId) -> Direction:
        """Direction of traversing ``edge`` starting at ``from_node``."""
        if from_node == self._edge_src[edge]:
            return Direction.FORWARD
        if from_node == self._edge_dst[edge]:
            return Direction.BACKWARD
        raise TopologyError(f"node {from_node} is not an endpoint of edge {edge}")

    def forward_neighbors(self, node: NodeId) -> Tuple[NodeId, ...]:
        """Nodes reachable by one forward step."""
        return tuple(self._edge_dst[e] for e in self._out[node])

    def backward_neighbors(self, node: NodeId) -> Tuple[NodeId, ...]:
        """Nodes reachable by one backward step."""
        return tuple(self._edge_src[e] for e in self._in[node])

    # ------------------------------------------------------------ reachability

    def forward_reachable(self, source: NodeId) -> set[NodeId]:
        """All nodes reachable from ``source`` by forward edges (incl. itself)."""
        seen = {source}
        frontier = [source]
        while frontier:
            nxt: List[NodeId] = []
            for u in frontier:
                for e in self._out[u]:
                    v = self._edge_dst[e]
                    if v not in seen:
                        seen.add(v)
                        nxt.append(v)
            frontier = nxt
        return seen

    def backward_reachable(self, target: NodeId) -> set[NodeId]:
        """All nodes from which ``target`` is forward-reachable (incl. itself)."""
        seen = {target}
        frontier = [target]
        while frontier:
            nxt: List[NodeId] = []
            for v in frontier:
                for e in self._in[v]:
                    u = self._edge_src[e]
                    if u not in seen:
                        seen.add(u)
                        nxt.append(u)
            frontier = nxt
        return seen

    def undirected_distances(self, source: NodeId) -> List[int]:
        """BFS hop distance from ``source`` treating edges as undirected.

        Unreachable nodes get distance ``-1``.  Used by the greedy hot-potato
        baseline as its distance potential.
        """
        dist = [-1] * self.num_nodes
        dist[source] = 0
        frontier = [source]
        d = 0
        while frontier:
            d += 1
            nxt: List[NodeId] = []
            for u in frontier:
                for e in self._out[u]:
                    v = self._edge_dst[e]
                    if dist[v] < 0:
                        dist[v] = d
                        nxt.append(v)
                for e in self._in[u]:
                    v = self._edge_src[e]
                    if dist[v] < 0:
                        dist[v] = d
                        nxt.append(v)
            frontier = nxt
        return dist

    # ------------------------------------------------------------------ misc

    def geometry(self):
        """Dense per-node/per-edge lookup tables for the engine hot path.

        Built once on first use and cached (the network is immutable); see
        :class:`repro.net.geometry.NetworkGeometry`.
        """
        if self._geometry is None:
            from .geometry import NetworkGeometry

            self._geometry = NetworkGeometry(self)
        return self._geometry

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<LeveledNetwork {self.name!r}: depth={self.depth} "
            f"nodes={self.num_nodes} edges={self.num_edges}>"
        )

    def describe(self) -> str:
        """One-line human description used in benchmark reports."""
        sizes = self.level_sizes()
        shown = (
            "x".join(str(s) for s in sizes)
            if len(sizes) <= 8
            else f"{sizes[0]}..{sizes[-1]} ({len(sizes)} levels)"
        )
        return (
            f"{self.name}: L={self.depth}, |V|={self.num_nodes}, "
            f"|E|={self.num_edges}, levels {shown}"
        )


class LeveledNetworkBuilder:
    """Incremental builder for :class:`LeveledNetwork`.

    Example
    -------
    >>> b = LeveledNetworkBuilder("demo")
    >>> u = b.add_node(0, "u"); v = b.add_node(1, "v")
    >>> _ = b.add_edge(u, v)
    >>> net = b.build()
    >>> net.depth
    1
    """

    def __init__(self, name: str = "leveled") -> None:
        self.name = name
        self._levels: List[int] = []
        self._labels: List[NodeLabel] = []
        self._edges: List[Tuple[NodeId, NodeId]] = []
        self._label_to_node: Dict[NodeLabel, NodeId] = {}

    def add_node(self, level: int, label: Optional[NodeLabel] = None) -> NodeId:
        """Add one node at ``level`` and return its id."""
        if level < 0:
            raise TopologyError(f"negative level {level}")
        node = len(self._levels)
        self._levels.append(level)
        self._labels.append(node if label is None else label)
        if label is not None:
            if label in self._label_to_node:
                raise TopologyError(f"duplicate node label {label!r}")
            self._label_to_node[label] = node
        return node

    def add_nodes(self, level: int, count: int) -> List[NodeId]:
        """Add ``count`` unlabeled nodes at ``level``."""
        if count < 0:
            raise TopologyError(f"negative node count {count}")
        return [self.add_node(level) for _ in range(count)]

    def node(self, label: NodeLabel) -> NodeId:
        """Look up a previously added labeled node."""
        try:
            return self._label_to_node[label]
        except KeyError:
            raise TopologyError(f"no node labeled {label!r}") from None

    def add_edge(self, src: NodeId, dst: NodeId) -> EdgeId:
        """Add an edge from ``src`` (level l) to ``dst`` (level l+1)."""
        n = len(self._levels)
        if not (0 <= src < n and 0 <= dst < n):
            raise TopologyError(f"edge endpoints ({src}, {dst}) out of range")
        if self._levels[dst] != self._levels[src] + 1:
            raise TopologyError(
                f"edge ({src}, {dst}) joins levels {self._levels[src]} and "
                f"{self._levels[dst]}; must be consecutive"
            )
        edge = len(self._edges)
        self._edges.append((src, dst))
        return edge

    def add_edge_by_labels(self, src_label: NodeLabel, dst_label: NodeLabel) -> EdgeId:
        """Add an edge between two labeled nodes."""
        return self.add_edge(self.node(src_label), self.node(dst_label))

    @property
    def num_nodes(self) -> int:
        """Nodes added so far."""
        return len(self._levels)

    @property
    def num_edges(self) -> int:
        """Edges added so far."""
        return len(self._edges)

    def build(self) -> LeveledNetwork:
        """Freeze the builder into an immutable network."""
        return LeveledNetwork(
            self._levels, self._edges, node_labels=self._labels, name=self.name
        )


def iter_edge_endpoints(
    net: LeveledNetwork,
) -> Iterator[Tuple[EdgeId, NodeId, NodeId]]:
    """Yield ``(edge, src, dst)`` for every edge; convenience for analysis."""
    for e in net.edges():
        src, dst = net.edge_endpoints(e)
        yield e, src, dst
