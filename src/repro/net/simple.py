"""Small canonical leveled networks: lines, trees, complete layered graphs.

These are the workhorses of the test suite (tiny, hand-checkable) and of the
congestion-stress experiments (``layered_complete`` lets congestion grow
without changing the depth; ``line`` pins congestion to the packet count on
a single path).
"""

from __future__ import annotations

from typing import Sequence

from ..errors import TopologyError
from ..types import NodeId
from .leveled import LeveledNetwork, LeveledNetworkBuilder


def line(depth: int) -> LeveledNetwork:
    """A path of ``depth + 1`` nodes, one per level."""
    if depth < 1:
        raise TopologyError(f"line depth must be >= 1, got {depth}")
    builder = LeveledNetworkBuilder(name=f"line({depth})")
    previous = builder.add_node(0, label=("ln", 0))
    for level in range(1, depth + 1):
        node = builder.add_node(level, label=("ln", level))
        builder.add_edge(previous, node)
        previous = node
    return builder.build()


def line_node(net: LeveledNetwork, level: int) -> NodeId:
    """The unique node of a line network at ``level``."""
    return net.node_by_label(("ln", level))


def complete_binary_tree(height: int, root_at_top: bool = True) -> LeveledNetwork:
    """A complete binary tree leveled by depth.

    With ``root_at_top`` the root is level 0 and edges fan out toward the
    leaves (a broadcast orientation); otherwise leaves are level 0 and edges
    converge on the root (an aggregation orientation).
    """
    if height < 1:
        raise TopologyError(f"tree height must be >= 1, got {height}")
    builder = LeveledNetworkBuilder(
        name=f"btree(h={height},{'down' if root_at_top else 'up'})"
    )
    for depth in range(height + 1):
        level = depth if root_at_top else height - depth
        for index in range(1 << depth):
            builder.add_node(level, label=("bt", depth, index))
    for depth in range(height):
        for index in range(1 << depth):
            parent = builder.node(("bt", depth, index))
            for child_index in (2 * index, 2 * index + 1):
                child = builder.node(("bt", depth + 1, child_index))
                if root_at_top:
                    builder.add_edge(parent, child)
                else:
                    builder.add_edge(child, parent)
    return builder.build()


def tree_node(net: LeveledNetwork, depth: int, index: int) -> NodeId:
    """Node id of the tree node at ``(depth, index)``."""
    return net.node_by_label(("bt", depth, index))


def layered_complete(level_sizes: Sequence[int]) -> LeveledNetwork:
    """Complete bipartite connections between every pair of adjacent levels.

    ``layered_complete([1, k, 1])`` is the classic congestion gadget: all
    packets squeeze through one source and one sink while the middle level
    provides ``k`` parallel relays.
    """
    sizes = tuple(int(s) for s in level_sizes)
    if len(sizes) < 2:
        raise TopologyError("layered network needs at least two levels")
    if any(s < 1 for s in sizes):
        raise TopologyError(f"level sizes must be >= 1, got {sizes}")
    builder = LeveledNetworkBuilder(
        name="layered(" + "x".join(str(s) for s in sizes) + ")"
    )
    for level, size in enumerate(sizes):
        for index in range(size):
            builder.add_node(level, label=("ly", level, index))
    for level in range(len(sizes) - 1):
        for a in range(sizes[level]):
            src = builder.node(("ly", level, a))
            for b in range(sizes[level + 1]):
                builder.add_edge(src, builder.node(("ly", level + 1, b)))
    return builder.build()


def layered_node(net: LeveledNetwork, level: int, index: int) -> NodeId:
    """Node id of layered coordinate ``(level, index)``."""
    return net.node_by_label(("ly", level, index))


def diamond(width: int, depth: int) -> LeveledNetwork:
    """``depth`` stacked complete layers of ``width`` nodes, single endpoints.

    Level sizes are ``1, width, width, ..., width, 1``; a convenient shape
    for dilation sweeps with bounded level width.
    """
    if width < 1 or depth < 2:
        raise TopologyError(
            f"diamond needs width >= 1 and depth >= 2, got {width}, {depth}"
        )
    return layered_complete([1] + [width] * (depth - 1) + [1])
