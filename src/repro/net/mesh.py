"""Meshes viewed as leveled networks (the paper's Figure 1, right).

An ``n x m`` mesh becomes a leveled network by picking one corner as level 0
and letting the level of a cell be its grid (L1) distance from that corner:
with corner ``(0, 0)`` the level of cell ``(i, j)`` is ``i + j``, so every
grid edge joins consecutive levels and depth is ``L = (n-1) + (m-1)``.

The paper notes the mesh "can be viewed in four different ways as a leveled
network, according to which corner node is level 0"; :class:`MeshCorner`
enumerates the four orientations.  A monotone routing problem (destination
weakly to the high-level side of the source in both coordinates) is routable
within a single orientation; general problems decompose into four monotone
classes (see ``examples/mesh_routing.py``).
"""

from __future__ import annotations

import enum
from typing import Tuple

from ..errors import TopologyError
from ..types import NodeId
from .leveled import LeveledNetwork, LeveledNetworkBuilder


class MeshCorner(enum.Enum):
    """Which corner of the mesh is level 0."""

    NORTH_WEST = "nw"  # level(i, j) = i + j
    NORTH_EAST = "ne"  # level(i, j) = i + (m-1-j)
    SOUTH_WEST = "sw"  # level(i, j) = (n-1-i) + j
    SOUTH_EAST = "se"  # level(i, j) = (n-1-i) + (m-1-j)


def _cell_level(corner: MeshCorner, rows: int, cols: int, i: int, j: int) -> int:
    if corner is MeshCorner.NORTH_WEST:
        return i + j
    if corner is MeshCorner.NORTH_EAST:
        return i + (cols - 1 - j)
    if corner is MeshCorner.SOUTH_WEST:
        return (rows - 1 - i) + j
    return (rows - 1 - i) + (cols - 1 - j)


def mesh(
    rows: int, cols: int, corner: MeshCorner = MeshCorner.NORTH_WEST
) -> LeveledNetwork:
    """Build an ``rows x cols`` mesh leveled from the given corner.

    Nodes are labeled ``("mesh", i, j)``; depth is ``rows + cols - 2``.
    """
    if rows < 1 or cols < 1:
        raise TopologyError(f"mesh dimensions must be >= 1, got {rows}x{cols}")
    if rows * cols < 2:
        raise TopologyError("mesh needs at least two cells to have levels 0 and 1")
    builder = LeveledNetworkBuilder(name=f"mesh({rows}x{cols},{corner.value})")
    for i in range(rows):
        for j in range(cols):
            builder.add_node(
                _cell_level(corner, rows, cols, i, j), label=("mesh", i, j)
            )
    for i in range(rows):
        for j in range(cols):
            here = builder.node(("mesh", i, j))
            level_here = _cell_level(corner, rows, cols, i, j)
            for di, dj in ((1, 0), (0, 1)):
                ni, nj = i + di, j + dj
                if ni < rows and nj < cols:
                    there = builder.node(("mesh", ni, nj))
                    level_there = _cell_level(corner, rows, cols, ni, nj)
                    if level_there == level_here + 1:
                        builder.add_edge(here, there)
                    else:
                        builder.add_edge(there, here)
    return builder.build()


def mesh_node(net: LeveledNetwork, i: int, j: int) -> NodeId:
    """Node id of mesh cell ``(i, j)``."""
    return net.node_by_label(("mesh", i, j))


def mesh_coords(net: LeveledNetwork, node: NodeId) -> Tuple[int, int]:
    """Grid coordinates of a mesh node."""
    label = net.label(node)
    if not (isinstance(label, tuple) and len(label) == 3 and label[0] == "mesh"):
        raise TopologyError(f"node {node} is not a mesh cell (label {label!r})")
    return label[1], label[2]


def mesh_shape(net: LeveledNetwork) -> Tuple[int, int]:
    """``(rows, cols)`` of a mesh built by :func:`mesh`."""
    rows = 0
    cols = 0
    for node in net.nodes():
        i, j = mesh_coords(net, node)
        rows = max(rows, i + 1)
        cols = max(cols, j + 1)
    return rows, cols
