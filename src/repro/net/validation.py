"""Structural validation of leveled networks.

:class:`repro.net.LeveledNetwork` already guarantees the leveled property at
construction time; the checks here are the *audit* used by experiment E1
(Figure 1): they re-derive the property from scratch and also report
connectivity facts that the routing experiments rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from .leveled import LeveledNetwork


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_leveled`."""

    ok: bool
    depth: int
    num_nodes: int
    num_edges: int
    problems: List[str] = field(default_factory=list)
    #: nodes on levels < L with no outgoing edge (dead ends for forward routing)
    dead_ends: List[int] = field(default_factory=list)
    #: nodes on levels > 0 with no incoming edge (unreachable going forward)
    orphans: List[int] = field(default_factory=list)

    def summary(self) -> str:
        """One-line status used by the E1 bench table."""
        status = "OK" if self.ok else f"{len(self.problems)} problem(s)"
        extras = []
        if self.dead_ends:
            extras.append(f"{len(self.dead_ends)} dead-end(s)")
        if self.orphans:
            extras.append(f"{len(self.orphans)} orphan(s)")
        tail = f" [{', '.join(extras)}]" if extras else ""
        return (
            f"L={self.depth} |V|={self.num_nodes} |E|={self.num_edges}: "
            f"{status}{tail}"
        )


def validate_leveled(net: LeveledNetwork) -> ValidationReport:
    """Re-derive the leveled-network properties of Section 1.1 from scratch.

    Checks: every node has exactly one level in ``0..L``; every level is
    non-empty; every edge joins consecutive levels with the stored
    orientation; adjacency lists agree with the edge table.  Also collects
    dead ends and orphans (legal, but relevant to workload generators).
    """
    problems: List[str] = []
    depth = net.depth

    seen_level = [False] * (depth + 1)
    for v in net.nodes():
        level = net.level(v)
        if not 0 <= level <= depth:
            problems.append(f"node {v} has level {level} outside 0..{depth}")
        else:
            seen_level[level] = True
    for level, seen in enumerate(seen_level):
        if not seen:
            problems.append(f"level {level} is empty")

    for e in net.edges():
        src, dst = net.edge_endpoints(e)
        if net.level(dst) != net.level(src) + 1:
            problems.append(
                f"edge {e} joins levels {net.level(src)} and {net.level(dst)}"
            )
        if e not in net.out_edges(src):
            problems.append(f"edge {e} missing from out_edges({src})")
        if e not in net.in_edges(dst):
            problems.append(f"edge {e} missing from in_edges({dst})")

    for v in net.nodes():
        for e in net.out_edges(v):
            if net.edge_src(e) != v:
                problems.append(f"out_edges({v}) lists edge {e} with src != {v}")
        for e in net.in_edges(v):
            if net.edge_dst(e) != v:
                problems.append(f"in_edges({v}) lists edge {e} with dst != {v}")

    dead_ends = [
        v for v in net.nodes() if net.level(v) < depth and net.out_degree(v) == 0
    ]
    orphans = [v for v in net.nodes() if net.level(v) > 0 and net.in_degree(v) == 0]

    return ValidationReport(
        ok=not problems,
        depth=depth,
        num_nodes=net.num_nodes,
        num_edges=net.num_edges,
        problems=problems,
        dead_ends=dead_ends,
        orphans=orphans,
    )


def assert_valid(net: LeveledNetwork) -> None:
    """Raise ``AssertionError`` with details if the audit finds any problem."""
    report = validate_leveled(net)
    assert report.ok, "; ".join(report.problems)
