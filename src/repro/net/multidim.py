"""Multidimensional arrays as leveled networks.

A ``d``-dimensional array of shape ``(n_1, ..., n_d)`` generalizes the mesh:
the level of cell ``(x_1, ..., x_d)`` is ``sum(x_k)`` and every array edge
(unit step in one coordinate) joins consecutive levels.  Depth is
``L = sum(n_k - 1)``.  The paper lists the multidimensional array among the
leveled-network family; the 2-dimensional case coincides with
:func:`repro.net.mesh.mesh` in its NORTH_WEST orientation.
"""

from __future__ import annotations

import itertools
from typing import Sequence, Tuple

from ..errors import TopologyError
from ..types import NodeId
from .leveled import LeveledNetwork, LeveledNetworkBuilder


def multidim_array(shape: Sequence[int]) -> LeveledNetwork:
    """Build the array of the given shape, leveled by coordinate sum."""
    dims = tuple(int(n) for n in shape)
    if not dims:
        raise TopologyError("array shape must have at least one dimension")
    if any(n < 1 for n in dims):
        raise TopologyError(f"array shape entries must be >= 1, got {dims}")
    if max(dims) < 2:
        raise TopologyError("array needs at least one dimension of size >= 2")
    builder = LeveledNetworkBuilder(
        name="array(" + "x".join(str(n) for n in dims) + ")"
    )
    for coords in itertools.product(*(range(n) for n in dims)):
        builder.add_node(sum(coords), label=("arr",) + coords)
    for coords in itertools.product(*(range(n) for n in dims)):
        src = builder.node(("arr",) + coords)
        for axis, n in enumerate(dims):
            if coords[axis] + 1 < n:
                nxt = list(coords)
                nxt[axis] += 1
                builder.add_edge(src, builder.node(("arr",) + tuple(nxt)))
    return builder.build()


def array_node(net: LeveledNetwork, coords: Sequence[int]) -> NodeId:
    """Node id of the cell at the given coordinates."""
    return net.node_by_label(("arr",) + tuple(coords))


def array_coords(net: LeveledNetwork, node: NodeId) -> Tuple[int, ...]:
    """Coordinates of an array node."""
    label = net.label(node)
    if not (isinstance(label, tuple) and label and label[0] == "arr"):
        raise TopologyError(f"node {node} is not an array cell (label {label!r})")
    return tuple(label[1:])
