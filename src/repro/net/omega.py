"""Omega (unrolled shuffle-exchange) multistage networks.

The paper lists the shuffle-exchange among networks treatable as leveled
networks.  The standard leveled treatment unrolls it into the *omega*
multistage network: ``dim + 1`` levels of ``2**dim`` rows, where row ``r`` at
level ``l`` connects to rows ``shuffle(r)`` and ``shuffle(r) XOR 1`` at level
``l + 1`` (``shuffle`` is the 1-bit cyclic left rotation).  After ``dim``
levels any input row can reach any output row.
"""

from __future__ import annotations

from ..errors import TopologyError
from ..types import NodeId
from .leveled import LeveledNetwork, LeveledNetworkBuilder


def _shuffle(row: int, dim: int) -> int:
    """Cyclic left rotation of a ``dim``-bit row index."""
    top = (row >> (dim - 1)) & 1
    return ((row << 1) & ((1 << dim) - 1)) | top


def omega_network(dim: int) -> LeveledNetwork:
    """Build the ``dim``-stage omega network (depth ``L = dim``)."""
    if dim < 1:
        raise TopologyError(f"omega dimension must be >= 1, got {dim}")
    rows = 1 << dim
    builder = LeveledNetworkBuilder(name=f"omega({dim})")
    for level in range(dim + 1):
        for row in range(rows):
            builder.add_node(level, label=("om", level, row))
    for level in range(dim):
        for row in range(rows):
            src = builder.node(("om", level, row))
            shuffled = _shuffle(row, dim)
            builder.add_edge(src, builder.node(("om", level + 1, shuffled)))
            builder.add_edge(src, builder.node(("om", level + 1, shuffled ^ 1)))
    return builder.build()


def omega_node(net: LeveledNetwork, level: int, row: int) -> NodeId:
    """Node id of omega coordinate ``(level, row)``."""
    return net.node_by_label(("om", level, row))
