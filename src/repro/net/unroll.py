"""Leveling arbitrary DAGs (toward "arbitrary network topologies").

The paper's algorithm needs a *leveled* network; its discussion asks about
arbitrary topologies.  For any **DAG** there is a faithful reduction:

1. assign each node the length of the longest path reaching it from a
   source (its *layer* — guaranteeing every edge goes to a strictly higher
   layer);
2. subdivide every edge that spans more than one layer with pass-through
   *relay* nodes, one per intermediate layer.

The result is a leveled network whose monotone routes correspond exactly
to the DAG's directed paths, with hop counts stretched by at most the
layering gap — so congestion is preserved edge-for-edge and dilation grows
to at most the DAG's depth.  Deflection routing on the leveled image then
simulates deflection routing on the DAG (relays have degree 2 and simply
forward).

This is a *reduction*, not the follow-up work's universal-bufferless
result: cyclic networks are out of scope (a DAG check raises).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, Tuple

from ..errors import TopologyError
from ..types import NodeId
from .leveled import LeveledNetwork, LeveledNetworkBuilder


class UnrolledDag:
    """A leveled image of a DAG, with the node correspondence.

    Attributes
    ----------
    net:
        The leveled network (original nodes + relay nodes).
    node_of:
        Maps an original DAG node to its id in ``net``.
    is_relay:
        Per-``net``-node flag: ``True`` for subdivision relays.
    """

    def __init__(
        self,
        net: LeveledNetwork,
        node_of: Dict[Hashable, NodeId],
        is_relay: List[bool],
    ) -> None:
        self.net = net
        self.node_of = node_of
        self.is_relay = is_relay

    @property
    def num_relays(self) -> int:
        """Number of inserted pass-through nodes."""
        return sum(1 for flag in self.is_relay if flag)

    def original_nodes(self) -> List[NodeId]:
        """Net ids of the DAG's own nodes."""
        return [v for v in self.net.nodes() if not self.is_relay[v]]


def longest_path_layers(
    nodes: Sequence[Hashable], edges: Sequence[Tuple[Hashable, Hashable]]
) -> Dict[Hashable, int]:
    """Layer of each node = longest path from any source (Kahn order).

    Raises :class:`~repro.errors.TopologyError` on cycles or unknown
    endpoints.
    """
    node_set = set(nodes)
    if len(node_set) != len(nodes):
        raise TopologyError("duplicate nodes in DAG description")
    succ: Dict[Hashable, List[Hashable]] = {u: [] for u in nodes}
    indeg: Dict[Hashable, int] = {u: 0 for u in nodes}
    for u, v in edges:
        if u not in node_set or v not in node_set:
            raise TopologyError(f"edge ({u!r}, {v!r}) has unknown endpoints")
        if u == v:
            raise TopologyError(f"self-loop at {u!r}")
        succ[u].append(v)
        indeg[v] += 1
    layer = {u: 0 for u in nodes}
    queue = [u for u in nodes if indeg[u] == 0]
    seen = 0
    while queue:
        u = queue.pop()
        seen += 1
        for v in succ[u]:
            layer[v] = max(layer[v], layer[u] + 1)
            indeg[v] -= 1
            if indeg[v] == 0:
                queue.append(v)
    if seen != len(nodes):
        raise TopologyError("the edge set contains a cycle; not a DAG")
    return layer


def unroll_dag(
    nodes: Sequence[Hashable],
    edges: Sequence[Tuple[Hashable, Hashable]],
    name: str = "unrolled",
) -> UnrolledDag:
    """Build the leveled image of a DAG (see module docstring)."""
    layer = longest_path_layers(nodes, edges)
    builder = LeveledNetworkBuilder(name=name)
    node_of: Dict[Hashable, NodeId] = {}
    relay_flags: List[bool] = []

    def add(level: int, label, relay: bool) -> NodeId:
        vid = builder.add_node(level, label=label)
        # builder assigns dense ids in order, so the flag list aligns.
        relay_flags.append(relay)
        return vid

    for u in nodes:
        node_of[u] = add(layer[u], ("dag", u), relay=False)
    for index, (u, v) in enumerate(edges):
        gap = layer[v] - layer[u]
        previous = node_of[u]
        for k in range(1, gap):
            relay = add(layer[u] + k, ("relay", index, k), relay=True)
            builder.add_edge(previous, relay)
            previous = relay
        builder.add_edge(previous, node_of[v])
    net = builder.build()
    return UnrolledDag(net=net, node_of=node_of, is_relay=relay_flags)


def random_dag(
    num_nodes: int, edge_probability: float, seed=None
) -> Tuple[List[int], List[Tuple[int, int]]]:
    """A random DAG on ``0..num_nodes-1`` (edges go low -> high index)."""
    from ..rng import make_rng

    if num_nodes < 2:
        raise TopologyError(f"need >= 2 nodes, got {num_nodes}")
    if not 0.0 <= edge_probability <= 1.0:
        raise TopologyError("edge probability outside [0, 1]")
    rng = make_rng(seed)
    nodes = list(range(num_nodes))
    edges = []
    for u in range(num_nodes):
        for v in range(u + 1, num_nodes):
            if rng.random() < edge_probability:
                edges.append((u, v))
    return nodes, edges
