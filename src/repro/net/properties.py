"""Descriptive properties of leveled networks (degree profiles, widths).

Used by experiment E1's report table and by workload generators that need to
know, e.g., how many packets a level can source.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from .leveled import LeveledNetwork


@dataclass(frozen=True)
class TopologyProfile:
    """Summary statistics of a leveled network."""

    name: str
    depth: int
    num_nodes: int
    num_edges: int
    level_sizes: Tuple[int, ...]
    min_degree: int
    max_degree: int
    mean_degree: float
    max_out_degree: int
    max_in_degree: int
    is_regular_levels: bool  # all levels the same width

    def as_row(self) -> Tuple:
        """Row used by the E1 bench table."""
        return (
            self.name,
            self.depth,
            self.num_nodes,
            self.num_edges,
            f"{self.min_degree}..{self.max_degree}",
            f"{self.mean_degree:.2f}",
        )


def profile(net: LeveledNetwork) -> TopologyProfile:
    """Compute a :class:`TopologyProfile` for ``net``."""
    degrees = [net.degree(v) for v in net.nodes()]
    sizes = net.level_sizes()
    return TopologyProfile(
        name=net.name,
        depth=net.depth,
        num_nodes=net.num_nodes,
        num_edges=net.num_edges,
        level_sizes=sizes,
        min_degree=min(degrees),
        max_degree=max(degrees),
        mean_degree=sum(degrees) / len(degrees),
        max_out_degree=max(net.out_degree(v) for v in net.nodes()),
        max_in_degree=max(net.in_degree(v) for v in net.nodes()),
        is_regular_levels=len(set(sizes)) == 1,
    )


def max_forward_capacity(net: LeveledNetwork) -> int:
    """Minimum over levels of the edge count between adjacent levels.

    This is the bottleneck bandwidth of the network: no algorithm can move
    more packets than this from one side of the bottleneck per step, a fact
    the adversarial workloads exploit.
    """
    cut = [0] * net.depth
    for e in net.edges():
        cut[net.level(net.edge_src(e))] += 1
    return min(cut) if cut else 0


def bottleneck_level(net: LeveledNetwork) -> int:
    """The level whose forward cut is smallest (ties to the lowest level)."""
    cut = [0] * net.depth
    for e in net.edges():
        cut[net.level(net.edge_src(e))] += 1
    return min(range(len(cut)), key=cut.__getitem__) if cut else 0
