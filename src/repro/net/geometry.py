"""Precomputed dense geometry tables for the simulation hot path.

:class:`NetworkGeometry` flattens a :class:`~repro.net.leveled.LeveledNetwork`
into plain tuples that the engine's inner loops index directly, bypassing
method calls and per-step tuple construction:

* ``edge_src`` / ``edge_dst`` — per-edge endpoint tables;
* ``in_edges`` / ``out_edges`` — per-node incident-edge tuples (shared with
  the network's own adjacency, so the cache adds no copies of them);
* ``in_slot_ids`` / ``out_slot_ids`` — per-node *directed slot* ids aligned
  with the edge tuples above.

A directed slot identifies ``(edge, traversal direction)`` as a single
integer ``(edge << 1) | direction`` (``Direction.FORWARD == 0``,
``Direction.BACKWARD == 1``), so the engine's capacity bookkeeping hashes
small ints instead of tuples.  Traversing an in-edge of a node means going
*backward* (toward lower levels); traversing an out-edge means going
*forward* — hence in-edges pair with backward slot ids and out-edges with
forward slot ids.

The geometry is built once per network, lazily, and cached on the network
instance (:meth:`LeveledNetwork.geometry`); networks are immutable, so the
cache can never go stale.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

from ..types import Direction, EdgeId, NodeId

if TYPE_CHECKING:  # pragma: no cover
    from .leveled import LeveledNetwork


def slot_id(edge: EdgeId, direction: Direction) -> int:
    """Encode a ``(edge, direction)`` pair as a single int."""
    return (edge << 1) | int(direction)


def slot_edge(slot: int) -> EdgeId:
    """The edge of an encoded slot."""
    return slot >> 1


def slot_direction(slot: int) -> Direction:
    """The traversal direction of an encoded slot."""
    return Direction(slot & 1)


class NetworkGeometry:
    """Immutable dense lookup tables derived from one leveled network."""

    __slots__ = (
        "num_nodes",
        "num_edges",
        "edge_src",
        "edge_dst",
        "in_edges",
        "out_edges",
        "in_slot_ids",
        "out_slot_ids",
        "node_levels",
        "_vec_arrays",
    )

    def __init__(self, net: "LeveledNetwork") -> None:
        self.num_nodes: int = net.num_nodes
        self.num_edges: int = net.num_edges
        # The network's own adjacency tuples are immutable; share them.
        self.edge_src: Tuple[NodeId, ...] = net._edge_src
        self.edge_dst: Tuple[NodeId, ...] = net._edge_dst
        self.in_edges: Tuple[Tuple[EdgeId, ...], ...] = net._in
        self.out_edges: Tuple[Tuple[EdgeId, ...], ...] = net._out
        self.node_levels: Tuple[int, ...] = net._levels_of
        backward = int(Direction.BACKWARD)
        self.in_slot_ids: Tuple[Tuple[int, ...], ...] = tuple(
            tuple((e << 1) | backward for e in edges) for edges in self.in_edges
        )
        self.out_slot_ids: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(e << 1 for e in edges) for edges in self.out_edges
        )
        self._vec_arrays = None

    def arrays(self):
        """Numpy views of the endpoint/level tables, built and cached lazily.

        Imported on first use so the geometry stays loadable without numpy;
        only the vectorized kernel (:mod:`repro.sim.engine_vec`) calls this.
        """
        if self._vec_arrays is None:
            from ..sim.soa import GeometryArrays

            self._vec_arrays = GeometryArrays(self)
        return self._vec_arrays

    def traversal_slot(self, edge: EdgeId, from_node: NodeId) -> int:
        """Encoded slot for traversing ``edge`` starting at ``from_node``.

        Mirrors :meth:`LeveledNetwork.traversal_direction` without the
        endpoint validation; callers must pass an incident node.
        """
        return (edge << 1) | (0 if from_node == self.edge_src[edge] else 1)
