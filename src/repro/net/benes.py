"""Beneš networks.

A Beneš network is two butterflies glued back to back: ``2·dim + 1`` levels
of ``2**dim`` rows, rearrangeably non-blocking (any permutation of inputs
to outputs is routable on edge-disjoint paths).  It is naturally leveled,
so the frontier-frame algorithm applies directly — a richer multistage
testbed than the butterfly, with *many* paths per input/output pair
instead of exactly one.

Construction: levels ``0..dim`` form a butterfly whose cross edges flip bit
``dim-1-l`` at level ``l`` (the "fan-in" half mirrored), and levels
``dim..2·dim`` flip bit ``l-dim`` — i.e. bit significance descends to 0 at
the middle and ascends again.
"""

from __future__ import annotations

from ..errors import TopologyError
from ..types import NodeId
from .leveled import LeveledNetwork, LeveledNetworkBuilder


def benes(dim: int) -> LeveledNetwork:
    """Build the ``dim``-dimensional Beneš network (depth ``L = 2·dim``)."""
    if dim < 1:
        raise TopologyError(f"Benes dimension must be >= 1, got {dim}")
    rows = 1 << dim
    builder = LeveledNetworkBuilder(name=f"benes({dim})")
    depth = 2 * dim
    for level in range(depth + 1):
        for row in range(rows):
            builder.add_node(level, label=("bn", level, row))
    for level in range(depth):
        if level < dim:
            bit = 1 << (dim - 1 - level)
        else:
            bit = 1 << (level - dim)
        for row in range(rows):
            src = builder.node(("bn", level, row))
            builder.add_edge(src, builder.node(("bn", level + 1, row)))
            builder.add_edge(src, builder.node(("bn", level + 1, row ^ bit)))
    return builder.build()


def benes_node(net: LeveledNetwork, level: int, row: int) -> NodeId:
    """Node id of Beneš coordinate ``(level, row)``."""
    return net.node_by_label(("bn", level, row))


def benes_rows(net: LeveledNetwork) -> int:
    """Number of rows (``2**dim``)."""
    return len(net.nodes_at_level(0))
