"""The hypercube viewed as a leveled network.

The paper lists the hypercube among networks "that can be treated as leveled
networks".  The standard leveled view puts node ``x`` (a ``dim``-bit address)
on level ``popcount(x)``: every hypercube edge flips exactly one bit and so
joins consecutive levels.  Forward routing then corresponds to monotone
bit-fixing that only turns 0-bits into 1-bits; a general routing problem is
handled by composing an up-phase and a down-phase (two leveled instances).
"""

from __future__ import annotations

from ..errors import TopologyError
from ..types import NodeId
from .leveled import LeveledNetwork, LeveledNetworkBuilder


def hypercube(dim: int, descending: bool = False) -> LeveledNetwork:
    """Build the ``dim``-dimensional hypercube leveled by Hamming weight.

    Depth is ``L = dim``.  In the default *ascending* orientation level
    ``k`` holds the addresses of weight ``k`` and edges set a 0-bit; with
    ``descending=True`` the leveling is complemented (level ``dim − k``)
    and edges *clear* a 1-bit — the orientation used by the down phase of
    general two-phase hypercube routing (see
    ``examples/hypercube_two_phase.py``).
    """
    if dim < 1:
        raise TopologyError(f"hypercube dimension must be >= 1, got {dim}")
    suffix = ",down" if descending else ""
    builder = LeveledNetworkBuilder(name=f"hypercube({dim}{suffix})")
    for address in range(1 << dim):
        weight = int(bin(address).count("1"))
        level = dim - weight if descending else weight
        builder.add_node(level, label=("hc", address))
    for address in range(1 << dim):
        node = builder.node(("hc", address))
        for bit in range(dim):
            mask = 1 << bit
            if descending:
                if address & mask:
                    builder.add_edge(node, builder.node(("hc", address & ~mask)))
            else:
                if not address & mask:
                    builder.add_edge(node, builder.node(("hc", address | mask)))
    return builder.build()


def hypercube_node(net: LeveledNetwork, address: int) -> NodeId:
    """Node id of the given hypercube address."""
    return net.node_by_label(("hc", address))


def hypercube_address(net: LeveledNetwork, node: NodeId) -> int:
    """Address (bit string) of a hypercube node."""
    label = net.label(node)
    if not (isinstance(label, tuple) and len(label) == 2 and label[0] == "hc"):
        raise TopologyError(f"node {node} is not a hypercube node (label {label!r})")
    return label[1]
