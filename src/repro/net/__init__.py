"""Leveled-network topologies (the paper's Section 1.1 and Figure 1).

The central class is :class:`LeveledNetwork`; the factories build the
topologies the paper names as leveled networks (butterfly, mesh, hypercube,
multidimensional array, shuffle-exchange/omega, fat-tree) plus the simple and
random families used by the test and benchmark suites.
"""

from .leveled import LeveledNetwork, LeveledNetworkBuilder, iter_edge_endpoints
from .butterfly import butterfly, butterfly_node, butterfly_dim, wrapped_butterfly_rows
from .mesh import MeshCorner, mesh, mesh_node, mesh_coords, mesh_shape
from .hypercube import hypercube, hypercube_node, hypercube_address
from .multidim import multidim_array, array_node, array_coords
from .omega import omega_network, omega_node
from .benes import benes, benes_node, benes_rows
from .fat_tree import fat_tree, fat_tree_node, fat_tree_leaf_count, fat_tree_shape
from .simple import (
    line,
    line_node,
    complete_binary_tree,
    tree_node,
    layered_complete,
    layered_node,
    diamond,
)
from .random_leveled import random_leveled, random_level_sizes
from .validation import ValidationReport, validate_leveled, assert_valid
from .properties import (
    TopologyProfile,
    profile,
    max_forward_capacity,
    bottleneck_level,
)
from .convert import to_networkx, to_networkx_multi, from_networkx
from .unroll import UnrolledDag, longest_path_layers, unroll_dag, random_dag
from .geometry import NetworkGeometry, slot_id, slot_edge, slot_direction

__all__ = [
    "LeveledNetwork",
    "LeveledNetworkBuilder",
    "iter_edge_endpoints",
    "butterfly",
    "butterfly_node",
    "butterfly_dim",
    "wrapped_butterfly_rows",
    "MeshCorner",
    "mesh",
    "mesh_node",
    "mesh_coords",
    "mesh_shape",
    "hypercube",
    "hypercube_node",
    "hypercube_address",
    "multidim_array",
    "array_node",
    "array_coords",
    "omega_network",
    "omega_node",
    "benes",
    "benes_node",
    "benes_rows",
    "fat_tree",
    "fat_tree_node",
    "fat_tree_leaf_count",
    "fat_tree_shape",
    "line",
    "line_node",
    "complete_binary_tree",
    "tree_node",
    "layered_complete",
    "layered_node",
    "diamond",
    "random_leveled",
    "random_level_sizes",
    "ValidationReport",
    "validate_leveled",
    "assert_valid",
    "TopologyProfile",
    "profile",
    "max_forward_capacity",
    "bottleneck_level",
    "to_networkx",
    "to_networkx_multi",
    "from_networkx",
    "UnrolledDag",
    "longest_path_layers",
    "unroll_dag",
    "random_dag",
    "NetworkGeometry",
    "slot_id",
    "slot_edge",
    "slot_direction",
]
