"""Conversion between :class:`~repro.net.LeveledNetwork` and networkx graphs.

networkx is an *optional* dependency (listed under the ``dev`` extra): the
library itself never imports it at module scope, so the core simulator works
without it.  The converters are handy for ad-hoc analysis and plotting.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import TopologyError
from .leveled import LeveledNetwork

if TYPE_CHECKING:  # pragma: no cover
    import networkx as nx


def to_networkx(net: LeveledNetwork) -> "nx.DiGraph":
    """Export as a directed graph with ``level`` node attributes.

    Edge keys carry the edge id in the ``edge_id`` attribute; parallel edges
    collapse (use :func:`to_networkx_multi` to keep them).
    """
    import networkx as nx

    graph = nx.DiGraph(name=net.name)
    for v in net.nodes():
        graph.add_node(v, level=net.level(v), label=net.label(v))
    for e in net.edges():
        src, dst = net.edge_endpoints(e)
        graph.add_edge(src, dst, edge_id=e)
    return graph


def to_networkx_multi(net: LeveledNetwork) -> "nx.MultiDiGraph":
    """Export as a multigraph, preserving parallel edges (fat-trees)."""
    import networkx as nx

    graph = nx.MultiDiGraph(name=net.name)
    for v in net.nodes():
        graph.add_node(v, level=net.level(v), label=net.label(v))
    for e in net.edges():
        src, dst = net.edge_endpoints(e)
        graph.add_edge(src, dst, key=e, edge_id=e)
    return graph


def from_networkx(graph: "nx.DiGraph", name: str = "imported") -> LeveledNetwork:
    """Import a directed graph whose nodes carry integer ``level`` attributes.

    Node ids are re-densified in level-major order; edges must join
    consecutive levels or :class:`~repro.errors.TopologyError` is raised.
    """
    try:
        items = sorted(
            graph.nodes(data=True),
            key=lambda item: (int(item[1]["level"]), repr(item[0])),
        )
    except KeyError:
        raise TopologyError("every node needs an integer 'level' attribute")
    index = {node: i for i, (node, _) in enumerate(items)}
    levels = [int(data["level"]) for _, data in items]
    labels = [node for node, _ in items]
    edges = [(index[u], index[v]) for u, v in graph.edges()]
    return LeveledNetwork(levels, edges, node_labels=labels, name=name)
