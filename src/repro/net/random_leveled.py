"""Random leveled networks.

The paper's algorithm "works for any leveled network, and its performance
doesn't depend on the edge degrees of the nodes"; random leveled networks
exercise exactly that claim — irregular level widths, irregular degrees —
while guaranteeing that forward routes exist (every non-sink node has at
least one outgoing edge, every non-source node at least one incoming edge).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..errors import TopologyError
from ..rng import RngLike, make_rng
from .leveled import LeveledNetwork, LeveledNetworkBuilder


def random_leveled(
    level_sizes: Sequence[int],
    edge_probability: float = 0.3,
    seed: RngLike = None,
    min_out_degree: int = 1,
    min_in_degree: int = 1,
) -> LeveledNetwork:
    """Sample a random leveled network with the given level widths.

    Between each pair of adjacent levels every possible edge is included
    independently with ``edge_probability``; afterwards edges are added so
    that every node on a non-final level has at least ``min_out_degree``
    outgoing edges and every node on a non-initial level has at least
    ``min_in_degree`` incoming edges (sampling without replacement, so the
    guarantee is capped by the neighboring level's width).
    """
    sizes = tuple(int(s) for s in level_sizes)
    if len(sizes) < 2:
        raise TopologyError("random leveled network needs at least two levels")
    if any(s < 1 for s in sizes):
        raise TopologyError(f"level sizes must be >= 1, got {sizes}")
    if not (0.0 <= edge_probability <= 1.0):
        raise TopologyError(f"edge probability {edge_probability} outside [0, 1]")
    if min_out_degree < 0 or min_in_degree < 0:
        raise TopologyError("minimum degrees must be non-negative")

    rng = make_rng(seed)
    if len(set(sizes)) == 1:
        shape = f"{sizes[0]}w x {len(sizes)}L"
    elif len(sizes) <= 8:
        shape = "x".join(str(s) for s in sizes)
    else:
        shape = f"{min(sizes)}..{max(sizes)}w x {len(sizes)}L"
    builder = LeveledNetworkBuilder(name=f"random({shape},p={edge_probability})")
    nodes = [builder.add_nodes(level, size) for level, size in enumerate(sizes)]

    for level in range(len(sizes) - 1):
        lower, upper = nodes[level], nodes[level + 1]
        present = rng.random((len(lower), len(upper))) < edge_probability

        # Degree repair: flip extra entries on so every row/column reaches
        # its minimum, without ever duplicating an edge.
        out_need = min(min_out_degree, len(upper))
        for a in range(len(lower)):
            missing = out_need - int(present[a].sum())
            if missing > 0:
                absent = np.flatnonzero(~present[a])
                picks = rng.choice(absent, size=missing, replace=False)
                present[a, picks] = True
        in_need = min(min_in_degree, len(lower))
        for b in range(len(upper)):
            missing = in_need - int(present[:, b].sum())
            if missing > 0:
                absent = np.flatnonzero(~present[:, b])
                picks = rng.choice(absent, size=missing, replace=False)
                present[picks, b] = True

        for a in range(len(lower)):
            for b in np.flatnonzero(present[a]):
                builder.add_edge(lower[a], upper[int(b)])
    return builder.build()


def random_level_sizes(
    depth: int,
    mean_width: int,
    seed: RngLike = None,
    min_width: int = 1,
    max_width: Optional[int] = None,
) -> list[int]:
    """Sample plausible level widths for :func:`random_leveled`.

    Widths are Poisson around ``mean_width``, clipped to
    ``[min_width, max_width]``.
    """
    if depth < 1:
        raise TopologyError(f"depth must be >= 1, got {depth}")
    if mean_width < 1:
        raise TopologyError(f"mean width must be >= 1, got {mean_width}")
    rng = make_rng(seed)
    hi = max_width if max_width is not None else 4 * mean_width
    widths = rng.poisson(mean_width, size=depth + 1)
    return [int(np.clip(w, min_width, hi)) for w in widths]
