"""Text-mode visualization of frames and packet occupancy."""

from .ascii_frames import frame_snapshot, frame_film_strip, target_schedule_strip
from .occupancy import OccupancySampler, occupancy_strip

__all__ = [
    "frame_snapshot",
    "frame_film_strip",
    "target_schedule_strip",
    "OccupancySampler",
    "occupancy_strip",
]
