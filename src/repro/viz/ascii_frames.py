"""ASCII rendering of frontier-frame geometry (the paper's Figure 2).

Figure 2 shows a leveled network with the frontier-frames ``F_i`` marked as
bands of ``m`` consecutive levels, pipelined ``m`` levels apart.  The
renderers here draw the same picture for a given parameterization, either
as a single-phase snapshot or as a phase-by-phase film strip — experiment
E2's artifact.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.schedule import FrameGeometry


def frame_snapshot(
    geometry: FrameGeometry, phase: int, width: int = 3
) -> str:
    """One line per level: which frame (if any) covers it at ``phase``.

    Levels are printed left-to-right, 0..L; the cell shows the frame index
    and the inner level as ``i:k``.
    """
    depth = geometry.depth
    cells: List[str] = []
    for level in range(depth + 1):
        owner: Optional[str] = None
        for set_index in range(geometry.params.num_sets):
            if geometry.in_frame(set_index, phase, level):
                inner = geometry.inner_level(set_index, phase, level)
                owner = f"F{set_index}:{inner}"
                break
        cells.append((owner or ".").ljust(max(width, 4)))
    header = "".join(str(level).ljust(max(width, 4)) for level in range(depth + 1))
    return f"level  {header}\nphase{phase:>3d} " + "".join(cells)


def frame_film_strip(
    geometry: FrameGeometry,
    first_phase: int = 0,
    last_phase: Optional[int] = None,
    mark_targets: bool = True,
) -> str:
    """Phase-by-phase strip: rows are phases, columns are network levels.

    Cell characters: digit = frame index covering the level (mod 10),
    ``>`` overlaid where the frontier (inner-level 0) sits, ``.`` = no
    frame.  Frames visibly march one level per phase and never overlap —
    the content of Figure 2.
    """
    depth = geometry.depth
    params = geometry.params
    if last_phase is None:
        last_phase = params.total_phases
    lines = []
    header = "phase | " + "".join(
        f"{level % 10}" for level in range(depth + 1)
    )
    lines.append(header + "   (levels 0..L)")
    lines.append("-" * len(header))
    for phase in range(first_phase, last_phase + 1):
        row = []
        for level in range(depth + 1):
            char = "."
            for set_index in range(params.num_sets):
                if geometry.in_frame(set_index, phase, level):
                    if mark_targets and geometry.frontier(set_index, phase) == level:
                        char = ">"
                    else:
                        char = str(set_index % 10)
                    break
            row.append(char)
        lines.append(f"{phase:5d} | " + "".join(row))
    return "\n".join(lines)


def target_schedule_strip(geometry: FrameGeometry, set_index: int, phase: int) -> str:
    """Round-by-round target level of one frame within one phase.

    Shows the target receding one inner level per round (rows = rounds,
    ``T`` marks the target level, ``#`` the rest of the frame).
    """
    depth = geometry.depth
    lines = [f"frame F{set_index}, phase {phase} (frontier at level "
             f"{geometry.frontier(set_index, phase)})"]
    for round_index in range(geometry.m):
        target = geometry.target_level(set_index, phase, round_index)
        row = []
        for level in range(depth + 1):
            if level == target:
                row.append("T")
            elif geometry.in_frame(set_index, phase, level):
                row.append("#")
            else:
                row.append(".")
        lines.append(f"round {round_index:2d} | " + "".join(row))
    return "\n".join(lines)
