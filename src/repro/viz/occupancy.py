"""Per-level occupancy sampling and rendering.

An :class:`OccupancySampler` hooks into the engine and records how many
active packets sit on each level every ``every`` steps; the strip renderer
turns the samples into a text heat map — useful for *seeing* the packets
ride their frames up the network.
"""

from __future__ import annotations

from typing import List, Tuple

from ..sim import Engine

#: glyph ramp for occupancy 0, 1, 2, ..., 9+
_RAMP = ".123456789#"


class OccupancySampler:
    """Engine post-step hook recording per-level active-packet counts."""

    def __init__(self, every: int = 1) -> None:
        if every < 1:
            raise ValueError(f"sampling interval must be >= 1, got {every}")
        self.every = every
        self.samples: List[Tuple[int, List[int]]] = []

    def install(self, engine: Engine) -> None:
        """Register with an engine."""
        engine.post_step_hooks.append(self)

    def __call__(self, engine: Engine, t: int) -> None:
        if t % self.every != 0:
            return
        counts = [0] * engine.net.num_levels
        for packet in engine.packets:
            if packet.is_active:
                counts[engine.net.level(packet.node)] += 1
        self.samples.append((t, counts))


def occupancy_strip(sampler: OccupancySampler, max_rows: int = 60) -> str:
    """Render samples as rows of glyphs (time down, levels across)."""
    if not sampler.samples:
        return "(no samples)"
    stride = max(1, len(sampler.samples) // max_rows)
    lines = ["   t | occupancy by level (. = 0, # = 10+)"]
    for t, counts in sampler.samples[::stride]:
        row = "".join(_RAMP[min(c, len(_RAMP) - 1)] for c in counts)
        lines.append(f"{t:6d} | {row}")
    return "\n".join(lines)
