"""Sweep manifests: a million-trial parameter study as one hash-stable file.

A :class:`SweepManifest` names an *entire* Monte Carlo sweep the way a
:class:`~repro.scenarios.RunSpec` names one trial: as frozen, JSON-round-
trippable data with a deterministic content hash.  It stores the base spec
plus the ordered list of per-trial master seeds — not the materialized
specs — so a 10^6-trial manifest stays megabytes, while every trial spec
(and therefore its :meth:`~repro.scenarios.RunSpec.content_hash`) is
derivable on demand: ``spec_for(i) == base.with_seed(seeds[i])``.

Two properties make the manifest the unit of distributed sweep execution:

* **Hash-stable.**  :meth:`manifest_hash` is a pure function of the
  semantic fields (base spec payload, seeds, shard size), computed the
  same way :meth:`RunSpec.content_hash` is — stable across processes,
  machines, and ``PYTHONHASHSEED`` — so independent invocations on
  different hosts agree on the store directory and on every shard's
  contents without coordination.
* **Shardable.**  Trials are split into fixed-size contiguous shards
  (``shard_size`` trials each, the last one ragged).  A shard is the unit
  of lease-based work stealing and of the byte-identity guarantee: the
  records of shard ``k`` are a pure function of the manifest, never of
  which worker, worker count, or resume point produced them.

``from_base(pin=True)`` reproduces :func:`repro.experiments.sweep_specs`
exactly (pinned scenario, :func:`~repro.experiments.derive_sweep_seeds`
master seeds), so the existing fixed-problem sweep workflow lifts into a
manifest without changing a single trial's bytes.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple, Union

from ..errors import ReproError
from ..rng import stable_hash_seed
from ..scenarios import RunSpec

PathLike = Union[str, pathlib.Path]

MANIFEST_KIND = "sweep_manifest"
MANIFEST_FORMAT = 1

#: Default trials per shard: large enough to amortize pool spin-up per
#: claim, small enough that a shard is minutes of work and bounds memory.
DEFAULT_SHARD_SIZE = 1024


@dataclass(frozen=True)
class SweepManifest:
    """An ordered, shardable list of trials over one base spec."""

    base: RunSpec
    seeds: Tuple[int, ...]
    shard_size: int = DEFAULT_SHARD_SIZE
    name: str = ""

    def __post_init__(self) -> None:
        if not self.seeds:
            raise ReproError("sweep manifest requires at least one trial seed")
        if self.shard_size < 1:
            raise ReproError(
                f"shard_size must be >= 1, got {self.shard_size}"
            )
        object.__setattr__(
            self, "seeds", tuple(int(seed) for seed in self.seeds)
        )
        object.__setattr__(self, "shard_size", int(self.shard_size))

    # ---------------------------------------------------------- construction

    @classmethod
    def from_base(
        cls,
        base: RunSpec,
        num_trials: int,
        shard_size: int = DEFAULT_SHARD_SIZE,
        base_seed: Optional[int] = None,
        pin: bool = True,
        name: str = "",
    ) -> "SweepManifest":
        """Derive a manifest the way :func:`~repro.experiments.sweep_specs`
        derives its spec list.

        ``pin=True`` (the default) pins the base's component seeds first
        (:meth:`RunSpec.with_pinned_scenario`), so varying the master seed
        re-rolls only the routing coins — the fixed-problem Monte Carlo
        design.  ``pin=False`` leaves component seeds derived from each
        trial's master seed: every trial then routes an independent
        instance (the instance-distribution sweep).
        """
        from ..experiments.parallel import derive_sweep_seeds

        if num_trials < 1:
            raise ReproError(f"num_trials must be >= 1, got {num_trials}")
        pinned = base.with_pinned_scenario() if pin else base
        seeds = derive_sweep_seeds(
            base.seed if base_seed is None else base_seed, num_trials
        )
        return cls(
            base=pinned,
            seeds=tuple(seeds),
            shard_size=shard_size,
            name=name or (base.name and f"sweep({base.name})") or "",
        )

    # -------------------------------------------------------------- trials

    @property
    def num_trials(self) -> int:
        return len(self.seeds)

    def spec_for(self, index: int) -> RunSpec:
        """The fully specified trial at position ``index``."""
        return self.base.with_seed(self.seeds[index])

    def specs(self) -> List[RunSpec]:
        """All trial specs, materialized (prefer per-shard iteration)."""
        return [self.base.with_seed(seed) for seed in self.seeds]

    def trial_hashes(self) -> Iterator[str]:
        """Ordered :meth:`RunSpec.content_hash` of every trial (lazy)."""
        for seed in self.seeds:
            yield self.base.with_seed(seed).content_hash()

    # -------------------------------------------------------------- shards

    @property
    def num_shards(self) -> int:
        return (len(self.seeds) + self.shard_size - 1) // self.shard_size

    def shard_range(self, shard: int) -> Tuple[int, int]:
        """Half-open ``[start, stop)`` trial indexes of one shard."""
        if not 0 <= shard < self.num_shards:
            raise ReproError(
                f"shard {shard} out of range (manifest has "
                f"{self.num_shards} shards)"
            )
        start = shard * self.shard_size
        return start, min(start + self.shard_size, len(self.seeds))

    def shard_specs(self, shard: int) -> List[RunSpec]:
        """The trial specs of one shard, in trial order."""
        start, stop = self.shard_range(shard)
        return [self.base.with_seed(self.seeds[i]) for i in range(start, stop)]

    def shard_ids(self) -> range:
        return range(self.num_shards)

    # -------------------------------------------------------- serialization

    def to_dict(self) -> dict:
        return {
            "kind": MANIFEST_KIND,
            "format": MANIFEST_FORMAT,
            "name": self.name,
            "base": self.base.to_dict(),
            "seeds": list(self.seeds),
            "shard_size": self.shard_size,
        }

    @classmethod
    def from_dict(cls, data) -> "SweepManifest":
        if not isinstance(data, dict):
            raise ReproError(
                f"sweep manifest must be a JSON object, got "
                f"{type(data).__name__}"
            )
        kind = data.get("kind", MANIFEST_KIND)
        if kind != MANIFEST_KIND:
            raise ReproError(f"not a sweep manifest: kind={kind!r}")
        known = {"kind", "format", "name", "base", "seeds", "shard_size"}
        unknown = set(data) - known
        if unknown:
            raise ReproError(
                f"unknown sweep-manifest keys: {sorted(unknown)} "
                f"(known: {sorted(known)})"
            )
        if "base" not in data or "seeds" not in data:
            raise ReproError("sweep manifest requires 'base' and 'seeds'")
        return cls(
            base=RunSpec.from_dict(data["base"]),
            seeds=tuple(int(s) for s in data["seeds"]),
            shard_size=int(data.get("shard_size", DEFAULT_SHARD_SIZE)),
            name=data.get("name", ""),
        )

    def to_json(self, indent: Optional[int] = 1) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SweepManifest":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ReproError(f"sweep manifest is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    # --------------------------------------------------------------- hashing

    def hash_payload(self) -> bytes:
        """Canonical JSON bytes of the semantic fields (``name`` excluded).

        The base spec is canonicalized to the first trial's seed before
        hashing: only ``base.with_seed(seeds[i])`` ever executes, so two
        manifests whose bases differ *only* in master seed run identical
        trials and must hash equal (e.g. :func:`manifest_from_specs` over
        a :meth:`from_base` manifest's own spec list).  The base spec
        contributes its :meth:`~repro.scenarios.RunSpec.hash_payload`
        (display name excluded there too), so two manifests hash equal
        exactly when they run the same trials in the same shards.
        """
        canonical_base = self.base.with_seed(self.seeds[0])
        record = {
            "kind": MANIFEST_KIND,
            "format": MANIFEST_FORMAT,
            "base": canonical_base.hash_payload().decode("utf-8"),
            "seeds": list(self.seeds),
            "shard_size": self.shard_size,
        }
        return json.dumps(
            record, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")

    def manifest_hash(self) -> str:
        """Deterministic 16-hex-digit content address of this sweep."""
        payload = self.hash_payload()
        return format(stable_hash_seed(len(payload), *payload), "016x")

    def describe(self) -> str:
        label = self.name or "sweep"
        return (
            f"{label}: {self.num_trials} trials x {self.base.topology}/"
            f"{self.base.workload or '-'} -> {self.base.backend} in "
            f"{self.num_shards} shards of <= {self.shard_size} "
            f"({self.manifest_hash()})"
        )


def save_manifest(manifest: SweepManifest, path: PathLike) -> None:
    """Write a manifest as a JSON file."""
    pathlib.Path(path).write_text(
        manifest.to_json() + "\n", encoding="utf-8"
    )


def load_manifest(path: PathLike) -> SweepManifest:
    """Load a manifest written by :func:`save_manifest`."""
    target = pathlib.Path(path)
    if not target.exists():
        raise ReproError(f"sweep manifest not found: {target}")
    return SweepManifest.from_json(target.read_text(encoding="utf-8"))


def manifest_from_specs(
    specs: Sequence[RunSpec],
    shard_size: int = DEFAULT_SHARD_SIZE,
    name: str = "",
) -> SweepManifest:
    """Lift an explicit spec list (e.g. :func:`~repro.experiments.
    sweep_specs` output) into a manifest.

    The specs must all be seed-variants of one base (``spec ==
    base.with_seed(spec.seed)``), which is what every sweep helper in the
    repo produces; anything else cannot be represented compactly and is
    rejected rather than silently re-derived.
    """
    if not specs:
        raise ReproError("manifest_from_specs requires at least one spec")
    base = specs[0]
    for index, spec in enumerate(specs):
        if spec != base.with_seed(spec.seed):
            raise ReproError(
                f"spec {index} is not a seed-variant of the first spec; "
                "sweep manifests hold one base spec plus per-trial seeds"
            )
    return SweepManifest(
        base=base,
        seeds=tuple(spec.seed for spec in specs),
        shard_size=shard_size,
        name=name,
    )
