"""One-pass streaming aggregation for million-trial sweeps.

A 10^6-trial parameter study must never materialize its records: the
point of the sweep is the *distribution* — success rate, delivery-time
percentiles, deflection counts, telemetry counter totals — not the raw
rows.  :class:`StreamingAggregate` folds one record at a time (from the
dispatcher as trials finish, or from a store's segment iterator) into
fixed-size state:

* scalar tallies (trials, delivered-all count, per-packet delivery
  totals) in O(1);
* :class:`IntSketch` count/mean/min/max/percentile sketches over integer
  metrics (makespan, per-packet delivery time, per-packet deflections,
  slowdown scaled to 1e-3).  The sketch is an exact integer histogram
  that *coarsens itself* — when the number of distinct buckets exceeds a
  bound it doubles its bucket width and rebins — so memory stays bounded
  no matter the value range while percentiles stay within one bucket
  width.  Deterministic: the same fold order produces the same sketch,
  and for typical sweeps (makespans in the thousands) the histogram
  never coarsens and percentiles are exact.
* telemetry counter snapshots merged pairwise through
  :func:`repro.telemetry.aggregate_counters` (additive fields sum, peaks
  max — the same semantics the CLI sweep summary always used).

``to_dict`` emits a JSON-stable summary; ``aggregate_store`` streams a
finished (or compacted) store through one pass.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

#: Maximum distinct histogram buckets before an IntSketch coarsens.
SKETCH_MAX_BUCKETS = 4096

#: Percentiles reported by every sketch summary.
SKETCH_PERCENTILES = (0.50, 0.90, 0.95, 0.99)

AGGREGATE_KIND = "sweep_aggregate"
AGGREGATE_FORMAT = 1


class IntSketch:
    """Bounded-memory count/mean/min/max/percentile sketch over ints."""

    def __init__(self, max_buckets: int = SKETCH_MAX_BUCKETS) -> None:
        self.max_buckets = max(16, int(max_buckets))
        self.width = 1
        self.count = 0
        self.total = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None
        self._buckets: Dict[int, int] = {}

    def add(self, value: int, weight: int = 1) -> None:
        value = int(value)
        self.count += weight
        self.total += value * weight
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        bucket = value // self.width
        self._buckets[bucket] = self._buckets.get(bucket, 0) + weight
        if len(self._buckets) > self.max_buckets:
            self._coarsen()

    def _coarsen(self) -> None:
        self.width *= 2
        rebinned: Dict[int, int] = {}
        for bucket, count in self._buckets.items():
            key = bucket // 2
            rebinned[key] = rebinned.get(key, 0) + count
        self._buckets = rebinned

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def percentile(self, q: float) -> Optional[int]:
        """Nearest-rank percentile, resolved to a bucket's upper value."""
        if not self.count:
            return None
        rank = max(1, int(round(q * self.count)))
        seen = 0
        for bucket in sorted(self._buckets):
            seen += self._buckets[bucket]
            if seen >= rank:
                # Upper edge of the bucket, clamped into observed range.
                upper = bucket * self.width + (self.width - 1)
                return max(self.min, min(self.max, upper))
        return self.max  # pragma: no cover - rank <= count always hits

    def to_dict(self) -> dict:
        record = {
            "count": self.count,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "bucket_width": self.width,
        }
        for q in SKETCH_PERCENTILES:
            record[f"p{int(q * 100)}"] = self.percentile(q)
        return record


class StreamingAggregate:
    """Fold sweep records one at a time; bounded memory, one pass."""

    def __init__(self) -> None:
        self.trials = 0
        self.delivered_all = 0
        self.packets = 0
        self.packets_delivered = 0
        self.unsafe_deflections = 0
        self.cache_hits = 0
        self.makespan = IntSketch()
        self.delivery_time = IntSketch()
        self.deflections = IntSketch()
        #: slowdown = makespan / max(C, D), folded at 1e-3 resolution
        self.slowdown_milli = IntSketch()
        self._telemetry: Optional[dict] = None

    # ---------------------------------------------------------------- folds

    def add_result(self, result, cached: bool = False) -> None:
        """Fold one :class:`~repro.sim.RunResult` (live dispatch path)."""
        self.trials += 1
        if cached:
            self.cache_hits += 1
        self.packets += result.num_packets
        self.packets_delivered += result.delivered
        if result.delivered == result.num_packets:
            self.delivered_all += 1
        self.unsafe_deflections += result.unsafe_deflections
        self.makespan.add(result.makespan)
        lower = max(1, max(result.congestion, result.dilation))
        self.slowdown_milli.add(round(result.makespan * 1000 / lower))
        for time in result.delivery_times:
            if time is not None:
                self.delivery_time.add(time)
        for count in result.deflections_per_packet:
            self.deflections.add(count)
        telemetry = result.telemetry
        if telemetry:
            self._fold_telemetry(telemetry)

    def add_record(self, record: dict) -> None:
        """Fold one decoded store record (segment replay path)."""
        from ..io import result_from_dict

        self.add_result(result_from_dict(record["result"]))

    def _fold_telemetry(self, snapshot: dict) -> None:
        from ..telemetry import aggregate_counters

        # aggregate_counters is associative over snapshots (an aggregate
        # is itself a valid snapshot whose ``runs`` carries its weight),
        # so pairwise folding matches a single batched call exactly.
        self._telemetry = aggregate_counters([self._telemetry, snapshot])

    def merge_dict(self, other: dict) -> None:
        """Fold a previously emitted aggregate (cross-store roll-ups).

        Scalar tallies and telemetry merge exactly; sketches merge at
        their emitted resolution (each percentile bucket re-folded by
        weight), which is the usual sketch-union error bound.
        """
        self.trials += other["trials"]
        self.delivered_all += other["delivered_all"]
        self.packets += other["packets"]
        self.packets_delivered += other["packets_delivered"]
        self.unsafe_deflections += other["unsafe_deflections"]
        self.cache_hits += other.get("cache_hits", 0)
        for name, sketch in (
            ("makespan", self.makespan),
            ("delivery_time", self.delivery_time),
            ("deflections", self.deflections),
            ("slowdown_milli", self.slowdown_milli),
        ):
            summary = other.get(name)
            if summary and summary["count"]:
                # Reconstruct coarse mass: mean at full weight keeps the
                # merged mean exact; min/max keep the envelope exact.
                sketch.add(summary["min"])
                sketch.add(summary["max"])
                if summary["count"] > 2:
                    sketch.add(
                        round(summary["mean"]), weight=summary["count"] - 2
                    )
        telemetry = other.get("telemetry")
        if telemetry:
            self._fold_telemetry(telemetry)

    # --------------------------------------------------------------- output

    def to_dict(self) -> dict:
        record = {
            "kind": AGGREGATE_KIND,
            "format": AGGREGATE_FORMAT,
            "trials": self.trials,
            "delivered_all": self.delivered_all,
            "success_rate": (
                self.delivered_all / self.trials if self.trials else None
            ),
            "packets": self.packets,
            "packets_delivered": self.packets_delivered,
            "unsafe_deflections": self.unsafe_deflections,
            "cache_hits": self.cache_hits,
            "makespan": self.makespan.to_dict(),
            "delivery_time": self.delivery_time.to_dict(),
            "deflections": self.deflections.to_dict(),
            "slowdown_milli": self.slowdown_milli.to_dict(),
        }
        if self._telemetry is not None:
            record["telemetry"] = self._telemetry
        return record

    def summary(self) -> str:
        """One-paragraph human rendering (the CLI's sweep footer)."""
        return render_aggregate(self.to_dict())


def render_aggregate(record: dict) -> str:
    """Human rendering of an emitted aggregate dict (`aggregate.json`)."""
    trials = record.get("trials", 0)
    if not trials:
        return "aggregate : no trials"
    lines: List[str] = []
    cache_hits = record.get("cache_hits", 0)
    lines.append(
        f"aggregate : {trials} trials, "
        f"{record['delivered_all']}/{trials} fully delivered"
        + (f", {cache_hits} cache hits" if cache_hits else "")
    )
    mk = record["makespan"]
    lines.append(
        f"makespan  : mean {mk['mean']:.1f}, min {mk['min']}, "
        f"p50 {mk['p50']}, p95 {mk['p95']}, p99 {mk['p99']}, max {mk['max']}"
    )
    dt = record["delivery_time"]
    if dt["count"]:
        lines.append(
            f"delivery  : {dt['count']} packets, mean {dt['mean']:.1f}, "
            f"p50 {dt['p50']}, p95 {dt['p95']}, max {dt['max']}"
        )
    df = record["deflections"]
    if df["count"]:
        lines.append(
            f"deflection: mean {df['mean']:.2f}/packet, p95 {df['p95']}, "
            f"max {df['max']} "
            f"({record['unsafe_deflections']} unsafe total)"
        )
    sd = record["slowdown_milli"]
    if sd["count"] and sd["mean"] is not None:
        lines.append(
            f"slowdown  : T/max(C,D) mean {sd['mean'] / 1000:.2f}, "
            f"p95 {(sd['p95'] or 0) / 1000:.2f}"
        )
    telemetry = record.get("telemetry")
    if telemetry:
        lines.append(
            f"telemetry : {telemetry['events_total']} events over "
            f"{telemetry['runs']} trials; deflections "
            f"{telemetry['deflections']['safe']} safe / "
            f"{telemetry['deflections']['unsafe']} unsafe"
        )
    return "\n".join(lines)


def aggregate_records(records: Iterable[dict]) -> StreamingAggregate:
    """One pass over decoded store records."""
    aggregate = StreamingAggregate()
    for record in records:
        aggregate.add_record(record)
    return aggregate


def aggregate_store(store) -> StreamingAggregate:
    """One streaming pass over a finished (or compacted) store."""
    return aggregate_records(store.iter_records())
