"""Million-trial sweep orchestration: manifests, shards, streaming store.

The paper's Õ(C+D) delivery bound is probabilistic, so validating it — and
searching the parameter space empirically — takes sweeps in the 10^5–10^6
trial range.  This package turns such a sweep into a first-class,
resumable, shardable artifact layered on the warm-pool batched executor:

* :class:`SweepManifest` — the sweep as hash-stable data: one base
  :class:`~repro.scenarios.RunSpec` plus an ordered list of per-trial
  seeds, split into fixed-size shards;
* :class:`SweepStore` — per-shard append-only JSONL(.gz) segments with
  byte-identity per shard, crash-recoverable part files, a compaction
  step, and a persisted streaming aggregate;
* :class:`~repro.sweeps.lease.LeaseManager` — atomic lease files so
  independent invocations (processes or hosts sharing a filesystem)
  steal shards instead of colliding;
* :class:`StreamingAggregate` — one-pass count/mean/percentile sketches
  over delivery time, makespan, deflections, and telemetry counters, in
  bounded memory;
* :func:`run_sweep` — the work-stealing driver behind
  ``repro sweep --store`` (with ``--manifest/--shard/--resume``).

See docs/sweeps.md for the on-disk formats and the shard lease protocol.
"""

from .manifest import (
    DEFAULT_SHARD_SIZE,
    SweepManifest,
    load_manifest,
    manifest_from_specs,
    save_manifest,
)
from .store import ShardWriter, SweepStore, encode_record, open_store
from .lease import DEFAULT_STALE_AFTER_SEC, LeaseManager, ShardLease
from .aggregate import (
    IntSketch,
    StreamingAggregate,
    aggregate_records,
    aggregate_store,
    render_aggregate,
)
from .dispatch import (
    ShardOutcome,
    SweepHeartbeat,
    SweepOutcome,
    print_sweep_report,
    run_sweep,
)

__all__ = [
    "DEFAULT_SHARD_SIZE",
    "SweepManifest",
    "load_manifest",
    "save_manifest",
    "manifest_from_specs",
    "SweepStore",
    "ShardWriter",
    "open_store",
    "encode_record",
    "LeaseManager",
    "ShardLease",
    "DEFAULT_STALE_AFTER_SEC",
    "IntSketch",
    "StreamingAggregate",
    "aggregate_records",
    "aggregate_store",
    "render_aggregate",
    "SweepHeartbeat",
    "SweepOutcome",
    "ShardOutcome",
    "run_sweep",
    "print_sweep_report",
]
