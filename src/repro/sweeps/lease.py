"""Atomic shard leases: work stealing over a shared filesystem.

Independent ``repro sweep`` invocations — multiple processes on one host,
or several hosts mounting the same store directory — cooperate on a
manifest by *claiming* shards instead of partitioning them up front.  A
claim is an ``O_CREAT | O_EXCL`` file create (atomic on POSIX local
filesystems and on NFSv3+), so exactly one worker wins each shard; losers
move on to the next unclaimed shard, which is the whole work-stealing
scheduler: whoever is idle takes the next shard, stragglers never block
the sweep.

Liveness: the owner re-touches the lease as it makes progress
(:meth:`ShardLease.heartbeat`).  A lease whose heartbeat is older than
``stale_after`` seconds — or whose owner pid is provably dead on this
host — is *stale*: a claimer running with ``steal_stale=True`` (the CLI's
``--resume``) breaks it and takes over, resuming the shard's part file
from its last valid record.  Breaking a lease never corrupts records:
the part file is re-validated line by line on takeover, and finalization
is an atomic rename.
"""

from __future__ import annotations

import json
import os
import pathlib
import socket
import time
from typing import Optional, Union

PathLike = Union[str, pathlib.Path]

#: A lease without a heartbeat for this many seconds is presumed dead.
DEFAULT_STALE_AFTER_SEC = 300.0


def _pid_alive_on_this_host(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, other user
        return True
    except OSError:  # pragma: no cover - conservative default
        return True
    return True


class ShardLease:
    """One held claim; release it (or let it go stale) when done."""

    def __init__(self, path: pathlib.Path, shard: int) -> None:
        self.path = path
        self.shard = shard
        self.released = False

    def heartbeat(self) -> None:
        """Refresh the liveness timestamp (cheap: one utime)."""
        if not self.released:
            try:
                os.utime(self.path)
            except FileNotFoundError:  # pragma: no cover - stolen from us
                pass

    def release(self) -> None:
        """Drop the claim (idempotent)."""
        if not self.released:
            try:
                self.path.unlink()
            except FileNotFoundError:
                pass
            self.released = True

    def __enter__(self) -> "ShardLease":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class LeaseManager:
    """Claims shard leases inside a store's ``leases/`` directory."""

    def __init__(
        self,
        leases_dir: PathLike,
        stale_after: float = DEFAULT_STALE_AFTER_SEC,
    ) -> None:
        self.dir = pathlib.Path(leases_dir)
        self.stale_after = float(stale_after)

    def path_for(self, shard: int) -> pathlib.Path:
        return self.dir / f"shard-{shard:05d}.lease"

    def owner(self, shard: int) -> Optional[dict]:
        """The current lease payload, or None when unclaimed."""
        try:
            return json.loads(self.path_for(shard).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None

    def is_stale(self, shard: int) -> bool:
        """Whether the shard's lease (if any) shows no recent liveness."""
        path = self.path_for(shard)
        try:
            age = time.time() - path.stat().st_mtime
        except FileNotFoundError:
            return False
        if age > self.stale_after:
            return True
        owner = self.owner(shard)
        if (
            owner is not None
            and owner.get("host") == socket.gethostname()
            and isinstance(owner.get("pid"), int)
        ):
            return not _pid_alive_on_this_host(owner["pid"])
        return False

    def claim(
        self, shard: int, steal_stale: bool = False
    ) -> Optional[ShardLease]:
        """Try to claim one shard; None when someone else holds it.

        ``steal_stale`` additionally breaks leases that :meth:`is_stale`
        judges abandoned (crashed worker, powered-off host) before
        retrying the atomic create once.
        """
        self.dir.mkdir(parents=True, exist_ok=True)
        path = self.path_for(shard)
        for attempt in (0, 1):
            try:
                fd = os.open(
                    path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
                )
            except FileExistsError:
                if attempt == 0 and steal_stale and self.is_stale(shard):
                    try:
                        path.unlink()
                    except FileNotFoundError:
                        pass
                    continue
                return None
            payload = {
                "kind": "shard_lease",
                "shard": shard,
                "host": socket.gethostname(),
                "pid": os.getpid(),
                "claimed_at": time.time(),
            }
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, sort_keys=True)
            return ShardLease(path, shard)
        return None  # pragma: no cover - both attempts lost the race
