"""The work-stealing sweep driver: manifest in, segments + aggregate out.

:func:`run_sweep` walks the manifest's shards in order and, for each one:

1. **skips** it when its finalized segment already exists (a previous
   invocation — or another host — finished it);
2. **claims** it via an atomic lease file (losing the race means another
   worker owns it: move on, that is the work-stealing schedule);
3. **resumes** its in-progress part file from the last valid record, so a
   killed sweep re-runs only the missing suffix;
4. **executes** the remaining trials through the warm-pool batched layer
   (:func:`~repro.experiments.run_spec_trials_batched`) in streaming mode
   — each record is appended to the shard segment and folded into the
   running aggregate the moment it arrives, never accumulated;
5. **finalizes** the segment atomically and releases the lease.

When the walk ends with every shard finalized, the driver compacts the
segments and writes the streaming aggregate; otherwise it reports what
remains (another invocation will finish and compact).

Memory is bounded by ``shard_size`` (the spec list of the active shard)
plus the fixed-size aggregate sketches — independent of the manifest's
trial count.  Determinism: every record is a pure function of its spec,
so worker count, shard claim order, resume points, and host all cancel
out of the stored bytes (the per-shard byte-identity guarantee).
"""

from __future__ import annotations

import json
import pathlib
import sys
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, List, Optional, Sequence, Union

from ..telemetry.timing import TimingSpans
from .aggregate import aggregate_store, render_aggregate
from .lease import DEFAULT_STALE_AFTER_SEC, LeaseManager
from .manifest import SweepManifest
from .store import SweepStore

PathLike = Union[str, pathlib.Path]

#: Lease heartbeat cadence, in records appended.
LEASE_HEARTBEAT_EVERY = 64


class SweepHeartbeat:
    """JSONL progress heartbeat for long sweeps (the ``--progress`` sink).

    Emits one ``sweep_heartbeat`` record at most every ``interval_sec``
    (clocked on the telemetry layer's :class:`~repro.telemetry.timing.
    TimingSpans` accumulators), so a million-trial sweep is observable —
    trials done, trials/sec, ETA, cache hits — without tracing anything.
    """

    def __init__(
        self,
        sink: Union[Callable[[dict], None], PathLike, None],
        total: int,
        interval_sec: float = 2.0,
    ) -> None:
        self._fh = None
        if sink is None or callable(sink):
            self._sink = sink
        else:
            self._fh = open(sink, "a", encoding="utf-8")
            self._sink = self._write_line
        self.total = int(total)
        self.interval_sec = float(interval_sec)
        self.spans = TimingSpans()
        self.executed = 0
        self.cache_hits = 0
        self.completed_trials = 0  # includes shards finished before us
        self.lockstep_trials = 0
        #: last execution-path tag seen ("lockstep[w=K]" or "per-trial"),
        #: so operators can read the executor mode — and the lockstep
        #: batch width — straight off the progress line
        self.executor = ""
        self._started = perf_counter()
        self._last_emit = self._started
        self.records_emitted = 0

    def _write_line(self, record: dict) -> None:
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()

    # ------------------------------------------------------------ callbacks

    def note_trial(
        self, cached: bool, trial_sec: float, executor: str = ""
    ) -> None:
        self.executed += 1
        self.completed_trials += 1
        if cached:
            self.cache_hits += 1
        if executor.startswith("lockstep"):
            self.lockstep_trials += 1
        if not cached:
            self.executor = executor or "per-trial"
        self.spans.add("trial", trial_sec)

    def note_prior_trials(self, count: int) -> None:
        """Account trials already on disk (resumed or other workers')."""
        self.completed_trials += int(count)

    def maybe_emit(self, shard: Optional[int] = None) -> None:
        now = perf_counter()
        if now - self._last_emit >= self.interval_sec:
            self.emit(shard=shard)

    def emit(self, shard: Optional[int] = None, final: bool = False) -> None:
        if self._sink is None:
            return
        now = perf_counter()
        elapsed = now - self._started
        rate = self.executed / elapsed if elapsed > 0 else 0.0
        remaining = max(0, self.total - self.completed_trials)
        record = {
            "kind": "sweep_heartbeat",
            "done": self.completed_trials,
            "executed": self.executed,
            "total": self.total,
            "shard": shard,
            "trials_per_sec": round(rate, 3),
            "eta_sec": round(remaining / rate, 1) if rate > 0 else None,
            "cache_hits": self.cache_hits,
            "elapsed_sec": round(elapsed, 3),
            "executor": self.executor or None,
            "lockstep_trials": self.lockstep_trials,
        }
        if final:
            record["final"] = True
            record["spans"] = self.spans.to_dict()
        self._last_emit = now
        self.records_emitted += 1
        self._sink(record)

    def close(self) -> None:
        self.emit(final=True)
        if self._fh is not None:
            self._fh.close()
            self._fh = None


@dataclass
class ShardOutcome:
    """What happened to one shard during this invocation."""

    shard: int
    status: str  # "done" | "already-complete" | "leased-elsewhere"
    executed: int = 0
    resumed: int = 0


@dataclass
class SweepOutcome:
    """The invocation-level result of :func:`run_sweep`."""

    manifest_hash: str
    shards: List[ShardOutcome] = field(default_factory=list)
    trials_executed: int = 0
    trials_resumed: int = 0
    cache_hits: int = 0
    elapsed_sec: float = 0.0
    #: whether the whole manifest is finalized on disk (by anyone)
    complete: bool = False
    #: streaming-aggregate dict, present once complete
    aggregate: Optional[dict] = None

    @property
    def shards_done(self) -> int:
        return sum(1 for s in self.shards if s.status == "done")

    def summary(self) -> str:
        skipped = sum(
            1 for s in self.shards if s.status == "already-complete"
        )
        leased = sum(
            1 for s in self.shards if s.status == "leased-elsewhere"
        )
        parts = [
            f"{self.shards_done} shards run "
            f"({self.trials_executed} trials, "
            f"{self.trials_resumed} resumed from disk)",
        ]
        if skipped:
            parts.append(f"{skipped} already complete")
        if leased:
            parts.append(f"{leased} leased elsewhere")
        state = "complete" if self.complete else "incomplete"
        return f"sweep {state}: " + ", ".join(parts)


def run_sweep(
    manifest: SweepManifest,
    store: SweepStore,
    workers: int = 1,
    shards: Optional[Sequence[int]] = None,
    resume: bool = False,
    telemetry: bool = False,
    cache=None,
    heartbeat: Optional[SweepHeartbeat] = None,
    compact: bool = True,
    stale_after: float = DEFAULT_STALE_AFTER_SEC,
    chunksize: Optional[int] = None,
    dispatch: str = "auto",
    lockstep: bool = True,
) -> SweepOutcome:
    """Execute (this invocation's share of) a sweep manifest.

    ``shards`` restricts the walk to explicit shard ids (cooperating
    invocations can partition by hand); the default walks every shard,
    with lease claims arbitrating overlap.  ``resume`` additionally
    breaks stale leases (crashed owners) before claiming.  ``cache``
    passes a :class:`~repro.scenarios.ResultCache` root through to the
    trial executor, so re-running a manifest whose results are cached
    re-emits records from disk hits instead of re-routing.

    Returns a :class:`SweepOutcome`; when the walk ends with every shard
    finalized, the store is compacted (unless ``compact=False``) and the
    streaming aggregate is computed and persisted to ``aggregate.json``.
    """
    from ..experiments.batch import run_spec_trials_batched
    from ..scenarios import ScenarioCache

    # One warm scenario cache for the whole walk: fixed-problem manifests
    # build their (network, geometry, paths) once, not once per shard.
    warm = ScenarioCache()
    store.init()
    leases = LeaseManager(store.leases_dir, stale_after=stale_after)
    outcome = SweepOutcome(manifest_hash=manifest.manifest_hash())
    started = perf_counter()
    shard_ids = list(manifest.shard_ids()) if shards is None else list(shards)

    if heartbeat is not None:
        for shard in manifest.shard_ids():
            if store.shard_complete(shard):
                start, stop = manifest.shard_range(shard)
                heartbeat.note_prior_trials(stop - start)

    for shard in shard_ids:
        if store.shard_complete(shard):
            outcome.shards.append(
                ShardOutcome(shard=shard, status="already-complete")
            )
            continue
        lease = leases.claim(shard, steal_stale=resume)
        if lease is None:
            outcome.shards.append(
                ShardOutcome(shard=shard, status="leased-elsewhere")
            )
            continue
        with lease:
            resumed = store.resume_shard(shard)
            specs = manifest.shard_specs(shard)
            remaining = specs[resumed:]
            if heartbeat is not None and resumed:
                heartbeat.note_prior_trials(resumed)
            executed = 0
            with store.writer(shard, start_offset=resumed) as writer:
                last_mark = perf_counter()

                def on_record(done, total, record):
                    nonlocal executed, last_mark
                    writer.append(
                        record.spec.seed,
                        record.spec.content_hash(),
                        record.result,
                    )
                    executed += 1
                    now = perf_counter()
                    if record.cached:
                        outcome.cache_hits += 1
                    if heartbeat is not None:
                        heartbeat.note_trial(
                            record.cached,
                            now - last_mark,
                            executor=getattr(record, "executor", ""),
                        )
                        heartbeat.maybe_emit(shard=shard)
                    last_mark = now
                    if executed % LEASE_HEARTBEAT_EVERY == 0:
                        lease.heartbeat()

                if remaining:
                    run_spec_trials_batched(
                        remaining,
                        workers=workers,
                        chunksize=chunksize,
                        cache=cache,
                        telemetry=telemetry,
                        progress=on_record,
                        dispatch=dispatch,
                        collect=False,
                        lockstep=lockstep,
                        warm=warm,
                    )
            store.finalize_shard(shard)
            outcome.shards.append(
                ShardOutcome(
                    shard=shard,
                    status="done",
                    executed=executed,
                    resumed=resumed,
                )
            )
            outcome.trials_executed += executed
            outcome.trials_resumed += resumed

    outcome.complete = store.all_complete()
    if outcome.complete:
        aggregate = aggregate_store(store)
        aggregate.cache_hits = outcome.cache_hits
        outcome.aggregate = aggregate.to_dict()
        store.write_aggregate(outcome.aggregate)
        if compact:
            store.compact()
    outcome.elapsed_sec = perf_counter() - started
    if heartbeat is not None:
        heartbeat.close()
    return outcome


def print_sweep_report(
    outcome: SweepOutcome, stream=None
) -> None:
    """Render an outcome (and its aggregate, when complete) to a stream."""
    stream = stream or sys.stdout
    print(outcome.summary(), file=stream)
    if outcome.aggregate is not None:
        print(render_aggregate(outcome.aggregate), file=stream)
