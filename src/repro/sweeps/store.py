"""Streaming columnar-ish result store: per-shard JSONL(.gz) segments.

A :class:`SweepStore` is the on-disk artifact of one manifest's execution,
rooted at ``<store_root>/<manifest_hash>/``::

    manifest.json                 the manifest that defines every byte below
    shards/shard-00007.part.jsonl append-only in-progress segment (plain
                                  JSONL so a crashed writer leaves a
                                  recoverable prefix)
    shards/shard-00007.jsonl.gz   finalized segment: one canonical-JSON
                                  record per trial, gzip with pinned mtime
    leases/shard-00007.lease      shard claim (see repro.sweeps.lease)
    sweep.jsonl.gz                compacted single stream (optional; written
                                  by compact(), replaces the shard segments)
    aggregate.json                streaming-aggregate summary

**Byte identity per shard.**  A record line is the canonical JSON
(``sort_keys``, compact separators) of ``{index, seed, spec_hash,
result}`` — all pure functions of the manifest — and finalized segments
are gzipped with ``mtime=0`` and a fixed compression level.  Same shard ⇒
same bytes, no matter which host wrote it, how many pool workers ran it,
or where a previous attempt was killed.

**Resumability.**  Writers append to the ``.part`` file record-by-record
and finalize atomically (tmp + rename) only when the shard is complete.
:meth:`resume_shard` re-validates a part file line by line against the
manifest (index order, spec hash) and truncates at the first invalid or
torn line, so a resumed shard re-runs only the missing suffix and the
final segment is byte-identical to an uninterrupted run.

Records are *data only* (no materialized problem, no machine-dependent
timings), and every reader is a streaming iterator — a 10^6-trial sweep
is aggregated without ever holding more than one record in memory.
"""

from __future__ import annotations

import gzip
import io
import json
import pathlib
from typing import IO, Iterator, Optional, Union

from ..errors import ReproError
from ..io import result_to_dict
from .manifest import SweepManifest, load_manifest, save_manifest

PathLike = Union[str, pathlib.Path]

RECORD_KIND = "sweep_record"
#: Pinned so identical records compress to identical segment bytes.
GZIP_LEVEL = 6

MANIFEST_FILENAME = "manifest.json"
AGGREGATE_FILENAME = "aggregate.json"
COMPACTED_FILENAME = "sweep.jsonl.gz"


def encode_record(index: int, seed: int, spec_hash: str, result) -> bytes:
    """One trial as one canonical JSONL line (the byte-identity unit)."""
    payload = {
        "kind": RECORD_KIND,
        "index": int(index),
        "seed": int(seed),
        "spec_hash": spec_hash,
        "result": result_to_dict(result),
    }
    return (
        json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def _decode_line(line: bytes) -> Optional[dict]:
    """Parse one record line; None for torn/invalid lines (crash tail)."""
    if not line.endswith(b"\n"):
        return None
    try:
        payload = json.loads(line)
    except (json.JSONDecodeError, UnicodeDecodeError):
        return None
    if not isinstance(payload, dict) or payload.get("kind") != RECORD_KIND:
        return None
    return payload


def _deterministic_gzip(raw: bytes) -> bytes:
    """Gzip with pinned mtime/level/name: equal input ⇒ equal output."""
    buffer = io.BytesIO()
    with gzip.GzipFile(
        filename="", mode="wb", fileobj=buffer, mtime=0,
        compresslevel=GZIP_LEVEL,
    ) as zf:
        zf.write(raw)
    return buffer.getvalue()


class ShardWriter:
    """Append-only writer for one shard's in-progress segment.

    Holds the ``.part`` file open in append mode and flushes after every
    record, so a killed process loses at most the torn final line —
    everything flushed before the kill survives for :meth:`SweepStore.
    resume_shard`.
    """

    def __init__(self, store: "SweepStore", shard: int, start_index: int):
        self.store = store
        self.shard = shard
        self.next_index = start_index
        self._fh: Optional[IO[bytes]] = None

    def append(self, seed: int, spec_hash: str, result) -> None:
        """Append the next trial's record (indexes are assigned in order)."""
        if self._fh is None:
            path = self.store.part_path(self.shard)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(path, "ab")
        self._fh.write(
            encode_record(self.next_index, seed, spec_hash, result)
        )
        self._fh.flush()
        self.next_index += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "ShardWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SweepStore:
    """On-disk segments + aggregate for one manifest's sweep."""

    def __init__(self, root: PathLike, manifest: SweepManifest) -> None:
        self.root = pathlib.Path(root)
        self.manifest = manifest
        self.dir = self.root / manifest.manifest_hash()
        self.shards_dir = self.dir / "shards"
        self.leases_dir = self.dir / "leases"

    # ---------------------------------------------------------------- layout

    def init(self) -> None:
        """Create the store directory and pin the manifest inside it.

        Re-opening an existing store verifies the on-disk manifest hashes
        to the same sweep (the directory name is the hash, so a mismatch
        means a hand-edited file — refuse rather than mix records).
        """
        self.dir.mkdir(parents=True, exist_ok=True)
        self.shards_dir.mkdir(exist_ok=True)
        self.leases_dir.mkdir(exist_ok=True)
        manifest_path = self.dir / MANIFEST_FILENAME
        if manifest_path.exists():
            existing = load_manifest(manifest_path)
            if existing.manifest_hash() != self.manifest.manifest_hash():
                raise ReproError(
                    f"store {self.dir} holds a different sweep "
                    f"({existing.manifest_hash()} != "
                    f"{self.manifest.manifest_hash()})"
                )
        else:
            save_manifest(self.manifest, manifest_path)

    def part_path(self, shard: int) -> pathlib.Path:
        return self.shards_dir / f"shard-{shard:05d}.part.jsonl"

    def segment_path(self, shard: int) -> pathlib.Path:
        return self.shards_dir / f"shard-{shard:05d}.jsonl.gz"

    @property
    def compacted_path(self) -> pathlib.Path:
        return self.dir / COMPACTED_FILENAME

    @property
    def aggregate_path(self) -> pathlib.Path:
        return self.dir / AGGREGATE_FILENAME

    # ---------------------------------------------------------------- status

    def shard_complete(self, shard: int) -> bool:
        """Whether the shard's finalized segment (or the compacted stream)
        already exists."""
        return self.segment_path(shard).exists() or self.is_compacted()

    def is_compacted(self) -> bool:
        return self.compacted_path.exists()

    def completed_shards(self) -> list:
        """Shard ids with finalized segments (all of them once compacted)."""
        if self.is_compacted():
            return list(self.manifest.shard_ids())
        return [
            shard
            for shard in self.manifest.shard_ids()
            if self.segment_path(shard).exists()
        ]

    def all_complete(self) -> bool:
        return len(self.completed_shards()) == self.manifest.num_shards

    # ---------------------------------------------------------- resume logic

    def resume_shard(self, shard: int) -> int:
        """Validate the shard's part file; return how many trials survive.

        Reads the in-progress segment line by line, checking each record
        is the next expected trial (contiguous ``index`` from the shard
        start, ``seed`` and ``spec_hash`` matching the manifest).  The
        file is truncated at the first torn or mismatched line — a killed
        writer's last write — so the caller re-runs exactly the remaining
        suffix and appends to a known-good prefix.
        """
        part = self.part_path(shard)
        start, stop = self.manifest.shard_range(shard)
        if not part.exists():
            return 0
        valid_bytes = 0
        valid_records = 0
        expected = start
        with open(part, "rb") as fh:
            for line in fh:
                if expected >= stop:
                    break  # surplus lines: truncate them away
                payload = _decode_line(line)
                if payload is None or payload.get("index") != expected:
                    break
                spec = self.manifest.spec_for(expected)
                if (
                    payload.get("seed") != spec.seed
                    or payload.get("spec_hash") != spec.content_hash()
                ):
                    break
                valid_bytes += len(line)
                valid_records += 1
                expected += 1
        if part.stat().st_size != valid_bytes:
            with open(part, "r+b") as fh:
                fh.truncate(valid_bytes)
        return valid_records

    def writer(self, shard: int, start_offset: int = 0) -> ShardWriter:
        """A :class:`ShardWriter` positioned ``start_offset`` trials into
        the shard (callers pass :meth:`resume_shard`'s return value)."""
        start, _ = self.manifest.shard_range(shard)
        return ShardWriter(self, shard, start + start_offset)

    def finalize_shard(self, shard: int) -> pathlib.Path:
        """Atomically promote a complete part file to a ``.jsonl.gz``
        segment (deterministic bytes), then remove the part file."""
        part = self.part_path(shard)
        start, stop = self.manifest.shard_range(shard)
        expected = stop - start
        done = self.resume_shard(shard)
        if done != expected:
            raise ReproError(
                f"shard {shard} is incomplete: {done}/{expected} records"
            )
        raw = part.read_bytes()
        target = self.segment_path(shard)
        tmp = target.with_suffix(".gz.tmp")
        tmp.write_bytes(_deterministic_gzip(raw))
        tmp.replace(target)
        part.unlink()
        return target

    # --------------------------------------------------------------- readers

    def iter_shard_records(self, shard: int) -> Iterator[dict]:
        """Stream one finalized shard's records (decoded dicts)."""
        path = self.segment_path(shard)
        if not path.exists():
            if self.is_compacted():
                start, stop = self.manifest.shard_range(shard)
                for record in self.iter_records():
                    if start <= record["index"] < stop:
                        yield record
                return
            raise ReproError(f"shard {shard} has no finalized segment")
        with gzip.open(path, "rb") as fh:
            for line in fh:
                payload = _decode_line(line)
                if payload is None:
                    raise ReproError(
                        f"corrupt record in {path.name} (torn line?)"
                    )
                yield payload

    def iter_records(self) -> Iterator[dict]:
        """Stream every record in trial order (compacted or per-shard)."""
        if self.is_compacted():
            with gzip.open(self.compacted_path, "rb") as fh:
                for line in fh:
                    payload = _decode_line(line)
                    if payload is None:
                        raise ReproError(
                            f"corrupt record in {self.compacted_path.name}"
                        )
                    yield payload
            return
        for shard in self.manifest.shard_ids():
            yield from self.iter_shard_records(shard)

    def shard_bytes(self, shard: int) -> bytes:
        """The finalized segment's raw bytes (identity checks)."""
        return self.segment_path(shard).read_bytes()

    # ------------------------------------------------------------ compaction

    def compact(self, keep_shards: bool = False) -> pathlib.Path:
        """Merge every finalized shard segment into one compacted stream.

        Requires all shards complete.  The compacted file is the in-order
        concatenation of the shards' *uncompressed* record lines,
        re-gzipped deterministically — so its bytes too are a pure
        function of the manifest.  Per-shard segments are removed unless
        ``keep_shards`` (record bytes are preserved verbatim either way).
        """
        if self.is_compacted():
            return self.compacted_path
        if not self.all_complete():
            missing = [
                s
                for s in self.manifest.shard_ids()
                if not self.segment_path(s).exists()
            ]
            raise ReproError(
                f"cannot compact: {len(missing)} shards incomplete "
                f"(first missing: {missing[0]})"
            )
        import shutil

        # Streamed, not buffered: zlib's output is a function of the byte
        # stream alone (chunk boundaries never flush), so feeding the
        # decompressed segments through one pinned-header GzipFile yields
        # the same deterministic bytes as compressing a single buffer —
        # in O(chunk) memory instead of O(sweep).
        tmp = self.compacted_path.with_suffix(".gz.tmp")
        with open(tmp, "wb") as raw_out:
            with gzip.GzipFile(
                filename="", mode="wb", fileobj=raw_out, mtime=0,
                compresslevel=GZIP_LEVEL,
            ) as zf:
                for shard in self.manifest.shard_ids():
                    with gzip.open(self.segment_path(shard), "rb") as fh:
                        shutil.copyfileobj(fh, zf)
        tmp.replace(self.compacted_path)
        if not keep_shards:
            for shard in self.manifest.shard_ids():
                self.segment_path(shard).unlink()
        return self.compacted_path

    # ------------------------------------------------------------- aggregate

    def write_aggregate(self, aggregate: dict) -> pathlib.Path:
        self.aggregate_path.write_text(
            json.dumps(aggregate, indent=1, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return self.aggregate_path

    def load_aggregate(self) -> Optional[dict]:
        if not self.aggregate_path.exists():
            return None
        return json.loads(self.aggregate_path.read_text(encoding="utf-8"))


def open_store(root: PathLike, manifest: SweepManifest) -> SweepStore:
    """Create (or re-open) the store for ``manifest`` under ``root``."""
    store = SweepStore(root, manifest)
    store.init()
    return store
