"""repro — Õ(Congestion + Dilation) hot-potato routing on leveled networks.

A from-scratch reproduction of Costas Busch's SPAA 2002 paper: the
frontier-frame hot-potato routing algorithm, the leveled-network and
bufferless-simulation substrates it runs on, the baselines it is compared
against, and the experiment harness that validates the paper's theorems
empirically.

Quick start::

    from repro import quick_route
    result = quick_route(seed=0)
    print(result.summary())

or assemble the pieces explicitly::

    from repro.net import butterfly
    from repro.workloads import butterfly_workloads
    from repro.paths import select_paths_bit_fixing
    from repro.core import AlgorithmParams, FrontierFrameRouter
    from repro.sim import Engine

    net = butterfly(5)
    wl = butterfly_workloads.random_end_to_end(net, seed=1)
    problem = select_paths_bit_fixing(net, wl.endpoints)
    params = AlgorithmParams.practical(problem.congestion, net.depth,
                                       problem.num_packets)
    engine = Engine(problem, FrontierFrameRouter(params, seed=2), seed=3)
    print(engine.run(params.total_steps).summary())
"""

from ._version import __version__
from . import net, paths, sim, core, baselines, workloads, analysis, viz, experiments, telemetry
from .errors import (
    ReproError,
    TopologyError,
    PathError,
    WorkloadError,
    SimulationError,
    CapacityError,
    ParameterError,
    InvariantViolation,
)
from .types import Direction, MoveKind, NodeId, EdgeId, PacketId


def quick_route(seed: int = 0, dim: int = 4):
    """Route random butterfly traffic with the paper's algorithm.

    One-call demo used by the README; returns the
    :class:`~repro.sim.RunResult`.
    """
    from .experiments import butterfly_random_instance, run_frontier_trial

    problem = butterfly_random_instance(dim, seed)
    return run_frontier_trial(problem, seed=seed).result


__all__ = [
    "__version__",
    "net",
    "paths",
    "sim",
    "core",
    "baselines",
    "workloads",
    "analysis",
    "viz",
    "experiments",
    "telemetry",
    "ReproError",
    "TopologyError",
    "PathError",
    "WorkloadError",
    "SimulationError",
    "CapacityError",
    "ParameterError",
    "InvariantViolation",
    "Direction",
    "MoveKind",
    "NodeId",
    "EdgeId",
    "PacketId",
    "quick_route",
]
