"""Command-line interface: ``python -m repro <command>``.

Four subcommands cover the interactive workflows:

* ``topo``    — build a named topology, validate it, print its profile;
* ``params``  — show the algorithm parameters (practical and theory-exact)
  for a given (C, L, N);
* ``frames``  — render the Figure-2 film strip for a parameterization;
* ``route``   — build an instance, route it with a chosen router, print
  the result summary (optionally with the invariant audit).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .analysis import format_kv
from .core import (
    AlgorithmParams,
    FrameGeometry,
    FrontierFrameRouter,
    audited_run,
    compute_theory_values,
)
from .errors import ReproError
from .net import (
    LeveledNetwork,
    butterfly,
    complete_binary_tree,
    fat_tree,
    hypercube,
    line,
    mesh,
    omega_network,
    profile,
    random_leveled,
    validate_leveled,
)
from .paths import (
    RoutingProblem,
    select_paths_bit_fixing,
    select_paths_bottleneck,
    select_paths_random,
)
from .sim import Engine
from .workloads import (
    butterfly_workloads,
    hotspot,
    random_many_to_one,
)


def build_topology(spec: str, seed: int = 0) -> LeveledNetwork:
    """Parse ``name:arg1:arg2`` topology specs.

    Examples: ``butterfly:5``, ``mesh:8x8``, ``hypercube:5``, ``line:20``,
    ``omega:4``, ``fattree:4``, ``btree:4``, ``random:6x20`` (width x depth).
    """
    name, _, rest = spec.partition(":")
    name = name.lower()
    try:
        if name == "butterfly":
            return butterfly(int(rest))
        if name == "mesh":
            rows, _, cols = rest.partition("x")
            return mesh(int(rows), int(cols or rows))
        if name == "hypercube":
            return hypercube(int(rest))
        if name == "line":
            return line(int(rest))
        if name == "omega":
            return omega_network(int(rest))
        if name == "fattree":
            return fat_tree(int(rest))
        if name == "btree":
            return complete_binary_tree(int(rest))
        if name == "random":
            width, _, depth = rest.partition("x")
            return random_leveled(
                [int(width)] * (int(depth) + 1),
                edge_probability=0.5,
                seed=seed,
                min_out_degree=2,
                min_in_degree=2,
            )
    except ValueError as exc:
        raise SystemExit(f"bad topology spec {spec!r}: {exc}") from exc
    raise SystemExit(
        f"unknown topology {name!r} (try butterfly:5, mesh:8x8, "
        "hypercube:5, line:20, omega:4, fattree:4, btree:4, random:6x20)"
    )


def build_problem(
    net: LeveledNetwork, workload: str, packets: Optional[int], seed: int
) -> RoutingProblem:
    """Build a routing problem from a workload name."""
    if workload == "random":
        count = packets or max(2, net.num_nodes // 8)
        wl = random_many_to_one(net, count, seed=seed)
        return select_paths_random(net, wl.endpoints, seed=seed + 1)
    if workload == "bottleneck":
        count = packets or max(2, net.num_nodes // 8)
        wl = random_many_to_one(net, count, seed=seed)
        return select_paths_bottleneck(net, wl.endpoints, seed=seed + 1)
    if workload == "hotspot":
        count = packets or max(2, net.num_nodes // 8)
        wl = hotspot(net, count, seed=seed)
        return select_paths_random(net, wl.endpoints, seed=seed + 1)
    if workload == "permutation":
        wl = butterfly_workloads.full_permutation(net, seed=seed)
        return select_paths_bit_fixing(net, wl.endpoints)
    if workload == "hotrow":
        count = packets or len(net.nodes_at_level(0)) // 2
        wl = butterfly_workloads.hot_row(net, count, seed=seed)
        return select_paths_bit_fixing(net, wl.endpoints)
    raise SystemExit(
        f"unknown workload {workload!r} (random, bottleneck, hotspot, "
        "permutation, hotrow)"
    )


def cmd_topo(args: argparse.Namespace) -> int:
    net = build_topology(args.spec, seed=args.seed)
    report = validate_leveled(net)
    prof = profile(net)
    print(net.describe())
    print(f"validation : {report.summary()}")
    print(
        f"degrees    : min {prof.min_degree}, max {prof.max_degree}, "
        f"mean {prof.mean_degree:.2f}"
    )
    sizes = prof.level_sizes
    shown = (
        " ".join(map(str, sizes))
        if len(sizes) <= 24
        else " ".join(map(str, sizes[:24])) + " ..."
    )
    print(f"level sizes: {shown}")
    return 0 if report.ok else 1


def cmd_params(args: argparse.Namespace) -> int:
    practical = AlgorithmParams.practical(args.C, args.L, args.N)
    print(format_kv(practical.describe(), title="practical parameters"))
    tv = compute_theory_values(args.C, args.L, args.N)
    print()
    print(
        format_kv(
            {
                "a": tv.a,
                "m": tv.m,
                "q": tv.q,
                "w": tv.w,
                "p0": tv.p0,
                "p1": tv.p1,
                "aC (frontier sets)": tv.a * args.C,
                "amC+L (phases)": tv.total_phases,
                "total steps": tv.total_steps,
                "steps / (C+L)": tv.total_steps / (args.C + args.L),
            },
            title="Section 2.1 theory-exact values (reconstructed)",
        )
    )
    return 0


def cmd_frames(args: argparse.Namespace) -> int:
    from .viz import frame_film_strip

    params = AlgorithmParams.practical(
        args.C, args.L, args.N, m=args.m, w=args.w
    )
    geometry = FrameGeometry(params)
    print(
        f"frames: {params.num_sets} sets, m={params.m}, L={args.L} "
        f"({params.total_phases} phases)"
    )
    print(frame_film_strip(geometry, 0, min(args.phases, params.total_phases)))
    return 0


def cmd_route(args: argparse.Namespace) -> int:
    net = build_topology(args.net, seed=args.seed)
    problem = build_problem(net, args.workload, args.packets, args.seed)
    print(f"instance: {problem.describe()}")
    if args.router == "frontier":
        params = AlgorithmParams.practical(
            max(1, problem.congestion), net.depth, problem.num_packets
        )
        router = FrontierFrameRouter(params, seed=args.seed + 2)
        engine = Engine(problem, router, seed=args.seed + 3)
        if args.audit:
            result, report = audited_run(engine)
            print(result.summary())
            print(f"audit: {report.summary()}")
            return 0 if (result.all_delivered and report.ok) else 1
        result = engine.run(params.total_steps)
    else:
        from .baselines import (
            GreedyHotPotatoRouter,
            NaivePathRouter,
            RandomizedGreedyRouter,
            StoreForwardScheduler,
        )
        from .experiments import baseline_budget

        if args.router == "storeforward":
            result = StoreForwardScheduler(problem, seed=args.seed).run()
        else:
            router = {
                "naive": lambda: NaivePathRouter(),
                "greedy": lambda: GreedyHotPotatoRouter(seed=args.seed + 2),
                "randgreedy": lambda: RandomizedGreedyRouter(seed=args.seed + 2),
            }.get(args.router, lambda: None)()
            if router is None:
                raise SystemExit(
                    f"unknown router {args.router!r} (frontier, naive, "
                    "greedy, randgreedy, storeforward)"
                )
            engine = Engine(problem, router, seed=args.seed + 3)
            result = engine.run(baseline_budget(problem))
    print(result.summary())
    return 0 if result.all_delivered else 1


def cmd_dynamic(args: argparse.Namespace) -> int:
    from .dynamic import (
        DynamicGreedyRouter,
        DynamicNaiveRouter,
        arrivals_to_problem,
        bernoulli_arrivals,
        dynamic_stats,
        offered_load,
    )

    net = build_topology(args.net, seed=args.seed)
    arrivals = bernoulli_arrivals(
        net, args.rate, horizon=args.horizon, seed=args.seed
    )
    if not arrivals:
        print("no arrivals generated (rate too low?)")
        return 1
    problem, times = arrivals_to_problem(net, arrivals, seed=args.seed + 1)
    if args.router == "greedy":
        router = DynamicGreedyRouter(times, seed=args.seed + 2)
    else:
        router = DynamicNaiveRouter(times)
    engine = Engine(problem, router, seed=args.seed + 3)
    result = engine.run(args.horizon + args.drain)
    stats = dynamic_stats(result, times, [len(s.path) for s in problem])
    load = offered_load(net, arrivals, args.horizon)
    print(f"network   : {net.describe()}")
    print(
        f"traffic   : rate {args.rate}/source/step over {args.horizon} "
        f"steps -> {len(arrivals)} packets, utilization {load:.2f}"
    )
    print(
        f"outcome   : delivered {stats.delivered}/{stats.offered}"
        f" ({'drained' if stats.drained else 'NOT drained'})"
    )
    print(
        f"latency   : mean {stats.mean_latency:.1f}, p50 "
        f"{stats.p50_latency:.0f}, p95 {stats.p95_latency:.0f}, max "
        f"{stats.max_latency:.0f} (hop stretch {stats.mean_hop_stretch:.2f})"
    )
    print(f"deflection: {result.total_deflections} total, "
          f"{result.unsafe_deflections} unsafe")
    return 0 if stats.drained else 1


def _benchmarks_dir():
    import pathlib

    # repo layout: src/repro/cli.py -> repo root / benchmarks
    root = pathlib.Path(__file__).resolve().parents[2]
    candidate = root / "benchmarks"
    return candidate if candidate.is_dir() else None


def _sweep_problem(net_spec: str, workload: str, packets: Optional[int], seed: int):
    """Build one sweep instance (module-level so process pools can pickle a
    ``functools.partial`` of it)."""
    net = build_topology(net_spec, seed=seed)
    return build_problem(net, workload, packets, seed)


def cmd_sweep(args: argparse.Namespace) -> int:
    import functools
    import time

    from .experiments import derive_sweep_seeds, run_frontier_trials

    if args.trials < 1:
        print("error: --trials must be at least 1", file=sys.stderr)
        return 2
    factory = functools.partial(
        _sweep_problem, args.net, args.workload, args.packets
    )
    seeds = derive_sweep_seeds(args.seed, args.trials)
    start = time.perf_counter()
    records = run_frontier_trials(
        factory, seeds, workers=args.workers, audit=args.audit
    )
    elapsed = time.perf_counter() - start
    delivered = sum(1 for r in records if r.result.all_delivered)
    audits_ok = all(r.audit is None or r.audit.ok for r in records)
    makespans = sorted(r.result.makespan for r in records)
    ratios = [
        r.result.makespan / max(1, r.result.congestion + r.result.dilation)
        for r in records
    ]
    print(
        f"sweep     : {args.trials} frontier trials on {args.net} / "
        f"{args.workload} (workers={args.workers})"
    )
    print(
        f"delivered : {delivered}/{len(records)} trials"
        + ("" if not args.audit else f", invariants {'OK' if audits_ok else 'VIOLATED'}")
    )
    print(
        f"makespan  : min {makespans[0]}, median "
        f"{makespans[len(makespans) // 2]}, max {makespans[-1]} "
        f"(T/(C+L) mean {sum(ratios) / len(ratios):.1f})"
    )
    print(
        f"throughput: {len(records) / elapsed:.2f} trials/sec "
        f"({elapsed:.2f}s wall)"
    )
    ok = delivered == len(records) and audits_ok
    return 0 if ok else 1


def cmd_experiment(args: argparse.Namespace) -> int:
    import os
    import pathlib
    import subprocess

    bench_dir = _benchmarks_dir()
    if bench_dir is None:
        print(
            "error: benchmarks/ not found (experiments run from a source "
            "checkout)",
            file=sys.stderr,
        )
        return 2
    available = sorted(
        p.name[len("bench_"):].split("_")[0]
        for p in bench_dir.glob("bench_*.py")
        if p.name != "bench_engine_throughput.py"
    )
    if args.experiment_id is None:
        print("available experiments:", ", ".join(available))
        print("run one with: python -m repro experiment <id>")
        return 0
    exp = args.experiment_id.lower()
    matches = list(bench_dir.glob(f"bench_{exp}_*.py"))
    if not matches:
        print(
            f"error: no benchmark for experiment {exp!r} "
            f"(available: {', '.join(available)})",
            file=sys.stderr,
        )
        return 2
    command = [
        sys.executable,
        "-m",
        "pytest",
        str(matches[0]),
        "--benchmark-only",
        "-q",
        "-s",
    ]
    # The child pytest must import ``repro`` even when the package is not
    # installed: prepend the source tree to its PYTHONPATH.
    env = os.environ.copy()
    src_dir = pathlib.Path(__file__).resolve().parents[1]
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        str(src_dir) if not existing else str(src_dir) + os.pathsep + existing
    )
    if args.workers is not None:
        from .experiments import WORKERS_ENV_VAR

        env[WORKERS_ENV_VAR] = str(args.workers)
    print("running:", " ".join(command))
    return subprocess.call(command, cwd=str(bench_dir), env=env)


def make_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hot-potato routing on leveled networks (Busch, SPAA'02)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_topo = sub.add_parser("topo", help="build and validate a topology")
    p_topo.add_argument("spec", help="e.g. butterfly:5, mesh:8x8, random:6x20")
    p_topo.add_argument("--seed", type=int, default=0)
    p_topo.set_defaults(func=cmd_topo)

    p_params = sub.add_parser("params", help="show algorithm parameters")
    p_params.add_argument("C", type=int, help="congestion")
    p_params.add_argument("L", type=int, help="network depth")
    p_params.add_argument("N", type=int, help="number of packets")
    p_params.set_defaults(func=cmd_params)

    p_frames = sub.add_parser("frames", help="render the Figure-2 film strip")
    p_frames.add_argument("C", type=int)
    p_frames.add_argument("L", type=int)
    p_frames.add_argument("N", type=int)
    p_frames.add_argument("--m", type=int, default=None)
    p_frames.add_argument("--w", type=int, default=None)
    p_frames.add_argument("--phases", type=int, default=24)
    p_frames.set_defaults(func=cmd_frames)

    p_route = sub.add_parser("route", help="route one instance")
    p_route.add_argument("--net", default="butterfly:5")
    p_route.add_argument(
        "--workload",
        default="random",
        help="random | bottleneck | hotspot | permutation | hotrow",
    )
    p_route.add_argument(
        "--router",
        default="frontier",
        help="frontier | naive | greedy | randgreedy | storeforward",
    )
    p_route.add_argument("--packets", type=int, default=None)
    p_route.add_argument("--seed", type=int, default=0)
    p_route.add_argument(
        "--audit", action="store_true", help="audit invariants I_a..I_f"
    )
    p_route.set_defaults(func=cmd_route)

    p_dyn = sub.add_parser(
        "dynamic", help="continuous-injection routing (T9-style)"
    )
    p_dyn.add_argument("--net", default="butterfly:4")
    p_dyn.add_argument("--rate", type=float, default=0.3)
    p_dyn.add_argument("--horizon", type=int, default=200)
    p_dyn.add_argument("--drain", type=int, default=50000)
    p_dyn.add_argument("--router", default="naive", help="naive | greedy")
    p_dyn.add_argument("--seed", type=int, default=0)
    p_dyn.set_defaults(func=cmd_dynamic)

    p_sweep = sub.add_parser(
        "sweep", help="run a seeded multi-trial frontier sweep"
    )
    p_sweep.add_argument("--net", default="butterfly:4")
    p_sweep.add_argument(
        "--workload",
        default="random",
        help="random | bottleneck | hotspot | permutation | hotrow",
    )
    p_sweep.add_argument("--packets", type=int, default=None)
    p_sweep.add_argument("--trials", type=int, default=8)
    p_sweep.add_argument(
        "--workers",
        type=int,
        default=1,
        help="trial processes (1 = serial; results are identical either way)",
    )
    p_sweep.add_argument("--seed", type=int, default=0)
    p_sweep.add_argument(
        "--audit", action="store_true", help="audit invariants I_a..I_f"
    )
    p_sweep.set_defaults(func=cmd_sweep)

    p_exp = sub.add_parser(
        "experiment", help="regenerate a DESIGN.md experiment table"
    )
    p_exp.add_argument(
        "experiment_id",
        nargs="?",
        default=None,
        help="e.g. t1, t4, a2, e1; omit to list available experiments",
    )
    p_exp.add_argument(
        "--workers",
        type=int,
        default=None,
        help="parallel trial processes for benches that sweep seeds "
        "(exported as $REPRO_BENCH_WORKERS)",
    )
    p_exp.set_defaults(func=cmd_experiment)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = make_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
