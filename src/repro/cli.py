"""Command-line interface: ``python -m repro <command>``.

The interactive workflows all funnel into the scenario layer
(:mod:`repro.scenarios`): ``route``, ``sweep``, and ``dynamic`` translate
their flags into a :class:`~repro.scenarios.RunSpec` and dispatch it, and
the spec-native commands expose the catalog directly:

* ``topo``    — build a named topology, validate it, print its profile;
* ``params``  — show the algorithm parameters (practical and theory-exact)
  for a given (C, L, N);
* ``frames``  — render the Figure-2 film strip for a parameterization;
* ``route``   — build an instance, route it with a chosen backend;
* ``sweep``   — seeded multi-trial frontier sweep (optionally parallel);
* ``dynamic`` — continuous-injection routing (T9-style);
* ``list``    — show the catalog specs and every registered component;
* ``spec``    — print (or write) a catalog spec as JSON;
* ``run``     — run a spec from a JSON file, optionally result-cached,
  with ``--trace``/``--telemetry`` observability;
* ``serve``   — open-loop streaming service: a spec with an ``arrival``
  process in, windowed live metrics (JSONL or SSE) out;
* ``report``  — render a run summary from a spec, cached result, result
  file, or JSONL trace — without re-running anything.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, Optional, Sequence, Tuple

from .analysis import format_kv
from .core import AlgorithmParams, FrameGeometry, compute_theory_values
from .errors import ReproError, WorkloadError
from .net import LeveledNetwork, profile, validate_leveled
from .paths import RoutingProblem
from .scenarios import (
    PATH_SELECTORS,
    TOPOLOGIES,
    WORKLOADS,
    RunSpec,
    build_network,
    load_spec,
    run_cached,
    run_trial,
    save_spec,
)
from .scenarios.registry import UnknownNameError

# ------------------------------------------------------- topology spec syntax
#
# ``name:arg1:arg2`` shorthand over the topology registry.  Each parser maps
# the positional ``rest`` onto the registered builder's keyword parameters;
# registry names without a parser here are reachable via ``repro run --spec``.


def _parse_grid(rest: str) -> Tuple[int, int]:
    first, _, second = rest.partition("x")
    return int(first), int(second or first)


def _topo_args_butterfly(rest: str) -> dict:
    return {"dim": int(rest)}


def _topo_args_mesh(rest: str) -> dict:
    rows, cols = _parse_grid(rest)
    return {"rows": rows, "cols": cols}


def _topo_args_line(rest: str) -> dict:
    return {"length": int(rest)}


def _topo_args_height(rest: str) -> dict:
    return {"height": int(rest)}


def _topo_args_diamond(rest: str) -> dict:
    width, depth = _parse_grid(rest)
    return {"width": width, "depth": depth}


def _topo_args_random(rest: str) -> dict:
    width, _, depth = rest.partition("x")
    return {"width": int(width), "depth": int(depth)}


_TOPOLOGY_ARG_PARSERS = {
    "butterfly": _topo_args_butterfly,
    "hypercube": _topo_args_butterfly,
    "omega": _topo_args_butterfly,
    "benes": _topo_args_butterfly,
    "mesh": _topo_args_mesh,
    "line": _topo_args_line,
    "fattree": _topo_args_height,
    "fat_tree": _topo_args_height,
    "btree": _topo_args_height,
    "diamond": _topo_args_diamond,
    "random": _topo_args_random,
    "random_leveled": _topo_args_random,
}

#: Topologies whose builder actually consumes the seed; only these carry an
#: explicit seed in the specs the CLI constructs.
_SEEDED_TOPOLOGIES = frozenset({"random", "random_leveled"})


def parse_topology(spec: str, seed: int = 0) -> Tuple[str, dict]:
    """Parse ``name:arg1:arg2`` shorthand into (registry name, params).

    Examples: ``butterfly:5``, ``mesh:8x8``, ``hypercube:5``, ``line:20``,
    ``omega:4``, ``fattree:4``, ``btree:4``, ``random:6x20`` (width x depth).
    """
    name, _, rest = spec.partition(":")
    name = name.lower()
    parser = _TOPOLOGY_ARG_PARSERS.get(name)
    if parser is None:
        # Unknown names get the registry's suggestion-bearing error; names
        # that are registered but take structured parameters (multidim,
        # layered, ...) are only reachable through spec files.
        TOPOLOGIES.get(name)
        raise SystemExit(
            f"topology {name!r} takes structured parameters; run it via "
            "'repro run --spec' instead"
        )
    try:
        params = parser(rest)
    except ValueError as exc:
        raise SystemExit(f"bad topology spec {spec!r}: {exc}") from exc
    if name in _SEEDED_TOPOLOGIES:
        params["seed"] = seed
    return name, params


def build_topology(spec: str, seed: int = 0) -> LeveledNetwork:
    """Materialize a ``name:args`` topology spec through the registry."""
    name, params = parse_topology(spec, seed=seed)
    builder = TOPOLOGIES.get(name)
    params.setdefault("seed", seed)
    return builder(**params)


# -------------------------------------------------------- workload shorthand
#
# Legacy CLI workload names -> (workload registry name, selector registry
# name).  Seeds follow the historical convention: the workload draws from
# ``seed`` and the selector from ``seed + 1``.

_CLI_WORKLOADS: Dict[str, Tuple[str, str]] = {
    "random": ("random_many_to_one", "random"),
    "bottleneck": ("random_many_to_one", "bottleneck"),
    "hotspot": ("hotspot", "random"),
    "permutation": ("bf_permutation", "bit_fixing"),
    "hotrow": ("bf_hot_row", "bit_fixing"),
}


def _workload_pair(workload: str) -> Tuple[str, str]:
    try:
        return _CLI_WORKLOADS[workload]
    except KeyError:
        raise UnknownNameError("workload", workload, _CLI_WORKLOADS) from None


def _workload_params(
    net: Optional[LeveledNetwork], workload: str, packets: Optional[int]
) -> dict:
    params: dict = {}
    if workload == "hotrow" and packets is None and net is not None:
        # The historical CLI default: half the input rows.
        packets = len(net.nodes_at_level(0)) // 2
    if packets is not None and workload != "permutation":
        params["num_packets"] = packets
    return params


def build_problem(
    net: LeveledNetwork, workload: str, packets: Optional[int], seed: int
) -> RoutingProblem:
    """Build a routing problem from a legacy CLI workload name."""
    workload_name, selector_name = _workload_pair(workload)
    workload_fn = WORKLOADS.get(workload_name)
    selector_fn = PATH_SELECTORS.get(selector_name)
    params = _workload_params(net, workload, packets)
    built = workload_fn(net, seed=seed, **params)
    return selector_fn(net, built.endpoints, seed=seed + 1)


def _cli_spec(
    net_arg: str,
    workload: str,
    packets: Optional[int],
    seed: int,
    backend: str,
    backend_params: Optional[dict] = None,
    net: Optional[LeveledNetwork] = None,
) -> RunSpec:
    """Translate route/sweep flags into a dispatchable spec.

    Component seeds are pinned explicitly (workload ``seed``, selector
    ``seed + 1``) so the spec reproduces the historical CLI byte-for-byte.
    """
    topology, topology_params = parse_topology(net_arg, seed=seed)
    workload_name, selector_name = _workload_pair(workload)
    workload_params = _workload_params(net, workload, packets)
    workload_params["seed"] = seed
    return RunSpec(
        name=f"route({net_arg}, {workload}, {backend})",
        topology=topology,
        topology_params=topology_params,
        workload=workload_name,
        workload_params=workload_params,
        selector=selector_name,
        selector_params={"seed": seed + 1},
        backend=backend,
        backend_params=backend_params or {},
        seed=seed,
    )


# ------------------------------------------------------------------ commands


def cmd_topo(args: argparse.Namespace) -> int:
    net = build_topology(args.spec, seed=args.seed)
    report = validate_leveled(net)
    prof = profile(net)
    print(net.describe())
    print(f"validation : {report.summary()}")
    print(
        f"degrees    : min {prof.min_degree}, max {prof.max_degree}, "
        f"mean {prof.mean_degree:.2f}"
    )
    sizes = prof.level_sizes
    shown = (
        " ".join(map(str, sizes))
        if len(sizes) <= 24
        else " ".join(map(str, sizes[:24])) + " ..."
    )
    print(f"level sizes: {shown}")
    return 0 if report.ok else 1


def cmd_params(args: argparse.Namespace) -> int:
    practical = AlgorithmParams.practical(args.C, args.L, args.N)
    print(format_kv(practical.describe(), title="practical parameters"))
    tv = compute_theory_values(args.C, args.L, args.N)
    print()
    print(
        format_kv(
            {
                "a": tv.a,
                "m": tv.m,
                "q": tv.q,
                "w": tv.w,
                "p0": tv.p0,
                "p1": tv.p1,
                "aC (frontier sets)": tv.a * args.C,
                "amC+L (phases)": tv.total_phases,
                "total steps": tv.total_steps,
                "steps / (C+L)": tv.total_steps / (args.C + args.L),
            },
            title="Section 2.1 theory-exact values (reconstructed)",
        )
    )
    return 0


def cmd_frames(args: argparse.Namespace) -> int:
    from .viz import frame_film_strip

    params = AlgorithmParams.practical(
        args.C, args.L, args.N, m=args.m, w=args.w
    )
    geometry = FrameGeometry(params)
    print(
        f"frames: {params.num_sets} sets, m={params.m}, L={args.L} "
        f"({params.total_phases} phases)"
    )
    print(frame_film_strip(geometry, 0, min(args.phases, params.total_phases)))
    return 0


def cmd_route(args: argparse.Namespace) -> int:
    net = build_topology(args.net, seed=args.seed)
    backend_params = {"audit": True} if args.audit else {}
    spec = _cli_spec(
        args.net,
        args.workload,
        args.packets,
        args.seed,
        backend=args.router,
        backend_params=backend_params,
        net=net,
    )
    problem = build_problem(net, args.workload, args.packets, args.seed)
    print(f"instance: {problem.describe()}")
    record = run_trial(spec, problem=problem)
    print(record.result.summary())
    if record.audit is not None:
        print(f"audit: {record.audit.summary()}")
    return 0 if record.ok else 1


def cmd_dynamic(args: argparse.Namespace) -> int:
    topology, topology_params = parse_topology(args.net, seed=args.seed)
    spec = RunSpec(
        name=f"dynamic({args.net}, {args.router})",
        topology=topology,
        topology_params=topology_params,
        workload="",
        selector="none",
        backend=f"dynamic_{args.router}",
        backend_params={
            "rate": args.rate,
            "horizon": args.horizon,
            "drain": args.drain,
        },
        seed=args.seed,
    )
    net = build_network(spec)
    try:
        record = run_trial(spec)
    except WorkloadError as exc:
        print(exc)
        return 1
    result = record.result
    extra = result.extra
    offered = int(extra["offered"])
    delivered = int(extra["delivered"])
    drained = extra["drained"] == 1.0
    print(f"network   : {net.describe()}")
    print(
        f"traffic   : rate {args.rate}/source/step over {args.horizon} "
        f"steps -> {offered} packets, utilization {extra['offered_load']:.2f}"
    )
    print(
        f"outcome   : delivered {delivered}/{offered}"
        f" ({'drained' if drained else 'NOT drained'})"
    )
    print(
        f"latency   : mean {extra['mean_latency']:.1f}, p50 "
        f"{extra['p50_latency']:.0f}, p95 {extra['p95_latency']:.0f}, max "
        f"{extra['max_latency']:.0f} (hop stretch {extra['mean_hop_stretch']:.2f})"
    )
    print(f"deflection: {result.total_deflections} total, "
          f"{result.unsafe_deflections} unsafe")
    return 0 if drained else 1


def _benchmarks_dir():
    import pathlib

    # repo layout: src/repro/cli.py -> repo root / benchmarks
    root = pathlib.Path(__file__).resolve().parents[2]
    candidate = root / "benchmarks"
    return candidate if candidate.is_dir() else None


def _parse_shard_ids(text: str) -> list:
    """Parse ``--shard`` syntax: comma-separated ids and ranges (``0,2,5-7``)."""
    shards = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        if "-" in token:
            lo, hi = token.split("-", 1)
            shards.extend(range(int(lo), int(hi) + 1))
        else:
            shards.append(int(token))
    return shards


def _manifest_base_spec(args: argparse.Namespace, packets, backend_params):
    """The manifest's base spec for the sweep-store path.

    ``--fixed-problem`` keeps :func:`_cli_spec`'s explicitly pinned
    component seeds (manifest trials then reproduce the legacy
    :func:`~repro.experiments.sweep_specs` bytes exactly).  Otherwise the
    explicit component seeds are stripped so each trial's *master* seed
    derives its own topology/workload/selector streams — one independent
    instance per trial, the manifest-native form of the legacy per-seed
    sweep (equivalent design, different seed derivation).
    """
    import dataclasses

    base = _cli_spec(
        args.net,
        args.workload,
        packets,
        args.seed,
        backend="frontier",
        backend_params=backend_params,
    )
    if args.fixed_problem:
        return base
    strip = lambda params: {k: v for k, v in params.items() if k != "seed"}  # noqa: E731
    return dataclasses.replace(
        base,
        topology_params=strip(base.topology_params),
        workload_params=strip(base.workload_params),
        selector_params=strip(base.selector_params),
    )


def _cmd_sweep_store(args: argparse.Namespace, packets, backend_params) -> int:
    """The sharded sweep engine behind ``repro sweep --store/--manifest``."""
    import json
    import pathlib

    from .sweeps import (
        DEFAULT_SHARD_SIZE,
        SweepHeartbeat,
        SweepManifest,
        load_manifest,
        open_store,
        print_sweep_report,
        run_sweep,
        save_manifest,
    )

    manifest_path = pathlib.Path(args.manifest) if args.manifest else None
    if manifest_path is not None and manifest_path.exists():
        manifest = load_manifest(manifest_path)
        if args.shard_size is not None and args.shard_size != manifest.shard_size:
            print(
                f"error: --shard-size {args.shard_size} conflicts with "
                f"manifest shard_size {manifest.shard_size}",
                file=sys.stderr,
            )
            return 2
    else:
        base = _manifest_base_spec(args, packets, backend_params)
        manifest = SweepManifest.from_base(
            base,
            num_trials=args.trials,
            shard_size=args.shard_size or DEFAULT_SHARD_SIZE,
            pin=args.fixed_problem,
        )
        if manifest_path is not None:
            save_manifest(manifest, manifest_path)
            print(f"manifest  : wrote {manifest_path}")
    print(f"manifest  : {manifest.describe()}")
    if args.store is None:
        # Manifest-only invocation: emit/describe and stop.
        return 0

    shards = _parse_shard_ids(args.shard) if args.shard else None
    heartbeat = None
    if args.progress:
        if args.progress == "-":
            sink = lambda record: print(  # noqa: E731
                json.dumps(record, sort_keys=True), file=sys.stderr
            )
        else:
            sink = args.progress
        heartbeat = SweepHeartbeat(sink, total=manifest.num_trials)

    store = open_store(args.store, manifest)
    outcome = run_sweep(
        manifest,
        store,
        workers=args.workers,
        shards=shards,
        resume=args.resume,
        telemetry=args.telemetry,
        cache=args.cache,
        heartbeat=heartbeat,
        compact=not args.no_compact,
    )
    print(f"store     : {store.dir}")
    print_sweep_report(outcome)
    if not outcome.complete:
        # A partial contribution (restricted shards, leases held elsewhere)
        # is success: another invocation finishes the manifest.
        return 0
    aggregate = outcome.aggregate or {}
    return 0 if aggregate.get("delivered_all") == aggregate.get("trials") else 1


def cmd_sweep(args: argparse.Namespace) -> int:
    import time

    from .experiments import derive_sweep_seeds, run_spec_trials

    if args.trials < 1:
        print("error: --trials must be at least 1", file=sys.stderr)
        return 2
    packets = args.packets
    if args.workload == "hotrow" and packets is None:
        # Resolve the net-dependent default once: hot-row only applies to
        # deterministic (butterfly) topologies, where it is seed-invariant.
        probe = build_topology(args.net, seed=args.seed)
        packets = len(probe.nodes_at_level(0)) // 2
    backend_params = {"audit": True} if args.audit else {}
    if args.store or args.manifest:
        return _cmd_sweep_store(args, packets, backend_params)
    if args.fixed_problem:
        # Monte Carlo over the algorithm's coins: one instance, many
        # routings (the shape of the paper's probabilistic guarantees).
        # All trials share a scenario hash, so batched execution builds
        # the problem once per worker.
        from .experiments import sweep_specs

        base = _cli_spec(
            args.net,
            args.workload,
            packets,
            args.seed,
            backend="frontier",
            backend_params=backend_params,
        )
        specs = sweep_specs(base, args.trials)
    else:
        specs = [
            _cli_spec(
                args.net,
                args.workload,
                packets,
                seed,
                backend="frontier",
                backend_params=backend_params,
            )
            for seed in derive_sweep_seeds(args.seed, args.trials)
        ]
    progress = None
    if args.telemetry:

        def progress(done, total, record):
            print(
                f"  trial {done}/{total}: T={record.result.makespan} "
                f"({'ok' if record.result.all_delivered else 'incomplete'})",
                file=sys.stderr,
            )

    start = time.perf_counter()
    records = run_spec_trials(
        specs,
        workers=args.workers,
        telemetry=args.telemetry,
        progress=progress,
    )
    elapsed = time.perf_counter() - start
    delivered = sum(1 for r in records if r.result.all_delivered)
    audits_ok = all(r.audit is None or r.audit.ok for r in records)
    makespans = sorted(r.result.makespan for r in records)
    ratios = [
        r.result.makespan / max(1, r.result.congestion + r.result.dilation)
        for r in records
    ]
    print(
        f"sweep     : {args.trials} frontier trials on {args.net} / "
        f"{args.workload} (workers={args.workers}"
        + (", fixed problem)" if args.fixed_problem else ")")
    )
    print(
        f"delivered : {delivered}/{len(records)} trials"
        + ("" if not args.audit else f", invariants {'OK' if audits_ok else 'VIOLATED'}")
    )
    print(
        f"makespan  : min {makespans[0]}, median "
        f"{makespans[len(makespans) // 2]}, max {makespans[-1]} "
        f"(T/(C+L) mean {sum(ratios) / len(ratios):.1f})"
    )
    print(
        f"throughput: {len(records) / elapsed:.2f} trials/sec "
        f"({elapsed:.2f}s wall)"
    )
    if args.telemetry:
        from .telemetry import aggregate_counters

        combined = aggregate_counters(
            [r.result.telemetry for r in records]
        )
        if combined is not None:
            print(
                f"telemetry : {combined['events_total']} events over "
                f"{combined['runs']} trials; deflections "
                f"{combined['deflections']['safe']} safe / "
                f"{combined['deflections']['unsafe']} unsafe; "
                f"absorptions {combined['absorptions']}; "
                f"max phases {combined['phases_seen']}"
            )
    ok = delivered == len(records) and audits_ok
    return 0 if ok else 1


def _parse_grid_values(text: str, cast) -> list:
    """Parse a tune grid flag: comma-separated values, ``default`` = None.

    ``--w-factors default,4,2`` means "the practical constructor's
    default plus explicit 4 and 2"; ``-`` is accepted as a synonym for
    ``default``.
    """
    values = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        if token.lower() in ("default", "-", "none"):
            values.append(None)
        else:
            values.append(cast(token))
    return values or [None]


def cmd_tune(args: argparse.Namespace) -> int:
    """The ``repro tune`` auto-tuner (see docs/tuning.md)."""
    import json
    import pathlib

    from .experiments import catalog_spec
    from .tuning import (
        TuningStudy,
        default_grid,
        load_study,
        print_study_report,
        run_study,
        save_study,
    )

    if args.study:
        study = load_study(args.study)
    else:
        if args.catalog:
            base = catalog_spec(args.catalog, seed=args.seed)
            if base.backend not in ("frontier", "frontier_vec"):
                print(
                    f"error: catalog entry {args.catalog!r} uses backend "
                    f"{base.backend!r}; tuning needs a frontier scenario",
                    file=sys.stderr,
                )
                return 2
        else:
            packets = args.packets
            if args.workload == "hotrow" and packets is None:
                probe = build_topology(args.net, seed=args.seed)
                packets = len(probe.nodes_at_level(0)) // 2
            base = _cli_spec(
                args.net,
                args.workload,
                packets,
                args.seed,
                backend="frontier",
            )
        candidates = default_grid(
            c_stars=_parse_grid_values(args.c_stars, float),
            ms=_parse_grid_values(args.ms, int),
            w_factors=_parse_grid_values(args.w_factors, float),
            qs=_parse_grid_values(args.qs, float),
            oversplits=_parse_grid_values(args.oversplits, float),
        )
        audit_catalog = tuple(
            token.strip()
            for token in (args.audit_catalog or "").split(",")
            if token.strip()
        )
        study = TuningStudy(
            base=base,
            candidates=tuple(candidates),
            budget=args.budget,
            rungs=args.rungs,
            eta=args.eta,
            success_threshold=args.success_threshold,
            audit_trials=args.audit_trials,
            audit_catalog=audit_catalog,
            shard_size=args.shard_size,
            name=args.name or (base.name or ""),
        )
    if args.emit_study:
        save_study(study, args.emit_study)
        print(f"study     : wrote {args.emit_study}")
    print(f"study     : {study.describe()}")
    if args.store is None:
        # Study-only invocation (mint/describe the manifest and stop) —
        # the same contract as ``sweep --manifest`` without ``--store``.
        return 0

    progress = None
    if args.progress:
        if args.progress == "-":
            progress = lambda record: print(  # noqa: E731
                json.dumps(record, sort_keys=True), file=sys.stderr
            )
        else:
            progress = args.progress
    report = run_study(
        study,
        args.store,
        resume=args.resume,
        workers=args.workers,
        progress=progress,
    )
    print_study_report(report)
    print(f"store     : {pathlib.Path(args.store)}")
    if args.report:
        pathlib.Path(args.report).write_text(
            json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"report    : wrote {args.report}")
    return 0 if report.winner is not None else 1


def cmd_experiment(args: argparse.Namespace) -> int:
    import os
    import pathlib
    import subprocess

    bench_dir = _benchmarks_dir()
    if bench_dir is None:
        print(
            "error: benchmarks/ not found (experiments run from a source "
            "checkout)",
            file=sys.stderr,
        )
        return 2
    available = sorted(
        p.name[len("bench_"):].split("_")[0]
        for p in bench_dir.glob("bench_*.py")
        if p.name != "bench_engine_throughput.py"
    )
    if args.experiment_id is None:
        print("available experiments:", ", ".join(available))
        print("run one with: python -m repro experiment <id>")
        return 0
    exp = args.experiment_id.lower()
    matches = list(bench_dir.glob(f"bench_{exp}_*.py"))
    if not matches:
        print(
            f"error: no benchmark for experiment {exp!r} "
            f"(available: {', '.join(available)})",
            file=sys.stderr,
        )
        return 2
    command = [
        sys.executable,
        "-m",
        "pytest",
        str(matches[0]),
        "--benchmark-only",
        "-q",
        "-s",
    ]
    # The child pytest must import ``repro`` even when the package is not
    # installed: prepend the source tree to its PYTHONPATH.
    env = os.environ.copy()
    src_dir = pathlib.Path(__file__).resolve().parents[1]
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        str(src_dir) if not existing else str(src_dir) + os.pathsep + existing
    )
    if args.workers is not None:
        from .experiments import WORKERS_ENV_VAR

        env[WORKERS_ENV_VAR] = str(args.workers)
    print("running:", " ".join(command))
    return subprocess.call(command, cwd=str(bench_dir), env=env)


def cmd_list(args: argparse.Namespace) -> int:
    from .experiments import CATALOG
    from .scenarios import BACKENDS

    print("catalog specs (repro spec <name> / repro run --spec):")
    for name, spec in CATALOG.items():
        workload = spec.workload or "-"
        print(
            f"  {name:24s} {spec.topology} / {workload} / {spec.selector} "
            f"-> {spec.backend}"
        )
    from .scenarios import ARRIVALS

    for title, registry in (
        ("topologies", TOPOLOGIES),
        ("workloads", WORKLOADS),
        ("arrival processes", ARRIVALS),
        ("path selectors", PATH_SELECTORS),
        ("backends", BACKENDS),
    ):
        print(f"\n{title}:")
        for name, doc in registry.describe().items():
            print(f"  {name:24s} {doc}")
    return 0


def cmd_spec(args: argparse.Namespace) -> int:
    from .experiments import catalog_spec

    spec = catalog_spec(args.name, seed=args.seed)
    if args.out:
        save_spec(spec, args.out)
        print(f"wrote {args.out} ({spec.describe()})")
    else:
        print(spec.to_json(indent=2))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    spec = load_spec(args.spec)
    print(f"spec  : {spec.describe()}")
    telemetry = args.telemetry or args.trace is not None
    profiler = None
    if args.profile is not None:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    try:
        if args.cache:
            record = run_cached(
                spec,
                cache=args.cache_dir,
                telemetry=telemetry,
                trace_path=args.trace,
            )
        else:
            record = run_trial(
                spec, telemetry=telemetry, trace_path=args.trace
            )
    finally:
        if profiler is not None:
            profiler.disable()
            profiler.dump_stats(args.profile)
    if profiler is not None:
        print(
            f"profile: wrote {args.profile} "
            f"(view with: python -m pstats {args.profile})"
        )
    if args.cache and record.cached:
        print("cache : hit")
        if args.trace is not None:
            print(
                "trace : not written (cache hit; clear the record to "
                "re-run with tracing)"
            )
    print(record.result.summary())
    if args.trace is not None and not record.cached:
        print(f"trace : wrote {args.trace}")
    if telemetry and record.result.telemetry is not None:
        counters = record.result.telemetry
        print(
            f"events: {counters['events_total']} "
            f"(deflections {counters['deflections']['safe']} safe / "
            f"{counters['deflections']['unsafe']} unsafe; "
            f"view with: python -m repro report {args.spec}"
            + (" --cache-dir ..." if args.cache_dir else "")
            + ")"
        )
    if record.audit is not None:
        print(f"audit: {record.audit.summary()}")
    return 0 if record.ok else 1


def cmd_serve(args: argparse.Namespace) -> int:
    import json

    from .errors import CapacityError
    from .scenarios import ARRIVALS
    from .telemetry import WindowedMetrics
    from .traffic import make_stream_router, run_stream

    if args.spec == "-":
        spec = RunSpec.from_json(sys.stdin.read())
    else:
        spec = load_spec(args.spec)
    if not spec.arrival:
        print(
            "error: serve requires a spec with an 'arrival' process "
            "(e.g. \"arrival\": \"bernoulli\")",
            file=sys.stderr,
        )
        return 2
    net = build_network(spec)
    source_fn = ARRIVALS.get(spec.arrival)
    aparams = dict(spec.arrival_params)
    # serve is the open-loop service: no explicit horizon means unbounded
    aparams.setdefault("horizon", None)
    aparams["seed"] = spec.arrival_seed()
    source = source_fn(net, **aparams)
    router = make_stream_router(args.router, seed=spec.seed + 2)
    max_in_flight = (
        args.max_in_flight if args.max_in_flight is not None else net.num_edges
    )

    out = open(args.out, "w", encoding="utf-8") if args.out else sys.stdout

    def emit(record: dict) -> None:
        text = json.dumps(record, sort_keys=True)
        if args.sse:
            out.write(f"data: {text}\n\n")
        else:
            out.write(text + "\n")
        out.flush()

    emit(
        {
            "kind": "serve_header",
            "spec_hash": spec.content_hash(),
            "topology": net.name,
            "arrival": spec.arrival,
            "router": args.router,
            "window": args.window,
            "max_steps": args.steps,
            "max_in_flight": max_in_flight,
        }
    )
    metrics = WindowedMetrics(window=args.window, sink=emit)
    error = None
    try:
        summary = run_stream(
            net,
            source,
            router,
            max_steps=args.steps,
            metrics=metrics,
            path_seed=spec.selector_seed(),
            engine_seed=spec.seed + 3,
            max_in_flight=max_in_flight,
        )
    except CapacityError as exc:
        error = str(exc)
        summary = None
    except BrokenPipeError:
        # The consumer went away (e.g. piped into head); a clean shutdown.
        return 0
    footer = {"kind": "serve_summary"}
    if summary is not None:
        footer.update(
            {
                "steps": summary.steps,
                "arrivals": summary.arrivals,
                "admitted": summary.admitted,
                "delivered": summary.delivered,
                "dropped": summary.dropped,
                "peak_in_flight": summary.peak_in_flight,
                "packet_slots": summary.packet_slots,
                "windows": metrics.windows_emitted,
            }
        )
    else:
        footer["error"] = error
    emit(footer)
    if out is not sys.stdout:
        out.close()
    return 0 if error is None else 1


def cmd_report(args: argparse.Namespace) -> int:
    from .telemetry import render_report, resolve_source

    source = resolve_source(args.target, cache_dir=args.cache_dir)
    print(render_report(source))
    return 0


def make_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hot-potato routing on leveled networks (Busch, SPAA'02)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_topo = sub.add_parser("topo", help="build and validate a topology")
    p_topo.add_argument("spec", help="e.g. butterfly:5, mesh:8x8, random:6x20")
    p_topo.add_argument("--seed", type=int, default=0)
    p_topo.set_defaults(func=cmd_topo)

    p_params = sub.add_parser("params", help="show algorithm parameters")
    p_params.add_argument("C", type=int, help="congestion")
    p_params.add_argument("L", type=int, help="network depth")
    p_params.add_argument("N", type=int, help="number of packets")
    p_params.set_defaults(func=cmd_params)

    p_frames = sub.add_parser("frames", help="render the Figure-2 film strip")
    p_frames.add_argument("C", type=int)
    p_frames.add_argument("L", type=int)
    p_frames.add_argument("N", type=int)
    p_frames.add_argument("--m", type=int, default=None)
    p_frames.add_argument("--w", type=int, default=None)
    p_frames.add_argument("--phases", type=int, default=24)
    p_frames.set_defaults(func=cmd_frames)

    p_route = sub.add_parser("route", help="route one instance")
    p_route.add_argument("--net", default="butterfly:5")
    p_route.add_argument(
        "--workload",
        default="random",
        help="random | bottleneck | hotspot | permutation | hotrow",
    )
    p_route.add_argument(
        "--router",
        default="frontier",
        help="a backend name: frontier | naive | greedy | randgreedy | "
        "storeforward | random_delay | bounded_buffer (see 'repro list')",
    )
    p_route.add_argument("--packets", type=int, default=None)
    p_route.add_argument("--seed", type=int, default=0)
    p_route.add_argument(
        "--audit", action="store_true", help="audit invariants I_a..I_f"
    )
    p_route.set_defaults(func=cmd_route)

    p_dyn = sub.add_parser(
        "dynamic", help="continuous-injection routing (T9-style)"
    )
    p_dyn.add_argument("--net", default="butterfly:4")
    p_dyn.add_argument("--rate", type=float, default=0.3)
    p_dyn.add_argument("--horizon", type=int, default=200)
    p_dyn.add_argument("--drain", type=int, default=50000)
    p_dyn.add_argument("--router", default="naive", help="naive | greedy")
    p_dyn.add_argument("--seed", type=int, default=0)
    p_dyn.set_defaults(func=cmd_dynamic)

    p_sweep = sub.add_parser(
        "sweep", help="run a seeded multi-trial frontier sweep"
    )
    p_sweep.add_argument("--net", default="butterfly:4")
    p_sweep.add_argument(
        "--workload",
        default="random",
        help="random | bottleneck | hotspot | permutation | hotrow",
    )
    p_sweep.add_argument("--packets", type=int, default=None)
    p_sweep.add_argument("--trials", type=int, default=8)
    p_sweep.add_argument(
        "--workers",
        type=int,
        default=1,
        help="trial processes (1 = serial; results are identical either way)",
    )
    p_sweep.add_argument("--seed", type=int, default=0)
    p_sweep.add_argument(
        "--fixed-problem",
        action="store_true",
        help="hold the instance fixed and vary only the routing coins "
        "(Monte Carlo over the algorithm's randomness; trials then share "
        "one warm-cached problem build per worker)",
    )
    p_sweep.add_argument(
        "--audit", action="store_true", help="audit invariants I_a..I_f"
    )
    p_sweep.add_argument(
        "--telemetry",
        action="store_true",
        help="collect per-trial counters (aggregated summary + per-trial "
        "progress on stderr)",
    )
    p_sweep.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="sweep-store root: run through the sharded manifest engine "
        "(resumable segments + streaming aggregate under "
        "DIR/<manifest-hash>/; cooperating invocations share it)",
    )
    p_sweep.add_argument(
        "--manifest",
        default=None,
        metavar="PATH",
        help="manifest JSON: load it if it exists, else derive one from "
        "the flags and write it there (without --store: emit and stop)",
    )
    p_sweep.add_argument(
        "--shard",
        default=None,
        metavar="IDS",
        help="restrict this invocation to shard ids, e.g. '0,2,5-7' "
        "(default: walk every shard, lease claims arbitrate overlap)",
    )
    p_sweep.add_argument(
        "--shard-size",
        type=int,
        default=None,
        help="trials per shard when deriving a manifest (default 1024)",
    )
    p_sweep.add_argument(
        "--resume",
        action="store_true",
        help="break stale shard leases and resume in-progress part files "
        "(per-shard output stays byte-identical to an uninterrupted run)",
    )
    p_sweep.add_argument(
        "--progress",
        default=None,
        metavar="PATH",
        help="append sweep_heartbeat JSONL (trials/sec, ETA, cache hits) "
        "to PATH ('-' = stderr)",
    )
    p_sweep.add_argument(
        "--cache",
        default=None,
        metavar="DIR",
        help="ResultCache root: trials whose results are cached re-emit "
        "from disk instead of re-routing",
    )
    p_sweep.add_argument(
        "--no-compact",
        action="store_true",
        help="keep per-shard segments instead of compacting to "
        "sweep.jsonl.gz on completion",
    )
    p_sweep.set_defaults(func=cmd_sweep)

    p_tune = sub.add_parser(
        "tune",
        help="auto-tune frontier parameters (successive-halving sweep "
        "study; see docs/tuning.md)",
    )
    p_tune.add_argument("--net", default="butterfly:4")
    p_tune.add_argument(
        "--workload",
        default="random",
        help="random | bottleneck | hotspot | permutation | hotrow",
    )
    p_tune.add_argument("--packets", type=int, default=None)
    p_tune.add_argument("--seed", type=int, default=0)
    p_tune.add_argument(
        "--catalog",
        default=None,
        metavar="NAME",
        help="tune a catalog scenario instead of --net/--workload",
    )
    p_tune.add_argument(
        "--study",
        default=None,
        metavar="PATH",
        help="load a saved study JSON (ignores the scenario/grid flags); "
        "reproduces that exact search",
    )
    p_tune.add_argument(
        "--emit-study",
        default=None,
        metavar="PATH",
        help="write the study JSON (the reproducible manifest) here",
    )
    p_tune.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="study root: sweep stores, shared result cache, study.json "
        "and report.json live here (omit to just mint/describe the study)",
    )
    p_tune.add_argument(
        "--budget",
        type=int,
        default=32,
        help="trials per surviving candidate at the final rung",
    )
    p_tune.add_argument(
        "--rungs", type=int, default=3, help="successive-halving rungs"
    )
    p_tune.add_argument(
        "--eta",
        type=int,
        default=2,
        help="halving factor: keep the best 1/eta candidates per rung",
    )
    p_tune.add_argument(
        "--success-threshold",
        type=float,
        default=0.99,
        help="prune candidates whose delivery-success rate falls below "
        "this (default 0.99)",
    )
    p_tune.add_argument(
        "--audit-trials",
        type=int,
        default=2,
        help="audited probe trials per candidate before any sweep spend "
        "(0 disables the invariant gate)",
    )
    p_tune.add_argument(
        "--audit-catalog",
        default=None,
        metavar="NAMES",
        help="comma-separated extra catalog scenarios for the audit gate "
        "(portfolio audit: a candidate must keep the invariants on every "
        "listed instance, not just the base)",
    )
    p_tune.add_argument(
        "--shard-size", type=int, default=256, help="trials per sweep shard"
    )
    p_tune.add_argument(
        "--c-stars",
        default="default,3",
        metavar="LIST",
        help="set_congestion_target grid values ('default' = constructor "
        "default), e.g. 'default,2,3'",
    )
    p_tune.add_argument(
        "--ms", default="default", metavar="LIST", help="m grid values"
    )
    p_tune.add_argument(
        "--w-factors",
        default="default,4,3,2",
        metavar="LIST",
        help="w_factor grid values",
    )
    p_tune.add_argument(
        "--qs", default="default,0.25", metavar="LIST", help="q grid values"
    )
    p_tune.add_argument(
        "--oversplits",
        default="default,1",
        metavar="LIST",
        help="oversplit grid values",
    )
    p_tune.add_argument(
        "--workers", type=int, default=1, help="trial processes per sweep"
    )
    p_tune.add_argument(
        "--resume",
        action="store_true",
        help="resume a killed study: break stale shard leases and replay "
        "valid record prefixes (stores stay byte-identical to an "
        "uninterrupted run)",
    )
    p_tune.add_argument(
        "--progress",
        default=None,
        metavar="PATH",
        help="append tuning_rung/tuning_candidate + sweep_heartbeat JSONL "
        "to PATH ('-' = stderr)",
    )
    p_tune.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="also write the final TuningReport JSON here",
    )
    p_tune.add_argument(
        "--name", default=None, help="label recorded in the study"
    )
    p_tune.set_defaults(func=cmd_tune)

    p_exp = sub.add_parser(
        "experiment", help="regenerate a DESIGN.md experiment table"
    )
    p_exp.add_argument(
        "experiment_id",
        nargs="?",
        default=None,
        help="e.g. t1, t4, a2, e1; omit to list available experiments",
    )
    p_exp.add_argument(
        "--workers",
        type=int,
        default=None,
        help="parallel trial processes for benches that sweep seeds "
        "(exported as $REPRO_BENCH_WORKERS)",
    )
    p_exp.set_defaults(func=cmd_experiment)

    p_list = sub.add_parser(
        "list", help="list catalog specs and registered components"
    )
    p_list.set_defaults(func=cmd_list)

    p_spec = sub.add_parser(
        "spec", help="print (or write) a catalog spec as JSON"
    )
    p_spec.add_argument("name", help="a catalog entry (see 'repro list')")
    p_spec.add_argument("--seed", type=int, default=None)
    p_spec.add_argument("--out", default=None, help="write to this file")
    p_spec.set_defaults(func=cmd_spec)

    p_run = sub.add_parser("run", help="run a scenario spec from a JSON file")
    p_run.add_argument("--spec", required=True, help="path to a spec JSON file")
    p_run.add_argument(
        "--cache",
        action="store_true",
        help="memoize the result on disk, keyed by the spec's content hash",
    )
    p_run.add_argument(
        "--cache-dir",
        default=None,
        help="cache directory (default: $REPRO_CACHE_DIR or .repro_cache)",
    )
    p_run.add_argument(
        "--telemetry",
        action="store_true",
        help="collect event counters and stage timings for this run",
    )
    p_run.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="stream every engine event to a JSONL trace file "
        "(.jsonl or .jsonl.gz; implies --telemetry)",
    )
    p_run.add_argument(
        "--profile",
        default=None,
        metavar="PATH",
        help="profile the run under cProfile and dump pstats data to PATH "
        "(view with: python -m pstats PATH)",
    )
    p_run.set_defaults(func=cmd_run)

    p_serve = sub.add_parser(
        "serve",
        help="open-loop streaming service: RunSpec JSON in, live metrics out",
    )
    p_serve.add_argument(
        "--spec",
        required=True,
        help="path to a spec JSON with an 'arrival' process, or '-' for stdin",
    )
    p_serve.add_argument(
        "--steps", type=int, default=1000, help="step budget (default 1000)"
    )
    p_serve.add_argument(
        "--window",
        type=int,
        default=50,
        help="metrics window size in steps (default 50)",
    )
    p_serve.add_argument(
        "--router", default="greedy", help="stream router: naive | greedy"
    )
    p_serve.add_argument(
        "--max-in-flight",
        type=int,
        default=None,
        help="admission cap; excess arrivals are dropped "
        "(default: the network's edge count)",
    )
    p_serve.add_argument(
        "--sse",
        action="store_true",
        help="emit Server-Sent-Events frames (data: {...}) instead of JSONL",
    )
    p_serve.add_argument(
        "--out", default=None, help="write the stream to this file, not stdout"
    )
    p_serve.set_defaults(func=cmd_serve)

    p_report = sub.add_parser(
        "report",
        help="render a run summary from a spec / cache record / result "
        "file / JSONL trace (no re-running)",
    )
    p_report.add_argument(
        "target",
        help="spec JSON, 16-hex spec hash, cached record, run-result JSON, "
        "or a .jsonl/.jsonl.gz trace",
    )
    p_report.add_argument(
        "--cache-dir",
        default=None,
        help="cache directory for spec/hash targets "
        "(default: $REPRO_CACHE_DIR or .repro_cache)",
    )
    p_report.set_defaults(func=cmd_report)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = make_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
