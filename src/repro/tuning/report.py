"""Per-candidate verdicts and the study-level tuning report."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class CandidateVerdict:
    """What one rung of trials established about one candidate.

    ``steps_ratio`` is the headline number: mean delivered makespan over
    the instance's ``C + D`` lower bound — the empirical analogue of the
    paper's ``O((C+L)·ln⁹(LN))`` polylog factor.  ``telemetry`` carries
    the :func:`~repro.telemetry.counters_digest` slice of the sweep's
    folded counters (deflection safety split, peak level occupancy).
    """

    key: str
    rung: int
    trials: int
    params: Dict[str, float]
    audit_ok: bool = True
    audit_violations: List[str] = field(default_factory=list)
    success_rate: Optional[float] = None
    makespan_mean: Optional[float] = None
    makespan_p50: Optional[int] = None
    makespan_p95: Optional[int] = None
    steps_ratio: Optional[float] = None
    unsafe_deflections: int = 0
    telemetry: Optional[dict] = None
    pruned: bool = False
    reason: str = ""

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "rung": self.rung,
            "trials": self.trials,
            "params": dict(self.params),
            "audit_ok": self.audit_ok,
            "audit_violations": list(self.audit_violations),
            "success_rate": self.success_rate,
            "makespan_mean": self.makespan_mean,
            "makespan_p50": self.makespan_p50,
            "makespan_p95": self.makespan_p95,
            "steps_ratio": self.steps_ratio,
            "unsafe_deflections": self.unsafe_deflections,
            "telemetry": self.telemetry,
            "pruned": self.pruned,
            "reason": self.reason,
        }

    def row(self) -> str:
        success = (
            f"{self.success_rate:.1%}" if self.success_rate is not None else "-"
        )
        makespan = (
            f"{self.makespan_mean:.1f}" if self.makespan_mean is not None else "-"
        )
        ratio = (
            f"{self.steps_ratio:.1f}" if self.steps_ratio is not None else "-"
        )
        status = "pruned: " + self.reason if self.pruned else "kept"
        audit = "ok" if self.audit_ok else "VIOLATED"
        return (
            f"  {self.key:<28} {self.trials:>6} {success:>8} {makespan:>10} "
            f"{ratio:>8} {self.unsafe_deflections:>7} {audit:>8}  {status}"
        )


@dataclass
class TuningReport:
    """The full outcome of a study: every verdict, plus the winner."""

    study_hash: str
    study_name: str
    base: str
    base_hash: str
    congestion: int
    dilation: int
    rounds: List[List[CandidateVerdict]] = field(default_factory=list)
    winner: Optional[CandidateVerdict] = None
    baseline: Optional[CandidateVerdict] = None

    @property
    def c_plus_d(self) -> int:
        return self.congestion + self.dilation

    @property
    def improvement(self) -> Optional[float]:
        """Baseline mean makespan over the winner's (>1 = winner faster)."""
        if (
            self.winner is None
            or self.baseline is None
            or not self.winner.makespan_mean
            or self.baseline.makespan_mean is None
        ):
            return None
        return self.baseline.makespan_mean / self.winner.makespan_mean

    def to_dict(self) -> dict:
        return {
            "kind": "tuning_report",
            "study_hash": self.study_hash,
            "study_name": self.study_name,
            "base": self.base,
            "base_hash": self.base_hash,
            "congestion": self.congestion,
            "dilation": self.dilation,
            "c_plus_d": self.c_plus_d,
            "rounds": [
                [verdict.to_dict() for verdict in rung]
                for rung in self.rounds
            ],
            "winner": self.winner.to_dict() if self.winner else None,
            "baseline": self.baseline.to_dict() if self.baseline else None,
            "improvement": self.improvement,
        }

    def render(self) -> str:
        lines = [
            f"study  : {self.study_name or 'tuning study'} "
            f"({self.study_hash})",
            f"base   : {self.base} (C={self.congestion}, D={self.dilation}, "
            f"C+D={self.c_plus_d})",
        ]
        header = (
            f"  {'candidate':<28} {'trials':>6} {'success':>8} "
            f"{'makespan':>10} {'T/(C+D)':>8} {'unsafe':>7} {'audit':>8}"
        )
        for rung, verdicts in enumerate(self.rounds):
            pruned = sum(1 for v in verdicts if v.pruned)
            trials = verdicts[0].trials if verdicts else 0
            lines.append(
                f"rung {rung} ({trials} trials/candidate): "
                f"{len(verdicts)} candidates, {pruned} pruned"
            )
            lines.append(header)
            lines.extend(verdict.row() for verdict in verdicts)
        if self.winner is None:
            lines.append("winner : none (every candidate was pruned)")
        else:
            lines.append(
                f"winner : {self.winner.key} — makespan "
                f"{self.winner.makespan_mean:.1f}, "
                f"T/(C+D) {self.winner.steps_ratio:.1f}, success "
                f"{self.winner.success_rate:.1%}"
            )
            if self.improvement is not None and self.winner is not self.baseline:
                lines.append(
                    f"margin : {self.improvement:.2f}x fewer steps than the "
                    f"paper-faithful default "
                    f"(makespan {self.baseline.makespan_mean:.1f})"
                )
        return "\n".join(lines)
