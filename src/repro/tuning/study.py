"""Tuning studies: candidate grids + the successive-halving search.

A :class:`TuningStudy` is a frozen, JSON-round-trippable description of a
parameter search: one pinned base scenario, a grid of
:class:`TuningCandidate` parameterizations, and a trial budget split
across successive-halving rungs.  :func:`run_study` executes it by
minting one :class:`~repro.sweeps.SweepManifest` per (candidate, rung)
and driving each through :func:`~repro.sweeps.run_sweep` into a shared
:class:`~repro.sweeps.SweepStore` root — so a study inherits the sweep
engine's guarantees wholesale: killed studies resume from the last valid
record, every shard's bytes are a pure function of the manifest, and a
resumed study's store is byte-identical to an uninterrupted one.

The search prunes early: each rung runs ``eta``-times fewer trials than
the next, and a candidate is dropped the moment it fails the invariant
audit (rung 0, before any sweep spend) or its delivery-success rate
falls below the study's threshold.  Survivors are ranked by mean
makespan; the best ``1/eta`` advance.  See docs/tuning.md.
"""

from __future__ import annotations

import dataclasses
import json
import math
import pathlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import ReproError
from ..rng import stable_hash_seed
from ..scenarios import RunSpec

PathLike = Union[str, pathlib.Path]

#: The :meth:`~repro.core.AlgorithmParams.practical` kwargs a candidate
#: may pin, in canonical slug order.
CANDIDATE_FIELDS = ("set_congestion_target", "m", "w_factor", "q", "oversplit")

_SLUGS = {
    "set_congestion_target": "c",
    "m": "m",
    "w_factor": "wf",
    "q": "q",
    "oversplit": "o",
}


def _fmt(value: float) -> str:
    """Compact numeric slug: drop a trailing ``.0``."""
    text = f"{value:g}"
    return text


@dataclass(frozen=True)
class TuningCandidate:
    """One point of the (c*, m, w_factor, q, oversplit) search space.

    ``None`` fields fall through to
    :meth:`~repro.core.AlgorithmParams.practical`'s structural defaults,
    so the all-``None`` candidate *is* the paper-faithful
    parameterization — include it in every grid as the comparison
    baseline.
    """

    set_congestion_target: Optional[float] = None
    m: Optional[int] = None
    w_factor: Optional[float] = None
    q: Optional[float] = None
    oversplit: Optional[float] = None

    def params_kwargs(self) -> Dict[str, float]:
        """The non-default kwargs, ready for ``backend_params``."""
        return {
            name: getattr(self, name)
            for name in CANDIDATE_FIELDS
            if getattr(self, name) is not None
        }

    def key(self) -> str:
        """Stable slug naming this candidate (``default`` for all-None)."""
        parts = [
            f"{_SLUGS[name]}{_fmt(getattr(self, name))}"
            for name in CANDIDATE_FIELDS
            if getattr(self, name) is not None
        ]
        return "-".join(parts) if parts else "default"

    def to_dict(self) -> dict:
        return dict(self.params_kwargs())

    @classmethod
    def from_dict(cls, record: dict) -> "TuningCandidate":
        unknown = set(record) - set(CANDIDATE_FIELDS)
        if unknown:
            raise ReproError(
                f"unknown tuning-candidate fields: {sorted(unknown)}"
            )
        kwargs = dict(record)
        if "m" in kwargs:
            kwargs["m"] = int(kwargs["m"])
        return cls(**kwargs)


def default_grid(
    c_stars: Sequence[Optional[float]] = (None, 3.0),
    ms: Sequence[Optional[int]] = (None,),
    w_factors: Sequence[Optional[float]] = (None, 4.0, 3.0, 2.0),
    qs: Sequence[Optional[float]] = (None, 0.25),
    oversplits: Sequence[Optional[float]] = (None, 1.0),
) -> List[TuningCandidate]:
    """Cartesian candidate grid, baseline (all-default) first.

    Duplicate points collapse; the all-``None`` baseline is always
    included so every study carries its own paper-faithful comparison.
    """
    seen = {}
    baseline = TuningCandidate()
    seen[baseline.key()] = baseline
    for c_star in c_stars:
        for m in ms:
            for w_factor in w_factors:
                for q in qs:
                    for oversplit in oversplits:
                        cand = TuningCandidate(
                            set_congestion_target=c_star,
                            m=m,
                            w_factor=w_factor,
                            q=q,
                            oversplit=oversplit,
                        )
                        seen.setdefault(cand.key(), cand)
    return list(seen.values())


@dataclass(frozen=True)
class TuningStudy:
    """A reproducible parameter search over one pinned scenario.

    ``budget`` is the per-candidate trial count at the final rung; rung
    ``r`` (0-based) runs ``ceil(budget / eta^(rungs-1-r))`` trials.
    Because every rung's manifest derives its trial seeds from the same
    pinned base spec, a rung's trial set is a prefix of the next rung's
    — re-runs of surviving candidates re-emit the earlier trials from
    the study's result cache instead of re-routing them.
    """

    base: RunSpec
    candidates: Tuple[TuningCandidate, ...]
    budget: int = 32
    rungs: int = 3
    eta: int = 2
    success_threshold: float = 0.99
    audit_trials: int = 2
    #: extra catalog scenario names whose instances also run the audit
    #: gate — a portfolio gate, so a candidate that keeps the invariants
    #: on the base instance but violates them on another family is still
    #: pruned before any budget is spent on it.
    audit_catalog: Tuple[str, ...] = ()
    shard_size: int = 256
    name: str = ""

    def __post_init__(self) -> None:
        if self.budget < 1:
            raise ReproError(f"budget must be >= 1, got {self.budget}")
        if self.rungs < 1:
            raise ReproError(f"rungs must be >= 1, got {self.rungs}")
        if self.eta < 2:
            raise ReproError(f"eta must be >= 2, got {self.eta}")
        if not 0.0 <= self.success_threshold <= 1.0:
            raise ReproError(
                f"success_threshold must be a probability, got "
                f"{self.success_threshold}"
            )
        if self.audit_trials < 0:
            raise ReproError(
                f"audit_trials must be >= 0, got {self.audit_trials}"
            )
        if not self.candidates:
            raise ReproError("a tuning study needs at least one candidate")
        if self.base.backend not in ("frontier", "frontier_vec"):
            raise ReproError(
                "tuning studies search frontier-algorithm parameters; got "
                f"backend {self.base.backend!r}"
            )
        keys = [cand.key() for cand in self.candidates]
        if len(set(keys)) != len(keys):
            dupes = sorted({k for k in keys if keys.count(k) > 1})
            raise ReproError(f"duplicate tuning candidates: {dupes}")
        object.__setattr__(self, "candidates", tuple(self.candidates))
        object.__setattr__(self, "audit_catalog", tuple(self.audit_catalog))

    # ------------------------------------------------------------- schedule

    def rung_trials(self, rung: int) -> int:
        """Trial budget of rung ``rung`` (0-based, final rung = budget)."""
        if not 0 <= rung < self.rungs:
            raise ReproError(f"rung out of range: {rung} of {self.rungs}")
        return max(1, math.ceil(self.budget / self.eta ** (self.rungs - 1 - rung)))

    def candidate_spec(self, candidate: TuningCandidate) -> RunSpec:
        """The base scenario under one candidate's parameterization."""
        spec = self.base.with_params(**candidate.params_kwargs())
        label = self.name or self.base.name or "tune"
        return dataclasses.replace(spec, name=f"{label}[{candidate.key()}]")

    # ------------------------------------------------------------ round-trip

    def to_dict(self) -> dict:
        return {
            "kind": "tuning_study",
            "name": self.name,
            "base": self.base.to_dict(),
            "candidates": [cand.to_dict() for cand in self.candidates],
            "budget": self.budget,
            "rungs": self.rungs,
            "eta": self.eta,
            "success_threshold": self.success_threshold,
            "audit_trials": self.audit_trials,
            "audit_catalog": list(self.audit_catalog),
            "shard_size": self.shard_size,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "TuningStudy":
        if record.get("kind") != "tuning_study":
            raise ReproError(
                f"not a tuning study record: kind={record.get('kind')!r}"
            )
        return cls(
            base=RunSpec.from_dict(record["base"]),
            candidates=tuple(
                TuningCandidate.from_dict(c) for c in record["candidates"]
            ),
            budget=int(record["budget"]),
            rungs=int(record["rungs"]),
            eta=int(record["eta"]),
            success_threshold=float(record["success_threshold"]),
            audit_trials=int(record["audit_trials"]),
            audit_catalog=tuple(record.get("audit_catalog", ())),
            shard_size=int(record["shard_size"]),
            name=record.get("name", ""),
        )

    def study_hash(self) -> str:
        """16-hex content address (the ``name`` label is excluded).

        Same canonicalization discipline as
        :meth:`~repro.scenarios.RunSpec.content_hash`: canonical JSON
        bytes folded through :func:`repro.rng.stable_hash_seed`, so the
        hash is stable across processes and machines.
        """
        record = self.to_dict()
        record.pop("name")
        record["base"] = self.base.hash_payload().decode("utf-8")
        payload = json.dumps(
            record, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        return format(stable_hash_seed(len(payload), *payload), "016x")

    def describe(self) -> str:
        label = self.name or "study"
        return (
            f"{label}: {len(self.candidates)} candidates x {self.budget} "
            f"trials over {self.rungs} rungs (eta={self.eta}, "
            f"success >= {self.success_threshold:.0%}, "
            f"hash {self.study_hash()})"
        )


def save_study(study: TuningStudy, path: PathLike) -> None:
    """Write a study as a JSON file (the checked-in reproducible form)."""
    pathlib.Path(path).write_text(
        json.dumps(study.to_dict(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def load_study(path: PathLike) -> TuningStudy:
    """Load a study written by :func:`save_study`."""
    target = pathlib.Path(path)
    if not target.exists():
        raise ReproError(f"tuning study not found: {target}")
    return TuningStudy.from_dict(
        json.loads(target.read_text(encoding="utf-8"))
    )
