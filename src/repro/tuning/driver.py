"""The study driver: successive halving over sweep-engine manifests."""

from __future__ import annotations

import json
import math
import pathlib
import sys
from typing import Callable, List, Optional, Tuple, Union

from ..errors import ParameterError, ReproError
from ..scenarios import build_problem
from ..sweeps import SweepHeartbeat, SweepManifest, open_store, run_sweep
from ..telemetry import counters_digest
from .report import CandidateVerdict, TuningReport
from .study import TuningCandidate, TuningStudy, save_study

PathLike = Union[str, pathlib.Path]

STUDY_FILENAME = "study.json"
REPORT_FILENAME = "report.json"


class TuningProgress:
    """JSONL progress sink for a study (the ``--progress`` surface).

    Emits ``tuning_rung`` / ``tuning_candidate`` records and forwards
    the per-sweep ``sweep_heartbeat`` stream to the same sink, so one
    tail shows both the search structure and the trial throughput.
    Accepts a callable, a path (appended, one JSON object per line), or
    ``None`` (disabled).
    """

    def __init__(
        self, sink: Union[Callable[[dict], None], PathLike, None]
    ) -> None:
        self._fh = None
        if sink is None or callable(sink):
            self._callable = sink
        else:
            self._fh = open(sink, "a", encoding="utf-8")
            self._callable = self._write_line
        self.records_emitted = 0

    def _write_line(self, record: dict) -> None:
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()

    @property
    def sink(self) -> Optional[Callable[[dict], None]]:
        """The raw callable (hand this to :class:`SweepHeartbeat`)."""
        return self._callable

    def emit(self, record: dict) -> None:
        if self._callable is None:
            return
        self.records_emitted += 1
        self._callable(record)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def _audit_candidate(
    problems, candidate: TuningCandidate, trials: int
) -> Tuple[bool, List[str]]:
    """Run audited probe trials (reference engine) for one candidate.

    ``problems`` is the study's audit portfolio: the base instance plus
    any ``audit_catalog`` instances, as ``(label, problem)`` pairs.
    Audited runs are cheap relative to a sweep rung and catch unsound
    parameterizations (invariant violations) before any budget is spent
    on them — the "audit gate" of docs/tuning.md.  The portfolio matters:
    a parameterization can keep the invariants on one family and break
    them on another (too little I_f margin on deeper meshes, say), and a
    preset is only shippable if the whole portfolio stays clean.
    """
    from ..experiments.runner import run_frontier_trial

    failures: List[str] = []
    for label, problem in problems:
        for seed in range(trials):
            record = run_frontier_trial(
                problem, seed, audit=True, **candidate.params_kwargs()
            )
            if record.audit is not None and not record.audit.ok:
                failures.append(
                    f"{label} seed {seed}: {record.audit.summary()}"
                )
    return not failures, failures


def _sketch(aggregate: dict, name: str) -> dict:
    return aggregate.get(name) or {}


def run_study(
    study: TuningStudy,
    root: PathLike,
    resume: bool = False,
    workers: int = 1,
    progress: Union[Callable[[dict], None], PathLike, None] = None,
    compact: bool = True,
) -> TuningReport:
    """Execute a tuning study under ``root`` and return its report.

    Layout: ``root/study.json`` (the study, written on first run and
    verified by hash on every later one), ``root/sweeps/<manifest-hash>/``
    (one sweep store per candidate x rung — the resumable, byte-stable
    state), ``root/cache/`` (a shared result cache so later rungs re-emit
    earlier rungs' trials from disk), ``root/report.json`` (the final
    report, deterministic bytes).

    ``resume`` is handed through to :func:`~repro.sweeps.run_sweep`,
    which breaks stale shard leases and replays valid record prefixes —
    a killed study re-executes only missing trial suffixes, and the
    resulting stores are byte-identical to an uninterrupted run.
    """
    root = pathlib.Path(root)
    root.mkdir(parents=True, exist_ok=True)
    study_path = root / STUDY_FILENAME
    if study_path.exists():
        from .study import load_study

        existing = load_study(study_path)
        if existing.study_hash() != study.study_hash():
            raise ReproError(
                f"store {root} holds a different study "
                f"({existing.study_hash()} != {study.study_hash()}); "
                f"pick a fresh --store or pass the original parameters"
            )
    else:
        save_study(study, study_path)

    pinned = study.base.with_pinned_scenario()
    problem = build_problem(pinned)
    congestion = problem.congestion
    dilation = problem.dilation
    c_plus_d = max(1, congestion + dilation)

    audit_problems = [(pinned.name or "base", problem)]
    if study.audit_catalog:
        from ..experiments import catalog_spec

        for name in study.audit_catalog:
            extra = catalog_spec(name).with_pinned_scenario()
            if extra.content_hash() == pinned.content_hash():
                continue
            audit_problems.append((name, build_problem(extra)))

    progress = (
        progress if isinstance(progress, TuningProgress)
        else TuningProgress(progress)
    )
    report = TuningReport(
        study_hash=study.study_hash(),
        study_name=study.name or (study.base.name or ""),
        base=pinned.describe(),
        base_hash=pinned.content_hash(),
        congestion=congestion,
        dilation=dilation,
    )

    from ..experiments.runner import resolve_trial_params

    alive: List[TuningCandidate] = list(study.candidates)
    audit_results = {}
    latest: dict = {}
    try:
        for rung in range(study.rungs):
            trials = study.rung_trials(rung)
            progress.emit(
                {
                    "kind": "tuning_rung",
                    "rung": rung,
                    "trials": trials,
                    "candidates": [cand.key() for cand in alive],
                }
            )
            verdicts: List[Tuple[CandidateVerdict, TuningCandidate]] = []
            for cand in alive:
                key = cand.key()
                try:
                    params = resolve_trial_params(
                        problem, **cand.params_kwargs()
                    )
                except ParameterError as exc:
                    verdict = CandidateVerdict(
                        key=key,
                        rung=rung,
                        trials=0,
                        params=dict(cand.params_kwargs()),
                        pruned=True,
                        reason=f"invalid parameters: {exc}",
                    )
                    verdicts.append((verdict, cand))
                    latest[key] = verdict
                    continue
                if key not in audit_results and study.audit_trials:
                    audit_results[key] = _audit_candidate(
                        audit_problems, cand, study.audit_trials
                    )
                audit_ok, violations = audit_results.get(key, (True, []))
                verdict = CandidateVerdict(
                    key=key,
                    rung=rung,
                    trials=trials,
                    params=params.describe(),
                    audit_ok=audit_ok,
                    audit_violations=violations,
                )
                if not audit_ok:
                    verdict.pruned = True
                    verdict.reason = "invariant audit failed"
                else:
                    spec = study.candidate_spec(cand)
                    manifest = SweepManifest.from_base(
                        spec,
                        num_trials=trials,
                        shard_size=min(study.shard_size, trials),
                        pin=True,
                        name=f"{key}-rung{rung}",
                    )
                    store = open_store(root / "sweeps", manifest)
                    heartbeat = (
                        SweepHeartbeat(progress.sink, total=trials)
                        if progress.sink is not None
                        else None
                    )
                    outcome = run_sweep(
                        manifest,
                        store,
                        workers=workers,
                        resume=resume,
                        telemetry=True,
                        cache=str(root / "cache"),
                        heartbeat=heartbeat,
                        compact=compact,
                    )
                    if not outcome.complete or outcome.aggregate is None:
                        raise ReproError(
                            f"candidate {key} rung {rung} sweep incomplete "
                            f"(leases held elsewhere?); rerun with resume=True"
                        )
                    agg = outcome.aggregate
                    makespan = _sketch(agg, "makespan")
                    verdict.success_rate = agg.get("success_rate")
                    verdict.makespan_mean = makespan.get("mean")
                    verdict.makespan_p50 = makespan.get("p50")
                    verdict.makespan_p95 = makespan.get("p95")
                    if verdict.makespan_mean is not None:
                        verdict.steps_ratio = verdict.makespan_mean / c_plus_d
                    verdict.unsafe_deflections = agg.get(
                        "unsafe_deflections", 0
                    )
                    verdict.telemetry = counters_digest(agg.get("telemetry"))
                    if (
                        verdict.success_rate is None
                        or verdict.success_rate < study.success_threshold
                    ):
                        verdict.pruned = True
                        verdict.reason = (
                            f"success rate "
                            f"{(verdict.success_rate or 0.0):.1%} below "
                            f"threshold {study.success_threshold:.1%}"
                        )
                verdicts.append((verdict, cand))
                latest[key] = verdict
                progress.emit(
                    {
                        "kind": "tuning_candidate",
                        "rung": rung,
                        "candidate": key,
                        "trials": verdict.trials,
                        "success_rate": verdict.success_rate,
                        "makespan_mean": verdict.makespan_mean,
                        "steps_ratio": verdict.steps_ratio,
                        "audit_ok": verdict.audit_ok,
                        "pruned": verdict.pruned,
                        "reason": verdict.reason,
                    }
                )
            report.rounds.append([verdict for verdict, _ in verdicts])
            survivors = sorted(
                (
                    (verdict, cand)
                    for verdict, cand in verdicts
                    if not verdict.pruned
                ),
                key=lambda pair: (
                    pair[0].makespan_mean
                    if pair[0].makespan_mean is not None
                    else math.inf,
                    pair[0].params.get("total_steps", math.inf),
                    pair[0].key,
                ),
            )
            if not survivors:
                alive = []
                break
            if rung < study.rungs - 1:
                keep = max(1, math.ceil(len(survivors) / study.eta))
                survivors = survivors[:keep]
            alive = [cand for _, cand in survivors]

        finalists = [
            latest[cand.key()]
            for cand in alive
            if not latest[cand.key()].pruned
        ]
        report.winner = finalists[0] if finalists else None
        report.baseline = latest.get(TuningCandidate().key())
        progress.emit(
            {
                "kind": "tuning_done",
                "winner": report.winner.key if report.winner else None,
                "improvement": report.improvement,
            }
        )
    finally:
        progress.close()
    (root / REPORT_FILENAME).write_text(
        json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return report


def print_study_report(report: TuningReport, stream=None) -> None:
    """Render a report to a stream (stdout by default)."""
    print(report.render(), file=stream or sys.stdout)
