"""Sweep-driven parameter auto-tuning (the ``repro tune`` machinery).

Searches the frontier algorithm's (c*, m, w_factor, q, oversplit) space
for the smallest parameterization that still preserves the frame
invariants and an empirical delivery-success threshold.  A
:class:`TuningStudy` describes the search (pinned base scenario,
candidate grid, successive-halving budget schedule); :func:`run_study`
executes it through the :mod:`repro.sweeps` engine — one resumable,
byte-stable :class:`~repro.sweeps.SweepStore` per candidate per rung —
and folds each candidate's streaming aggregate (success rate, makespan
sketch, telemetry counters) into a :class:`TuningReport` of per-candidate
verdicts with steps-vs-(C+D) ratios.

The shipped ``"practical"`` preset in :data:`repro.core.PRESETS` came out
of such a study (checked in at
``benchmarks/studies/practical_preset_study.json``); docs/tuning.md
documents the procedure, gates, and measured margins.
"""

from .study import (
    CANDIDATE_FIELDS,
    TuningCandidate,
    TuningStudy,
    default_grid,
    load_study,
    save_study,
)
from .report import CandidateVerdict, TuningReport
from .driver import (
    REPORT_FILENAME,
    STUDY_FILENAME,
    TuningProgress,
    print_study_report,
    run_study,
)

__all__ = [
    "CANDIDATE_FIELDS",
    "REPORT_FILENAME",
    "STUDY_FILENAME",
    "TuningCandidate",
    "TuningStudy",
    "CandidateVerdict",
    "TuningReport",
    "TuningProgress",
    "default_grid",
    "load_study",
    "save_study",
    "print_study_report",
    "run_study",
]
