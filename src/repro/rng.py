"""Seeded random-number utilities.

Everything stochastic in the library (frontier-set assignment, excitation
coin flips, conflict tie-breaking, workload generation) draws from a
:class:`numpy.random.Generator` so experiments are exactly reproducible from
a single integer seed, and independent substreams can be split off for
parallel trials without correlation.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Union

import numpy as np

RngLike = Union[int, None, np.random.Generator, np.random.SeedSequence]


def make_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from any seed-like value.

    Accepts ``None`` (OS entropy), an integer seed, a ``SeedSequence``, or an
    existing generator (returned unchanged, so callers can thread one
    generator through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_rngs(seed: RngLike, n: int) -> list[np.random.Generator]:
    """Split ``n`` statistically independent generators from one seed.

    Used by the experiment runner to give each trial its own substream: the
    trials are then reproducible individually *and* as a batch.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    if isinstance(seed, np.random.Generator):
        seq = np.random.SeedSequence(seed.integers(0, 2**63 - 1))
    elif isinstance(seed, np.random.SeedSequence):
        seq = seed
    else:
        seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(n)]


def trial_seeds(base_seed: int, n: int) -> list[int]:
    """Derive ``n`` well-separated integer seeds from ``base_seed``.

    Handy when an API takes integer seeds (e.g. recorded in result tables)
    rather than generator objects.
    """
    seq = np.random.SeedSequence(base_seed)
    return [int(s.generate_state(1)[0]) for s in seq.spawn(n)]


def coin(rng: np.random.Generator, probability: float) -> bool:
    """Biased coin flip: ``True`` with the given probability."""
    if probability <= 0.0:
        return False
    if probability >= 1.0:
        return True
    return bool(rng.random() < probability)


def choice(rng: np.random.Generator, items: Sequence):
    """Uniformly pick one element of a non-empty sequence."""
    if not items:
        raise ValueError("cannot choose from an empty sequence")
    if len(items) == 1:
        return items[0]
    return items[int(rng.integers(0, len(items)))]


def shuffled(rng: np.random.Generator, items: Sequence) -> list:
    """Return a new list with the items in uniformly random order."""
    out = list(items)
    if len(out) > 1:
        rng.shuffle(out)
    return out


def iter_batches(seq: Sequence, size: int) -> Iterator[Sequence]:
    """Yield successive slices of ``seq`` of at most ``size`` elements."""
    if size <= 0:
        raise ValueError("batch size must be positive")
    for start in range(0, len(seq), size):
        yield seq[start : start + size]


def stable_hash_seed(*parts: Optional[int]) -> int:
    """Combine integer parts into a deterministic 63-bit seed.

    Unlike ``hash()``, the result does not depend on ``PYTHONHASHSEED``; used
    to derive per-(experiment, trial) seeds that are stable across runs.

    Plain-int FNV-1a over 64-bit lanes (masking reproduces ``uint64``
    wraparound exactly, so values match the original numpy-scalar
    implementation bit for bit).  Python ints keep this fast even for the
    hashing callers that fold whole canonical-JSON payloads byte by byte
    (spec content/scenario hashes on every cache lookup and shard append).
    """
    acc = 0xCBF29CE484222325  # FNV-1a offset basis
    prime = 0x100000001B3
    mask = 0xFFFFFFFFFFFFFFFF
    for part in parts:
        value = 0 if part is None else part & mask
        acc = ((acc ^ value) * prime) & mask
    return acc & 0x7FFFFFFFFFFFFFFF
