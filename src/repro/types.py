"""Shared primitive types used across the package.

Nodes and edges are plain integers (dense ids assigned by the network
builder); this keeps the synchronous simulator's inner loops allocation-free
and lets analysis code index numpy arrays directly by id.
"""

from __future__ import annotations

import enum
from typing import Hashable, Tuple

#: Dense id of a node inside a :class:`repro.net.LeveledNetwork`.
NodeId = int

#: Dense id of an (undirected, but oriented low-level -> high-level) edge.
EdgeId = int

#: Id of a packet inside a routing problem (index into the packet list).
PacketId = int

#: Optional human-readable node label (grid coordinate, butterfly row, ...).
NodeLabel = Hashable

#: An edge as an endpoint pair ``(src, dst)`` with ``level(dst) == level(src)+1``.
EdgeEndpoints = Tuple[NodeId, NodeId]


class Direction(enum.IntEnum):
    """Traversal direction of an edge.

    Every edge of a leveled network is *oriented* from its lower level to its
    higher level (the paper's Section 2.2), but during hot-potato routing the
    edges are used in both directions (the paper explicitly avoids the term
    "directed edge" for this reason).  ``FORWARD`` follows the orientation
    (toward higher levels); ``BACKWARD`` opposes it.
    """

    FORWARD = 0
    BACKWARD = 1

    @property
    def opposite(self) -> "Direction":
        """The reverse direction."""
        return Direction.BACKWARD if self is Direction.FORWARD else Direction.FORWARD


class MoveKind(enum.IntEnum):
    """How a granted move updates the moving packet's bookkeeping.

    ``FOLLOW``
        Traverse the head edge of the packet's current path and pop it; this
        is the normal path-following step of Section 2.3.
    ``REVERSE``
        Traverse an arbitrary incident edge and *prepend* it to the current
        path; deflections and the backward half of wait-state oscillation
        both use this rule (the paper's path-update rule on deflection).
    ``FREE``
        Traverse an incident edge without touching any path bookkeeping;
        used by path-less baselines such as greedy hot-potato routing.
    """

    FOLLOW = 0
    REVERSE = 1
    FREE = 2
