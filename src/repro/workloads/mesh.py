"""Mesh workloads (the paper's Section 5 application).

Monotone many-to-one/partial-permutation instances on an ``n x n`` mesh in
its NORTH_WEST orientation: destinations lie weakly down-right of sources,
so dimension-order paths are valid leveled paths with ``C, D = O(n)`` — the
path family the Section 5 application plugs into the algorithm.
"""

from __future__ import annotations

from typing import List, Tuple

from ..errors import WorkloadError
from ..net import LeveledNetwork, mesh_coords, mesh_node, mesh_shape
from ..rng import RngLike, make_rng
from ..types import NodeId
from .base import Workload


def monotone_random_pairs(
    net: LeveledNetwork,
    num_packets: int,
    seed: RngLike = None,
    min_displacement: int = 1,
) -> Workload:
    """Random monotone pairs: distinct sources, dests weakly down-right.

    ``min_displacement`` forces the L1 distance between source and
    destination to be at least that much (default 1, i.e. src != dst).
    """
    rows, cols = mesh_shape(net)
    rng = make_rng(seed)
    cells = [(i, j) for i in range(rows) for j in range(cols)]
    # Sources need at least one strictly-down-right destination.
    eligible = [
        (i, j)
        for (i, j) in cells
        if (rows - 1 - i) + (cols - 1 - j) >= min_displacement
    ]
    if num_packets > len(eligible):
        raise WorkloadError(
            f"requested {num_packets} packets but only {len(eligible)} "
            f"eligible sources"
        )
    picks = rng.choice(len(eligible), size=num_packets, replace=False)
    endpoints: List[Tuple[NodeId, NodeId]] = []
    for index in picks:
        si, sj = eligible[int(index)]
        while True:
            di = int(rng.integers(si, rows))
            dj = int(rng.integers(sj, cols))
            if (di - si) + (dj - sj) >= min_displacement:
                break
        endpoints.append((mesh_node(net, si, sj), mesh_node(net, di, dj)))
    return Workload("mesh_monotone", net, tuple(endpoints))


def corner_shift(net: LeveledNetwork, block: int | None = None) -> Workload:
    """Shift the top-left ``block x block`` sub-mesh onto the bottom-right.

    ``(i, j) -> (i + rows - block, j + cols - block)`` for the ``block²``
    cells with ``i, j < block``; every packet travels ``Θ(rows + cols)``
    and the column/row bands overlap heavily, driving ``C = Θ(block)`` with
    dimension-order paths — a deterministic high-congestion monotone
    workload.
    """
    rows, cols = mesh_shape(net)
    if block is None:
        block = min(rows, cols) // 2
    if block < 1 or block > min(rows, cols):
        raise WorkloadError(
            f"block must be in 1..{min(rows, cols)}, got {block}"
        )
    endpoints = []
    for i in range(block):
        for j in range(block):
            endpoints.append(
                (
                    mesh_node(net, i, j),
                    mesh_node(net, i + rows - block, j + cols - block),
                )
            )
    return Workload(f"corner_shift({block})", net, tuple(endpoints))


def is_monotone_workload(workload: Workload) -> bool:
    """Whether every pair of a mesh workload is weakly down-right."""
    for src, dst in workload.endpoints:
        si, sj = mesh_coords(workload.net, src)
        di, dj = mesh_coords(workload.net, dst)
        if di < si or dj < sj:
            return False
    return True
