"""Butterfly workloads.

Because bit-fixing paths on the butterfly are unique, the endpoint pattern
fully determines congestion: random end-to-end traffic gives small ``C``,
while *bit-reversal-like* adversarial patterns and hot rows concentrate
paths.  These are the standard stress inputs for experiments T1/T4.
"""

from __future__ import annotations

from typing import List, Tuple

from ..errors import WorkloadError
from ..net import LeveledNetwork, butterfly_node, wrapped_butterfly_rows
from ..rng import RngLike, make_rng
from ..types import NodeId
from .base import Workload


def random_end_to_end(
    net: LeveledNetwork, num_packets: int | None = None, seed: RngLike = None
) -> Workload:
    """Each chosen level-0 row sends to a uniformly random level-L row."""
    rows = wrapped_butterfly_rows(net)
    dim = net.depth
    rng = make_rng(seed)
    if num_packets is None:
        num_packets = rows
    if num_packets > rows:
        raise WorkloadError(f"at most {rows} sources, requested {num_packets}")
    chosen = rng.choice(rows, size=num_packets, replace=False)
    endpoints: List[Tuple[NodeId, NodeId]] = []
    for row in chosen:
        dest_row = int(rng.integers(0, rows))
        endpoints.append(
            (
                butterfly_node(net, 0, int(row)),
                butterfly_node(net, dim, dest_row),
            )
        )
    return Workload("bf_random_end_to_end", net, tuple(endpoints))


def full_permutation(net: LeveledNetwork, seed: RngLike = None) -> Workload:
    """Every level-0 row sends to a distinct level-L row (random bijection)."""
    rows = wrapped_butterfly_rows(net)
    dim = net.depth
    rng = make_rng(seed)
    perm = rng.permutation(rows)
    endpoints = tuple(
        (butterfly_node(net, 0, row), butterfly_node(net, dim, int(perm[row])))
        for row in range(rows)
    )
    return Workload("bf_permutation", net, tuple(endpoints))


def hot_row(
    net: LeveledNetwork, num_packets: int | None = None, seed: RngLike = None
) -> Workload:
    """All packets target one output row: ``C = Θ(N)``.

    The unique bit-fixing paths converge on the target row's two in-edges
    (split by the sources' low-order bit), so the busier final edge carries
    at least ``N/2`` packets — the canonical high-congestion butterfly
    instance, and the C-sweep axis of experiment T1.
    """
    rows = wrapped_butterfly_rows(net)
    dim = net.depth
    rng = make_rng(seed)
    if num_packets is None:
        num_packets = rows
    if num_packets > rows:
        raise WorkloadError(f"at most {rows} sources, requested {num_packets}")
    target = int(rng.integers(0, rows))
    chosen = rng.choice(rows, size=num_packets, replace=False)
    endpoints = tuple(
        (butterfly_node(net, 0, int(row)), butterfly_node(net, dim, target))
        for row in chosen
    )
    return Workload("bf_hot_row", net, endpoints)


def bit_complement(net: LeveledNetwork) -> Workload:
    """Row ``r`` sends to row ``~r`` — a worst-case-ish structured pattern."""
    rows = wrapped_butterfly_rows(net)
    dim = net.depth
    mask = rows - 1
    endpoints = tuple(
        (butterfly_node(net, 0, row), butterfly_node(net, dim, row ^ mask))
        for row in range(rows)
    )
    return Workload("bf_bit_complement", net, endpoints)
