"""Adversarial workloads: extreme congestion and dilation instances.

These pin one of the two lower-bound terms while keeping the other small:

* :func:`funnel_through_edge` drives the congestion of a *chosen edge* to
  exactly ``N`` (every path crosses it) — the ``C``-dominated regime.
* :func:`max_dilation_chain` sends a packet the full depth of the network —
  the ``D = L``-dominated regime.

Together they trace the two axes of the ``Ω(C + D)`` lower bound that
experiment T1 sweeps.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import WorkloadError
from ..net import LeveledNetwork
from ..paths import RoutingProblem, paths_through_edge
from ..rng import RngLike, make_rng
from ..types import EdgeId, NodeId


def funnel_through_edge(
    net: LeveledNetwork,
    num_packets: int,
    edge: Optional[EdgeId] = None,
    seed: RngLike = None,
) -> RoutingProblem:
    """A routing problem whose every path crosses one edge (``C = N``).

    Sources are distinct nodes that can reach the edge tail; destinations
    are random nodes reachable from the edge head.  Returns a full
    :class:`~repro.paths.RoutingProblem` (paths are the point here, so no
    separate selector step).
    """
    rng = make_rng(seed)
    if edge is None:
        # Pick an edge with a rich feeder set: the deeper the tail, the more
        # ancestors can funnel into it.
        floor = net.depth // 2
        candidates = [
            e for e in net.edges() if net.level(net.edge_src(e)) >= floor
        ]
        if not candidates:
            candidates = list(net.edges())
        edge = max(
            candidates,
            key=lambda e: len(net.backward_reachable(net.edge_src(e))),
        )
    tail, head = net.edge_endpoints(edge)
    feeders = sorted(
        v for v in net.backward_reachable(tail) if net.out_degree(v) > 0
    )
    if num_packets > len(feeders):
        raise WorkloadError(
            f"requested {num_packets} packets but only {len(feeders)} nodes "
            f"feed edge {edge}"
        )
    picks = rng.choice(len(feeders), size=num_packets, replace=False)
    sources = [feeders[int(i)] for i in picks]
    sinks = sorted(net.forward_reachable(head))
    destinations: List[NodeId] = [
        sinks[int(rng.integers(0, len(sinks)))] for _ in sources
    ]
    return paths_through_edge(net, edge, sources, destinations, seed=rng)


def max_dilation_chain(
    net: LeveledNetwork,
    num_packets: int = 1,
    seed: RngLike = None,
) -> Tuple[List[Tuple[NodeId, NodeId]], int]:
    """Endpoint pairs spanning the full depth (``D = L``), plus that depth.

    Returns ``(endpoints, dilation)``; pairs are distinct level-0 sources
    with level-``L`` destinations each can reach.  Raises
    :class:`~repro.errors.WorkloadError` if fewer than ``num_packets``
    level-0 nodes reach the top level.
    """
    rng = make_rng(seed)
    full_span: List[Tuple[NodeId, NodeId]] = []
    for src in net.nodes_at_level(0):
        tops = [
            v for v in sorted(net.forward_reachable(src)) if net.level(v) == net.depth
        ]
        if tops:
            full_span.append((src, tops[int(rng.integers(0, len(tops)))]))
    if len(full_span) < num_packets:
        raise WorkloadError(
            f"only {len(full_span)} level-0 nodes reach level {net.depth}, "
            f"requested {num_packets}"
        )
    picks = rng.choice(len(full_span), size=num_packets, replace=False)
    return [full_span[int(i)] for i in picks], net.depth
