"""Workload model.

A :class:`Workload` is a set of (source, destination) pairs obeying the
paper's problem model: at most one packet per source node, destinations
arbitrary (many-to-one).  Workloads are independent of path selection —
combine them with the selectors in :mod:`repro.paths` to get a
:class:`~repro.paths.RoutingProblem`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from ..errors import WorkloadError
from ..net import LeveledNetwork
from ..paths import RoutingProblem, select_paths_random
from ..rng import RngLike
from ..types import NodeId

#: Signature of the path selectors in :mod:`repro.paths`.
PathSelector = Callable[
    [LeveledNetwork, Sequence[Tuple[NodeId, NodeId]]], RoutingProblem
]


@dataclass(frozen=True)
class Workload:
    """Named endpoint set for one network."""

    name: str
    net: LeveledNetwork
    endpoints: Tuple[Tuple[NodeId, NodeId], ...]

    def __post_init__(self) -> None:
        seen: set[NodeId] = set()
        for src, dst in self.endpoints:
            if src in seen:
                raise WorkloadError(
                    f"workload {self.name!r}: two packets share source {src}"
                )
            seen.add(src)
            if src == dst:
                raise WorkloadError(
                    f"workload {self.name!r}: packet with source == "
                    f"destination ({src})"
                )
            if self.net.level(dst) <= self.net.level(src):
                raise WorkloadError(
                    f"workload {self.name!r}: destination {dst} (level "
                    f"{self.net.level(dst)}) not above source {src} (level "
                    f"{self.net.level(src)})"
                )

    @property
    def num_packets(self) -> int:
        """Number of packets (the paper's ``N``)."""
        return len(self.endpoints)

    def to_problem(self, seed: RngLike = None, selector=None) -> RoutingProblem:
        """Attach paths; defaults to random monotone selection."""
        if selector is None:
            return select_paths_random(self.net, self.endpoints, seed=seed)
        return selector(self.net, self.endpoints)


def sample_distinct_sources(
    net: LeveledNetwork,
    count: int,
    rng,
    levels: Sequence[int] | None = None,
    require_outgoing: bool = True,
) -> List[NodeId]:
    """Sample ``count`` distinct source nodes, optionally from given levels.

    Sources must be able to emit a packet, so by default nodes without
    outgoing edges are excluded; the topmost level never qualifies.
    """
    if levels is None:
        candidate_levels = range(net.depth)  # level L nodes cannot source
    else:
        candidate_levels = [l for l in levels if 0 <= l < net.depth]
    pool: List[NodeId] = []
    for level in candidate_levels:
        for v in net.nodes_at_level(level):
            if not require_outgoing or net.out_degree(v) > 0:
                pool.append(v)
    if count > len(pool):
        raise WorkloadError(
            f"requested {count} sources but only {len(pool)} candidates"
        )
    picks = rng.choice(len(pool), size=count, replace=False)
    return [pool[int(i)] for i in picks]


def random_forward_destination(
    net: LeveledNetwork,
    source: NodeId,
    rng,
    min_level: int | None = None,
) -> NodeId:
    """A uniformly random node forward-reachable from ``source``.

    ``min_level`` restricts to destinations at or above that level; raises
    :class:`~repro.errors.WorkloadError` when none exists.
    """
    reachable = sorted(net.forward_reachable(source))
    floor = net.level(source) + 1 if min_level is None else min_level
    options = [v for v in reachable if net.level(v) >= max(floor, net.level(source) + 1)]
    if not options:
        raise WorkloadError(
            f"no forward destination from source {source} at level >= {floor}"
        )
    return options[int(rng.integers(0, len(options)))]
