"""Workload generators for the experiment suite."""

from .base import (
    Workload,
    sample_distinct_sources,
    random_forward_destination,
)
from .generators import (
    random_many_to_one,
    end_to_end_permutation,
    hotspot,
    single_destination,
    level_to_level,
)
from .adversarial import funnel_through_edge, max_dilation_chain
from . import mesh as mesh_workloads
from . import butterfly as butterfly_workloads

__all__ = [
    "Workload",
    "sample_distinct_sources",
    "random_forward_destination",
    "random_many_to_one",
    "end_to_end_permutation",
    "hotspot",
    "single_destination",
    "level_to_level",
    "funnel_through_edge",
    "max_dilation_chain",
    "mesh_workloads",
    "butterfly_workloads",
]
