"""Generic workload generators (any leveled network).

Each generator returns a :class:`~repro.workloads.base.Workload`; combine
with a path selector from :mod:`repro.paths` to obtain a routing problem.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..errors import WorkloadError
from ..net import LeveledNetwork
from ..rng import RngLike, make_rng
from ..types import NodeId
from .base import Workload, random_forward_destination, sample_distinct_sources


def random_many_to_one(
    net: LeveledNetwork,
    num_packets: int,
    seed: RngLike = None,
    source_levels: Optional[Sequence[int]] = None,
    min_dest_level: Optional[int] = None,
) -> Workload:
    """The paper's default problem class: distinct sources, random dests.

    Each of ``num_packets`` distinct source nodes sends to a uniformly
    random forward-reachable destination (optionally at or above
    ``min_dest_level``); many packets may share a destination.
    """
    rng = make_rng(seed)
    sources = sample_distinct_sources(net, num_packets, rng, levels=source_levels)
    endpoints = tuple(
        (src, random_forward_destination(net, src, rng, min_level=min_dest_level))
        for src in sources
    )
    return Workload("random_many_to_one", net, endpoints)


def end_to_end_permutation(net: LeveledNetwork, seed: RngLike = None) -> Workload:
    """A random bijection from level-0 nodes onto level-``L`` nodes.

    Requires ``|level 0| == |level L|`` and full reachability (true for
    butterflies, omega networks, layered-complete networks).
    """
    rng = make_rng(seed)
    sources = list(net.nodes_at_level(0))
    targets = list(net.nodes_at_level(net.depth))
    if len(sources) != len(targets):
        raise WorkloadError(
            f"permutation needs |level 0| == |level L|, got "
            f"{len(sources)} != {len(targets)}"
        )
    perm = rng.permutation(len(targets))
    endpoints: List[Tuple[NodeId, NodeId]] = []
    for i, src in enumerate(sources):
        dst = targets[int(perm[i])]
        if dst not in net.forward_reachable(src):
            raise WorkloadError(
                f"destination {dst} unreachable from source {src}; "
                "end-to-end permutations need full level-0 -> level-L "
                "reachability"
            )
        endpoints.append((src, dst))
    return Workload("end_to_end_permutation", net, tuple(endpoints))


def hotspot(
    net: LeveledNetwork,
    num_packets: int,
    num_hotspots: int = 1,
    seed: RngLike = None,
    hotspot_level: Optional[int] = None,
) -> Workload:
    """Many-to-few: all packets aim at a handful of destination nodes.

    Drives congestion up to ``~N/num_hotspots`` on the edges into the hot
    nodes — the high-``C`` regime of the scaling experiments.  Hot spots
    default to the top level; sources are sampled among nodes that can
    reach at least one hot spot.
    """
    if num_hotspots < 1:
        raise WorkloadError(f"need >= 1 hotspot, got {num_hotspots}")
    rng = make_rng(seed)
    level = net.depth if hotspot_level is None else hotspot_level
    spots_pool = list(net.nodes_at_level(level))
    if num_hotspots > len(spots_pool):
        raise WorkloadError(
            f"{num_hotspots} hotspots requested on level {level} with "
            f"{len(spots_pool)} nodes"
        )
    picks = rng.choice(len(spots_pool), size=num_hotspots, replace=False)
    spots = [spots_pool[int(i)] for i in picks]
    feeders: dict[NodeId, List[NodeId]] = {}
    for spot in spots:
        for v in net.backward_reachable(spot):
            if v != spot and net.level(v) < level:
                feeders.setdefault(v, []).append(spot)
    pool = sorted(feeders)
    if num_packets > len(pool):
        raise WorkloadError(
            f"requested {num_packets} packets but only {len(pool)} nodes "
            f"can reach a hotspot"
        )
    chosen = rng.choice(len(pool), size=num_packets, replace=False)
    endpoints = []
    for i in chosen:
        src = pool[int(i)]
        options = feeders[src]
        endpoints.append((src, options[int(rng.integers(0, len(options)))]))
    return Workload(f"hotspot(x{num_hotspots})", net, tuple(endpoints))


def single_destination(
    net: LeveledNetwork,
    num_packets: int,
    destination: Optional[NodeId] = None,
    seed: RngLike = None,
) -> Workload:
    """Extreme many-to-one: every packet shares one destination.

    With ``num_packets = N`` the congestion on the destination's in-edges is
    ``Θ(N / in_degree)`` — the workload that pins ``C`` while ``L`` is swept.
    """
    rng = make_rng(seed)
    if destination is None:
        top = net.nodes_at_level(net.depth)
        destination = top[int(rng.integers(0, len(top)))]
    feeders = sorted(
        v
        for v in net.backward_reachable(destination)
        if v != destination and net.level(v) < net.level(destination)
    )
    if num_packets > len(feeders):
        raise WorkloadError(
            f"requested {num_packets} packets but only {len(feeders)} nodes "
            f"reach node {destination}"
        )
    picks = rng.choice(len(feeders), size=num_packets, replace=False)
    endpoints = tuple((feeders[int(i)], destination) for i in picks)
    return Workload("single_destination", net, endpoints)


def level_to_level(
    net: LeveledNetwork,
    num_packets: int,
    source_level: int,
    dest_level: int,
    seed: RngLike = None,
) -> Workload:
    """Random sources on one level, random reachable dests on another."""
    if not 0 <= source_level < dest_level <= net.depth:
        raise WorkloadError(
            f"need 0 <= source_level < dest_level <= L, got "
            f"{source_level}, {dest_level}, L={net.depth}"
        )
    rng = make_rng(seed)
    sources = sample_distinct_sources(net, num_packets, rng, levels=[source_level])
    endpoints = []
    for src in sources:
        options = [
            v
            for v in sorted(net.forward_reachable(src))
            if net.level(v) == dest_level
        ]
        if not options:
            raise WorkloadError(
                f"source {src} cannot reach any node on level {dest_level}"
            )
        endpoints.append((src, options[int(rng.integers(0, len(options)))]))
    return Workload(
        f"level_to_level({source_level}->{dest_level})", net, tuple(endpoints)
    )
