"""T6 — Theorem 4.26's probability: routing succeeds w.h.p.

"By time O((C + L)·ln^9(LN)), all packets are absorbed with probability at
least 1 − 1/LN."

The practical analog: over many independent seeded trials (fresh random
frontier-set assignment, excitation coins and tie-breaks each time), count
how often every packet is absorbed within the practical schedule
``(num_sets·m + L)·m·w``.  The Wilson interval of the success rate is
compared against the theorem's ``1 − 1/LN`` reference level.
"""

from repro.analysis import format_table, wilson_interval
from repro.experiments import (
    butterfly_hotrow_instance,
    butterfly_random_instance,
    deep_random_instance,
    run_frontier_trial,
)
from repro.rng import trial_seeds

from _common import emit, once, reset

TRIALS = 60


def success_sweep(problem, trials=TRIALS):
    successes = 0
    for seed in trial_seeds(2026, trials):
        record = run_frontier_trial(problem, seed=seed, m=8, w_factor=8.0)
        if record.result.all_delivered:
            successes += 1
    return successes


def test_t6_success_probability(benchmark):
    reset("t6_success")
    rows = []
    for name, problem in [
        ("bf(4) random", butterfly_random_instance(4, seed=51)),
        ("bf(4) hot-row N=12", butterfly_hotrow_instance(4, 12, seed=52)),
        ("random w=6 L=20", deep_random_instance(20, 6, 12, seed=53)),
    ]:
        L, N = problem.net.depth, problem.num_packets
        successes = success_sweep(problem)
        lo, hi = wilson_interval(successes, TRIALS)
        reference = 1.0 - 1.0 / (L * N)
        rows.append(
            (
                name,
                f"{successes}/{TRIALS}",
                f"[{lo:.3f}, {hi:.3f}]",
                f"{reference:.4f}",
                "yes" if hi >= reference else "NO",
            )
        )
        # The theorem's regime: failures are rare; require the interval to
        # be consistent with the 1 - 1/LN reference.
        assert hi >= reference
        assert successes >= TRIALS - 2
    emit(
        "t6_success",
        format_table(
            [
                "instance",
                "successes",
                "Wilson 95% CI",
                "theorem ref 1-1/LN",
                "consistent",
            ],
            rows,
            title=f"T6 (Theorem 4.26): delivery-within-schedule over "
            f"{TRIALS} independent trials",
            note="success = every packet absorbed within the practical "
            "schedule (num_sets*m + L)*m*w, with fresh random frontier "
            "sets and coins per trial",
        ),
    )

    problem = butterfly_random_instance(4, seed=51)
    once(benchmark, success_sweep, problem, 10)
