"""T5 — Lemmas 2.1 and 4.10: backward, safe deflections; congestion
conservation.

Lemma 2.1: if packets are injected in isolation, every deflection is
backward and safe, and current paths stay valid.  Lemma 4.10: because safe
deflections *recycle* edges between path lists, the per-frontier-set edge
congestion ``C_i^t`` never increases.  This bench runs traced trials and
audits every deflection event.
"""

from repro.analysis import format_table
from repro.core import AlgorithmParams, FrontierFrameRouter, InvariantAuditor
from repro.experiments import (
    butterfly_hotrow_instance,
    deep_random_instance,
    mesh_corner_shift_instance,
)
from repro.sim import Engine, EventKind, TraceRecorder
from repro.types import Direction

from _common import emit, once, reset


def traced_run(problem, seed):
    params = AlgorithmParams.practical(
        max(1, problem.congestion),
        problem.net.depth,
        problem.num_packets,
        m=8,
        w_factor=8.0,
    )
    router = FrontierFrameRouter(params, seed=seed)
    trace = TraceRecorder(
        keep={EventKind.DEFLECT, EventKind.UNSAFE_DEFLECT, EventKind.INJECT}
    )
    engine = Engine(problem, router, seed=seed + 1, observers=[trace.on_event])
    auditor = InvariantAuditor(router)
    auditor.install(engine)
    result = engine.run(params.total_steps)
    return result, trace, auditor.report, router


def test_t5_deflection_audit(benchmark):
    reset("t5_deflections")
    rows = []
    for name, problem in [
        ("bf(5) hot-row N=20", butterfly_hotrow_instance(5, 20, seed=41)),
        ("random w=6 L=28", deep_random_instance(28, 6, 15, seed=42, low_congestion=False)),
        ("mesh 10x10 shift", mesh_corner_shift_instance(10, block=4)),
    ]:
        result, trace, report, router = traced_run(problem, seed=5)
        assert result.all_delivered, result.summary()
        deflections = trace.of_kind(EventKind.DEFLECT)
        unsafe = trace.count(EventKind.UNSAFE_DEFLECT)
        backward = sum(
            1 for e in deflections if e.direction is Direction.BACKWARD
        )
        injections = trace.of_kind(EventKind.INJECT)
        isolated = sum(1 for e in injections if e.detail == "isolated")
        rows.append(
            (
                name,
                len(deflections) + unsafe,
                backward,
                len(deflections),  # safe ones
                unsafe,
                f"{isolated}/{len(injections)}",
                report.count("I_b"),
                report.count("I_e_conservation"),
            )
        )
        # Lemma 2.1 and Lemma 4.10, verbatim:
        assert unsafe == 0
        assert backward == len(deflections)
        assert isolated == len(injections)
        assert report.count("I_b") == 0
        assert report.count("I_e_conservation") == 0
    emit(
        "t5_deflections",
        format_table(
            [
                "instance",
                "deflections",
                "backward",
                "safe",
                "unsafe",
                "injections isolated",
                "invalid paths",
                "C_i^t growth events",
            ],
            rows,
            title="T5 (Lemmas 2.1 & 4.10): deflection audit",
            note="every deflection is backward and safe; every injection is "
            "in isolation; current paths never go invalid; per-set edge "
            "congestion never grows — exactly the lemmas' statements",
        ),
    )

    problem = butterfly_hotrow_instance(5, 20, seed=41)
    once(benchmark, traced_run, problem, 5)
