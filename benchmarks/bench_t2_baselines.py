"""T2 — "the benefit from using buffers is no more than polylogarithmic".

The paper's framing: buffered store-and-forward routing achieves
``O(C + L + log N)`` on leveled networks (Leighton et al. [16]) while the
trivial lower bound is ``Ω(C + D)`` for everyone; Theorem 4.26 shows the
bufferless frontier-frame algorithm is within a polylog of that.  This
bench runs the full router roster on shared instances and reports each
makespan as a multiple of ``max(C, D)``:

* buffered baselines (store-and-forward, random-delay) land at small
  constants;
* bufferless greedy baselines are fast when congestion is benign and
  degrade on hot spots;
* the frontier-frame router pays its polylog schedule — bounded, as the
  theorem says, and the ratio to the buffered time *is* the measured
  "benefit from buffers".
"""

import math

from repro.analysis import format_table, polylog_factor
from repro.baselines import (
    GreedyHotPotatoRouter,
    NaivePathRouter,
    RandomizedGreedyRouter,
    StoreForwardScheduler,
    run_random_delay,
)
from repro.experiments import (
    baseline_budget,
    butterfly_hotrow_instance,
    butterfly_random_instance,
    deep_random_instance,
    mesh_corner_shift_instance,
    run_frontier_trial,
    run_router_trial,
)

from _common import emit, once, reset

INSTANCES = [
    ("bf(5) random", lambda: butterfly_random_instance(5, seed=21)),
    ("bf(5) hot-row N=16", lambda: butterfly_hotrow_instance(5, 16, seed=22)),
    ("random w=6 L=24", lambda: deep_random_instance(24, 6, 12, seed=23)),
    ("mesh 8x8 corner-shift", lambda: mesh_corner_shift_instance(8)),
]


def run_all_routers(problem, seed=0):
    budget = baseline_budget(problem)
    results = {}
    results["store&forward"] = StoreForwardScheduler(problem, seed=seed).run()
    results["random-delay [16]"] = run_random_delay(problem, seed=seed)
    results["naive hot-potato"] = run_router_trial(
        problem, lambda s: NaivePathRouter(), seed, budget
    )
    results["greedy hot-potato"] = run_router_trial(
        problem, lambda s: GreedyHotPotatoRouter(seed=s), seed, budget
    )
    results["rand-greedy [11]"] = run_router_trial(
        problem, lambda s: RandomizedGreedyRouter(seed=s), seed, budget
    )
    results["frontier-frame (paper)"] = run_frontier_trial(
        problem, seed=seed, m=8, w_factor=8.0
    ).result
    return results


def test_t2_router_roster(benchmark):
    reset("t2_baselines")
    for name, factory in INSTANCES:
        problem = factory()
        results = run_all_routers(problem)
        bound = max(problem.congestion, problem.dilation)
        rows = []
        for router_name, result in results.items():
            status = "ok" if result.all_delivered else (
                f"{result.num_packets - result.delivered} stuck"
            )
            rows.append(
                (
                    router_name,
                    result.makespan,
                    f"{result.makespan / bound:.1f}x",
                    result.total_deflections,
                    status,
                )
            )
        buffered = results["store&forward"].makespan
        frontier = results["frontier-frame (paper)"].makespan
        ratio = frontier / max(1, buffered)
        ln9 = polylog_factor(problem.net.depth, problem.num_packets)
        emit(
            "t2_baselines",
            format_table(
                ["router", "T", "T/max(C,D)", "deflections", "delivered"],
                rows,
                title=f"T2: {name} — {problem.describe()}",
                note=(
                    f"buffers buy a factor {ratio:.0f} here; Theorem 4.26 "
                    f"caps it by O(ln^9(LN)) = O({ln9:.2e}) — the measured "
                    "benefit is far below the theoretical ceiling"
                ),
            ),
        )
        assert results["store&forward"].all_delivered
        assert results["frontier-frame (paper)"].all_delivered
        assert ratio <= ln9  # the paper's headline inequality

    problem = INSTANCES[0][1]()
    once(benchmark, run_all_routers, problem)
