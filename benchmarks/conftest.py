"""Make ``repro`` importable when benches run from a source checkout.

The benches are executed three ways: by the tier-1 suite's pytest run (which
gets ``pythonpath = ["src"]`` from pyproject.toml), by ``python -m repro
experiment`` (which exports PYTHONPATH to its pytest subprocess), and by
hand from this directory.  The last case has no installer help, so inject
the source tree here as a final fallback.
"""

import pathlib
import sys

_SRC = pathlib.Path(__file__).resolve().parents[1] / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
