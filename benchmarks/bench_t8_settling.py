"""T8 — Lemma 4.20: geometric settling of unsettled packets per round.

"B_j <= B_{j-1}·(1 − 1/ln(LN))" — each round, at least a `1/C_i` fraction
of the not-yet-waiting packets of a frame reach their target and settle,
because every contested target edge parks at least one packet (Lemma
4.19).  We instrument the router to record ``|B_j|`` (active packets not in
wait) at the start of every round and measure the per-round decay within
phases, comparing the realized ratio against the lemma's
``1 − 1/c*`` prediction for the configured per-set congestion bound.
"""

from collections import defaultdict

from repro.analysis import format_table, summarize
from repro.core import AlgorithmParams, FrontierFrameRouter
from repro.experiments import deep_random_instance
from repro.sim import Engine

from _common import emit, once, reset


def settling_curves(problem, c_star, seed):
    params = AlgorithmParams.practical(
        max(1, problem.congestion),
        problem.net.depth,
        problem.num_packets,
        m=10,
        w_factor=8.0,
        set_congestion_target=c_star,
        oversplit=1.0,
    )
    router = FrontierFrameRouter(
        params, seed=seed, collect_round_stats=True
    )
    engine = Engine(problem, router, seed=seed + 1, enable_fast_forward=False)
    result = engine.run(params.total_steps)
    assert result.all_delivered, result.summary()
    by_phase = defaultdict(dict)
    for phase, round_index, active, unsettled in router.round_stats:
        by_phase[phase][round_index] = (active, unsettled)
    return params, by_phase


def decay_ratios(by_phase):
    """Per-round ratios B_{j+1}/B_j over rounds 1..m-1 (rounds >= 1 share
    the receding-target regime of the lemma)."""
    ratios = []
    for rounds in by_phase.values():
        for j in sorted(rounds):
            nxt = rounds.get(j + 1)
            if nxt is None or j < 1:
                continue
            _, b_j = rounds[j]
            _, b_next = nxt
            if b_j >= 2:
                ratios.append(b_next / b_j)
    return ratios


def test_t8_settling_decay(benchmark):
    reset("t8_settling")
    problem = deep_random_instance(30, 6, 18, seed=101, low_congestion=False)
    rows = []
    for c_star in (float(problem.congestion), 3.0, 2.0):
        params, by_phase = settling_curves(problem, c_star, seed=102)
        ratios = decay_ratios(by_phase)
        if not ratios:
            rows.append((f"c*={c_star:.0f}", params.num_sets, "-", "-", "-"))
            continue
        stats = summarize(ratios)
        lemma_ratio = 1.0 - 1.0 / max(1.0, c_star)
        rows.append(
            (
                f"c*={c_star:.0f}",
                params.num_sets,
                len(ratios),
                f"{stats.mean:.2f}",
                f"{lemma_ratio:.2f}",
            )
        )
        # The lemma's shape: realized decay at least as fast as predicted
        # (the bound is a worst case).
        assert stats.mean <= lemma_ratio + 0.15, (c_star, stats)
    emit(
        "t8_settling",
        format_table(
            [
                "config",
                "frames",
                "round transitions",
                "mean B_{j+1}/B_j",
                "lemma bound 1-1/c*",
            ],
            rows,
            title=f"T8 (Lemma 4.20): per-round settling decay on "
            f"{problem.describe()}",
            note="realized decay is at or below the lemma's worst-case "
            "ratio: a constant fraction of unsettled packets parks each "
            "round, geometrically emptying the frame tail (whence "
            "invariant I_f)",
        ),
    )

    once(benchmark, settling_curves, problem, 3.0, 102)


def test_t8_rounds_to_settle(benchmark):
    """How many rounds until B_j = 0, vs the m budget."""
    problem = deep_random_instance(30, 6, 18, seed=103, low_congestion=False)
    params, by_phase = settling_curves(problem, 3.0, seed=104)
    rows = []
    worst = 0
    for phase in sorted(by_phase):
        rounds = by_phase[phase]
        settle_round = None
        for j in sorted(rounds):
            if rounds[j][1] == 0:
                settle_round = j
                break
        if settle_round is None:
            settle_round = max(rounds) + 1
        worst = max(worst, settle_round)
        rows.append((phase, rounds[min(rounds)][0], settle_round))
    emit(
        "t8_settling",
        format_table(
            ["phase", "active packets", "rounds until B_j = 0"],
            rows[:14],
            title=f"T8b: settling time per phase (m = {params.m} rounds "
            "available)",
            note=f"worst observed: {worst} rounds — comfortably inside the "
            f"m = {params.m} budget, leaving the I_f margin intact",
        ),
    )
    assert worst <= params.m - 3  # leaves the last-3-levels margin

    once(benchmark, settling_curves, problem, 3.0, 104)
