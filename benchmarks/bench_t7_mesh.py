"""T7 — the Section 5 application: n x n mesh with C, D = O(n) paths.

"An immediate application of our algorithm is on routing in multiprocessor
networks which are represented as leveled networks.  For example, in [16]
the authors describe how to obtain optimal paths for the n x n mesh with
congestion and dilation n, and our algorithm can be used to route these
packets with time close to the optimal up to polylogarithmic factors."

We instantiate the application with dimension-order monotone paths
(C, D <= 2n; see DESIGN.md's substitution table), sweep the mesh size, and
check the routing time grows Õ(n).
"""

from repro.analysis import fit_affine, format_table
from repro.experiments import (
    mesh_corner_shift_instance,
    mesh_monotone_instance,
    run_frontier_trial,
)

from _common import emit, once, reset


def run_mesh(problem, seed):
    return run_frontier_trial(
        problem, seed=seed, m=8, w_factor=8.0, set_congestion_target=3.0
    )


def test_t7_mesh_size_sweep(benchmark):
    reset("t7_mesh")
    rows = []
    xs, ts = [], []
    for n in (4, 6, 8, 10, 12, 14):
        # Random monotone workloads have endpoint-driven congestion, so T
        # tracks C + L (the theorem's yardstick) rather than n alone;
        # average over fresh workloads to tame the discrete jumps the
        # ceil(C / c*) frame count introduces at small C.
        makespans, cs = [], []
        last = None
        for wl_seed in (61, 65, 69):
            problem = mesh_monotone_instance(
                n, num_packets=n * n // 3, seed=wl_seed
            )
            record = run_mesh(problem, seed=wl_seed + 1)
            assert record.result.all_delivered, record.result.summary()
            makespans.append(record.result.makespan)
            cs.append(problem.congestion)
            last = problem
        mean_t = sum(makespans) / len(makespans)
        mean_c = sum(cs) / len(cs)
        rows.append(
            (
                f"{n}x{n}",
                last.num_packets,
                f"{mean_c:.1f}",
                last.dilation,
                last.net.depth,
                int(mean_t),
                f"{mean_t / n:.0f}",
            )
        )
        xs.append(mean_c + last.net.depth)
        ts.append(mean_t)
    fit = fit_affine(xs, ts)
    emit(
        "t7_mesh",
        format_table(
            ["mesh", "N", "C", "D", "L", "T (mean)", "T/n"],
            rows,
            title="T7 (Section 5): monotone mesh routing with "
            "dimension-order O(n) paths",
            note=f"affine fit T = {fit.intercept:.0f} + {fit.slope:.0f}·(C+L), "
            f"R² = {fit.r_squared:.4f} — Õ(C+L) = Õ(n) as the application "
            "promises (C, D <= 2n and L = 2n-2)",
        ),
    )
    assert fit.r_squared > 0.85

    problem = mesh_monotone_instance(10, num_packets=20, seed=61)
    once(benchmark, run_mesh, problem, 62)


def test_t7_corner_shift_stress(benchmark):
    rows = []
    ns, ts = [], []
    for n in (6, 8, 10, 12):
        problem = mesh_corner_shift_instance(n)
        record = run_mesh(problem, seed=63)
        assert record.result.all_delivered
        rows.append(
            (
                f"{n}x{n} shift",
                problem.num_packets,
                problem.congestion,
                problem.dilation,
                record.result.makespan,
                record.result.total_deflections,
            )
        )
        ns.append(n)
        ts.append(record.result.makespan)
    fit = fit_affine(ns, ts)
    emit(
        "t7_mesh",
        format_table(
            ["instance", "N", "C", "D", "T", "deflections"],
            rows,
            title="T7b: deterministic corner-shift stress (block = n/2, "
            "C = n/2, D = n)",
            note=f"affine fit T = {fit.intercept:.0f} + {fit.slope:.0f}·n, "
            f"R² = {fit.r_squared:.4f}",
        ),
    )
    assert fit.r_squared > 0.9

    once(benchmark, run_mesh, mesh_corner_shift_instance(10), 63)
