"""T1 — Theorem 4.26: routing time scales as Õ(C + L).

Two sweeps with a *fixed* frame parameterization (m, w, per-set congestion
target held constant so the polylog factor is the same across instances):

* C-sweep: hot-row butterflies, depth fixed, congestion growing with the
  packet count;
* L-sweep: random leveled networks of growing depth, congestion held low
  by bottleneck path selection.

For each instance we report the makespan, the ratio to the trivial bound
``max(C, D)``, and the effective polylog exponent β solving
``T = (C+L)·ln^β(LN)``; a straight-line fit of ``T`` against ``C + L``
closes the table.  The paper predicts linear growth in ``C + L`` (β ≤ 9 for
the theory constants; the practical parameterization lands near β ≈ 2–4).
"""

from repro.analysis import (
    effective_polylog_exponent,
    fit_affine,
    format_table,
)
from repro.core import AlgorithmParams
from repro.experiments import (
    butterfly_hotrow_instance,
    deep_random_instance,
    run_frontier_trial,
    run_trials_for_problem,
)
from repro.rng import stable_hash_seed

from _common import bench_workers, emit, once, reset

#: fixed frame parameterization for the whole sweep
FRAME_KW = dict(m=8, w_factor=8.0, set_congestion_target=3.0)
SEEDS = [0, 1, 2]


def run_point(problem, seed):
    params = AlgorithmParams.practical(
        max(1, problem.congestion),
        problem.net.depth,
        problem.num_packets,
        **FRAME_KW,
    )
    return run_frontier_trial(problem, seed=seed, params=params)


def sweep(instances, label):
    rows = []
    xs, ys = [], []
    workers = bench_workers()
    for index, (name, problem) in enumerate(instances):
        # Per-seed trials of one instance are independent; fan them across
        # $REPRO_BENCH_WORKERS processes (records are identical at any
        # worker count, so the table never changes — only the wall clock).
        params = AlgorithmParams.practical(
            max(1, problem.congestion),
            problem.net.depth,
            problem.num_packets,
            **FRAME_KW,
        )
        records = run_trials_for_problem(
            problem,
            [stable_hash_seed(seed, index) for seed in SEEDS],
            workers=workers,
            params=params,
        )
        makespans = []
        for record in records:
            assert record.result.all_delivered, (name, record.result.summary())
            makespans.append(record.result.makespan)
        mean_t = sum(makespans) / len(makespans)
        c, l, n = problem.congestion, problem.net.depth, problem.num_packets
        xs.append(c + l)
        ys.append(mean_t)
        rows.append(
            (
                name,
                n,
                c,
                l,
                c + l,
                int(mean_t),
                f"{mean_t / max(1, max(c, problem.dilation)):.0f}x",
                f"{effective_polylog_exponent(int(mean_t), c, l, n):.2f}",
            )
        )
    # Affine fit: the pipeline fill (num_sets*m phases before the last
    # frame enters) contributes a parameterization constant; the slope is
    # the per-(C+L) cost Theorem 4.26 bounds by the polylog.
    fit = fit_affine(xs, ys)
    return rows, fit


def test_t1_congestion_sweep(benchmark):
    reset("t1_scaling")
    instances = [
        (f"bf(5) hot-row N={n}", butterfly_hotrow_instance(5, n, seed=11))
        for n in (4, 8, 12, 16, 24, 32)
    ]
    rows, fit = sweep(instances, "C")
    emit(
        "t1_scaling",
        format_table(
            ["instance", "N", "C", "L", "C+L", "T (mean)", "T/max(C,D)", "eff. β"],
            rows,
            title="T1a: C-sweep (depth fixed at L=5, congestion grows)",
            note=f"affine fit T = {fit.intercept:.0f} + {fit.slope:.0f}·(C+L), "
            f"R² = {fit.r_squared:.4f} — near-linear growth in C as "
            "Theorem 4.26 predicts",
        ),
    )
    assert fit.r_squared > 0.9

    once(benchmark, run_point, instances[-1][1], 0)


def test_t1_depth_sweep(benchmark):
    instances = [
        (
            f"random w=6 L={depth}",
            deep_random_instance(depth, 6, 12, seed=13),
        )
        for depth in (10, 16, 24, 32, 48, 64)
    ]
    rows, fit = sweep(instances, "L")
    emit(
        "t1_scaling",
        format_table(
            ["instance", "N", "C", "L", "C+L", "T (mean)", "T/max(C,D)", "eff. β"],
            rows,
            title="T1b: L-sweep (congestion held low, depth grows)",
            note=f"affine fit T = {fit.intercept:.0f} + {fit.slope:.0f}·(C+L), "
            f"R² = {fit.r_squared:.4f} — near-linear growth in L as "
            "Theorem 4.26 predicts",
        ),
    )
    assert fit.r_squared > 0.9

    once(benchmark, run_point, instances[-1][1], 0)
