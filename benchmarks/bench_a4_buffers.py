"""A4 — ablation: the buffer spectrum from bufferless to unbounded.

The paper's framing places hot-potato routing at the zero-buffer extreme
and cites Leighton et al.'s constant-buffer `O(C + L + log N)` result [16]
as the buffered reference.  This bench sweeps per-edge buffer capacity
``k`` on heavy instances:

* ``k = 1..∞`` — bounded-buffer store-and-forward with backpressure
  (:class:`repro.baselines.BoundedBufferScheduler`; unbounded =
  :class:`~repro.baselines.StoreForwardScheduler`);
* ``k = 0`` — the bufferless routers (naive deflection and the paper's
  frontier-frame algorithm).

Expected shape: completion time is already near-optimal at small constant
``k`` (the [16] message), blocking pressure falls rapidly with ``k``, and
the bufferless column pays either deflection churn (naive, no guarantee)
or the polylog schedule (the paper's algorithm, guaranteed).
"""

from repro.analysis import format_table
from repro.baselines import (
    BoundedBufferScheduler,
    NaivePathRouter,
    StoreForwardScheduler,
)
from repro.experiments import (
    baseline_budget,
    funnel_instance,
    mesh_corner_shift_instance,
    run_frontier_trial,
    run_router_trial,
)

from _common import emit, once, reset


def buffer_sweep(problem, seed=0):
    rows = []
    naive = run_router_trial(
        problem, lambda s: NaivePathRouter(), seed, baseline_budget(problem)
    )
    rows.append(
        (
            "k=0 (naive deflection)",
            naive.makespan,
            f"{naive.makespan / max(1, problem.lower_bound):.1f}x",
            naive.total_deflections,
            "-",
        )
    )
    for k in (1, 2, 4, 8):
        result = BoundedBufferScheduler(problem, buffer_size=k, seed=seed).run()
        assert result.all_delivered, result.summary()
        rows.append(
            (
                f"k={k}",
                result.makespan,
                f"{result.makespan / max(1, problem.lower_bound):.1f}x",
                int(result.extra["blocked_steps"]),
                int(result.extra["max_buffer_occupancy"]),
            )
        )
    unbounded = StoreForwardScheduler(problem, seed=seed).run()
    rows.append(
        (
            "k=inf (unbounded)",
            unbounded.makespan,
            f"{unbounded.makespan / max(1, problem.lower_bound):.1f}x",
            0,
            int(unbounded.extra["max_queue_depth"]),
        )
    )
    frontier = run_frontier_trial(problem, seed=seed, m=8, w_factor=8.0).result
    rows.append(
        (
            "k=0 (frontier-frame, guaranteed)",
            frontier.makespan,
            f"{frontier.makespan / max(1, problem.lower_bound):.1f}x",
            frontier.total_deflections,
            "-",
        )
    )
    return rows, naive, unbounded


def test_a4_buffer_spectrum(benchmark):
    reset("a4_buffers")
    for name, problem in [
        ("funnel C=N on bf(5)", funnel_instance(5, 12, seed=95)),
        ("mesh 12x12 corner shift", mesh_corner_shift_instance(12)),
    ]:
        rows, naive, unbounded = buffer_sweep(problem)
        emit(
            "a4_buffers",
            format_table(
                ["buffers", "T", "T/max(C,D)", "blocked/defl", "peak occupancy"],
                rows,
                title=f"A4: buffer spectrum on {name} — {problem.describe()}",
                note="constant buffers already deliver near the C+D bound "
                "([16]'s message); blocking pressure falls sharply with k; "
                "bufferless routing trades buffers for deflections (naive) "
                "or for the guaranteed polylog schedule (the paper)",
            ),
        )
        # Shape assertions: k=1 already delivers; time is monotone-ish
        # toward the unbounded value.
        times = [row[1] for row in rows[1:6]]
        assert times[-1] <= times[0] + 2

    problem = mesh_corner_shift_instance(12)
    once(benchmark, buffer_sweep, problem)
