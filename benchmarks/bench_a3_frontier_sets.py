"""A3 — ablation: number of frontier-sets (the paper's aC).

The frontier-sets trade schedule length against per-set congestion: more
sets mean more pipelined frames (phases grow by m per set) but fewer
packets per frame, so conflicts within a frame get rarer and Lemma 2.2's
bound gets easier.  Sweeping the per-set congestion target c* (num_sets ≈
C·oversplit/c*) exposes the trade:

* one set (c* = C) maximizes in-frame congestion — settling takes the most
  rounds and the realized max C_i equals C itself;
* the paper's regime (many sets, expected per-set congestion < 1) makes
  frames almost conflict-free at the price of a long pipeline.
"""

from repro.analysis import format_table
from repro.core import AlgorithmParams
from repro.experiments import butterfly_hotrow_instance, run_frontier_trial
from repro.rng import trial_seeds

from _common import emit, once, reset

SEEDS = trial_seeds(1618, 5)


def sweep_sets(problem, c_star, oversplit):
    params = AlgorithmParams.practical(
        max(1, problem.congestion),
        problem.net.depth,
        problem.num_packets,
        m=8,
        w_factor=8.0,
        set_congestion_target=c_star,
        oversplit=oversplit,
    )
    delivered = 0
    makespans, worst_ci, deflections = [], 0, []
    for seed in SEEDS:
        record = run_frontier_trial(problem, seed=seed, params=params, audit=True)
        if record.result.all_delivered:
            delivered += 1
        makespans.append(record.result.makespan)
        worst_ci = max(worst_ci, record.audit.max_set_congestion_seen)
        deflections.append(record.result.total_deflections)
    return params, delivered, makespans, worst_ci, deflections


def test_a3_frontier_set_count(benchmark):
    reset("a3_frontier_sets")
    problem = butterfly_hotrow_instance(5, 24, seed=91)
    C = problem.congestion
    rows = []
    for label, c_star, oversplit in [
        ("1 set (c*=C)", float(C), 1.0),
        ("c*=6", 6.0, 1.0),
        ("c*=3", 3.0, 1.0),
        ("c*=3, 2x slack", 3.0, 2.0),
        ("c*=1 (paper-ish)", 1.0, 2.0),
    ]:
        params, delivered, makespans, worst_ci, deflections = sweep_sets(
            problem, c_star, oversplit
        )
        rows.append(
            (
                label,
                params.num_sets,
                f"{delivered}/{len(SEEDS)}",
                worst_ci,
                int(sum(makespans) / len(makespans)),
                int(sum(deflections) / len(deflections)),
            )
        )
    emit(
        "a3_frontier_sets",
        format_table(
            ["configuration", "sets", "delivered", "max C_i^t", "T (mean)", "deflections"],
            rows,
            title=f"A3: frontier-set ablation on {problem.describe()}",
            note="more sets -> per-frame congestion (max C_i^t) drops and "
            "conflicts vanish, but each extra set adds m phases to the "
            "pipeline (T grows); the paper buys its w.h.p. guarantee with "
            "the far-right regime",
        ),
    )
    # Monotone shape checks: per-set congestion falls as sets grow.
    set_counts = [row[1] for row in rows]
    worst = [row[3] for row in rows]
    assert set_counts == sorted(set_counts)
    assert worst == sorted(worst, reverse=True)

    once(benchmark, sweep_sets, problem, 3.0, 1.0)
