"""T4 — Lemma 2.2: frontier-set congestion concentration.

"Using a Chernoff-type bound, we can show, with high probability, that the
congestion of the preselected paths in all the frontier-sets is no more
than ln(LN)."

This bench draws many uniform frontier-set assignments for fixed problems,
measures the realized ``max_i C_i``, and compares:

* the empirical exceedance rate of the bound against the Chernoff/union
  prediction (:func:`repro.analysis.lemma22_failure_bound`);
* the realized distribution against the predicted concentration quantiles.
"""

import math

from repro.analysis import (
    empirical_exceedance_rate,
    format_table,
    lemma22_failure_bound,
    predicted_max_set_congestion_quantile,
    summarize,
)
from repro.core import assign_frontier_sets, max_frontier_set_congestion
from repro.experiments import butterfly_hotrow_instance, butterfly_random_instance
from repro.rng import trial_seeds

from _common import emit, once, reset

TRIALS = 300


def concentration(problem, num_sets, bound):
    maxima = [
        max_frontier_set_congestion(
            problem,
            assign_frontier_sets(problem, num_sets, seed=seed),
            num_sets,
        )
        for seed in trial_seeds(4242, TRIALS)
    ]
    return maxima


def test_t4_set_congestion_concentration(benchmark):
    reset("t4_congestion")
    rows = []
    for name, problem in [
        ("bf(6) hot-row N=40", butterfly_hotrow_instance(6, 40, seed=31)),
        ("bf(6) random", butterfly_random_instance(6, seed=32)),
        ("bf(5) hot-row N=24", butterfly_hotrow_instance(5, 24, seed=33)),
    ]:
        L, N, C = problem.net.depth, problem.num_packets, problem.congestion
        lnln = max(1.0, math.log(L * N))
        # Paper-style set count with the 2e^3 slack, and the ln(LN) bound.
        num_sets = max(1, math.ceil(2 * math.e**3 / lnln * C))
        maxima = concentration(problem, num_sets, lnln)
        stats = summarize(maxima)
        empirical = empirical_exceedance_rate(maxima, lnln)
        predicted = lemma22_failure_bound(
            C, L, N, num_sets, problem.net.num_edges, lnln
        )
        q99 = predicted_max_set_congestion_quantile(
            C, num_sets, problem.net.num_edges, quantile=0.99
        )
        rows.append(
            (
                name,
                C,
                num_sets,
                f"{lnln:.2f}",
                f"{stats.mean:.2f}",
                int(stats.maximum),
                q99,
                f"{empirical:.4f}",
                f"{predicted:.2e}",
            )
        )
        # Lemma 2.2's shape: realized exceedance is within the predicted
        # union bound (both are ~0 with the paper's slack).
        assert empirical <= max(predicted, 1.5 / TRIALS)
        assert stats.maximum <= max(lnln, q99)
    emit(
        "t4_congestion",
        format_table(
            [
                "instance",
                "C",
                "aC (sets)",
                "ln(LN)",
                "mean max C_i",
                "worst",
                "pred. q99",
                "empirical P[>ln(LN)]",
                "union bound",
            ],
            rows,
            title=f"T4 (Lemma 2.2): max frontier-set congestion over "
            f"{TRIALS} random assignments",
            note="with the paper's a = 2e^3/ln(LN) oversplit, per-set "
            "congestion concentrates far below ln(LN); the union bound "
            "dominates the (zero) empirical exceedance",
        ),
    )

    problem = butterfly_hotrow_instance(5, 24, seed=33)
    once(benchmark, concentration, problem, 8, 3.0)
