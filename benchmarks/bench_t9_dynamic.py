"""T9 — dynamic deflection routing (after the paper's reference [9]).

The paper routes static batches; Broder–Upfal's dynamic setting (which it
cites as the hot-potato context) injects packets continuously.  The
engine's timed-eligibility mechanism handles this directly; the bench
sweeps Bernoulli injection rates toward the bandwidth limit on a butterfly
and reports the classic stability picture: latency is flat and near the
path length at low load and diverges as utilization approaches 1, while
deflections stay backward-and-safe throughout (the Lemma 2.1 mechanics are
load-independent).
"""

from repro.analysis import format_table
from repro.dynamic import (
    DynamicGreedyRouter,
    DynamicNaiveRouter,
    arrivals_to_problem,
    bernoulli_arrivals,
    dynamic_stats,
    offered_load,
)
from repro.net import butterfly
from repro.sim import Engine

from _common import emit, once, reset

HORIZON = 200


def run_dynamic(net, rate, router_kind, seed):
    arrivals = bernoulli_arrivals(net, rate, horizon=HORIZON, seed=seed)
    problem, times = arrivals_to_problem(net, arrivals, seed=seed + 1)
    if router_kind == "naive":
        router = DynamicNaiveRouter(times)
    else:
        router = DynamicGreedyRouter(times, seed=seed + 2)
    engine = Engine(problem, router, seed=seed + 3)
    result = engine.run(HORIZON + 50000)
    stats = dynamic_stats(
        result, times, [len(spec.path) for spec in problem]
    )
    load = offered_load(net, arrivals, HORIZON)
    return load, result, stats


def test_t9_stability_sweep(benchmark):
    reset("t9_dynamic")
    net = butterfly(4)
    for router_kind in ("naive", "greedy"):
        rows = []
        stretches = []
        for rate in (0.1, 0.3, 0.5, 0.7, 0.9):
            load, result, stats = run_dynamic(net, rate, router_kind, seed=7)
            assert result.all_delivered, result.summary()
            assert result.unsafe_deflections == 0
            rows.append((f"{rate:.1f}", f"{load:.2f}") + stats.as_row())
            stretches.append(stats.mean_hop_stretch)
        emit(
            "t9_dynamic",
            format_table(
                [
                    "rate",
                    "util",
                    "packets",
                    "delivered",
                    "drained",
                    "mean lat",
                    "p50",
                    "p95",
                    "stretch",
                ],
                rows,
                title=f"T9 ({router_kind}): dynamic deflection routing on "
                f"{net.describe()}, {HORIZON}-step Bernoulli arrivals",
                note="latency diverges as utilization approaches the "
                "bandwidth limit (the [9] stability picture); every "
                "deflection remained backward and safe at every load",
            ),
        )
        # Stability shape: latency stretch grows monotonically-ish in load.
        assert stretches[-1] > 2 * stretches[0]

    once(benchmark, run_dynamic, net, 0.5, "naive", 7)
