"""A2 — ablation: frame size m and round length w.

The analysis needs (i) enough rounds per phase for the geometric settling
of Lemma 4.20 to empty the last three inner-levels (invariant I_f), and
(ii) rounds long enough for a packet to cross the frame plus deflection
retries (Lemma 4.5's ``(w−m−1)/2 − m`` retries).  Shrinking w (or m) below
the design point makes I_f/I_c violations appear and packets fall out of
their frames — exactly the failure mode the invariants guard against.
"""

from repro.analysis import format_table
from repro.core import AlgorithmParams
from repro.experiments import deep_random_instance, run_frontier_trial
from repro.rng import trial_seeds

from _common import emit, once, reset

SEEDS = trial_seeds(2718, 4)


def sweep_geometry(problem, m, w_factor):
    params = AlgorithmParams.practical(
        max(1, problem.congestion),
        problem.net.depth,
        problem.num_packets,
        m=m,
        w_factor=w_factor,
    )
    delivered = 0
    violations = {"I_c": 0, "I_f": 0}
    makespans = []
    for seed in SEEDS:
        record = run_frontier_trial(
            problem, seed=seed, params=params, audit=True, condition_sets=True
        )
        if record.result.all_delivered:
            delivered += 1
        makespans.append(record.result.makespan)
        for key in violations:
            violations[key] += record.audit.count(key)
    return delivered, violations, sum(makespans) / len(makespans)


def test_a2_round_length(benchmark):
    reset("a2_frame_geometry")
    problem = deep_random_instance(24, 6, 16, seed=81, low_congestion=False)
    rows = []
    for m, w_factor in [
        (8, 0.5),   # w < m: a round cannot even cross the frame
        (8, 1.0),
        (8, 2.0),
        (8, 4.0),
        (8, 8.0),
    ]:
        delivered, violations, mean_t = sweep_geometry(problem, m, w_factor)
        rows.append(
            (
                f"m={m}, w={int(w_factor * m)}",
                f"{delivered}/{len(SEEDS)}",
                violations["I_c"],
                violations["I_f"],
                int(mean_t),
            )
        )
    emit(
        "a2_frame_geometry",
        format_table(
            ["geometry", "delivered", "I_c violations", "I_f violations", "T (mean)"],
            rows,
            title=f"A2a: round-length ablation on {problem.describe()}",
            note="reproduction finding: the receding target is self-pacing "
            "— even rounds shorter than the frame stay clean at low "
            "contention, because late rounds' targets sit within reach; "
            "w scales time linearly without buying correctness here "
            "(the binding margin is m, see A2b)",
        ),
    )
    # The design point (w_factor >= 4) must be clean.
    for row in rows[2:]:
        assert row[2] == 0 and row[3] == 0, row

    once(benchmark, sweep_geometry, problem, 8, 8.0)


def test_a2_frame_size(benchmark):
    problem = deep_random_instance(24, 6, 16, seed=82, low_congestion=False)
    rows = []
    for m in (4, 6, 8, 12, 16):
        delivered, violations, mean_t = sweep_geometry(problem, m, 8.0)
        rows.append(
            (
                f"m={m}",
                f"{delivered}/{len(SEEDS)}",
                violations["I_c"],
                violations["I_f"],
                int(mean_t),
            )
        )
    emit(
        "a2_frame_geometry",
        format_table(
            ["frame size", "delivered", "I_c violations", "I_f violations", "T (mean)"],
            rows,
            title=f"A2b: frame-size ablation on {problem.describe()}",
            note="small m leaves too few rounds for every packet to settle "
            "before the 3-level I_f margin; large m inflates every phase "
            "(T grows ~quadratically in m via phases x steps-per-phase)",
        ),
    )

    once(benchmark, sweep_geometry, problem, 8, 8.0)
