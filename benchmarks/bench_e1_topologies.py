"""E1 — Figure 1: leveled-network topologies.

The paper's Figure 1 shows a generic leveled network plus the butterfly and
mesh as canonical instances, and Section 1.1 lists the shuffle-exchange,
multidimensional array, hypercube and fat-tree as further members of the
family.  This bench builds every family member, re-derives the leveled
property from scratch, and prints the structural table; the timed portion
is topology construction + validation.
"""

from repro.analysis import format_table
from repro.net import (
    MeshCorner,
    butterfly,
    fat_tree,
    hypercube,
    mesh,
    multidim_array,
    omega_network,
    profile,
    random_leveled,
    validate_leveled,
)

from _common import emit, once, reset


def family():
    yield "butterfly(4)", butterfly(4)
    yield "butterfly(6)", butterfly(6)
    yield "mesh 8x8 (NW)", mesh(8, 8)
    yield "mesh 8x8 (SE)", mesh(8, 8, MeshCorner.SOUTH_EAST)
    yield "mesh 12x12", mesh(12, 12)
    yield "hypercube(6)", hypercube(6)
    yield "array 4x4x4", multidim_array((4, 4, 4))
    yield "omega(5)", omega_network(5)
    yield "fat-tree h=5", fat_tree(5)
    yield "random 10x16", random_leveled([10] * 17, 0.4, seed=0)


def test_e1_topology_validation(benchmark):
    reset("e1_topologies")
    rows = []
    for name, net in family():
        report = validate_leveled(net)
        assert report.ok, f"{name}: {report.problems}"
        prof = profile(net)
        rows.append(
            (
                name,
                prof.depth,
                prof.num_nodes,
                prof.num_edges,
                f"{prof.min_degree}..{prof.max_degree}",
                "yes" if report.ok else "NO",
            )
        )
    emit(
        "e1_topologies",
        format_table(
            ["topology", "L", "|V|", "|E|", "degree", "leveled?"],
            rows,
            title="E1 (Figure 1): leveled-network family, structural audit",
            note="every edge joins consecutive levels; every node has "
            "exactly one level (re-derived from scratch by the validator)",
        ),
    )

    def build_and_validate():
        for _name, net in family():
            assert validate_leveled(net).ok

    once(benchmark, build_and_validate)
