"""T3 — the Section 4 invariants hold during routing.

The analysis proves invariants I_a..I_f hold through every phase w.h.p.
This bench runs fully audited trials across the topology battery:

* with frontier-set assignments conditioned on Lemma 2.2's good event
  (``C_i <= bound``), every invariant must hold *deterministically* — that
  is the content of Sections 4.1–4.2 given I_e;
* with unconditioned (paper-faithful, uniformly random) assignments, the
  only expected violations are I_e itself on unlucky draws; the frame
  machinery (I_a–I_d, I_f) must still hold whenever I_e does.
"""

from repro.analysis import format_table
from repro.experiments import run_frontier_trial, small_audit_suite
from repro.rng import stable_hash_seed

from _common import emit, once, reset

INVARIANTS = ("I_a", "I_b", "I_c", "I_d", "I_e", "I_e_conservation", "I_f")
SEEDS = [0, 1, 2]


def audit_battery(condition_sets):
    rows = []
    clean = 0
    total = 0
    for index, (name, problem) in enumerate(small_audit_suite(seed=77)):
        counts = {inv: 0 for inv in INVARIANTS}
        delivered = 0
        max_ci = 0
        for seed in SEEDS:
            record = run_frontier_trial(
                problem,
                seed=stable_hash_seed(seed, index),
                audit=True,
                condition_sets=condition_sets,
                audit_congestion_bound=3.0,
                m=8,
                w_factor=8.0,
                set_congestion_target=3.0,
            )
            total += 1
            if record.ok:
                clean += 1
            delivered += record.result.delivered
            max_ci = max(max_ci, record.audit.max_set_congestion_seen)
            for inv in INVARIANTS:
                counts[inv] += record.audit.count(inv)
        rows.append(
            (
                name,
                delivered,
                max_ci,
                *(counts[inv] for inv in INVARIANTS),
            )
        )
    return rows, clean, total


def test_t3_invariants_conditioned(benchmark):
    reset("t3_invariants")
    rows, clean, total = audit_battery(condition_sets=True)
    emit(
        "t3_invariants",
        format_table(
            ["instance", "delivered", "max C_i^t"] + list(INVARIANTS),
            rows,
            title="T3a: invariant audit, conditioned on Lemma 2.2's good event",
            note=f"{clean}/{total} trials fully clean — given I_e, the "
            "analysis' invariants hold deterministically, as proved in "
            "Sections 4.1-4.2",
        ),
    )
    # Conditioned runs must be spotless.
    for row in rows:
        assert all(v == 0 for v in row[3:]), row

    problem = small_audit_suite(seed=77)[0][1]
    once(
        benchmark,
        run_frontier_trial,
        problem,
        seed=1,
        audit=True,
        condition_sets=True,
    )


def test_t3_invariants_unconditioned(benchmark):
    rows, clean, total = audit_battery(condition_sets=False)
    emit(
        "t3_invariants",
        format_table(
            ["instance", "delivered", "max C_i^t"] + list(INVARIANTS),
            rows,
            title="T3b: invariant audit, uniform random frontier-sets "
            "(paper-faithful)",
            note="only I_e (the probabilistic Lemma 2.2 event) may fail on "
            "unlucky draws; the structural invariants and congestion "
            "conservation (I_e_conservation, Lemma 4.10) never do",
        ),
    )
    for row in rows:
        name, delivered, max_ci, ia, ib, ic, id_, ie, ie_cons, if_ = row
        assert ia == 0 and ib == 0 and ie_cons == 0, row

    problem = small_audit_suite(seed=77)[1][1]
    once(
        benchmark,
        run_frontier_trial,
        problem,
        seed=1,
        audit=True,
        condition_sets=False,
    )
