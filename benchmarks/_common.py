"""Shared helpers for the benchmark/reproduction harness.

Every ``bench_*.py`` module regenerates one experiment from DESIGN.md's
index.  Tables are printed (visible with ``pytest -s``) *and* written to
``benchmarks/results/<experiment>.txt`` so EXPERIMENTS.md can quote them
after any run.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(experiment_id: str, text: str) -> None:
    """Print a reproduction table and persist it under benchmarks/results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{experiment_id}.txt"
    with path.open("a", encoding="utf-8") as fh:
        fh.write(text)
        fh.write("\n\n")


def reset(experiment_id: str) -> None:
    """Start a fresh results file for one experiment."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{experiment_id}.txt").write_text("", encoding="utf-8")


def once(benchmark, fn, *args, **kwargs):
    """Time ``fn`` exactly once (expensive end-to-end runs)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
