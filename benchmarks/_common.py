"""Shared helpers for the benchmark/reproduction harness.

Every ``bench_*.py`` module regenerates one experiment from DESIGN.md's
index.  Tables are printed (visible with ``pytest -s``) *and* written to
``benchmarks/results/<experiment>.txt`` so EXPERIMENTS.md can quote them
after any run.
"""

from __future__ import annotations

import json
import os
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


def emit(experiment_id: str, text: str) -> None:
    """Print a reproduction table and persist it under benchmarks/results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{experiment_id}.txt"
    with path.open("a", encoding="utf-8") as fh:
        fh.write(text)
        fh.write("\n\n")


def reset(experiment_id: str) -> None:
    """Start a fresh results file for one experiment."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{experiment_id}.txt").write_text("", encoding="utf-8")


def once(benchmark, fn, *args, **kwargs):
    """Time ``fn`` exactly once (expensive end-to-end runs)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def bench_workers(default: int = 1) -> int:
    """Trial-sweep worker count for benches that fan seeds out.

    Set by ``python -m repro experiment <id> --workers N`` (via the
    ``$REPRO_BENCH_WORKERS`` environment variable) or directly in the
    environment.  Sweeps return identical records at any worker count, so
    this only changes wall-clock time, never a reproduction table.
    """
    raw = os.environ.get("REPRO_BENCH_WORKERS")
    if not raw:
        return default
    try:
        return max(1, int(raw))
    except ValueError:
        return default


def write_bench_json(name: str, payload: dict) -> pathlib.Path:
    """Persist a machine-readable benchmark report at the repo root.

    ``name`` is e.g. ``"engine"`` or ``"trials"``; the file becomes
    ``BENCH_<name>.json`` next to pyproject.toml so regression tooling
    (tools/bench_report.py, CI artifacts) can diff runs across PRs.
    """
    path = REPO_ROOT / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
