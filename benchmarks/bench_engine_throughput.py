"""Engine microbenchmarks: simulation throughput.

Not a paper experiment — these track the simulator's own performance so
regressions in the hot loops (arbitration, deflection matching, the
quiescence fast-forward) are visible.  Unlike the experiment benches these
use pytest-benchmark's normal calibration (many rounds).
"""

import pytest

from repro.baselines import NaivePathRouter
from repro.core import AlgorithmParams, FrontierFrameRouter
from repro.experiments import (
    butterfly_random_spec,
    deep_random_spec,
    run_spec_trials,
    sweep_specs,
)
from repro.net import butterfly
from repro.scenarios import build_problem
from repro.sim import Engine

from _common import bench_workers, once


@pytest.fixture(scope="module")
def big_problem():
    return build_problem(deep_random_spec(32, 8, 24, seed=7, low_congestion=False))


def test_throughput_naive_router(benchmark, big_problem):
    def run():
        result = Engine(big_problem, NaivePathRouter(), seed=0).run(5000)
        assert result.all_delivered
        return result

    result = benchmark(run)
    assert result.all_delivered


def test_throughput_frontier_router(benchmark, big_problem):
    params = AlgorithmParams.practical(
        big_problem.congestion,
        big_problem.net.depth,
        big_problem.num_packets,
        m=6,
        w_factor=6.0,
    )

    def run():
        engine = Engine(
            big_problem, FrontierFrameRouter(params, seed=1), seed=2
        )
        return engine.run(params.total_steps)

    result = benchmark(run)
    assert result.all_delivered


def test_throughput_fast_forward_speedup(benchmark, big_problem):
    """Fast-forward must skip the large majority of scheduled steps."""
    params = AlgorithmParams.practical(
        big_problem.congestion,
        big_problem.net.depth,
        big_problem.num_packets,
        m=6,
        w_factor=6.0,
    )

    def run():
        engine = Engine(
            big_problem, FrontierFrameRouter(params, seed=1), seed=2,
            enable_fast_forward=True,
        )
        return engine.run(params.total_steps)

    result = benchmark(run)
    assert result.steps_skipped > 2 * result.steps_executed


def test_throughput_topology_construction(benchmark):
    net = benchmark(butterfly, 8)
    assert net.num_nodes == 9 * 256


def test_throughput_trial_sweep(benchmark):
    """End-to-end sweep throughput via the batched scenario dispatcher.

    A fixed-problem Monte Carlo sweep (``sweep_specs``): all trials share
    one scenario hash, so the warm cache builds the problem once and the
    bench tracks the amortized per-trial cost.  Honors
    ``$REPRO_BENCH_WORKERS`` (see ``repro experiment --workers``); the
    records are identical at any worker count, so this tracks sweep
    wall-clock only.
    """
    specs = sweep_specs(
        butterfly_random_spec(4, seed=0, m=8, w_factor=8.0), 8
    )

    def run():
        return run_spec_trials(specs, workers=bench_workers())

    records = once(benchmark, run)
    assert all(r.result.all_delivered for r in records)
