"""Trial setup-cost microbenchmarks: where the non-engine time goes.

Not a paper experiment — these separate the fixed per-trial construction
costs that the warm scenario cache amortizes (network build, geometry
precompute, path selection) from the cost that every trial must pay
regardless (engine init), so the batching layer's savings stay explainable.
The final case times a warm :class:`~repro.scenarios.ScenarioCache` hit —
the per-trial setup cost under batched execution.
"""

import pytest

from repro.core import AlgorithmParams, FrontierFrameRouter
from repro.experiments import deep_random_spec
from repro.scenarios import ScenarioCache, build_network, build_problem


#: The build-heavy catalog instance (random leveled network + bottleneck
#: selection) — same scenario the trial-throughput bench sweeps.
SPEC = deep_random_spec(20, 6, 12, seed=2026)


@pytest.fixture(scope="module")
def prebuilt_network():
    return build_network(SPEC)


@pytest.fixture(scope="module")
def prebuilt_problem(prebuilt_network):
    return build_problem(SPEC, net=prebuilt_network)


def test_setup_network_build(benchmark):
    net = benchmark(build_network, SPEC)
    assert net.depth == 20


def test_setup_geometry_precompute(benchmark):
    """Dense lookup-table construction, isolated from the topology build.

    ``LeveledNetwork.geometry()`` memoizes, so each round rebuilds the
    network first and only the geometry call is timed.
    """

    def fresh():
        return build_network(SPEC)

    def geometry(net):
        return net.geometry()

    geo = benchmark.pedantic(
        geometry, setup=lambda: ((fresh(),), {}), rounds=20, iterations=1
    )
    assert geo.num_edges > 0


def test_setup_path_selection(benchmark, prebuilt_network):
    """Workload generation + bottleneck path selection on a fixed network."""
    problem = benchmark(build_problem, SPEC, net=prebuilt_network)
    assert problem.num_packets == 12


def test_setup_engine_init(benchmark, prebuilt_problem):
    """Engine construction with prebuilt geometry: the irreducible per-trial
    setup that even a warm cache hit pays."""
    from repro.sim import Engine

    params = AlgorithmParams.practical(
        prebuilt_problem.congestion,
        prebuilt_problem.net.depth,
        prebuilt_problem.num_packets,
    )
    geometry = prebuilt_problem.net.geometry()

    def init():
        return Engine(
            prebuilt_problem,
            FrontierFrameRouter(params, seed=1),
            seed=2,
            geometry=geometry,
        )

    engine = benchmark(init)
    assert engine.num_active == 0


def test_setup_warm_cache_hit(benchmark):
    """A warm ``problem_for`` hit must be orders cheaper than a cold build."""
    cache = ScenarioCache()
    first = cache.problem_for(SPEC)
    cold_misses = cache.stats()["misses"]

    problem = benchmark(cache.problem_for, SPEC)
    assert problem is first
    assert cache.stats()["misses"] == cold_misses  # every timed call hit
