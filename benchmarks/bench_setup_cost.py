"""Trial setup-cost microbenchmarks: where the non-engine time goes.

Not a paper experiment — these separate the fixed per-trial construction
costs that the warm scenario cache amortizes (network build, geometry
precompute, path selection) from the cost that every trial must pay
regardless (engine init), so the batching layer's savings stay explainable.
The vectorized kernel adds its own split: the cold struct-of-arrays build
(geometry tables + per-packet path packing) vs the warm template copy that
repeat trials on a cached problem actually pay, vs full ``VecEngine``
construction. The final case times a warm
:class:`~repro.scenarios.ScenarioCache` hit — the per-trial setup cost
under batched execution.
"""

import pytest

from repro.core import AlgorithmParams, FrontierFrameRouter
from repro.experiments import deep_random_spec
from repro.scenarios import ScenarioCache, build_network, build_problem


#: The build-heavy catalog instance (random leveled network + bottleneck
#: selection) — same scenario the trial-throughput bench sweeps.
SPEC = deep_random_spec(20, 6, 12, seed=2026)


@pytest.fixture(scope="module")
def prebuilt_network():
    return build_network(SPEC)


@pytest.fixture(scope="module")
def prebuilt_problem(prebuilt_network):
    return build_problem(SPEC, net=prebuilt_network)


def test_setup_network_build(benchmark):
    net = benchmark(build_network, SPEC)
    assert net.depth == 20


def test_setup_geometry_precompute(benchmark):
    """Dense lookup-table construction, isolated from the topology build.

    ``LeveledNetwork.geometry()`` memoizes, so each round rebuilds the
    network first and only the geometry call is timed.
    """

    def fresh():
        return build_network(SPEC)

    def geometry(net):
        return net.geometry()

    geo = benchmark.pedantic(
        geometry, setup=lambda: ((fresh(),), {}), rounds=20, iterations=1
    )
    assert geo.num_edges > 0


def test_setup_path_selection(benchmark, prebuilt_network):
    """Workload generation + bottleneck path selection on a fixed network."""
    problem = benchmark(build_problem, SPEC, net=prebuilt_network)
    assert problem.num_packets == 12


def test_setup_engine_init(benchmark, prebuilt_problem):
    """Engine construction with prebuilt geometry: the irreducible per-trial
    setup that even a warm cache hit pays."""
    from repro.sim import Engine

    params = AlgorithmParams.practical(
        prebuilt_problem.congestion,
        prebuilt_problem.net.depth,
        prebuilt_problem.num_packets,
    )
    geometry = prebuilt_problem.net.geometry()

    def init():
        return Engine(
            prebuilt_problem,
            FrontierFrameRouter(params, seed=1),
            seed=2,
            geometry=geometry,
        )

    engine = benchmark(init)
    assert engine.num_active == 0


def test_setup_vec_arrays_cold_build(benchmark, prebuilt_problem):
    """Kernel array-build split, cold: geometry tables + path packing.

    Both layers cache (``GeometryArrays`` on the geometry,
    the :class:`PacketArrays` template on the problem), so each round
    evicts them first — this is the one-time cost a fresh problem pays
    before any ``VecEngine`` can step.
    """
    pytest.importorskip("numpy")
    from repro.sim import GeometryArrays, PacketArrays

    geometry = prebuilt_problem.net.geometry()

    def cold_build():
        try:
            del prebuilt_problem._soa_template
        except AttributeError:
            pass
        geo_arrays = GeometryArrays(geometry)
        packets = PacketArrays.from_problem(prebuilt_problem)
        return geo_arrays, packets

    _, packets = benchmark(cold_build)
    assert packets.num_packets == 12


def test_setup_vec_arrays_warm_copy(benchmark, prebuilt_problem):
    """Kernel array-build split, warm: the template ``.copy()`` per trial.

    Warm-pool sweeps reuse one problem across seeds, so this — not the
    cold build above — is the array cost every repeat trial pays.
    """
    pytest.importorskip("numpy")
    from repro.sim import PacketArrays

    PacketArrays.from_problem(prebuilt_problem)  # prime the template cache

    packets = benchmark(PacketArrays.from_problem, prebuilt_problem)
    assert packets.num_packets == 12


def test_setup_vec_engine_init(benchmark, prebuilt_problem):
    """Full ``VecEngine`` construction with warm array caches — the vec
    analog of ``test_setup_engine_init``."""
    pytest.importorskip("numpy")
    from repro.sim import VecEngine

    params = AlgorithmParams.practical(
        prebuilt_problem.congestion,
        prebuilt_problem.net.depth,
        prebuilt_problem.num_packets,
    )
    prebuilt_problem.net.geometry().arrays()  # prime the geometry cache

    def init():
        return VecEngine.frontier(
            prebuilt_problem, params, router_seed=1, seed=2
        )

    engine = benchmark(init)
    assert engine.num_active == 0


def test_setup_warm_cache_hit(benchmark):
    """A warm ``problem_for`` hit must be orders cheaper than a cold build."""
    cache = ScenarioCache()
    first = cache.problem_for(SPEC)
    cold_misses = cache.stats()["misses"]

    problem = benchmark(cache.problem_for, SPEC)
    assert problem is first
    assert cache.stats()["misses"] == cold_misses  # every timed call hit
