"""Preset families — paper-faithful vs the tuned ``"practical"`` preset.

``repro.core.PRESETS`` ships two parameterization families: the
structural ``"paper-faithful"`` defaults and ``"practical"``, the winner
of the successive-halving tuning study checked in at
``benchmarks/studies/practical_preset_study.json`` (regenerate it with
``python -m repro tune``; docs/tuning.md documents the search).  This
bench regenerates the headline comparison on every catalog family that
carries preset variants: makespan, the ``T/(C+D)`` ratio, and the margin
— while asserting the practical preset still clears the same two gates
the study enforced (every packet delivered, every frontier-frame
invariant kept).
"""

from repro.core import PRESETS
from repro.experiments import (
    PRESET_FAMILIES,
    catalog_spec,
    run_frontier_trial,
)
from repro.analysis import format_table
from repro.scenarios import build_problem

from _common import emit, once, reset

SEEDS = range(3)


def run_family(base_name: str):
    """Both presets on one pinned catalog family, seed-averaged."""
    problem = build_problem(catalog_spec(base_name).with_pinned_scenario())
    c_plus_d = max(1, problem.congestion + problem.dilation)
    results = {}
    for preset in sorted(PRESETS):
        audited = run_frontier_trial(problem, 0, audit=True, preset=preset)
        records = [audited] + [
            run_frontier_trial(problem, seed, preset=preset)
            for seed in SEEDS
            if seed != 0
        ]
        mean = sum(r.result.makespan for r in records) / len(records)
        results[preset] = {
            "mean": mean,
            "ratio": mean / c_plus_d,
            "delivered": all(r.result.all_delivered for r in records),
            "audit_ok": audited.audit is not None and audited.audit.ok,
        }
    return problem, results


def test_presets_comparison(benchmark):
    reset("presets")
    for base_name in PRESET_FAMILIES:
        problem, results = run_family(base_name)
        margin = results["paper-faithful"]["mean"] / max(
            1.0, results["practical"]["mean"]
        )
        rows = [
            (
                preset,
                f"{stats['mean']:.1f}",
                f"{stats['ratio']:.1f}x",
                "ok" if stats["delivered"] else "STUCK",
                "ok" if stats["audit_ok"] else "VIOLATED",
            )
            for preset, stats in sorted(results.items())
        ]
        emit(
            "presets",
            format_table(
                ["preset", "T (mean)", "T/(C+D)", "delivered", "audit"],
                rows,
                title=f"presets: {base_name} — {problem.describe()}",
                note=(
                    f"practical takes {margin:.0f}x fewer steps; both "
                    "presets must deliver everything and keep every "
                    "invariant (the tuning study's gates)"
                ),
            ),
        )
        for preset, stats in results.items():
            assert stats["delivered"], f"{base_name}/{preset} left packets"
            assert stats["audit_ok"], f"{base_name}/{preset} broke invariants"
        assert margin > 1.0, (
            f"practical preset is not faster on {base_name} "
            f"({margin:.2f}x)"
        )

    once(benchmark, run_family, PRESET_FAMILIES[0])
