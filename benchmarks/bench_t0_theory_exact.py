"""T0 — running the paper's *exact* Section 2.1 constants to completion.

The paper concedes its algorithm "is not really practical, in the sense of
direct applicability": with the reconstructed constants even toy instances
schedule tens of millions of steps (`w ≈ 2·10⁴ … 10⁶` steps per round).
Thanks to the quiescence fast-forward — wait-state oscillation is
deterministic, so the engine advances it analytically — those schedules
are *actually executable*, making this the only bench that runs the
algorithm exactly as stated in the paper, no scaled constants anywhere.

Checks: every packet is absorbed within Theorem 4.26's schedule
`(amC + L)·m·w`, across multiple independent seeds (the theorem's
`1 − 1/LN` probability regime), with zero unsafe deflections.
"""

from repro.analysis import format_table
from repro.core import AlgorithmParams, FrontierFrameRouter
from repro.net import butterfly
from repro.paths import select_paths_bit_fixing
from repro.sim import Engine
from repro.workloads import butterfly_workloads

from _common import emit, once, reset


def build_instance(dim, num_packets, seed):
    net = butterfly(dim)
    wl = butterfly_workloads.random_end_to_end(net, num_packets, seed=seed)
    return select_paths_bit_fixing(net, wl.endpoints)


def run_exact(problem, seed):
    params = AlgorithmParams.theory_exact(
        max(1, problem.congestion), problem.net.depth, problem.num_packets
    )
    engine = Engine(problem, FrontierFrameRouter(params, seed=seed), seed=seed + 1)
    result = engine.run(params.total_steps)
    return params, result


def test_t0_exact_constants_run_to_completion(benchmark):
    reset("t0_theory_exact")
    rows = []
    for dim, n in [(2, 3), (2, 4), (3, 6)]:
        problem = build_instance(dim, n, seed=dim * 17 + n)
        successes = 0
        sample = None
        for seed in (5, 6, 7):
            params, result = run_exact(problem, seed)
            if result.all_delivered:
                successes += 1
            assert result.unsafe_deflections == 0
            assert result.makespan <= params.total_steps
            sample = (params, result)
        params, result = sample
        rows.append(
            (
                f"bf({dim}) N={n}",
                problem.congestion,
                params.num_sets,
                params.m,
                params.w,
                f"{params.total_steps:.2e}",
                f"{result.makespan:.2e}",
                result.steps_executed,
                f"{successes}/3",
            )
        )
        assert successes == 3  # the 1 - 1/LN regime
    emit(
        "t0_theory_exact",
        format_table(
            [
                "instance",
                "C",
                "aC sets",
                "m",
                "w (steps/round)",
                "schedule",
                "makespan",
                "steps executed",
                "delivered",
            ],
            rows,
            title="T0: the paper's EXACT Section 2.1 constants, run to "
            "completion",
            note="tens of millions of scheduled steps collapse to a "
            "handful of executed ones (everything else is deterministic "
            "wait oscillation, advanced analytically); all packets "
            "delivered within Theorem 4.26's bound on every seed",
        ),
    )

    problem = build_instance(2, 3, seed=37)
    once(benchmark, run_exact, problem, 5)
