"""E2 — Figure 2: frontier-frame geometry.

Figure 2 depicts the frontier-frames on a leveled network: bands of ``m``
inner-levels pipelined ``m`` levels apart, shifting one level forward per
phase, with the target level receding inside each frame round by round.
This bench (a) verifies those properties over a full schedule, (b) renders
the film-strip reproduction of the figure, and (c) traces a live run to
show the packets actually riding their frames.
"""

from repro.analysis import format_table
from repro.core import AlgorithmParams, FrameGeometry
from repro.experiments import deep_random_instance, run_frontier_trial
from repro.viz import frame_film_strip, target_schedule_strip

from _common import emit, once, reset


def test_e2_frame_geometry(benchmark):
    reset("e2_frames")
    params = AlgorithmParams.practical(6, 16, 24, m=4, w=8)
    geometry = FrameGeometry(params)

    # Property audit over the whole schedule.
    overlaps = 0
    for phase in range(params.total_phases + 1):
        seen = set()
        for i in range(params.num_sets):
            for level in geometry.frame_levels(i, phase):
                if level in seen:
                    overlaps += 1
                seen.add(level)
    assert overlaps == 0

    strip = frame_film_strip(geometry, 0, min(20, params.total_phases))
    emit(
        "e2_frames",
        "E2 (Figure 2): frontier-frames sweeping a leveled network "
        f"(num_sets={params.num_sets}, m={params.m}, L={params.depth})\n"
        + strip,
    )
    emit("e2_frames", target_schedule_strip(geometry, 0, phase=10))

    rows = [
        (
            i,
            geometry.injection_phase(i, 0),
            geometry.exit_phase(i),
            f"{params.m}",
        )
        for i in range(params.num_sets)
    ]
    emit(
        "e2_frames",
        format_table(
            ["frame", "first injection phase", "exit phase", "inner levels"],
            rows,
            title="frame schedule (pipelined m phases apart, disjoint)",
        ),
    )

    def audit_schedule():
        for phase in range(params.total_phases + 1):
            seen = set()
            for i in range(params.num_sets):
                for level in geometry.frame_levels(i, phase):
                    assert level not in seen
                    seen.add(level)

    once(benchmark, audit_schedule)


def test_e2_packets_ride_frames(benchmark):
    """Live confirmation: every active packet is inside its frame (I_c)."""
    problem = deep_random_instance(20, 6, 14, seed=4)

    def run():
        return run_frontier_trial(
            problem, seed=5, audit=True, condition_sets=True, m=6, w=36
        )

    record = once(benchmark, run)
    assert record.result.all_delivered
    assert record.audit.count("I_c") == 0
    emit(
        "e2_frames",
        f"live run on {problem.describe()}: delivered="
        f"{record.result.delivered}/{record.result.num_packets}, "
        f"I_c violations={record.audit.count('I_c')} "
        f"(packets stayed inside their frames throughout)",
    )
