"""A1 — ablation: the excitation probability q.

The analysis sets ``q = 1/(m²·ln(LN))`` so that an excited packet almost
surely meets no *other* excited packet on its sprint (Lemma 4.2) while
deflected packets still get escape chances (Lemma 4.4).  Sweeping q around
the practical default ``1/m`` shows the trade-off:

* q = 0 removes the escape mechanism — packets rely purely on random
  tie-breaking (slower settling, more wait evictions on contested spots);
* very large q floods the network with excited packets, so excitement no
  longer confers protection (excited-vs-excited conflicts return).
"""

from repro.analysis import format_table, summarize
from repro.core import AlgorithmParams
from repro.experiments import deep_random_instance, run_frontier_trial
from repro.rng import trial_seeds

from _common import emit, once, reset

SEEDS = trial_seeds(31415, 5)


def sweep_q(problem, q):
    params = AlgorithmParams.practical(
        max(1, problem.congestion),
        problem.net.depth,
        problem.num_packets,
        m=8,
        w_factor=8.0,
        q=q,
    )
    makespans, deflections, excitations, evictions, delivered = [], [], [], [], 0
    for seed in SEEDS:
        record = run_frontier_trial(problem, seed=seed, params=params)
        result = record.result
        if result.all_delivered:
            delivered += 1
        makespans.append(result.makespan)
        deflections.append(result.total_deflections)
        excitations.append(result.extra["excitations"])
        evictions.append(result.extra["wait_evictions"])
    return {
        "delivered": delivered,
        "makespan": summarize(makespans),
        "deflections": summarize(deflections),
        "excitations": summarize(excitations),
        "evictions": summarize(evictions),
    }


def test_a1_excitation_probability(benchmark):
    reset("a1_excitation")
    problem = deep_random_instance(28, 6, 16, seed=71, low_congestion=False)
    m = 8
    rows = []
    for label, q in [
        ("0 (off)", 0.0),
        ("1/(4m)", 1 / (4 * m)),
        ("1/m (default)", 1 / m),
        ("4/m", 4 / m),
        ("0.9 (flood)", 0.9),
    ]:
        stats = sweep_q(problem, q)
        rows.append(
            (
                label,
                f"{stats['delivered']}/{len(SEEDS)}",
                int(stats["makespan"].mean),
                int(stats["deflections"].mean),
                int(stats["excitations"].mean),
                int(stats["evictions"].mean),
            )
        )
    emit(
        "a1_excitation",
        format_table(
            ["q", "delivered", "T (mean)", "deflections", "excitations", "wait evictions"],
            rows,
            title=f"A1: excitation-probability ablation on {problem.describe()}",
            note="deflections measure contention churn; the paper's design "
            "point (moderate q) keeps sprints protected without flooding",
        ),
    )
    # All configurations deliver on this benign instance; the interesting
    # signal is the churn columns.
    assert all(row[1] == f"{len(SEEDS)}/{len(SEEDS)}" for row in rows)

    once(benchmark, sweep_q, problem, 1 / m)


def sweep_q_hot(problem, q, m=8):
    """Single-frame variant: all packets share one frame (max contention)."""
    params = AlgorithmParams.practical(
        max(1, problem.congestion),
        problem.net.depth,
        problem.num_packets,
        m=m,
        w_factor=8.0,
        q=q,
        set_congestion_target=float(problem.congestion),
        oversplit=1.0,
    )
    assert params.num_sets == 1
    delivered = 0
    deflections, evictions, mean_times = [], [], []
    for seed in SEEDS:
        record = run_frontier_trial(problem, seed=seed, params=params)
        result = record.result
        if result.all_delivered:
            delivered += 1
        deflections.append(result.total_deflections)
        evictions.append(result.extra["wait_evictions"])
        mean_times.append(result.mean_delivery_time)
    return delivered, deflections, evictions, mean_times


def test_a1_excitation_under_contention(benchmark):
    """One frame on a deep network: heavy wait-eviction churn."""
    problem = deep_random_instance(28, 6, 16, seed=71, low_congestion=False)
    m = 8
    rows = []
    for label, q in [
        ("0 (off)", 0.0),
        ("1/m", 1 / m),
        ("0.5", 0.5),
    ]:
        delivered, deflections, evictions, mean_times = sweep_q_hot(problem, q, m)
        rows.append(
            (
                label,
                f"{delivered}/{len(SEEDS)}",
                int(sum(deflections) / len(deflections)),
                int(sum(evictions) / len(evictions)),
                int(sum(mean_times) / len(mean_times)),
            )
        )
        assert delivered == len(SEEDS)
    emit(
        "a1_excitation",
        format_table(
            ["q", "delivered", "deflections", "wait evictions", "mean delivery"],
            rows,
            title=f"A1b: same sweep with ALL packets in one frame "
            f"({problem.describe()})",
            note="reproduction finding: even with heavy eviction churn the "
            "instance settles for every q (higher q slightly *increases* "
            "churn as excited sprints evict more waiters) — the excited "
            "state is an analysis device that tightens the w.h.p. bound, "
            "not a practical necessity at simulable sizes",
        ),
    )

    once(benchmark, sweep_q_hot, problem, 1 / m, m)
