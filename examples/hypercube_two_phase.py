#!/usr/bin/env python3
"""Extension: arbitrary hypercube traffic as two leveled phases.

The paper closes with "it is interesting to extend our work for arbitrary
network topologies."  The hypercube gives the cleanest such extension: the
Hamming-weight leveling only supports monotone (bit-*setting*) routes, but
any source→destination pair factors through the bitwise OR:

    up phase   : x  →  x|y   (set the bits of y missing from x;
                              ascending weight leveling)
    down phase : x|y →  y    (clear the bits of x missing from y;
                              complemented, descending leveling)

Each leg is a leveled many-to-one problem, so the frontier-frame algorithm
routes both with its Õ(C+L) guarantee; ``repro.core.run_multiphase``
chains them.

Run:  python examples/hypercube_two_phase.py [dim] [packets] [seed]
"""

import sys

from repro.analysis import format_table
from repro.core import run_multiphase
from repro.net import hypercube, hypercube_node
from repro.paths import select_paths_random
from repro.rng import make_rng


def sample_pairs(dim, packets, rng):
    """Random pairs with distinct sources, distinct OR-intermediates, and
    both legs non-trivial (so each phase is a well-formed instance)."""
    pairs = []
    used_sources, used_mids = set(), set()
    space = 1 << dim
    attempts = 0
    while len(pairs) < packets and attempts < 50 * packets:
        attempts += 1
        x = int(rng.integers(0, space))
        y = int(rng.integers(0, space))
        mid = x | y
        if x == y or mid == x or mid == y:
            continue  # degenerate leg
        if x in used_sources or mid in used_mids:
            continue
        used_sources.add(x)
        used_mids.add(mid)
        pairs.append((x, y))
    return pairs


def main(dim: int = 6, packets: int = 12, seed: int = 0) -> None:
    rng = make_rng(seed)
    pairs = sample_pairs(dim, packets, rng)
    up_net = hypercube(dim)
    down_net = hypercube(dim, descending=True)

    up_endpoints = [
        (hypercube_node(up_net, x), hypercube_node(up_net, x | y))
        for x, y in pairs
    ]
    down_endpoints = [
        (hypercube_node(down_net, x | y), hypercube_node(down_net, y))
        for x, y in pairs
    ]
    up = select_paths_random(up_net, up_endpoints, seed=seed + 1)
    down = select_paths_random(down_net, down_endpoints, seed=seed + 2)

    outcome = run_multiphase([up, down], seed=seed + 3, m=6, w_factor=8.0)
    assert outcome.all_delivered, outcome.summary()

    rows = [
        (
            "up (set bits)",
            up.num_packets,
            up.congestion,
            up.dilation,
            outcome.phase_results[0].makespan,
        ),
        (
            "down (clear bits)",
            down.num_packets,
            down.congestion,
            down.dilation,
            outcome.phase_results[1].makespan,
        ),
    ]
    print(f"hypercube({dim}): {len(pairs)} arbitrary pairs routed in two "
          "leveled phases\n")
    print(format_table(
        ["phase", "packets", "C", "D", "T"],
        rows,
        title="two-phase hypercube routing via the frontier-frame algorithm",
        note=outcome.summary(),
    ))


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:4]]
    main(*args)
