#!/usr/bin/env python3
"""Trees as leveled networks: leaf-to-leaf routing in two phases.

The paper's related work includes hot-potato routing on trees (its
reference [2], and the companion Busch et al. tree papers).  A tree is
leveled in both orientations (leaves-up or root-down), so a leaf-to-leaf
route factors exactly like the hypercube example:

    up phase   : leaf  → least common ancestor   (leaves at level 0)
    down phase : LCA   → destination leaf        (root at level 0)

Each phase is a leveled many-to-one instance for the frontier-frame
algorithm; ``run_multiphase`` chains them.

Run:  python examples/tree_routing.py [height] [packets] [seed]
"""

import sys

from repro.analysis import format_table
from repro.core import run_multiphase
from repro.net import complete_binary_tree, tree_node
from repro.paths import PacketSpec, Path, RoutingProblem, first_monotone_path
from repro.rng import make_rng


def lca_depth(a: int, b: int, height: int) -> int:
    """Depth of the least common ancestor of two leaf indices."""
    depth = height
    while a != b:
        a //= 2
        b //= 2
        depth -= 1
    return depth


def ancestor(index: int, from_depth: int, to_depth: int) -> int:
    """Leaf-index path compression: ancestor of a node at a higher depth."""
    return index >> (from_depth - to_depth)


def main(height: int = 5, packets: int = 10, seed: int = 0) -> None:
    rng = make_rng(seed)
    leaves = 1 << height
    up_net = complete_binary_tree(height, root_at_top=False)   # leaves level 0
    down_net = complete_binary_tree(height, root_at_top=True)  # root level 0

    # Random leaf pairs with distinct sources and distinct LCAs (one packet
    # per source node per leveled instance).
    pairs = []
    used_src, used_lca = set(), set()
    while len(pairs) < packets:
        a = int(rng.integers(0, leaves))
        b = int(rng.integers(0, leaves))
        if a == b or a in used_src:
            continue
        d = lca_depth(a, b, height)
        lca = (d, ancestor(a, height, d))
        if lca in used_lca:
            continue
        used_src.add(a)
        used_lca.add(lca)
        pairs.append((a, b, d))

    # Up phase: each tree has a unique root-ward path; build it explicitly.
    up_specs, down_specs = [], []
    for k, (a, b, d) in enumerate(pairs):
        lca_index = ancestor(a, height, d)
        src_up = tree_node(up_net, height, a)
        dst_up = tree_node(up_net, d, lca_index)
        up_specs.append(
            PacketSpec(k, src_up, dst_up,
                       first_monotone_path(up_net, src_up, dst_up))
        )
        src_down = tree_node(down_net, d, lca_index)
        dst_down = tree_node(down_net, height, b)
        down_specs.append(
            PacketSpec(k, src_down, dst_down,
                       first_monotone_path(down_net, src_down, dst_down))
        )
    up = RoutingProblem(up_net, up_specs)
    down = RoutingProblem(down_net, down_specs)

    outcome = run_multiphase([up, down], seed=seed + 1, m=6, w_factor=8.0)
    assert outcome.all_delivered, outcome.summary()

    rows = [
        ("up (leaf -> LCA)", up.num_packets, up.congestion, up.dilation,
         outcome.phase_results[0].makespan),
        ("down (LCA -> leaf)", down.num_packets, down.congestion,
         down.dilation, outcome.phase_results[1].makespan),
    ]
    print(f"binary tree height {height}: {packets} leaf-to-leaf packets, "
          "two leveled phases\n")
    print(format_table(
        ["phase", "packets", "C", "D", "T"],
        rows,
        title="two-phase tree routing via the frontier-frame algorithm",
        note=outcome.summary(),
    ))


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:4]]
    main(*args)
