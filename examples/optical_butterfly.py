#!/usr/bin/env python3
"""Motivating scenario: a bufferless optical butterfly under hot-spot load.

The paper's introduction motivates hot-potato routing with optical
networks, where buffering photons is hard.  This example stresses a
butterfly with an increasingly hot destination row and compares three
bufferless strategies — greedy deflection, randomized greedy with
priorities [11], and the paper's frontier-frame algorithm — plus the
(hypothetical, electronic) buffered reference.  The frontier-frame
algorithm is the only bufferless one with a *guarantee*; the table shows
what the guarantee costs at benign loads and what greedy churn looks like
as the hot spot sharpens.

Run:  python examples/optical_butterfly.py [dim] [seed]
"""

import sys

from repro.analysis import format_table
from repro.baselines import (
    GreedyHotPotatoRouter,
    RandomizedGreedyRouter,
    StoreForwardScheduler,
)
from repro.experiments import baseline_budget, run_frontier_trial, run_router_trial
from repro.net import butterfly
from repro.paths import select_paths_bit_fixing
from repro.workloads import butterfly_workloads


def hot_fraction_workload(net, fraction, seed):
    """Mix of uniform traffic and a hot row: `fraction` of packets hot."""
    rows = len(net.nodes_at_level(0))
    uniform = butterfly_workloads.random_end_to_end(net, seed=seed)
    hot = butterfly_workloads.hot_row(net, rows, seed=seed + 1)
    cut = int(fraction * rows)
    endpoints = list(hot.endpoints[:cut])
    hot_sources = {s for s, _ in endpoints}
    endpoints += [
        (s, d) for (s, d) in uniform.endpoints if s not in hot_sources
    ][: rows - cut]
    return endpoints


def main(dim: int = 5, seed: int = 0) -> None:
    net = butterfly(dim)
    print(f"optical butterfly scenario on {net.describe()}\n")
    rows = []
    for fraction in (0.0, 0.25, 0.5, 1.0):
        endpoints = hot_fraction_workload(net, fraction, seed)
        problem = select_paths_bit_fixing(net, endpoints)
        budget = baseline_budget(problem)
        greedy = run_router_trial(
            problem, lambda s: GreedyHotPotatoRouter(seed=s), seed, budget
        )
        rgreedy = run_router_trial(
            problem, lambda s: RandomizedGreedyRouter(seed=s), seed, budget
        )
        frontier = run_frontier_trial(problem, seed=seed, m=8, w_factor=8.0).result
        buffered = StoreForwardScheduler(problem, seed=seed).run()
        rows.append(
            (
                f"{int(fraction * 100)}% hot",
                problem.congestion,
                f"{greedy.makespan} ({greedy.total_deflections} defl)",
                f"{rgreedy.makespan} ({rgreedy.total_deflections} defl)",
                frontier.makespan,
                buffered.makespan,
            )
        )
        for result in (greedy, rgreedy, frontier, buffered):
            assert result.all_delivered, result.summary()
    print(format_table(
        [
            "load",
            "C",
            "greedy hot-potato",
            "randomized greedy [11]",
            "frontier-frame (paper)",
            "buffered ref",
        ],
        rows,
        title="bufferless routing under a sharpening hot spot",
        note="greedy strategies are opportunistic (fast when lucky, no "
        "bound); the frontier-frame time is schedule-dominated but "
        "guaranteed Õ(C+L) w.h.p. — the paper's trade",
    ))


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:3]]
    main(*args)
