#!/usr/bin/env python3
"""Routing an arbitrary DAG with the leveled-network algorithm.

The paper closes with: "It is interesting to extend our work for arbitrary
network topologies."  For *acyclic* topologies there is a clean reduction
(`repro.net.unroll`): layer nodes by longest path, subdivide layer-skipping
edges with relay nodes, and the DAG becomes a leveled network whose
monotone routes are exactly the DAG's directed paths.  The frontier-frame
algorithm then applies verbatim — this example routes random traffic over
a random DAG through that reduction, with the invariant auditor on.

Run:  python examples/arbitrary_dag.py [nodes] [edge_prob%] [packets] [seed]
"""

import sys

from repro.analysis import format_table
from repro.experiments import run_frontier_trial
from repro.net import random_dag, unroll_dag, validate_leveled
from repro.paths import select_paths_random
from repro.rng import make_rng


def main(num_nodes: int = 40, edge_prob_pct: int = 12, packets: int = 10,
         seed: int = 0) -> None:
    nodes, edges = random_dag(num_nodes, edge_prob_pct / 100.0, seed=seed)
    unrolled = unroll_dag(nodes, edges, name=f"dag{num_nodes}")
    net = unrolled.net
    report = validate_leveled(net)
    assert report.ok

    print(f"DAG: {num_nodes} nodes, {len(edges)} edges")
    print(f"leveled image: {net.describe()} "
          f"(+{unrolled.num_relays} relay nodes)")

    rng = make_rng(seed + 1)
    endpoints = []
    used = set()
    for u in rng.permutation(num_nodes):
        src = unrolled.node_of[int(u)]
        if src in used:
            continue
        reach = [
            v
            for v in sorted(net.forward_reachable(src))
            if v != src and not unrolled.is_relay[v]
        ]
        if reach:
            used.add(src)
            endpoints.append((src, reach[int(rng.integers(0, len(reach)))]))
        if len(endpoints) == packets:
            break
    problem = select_paths_random(net, endpoints, seed=seed + 2)
    record = run_frontier_trial(
        problem, seed=seed + 3, audit=True, condition_sets=True,
        m=6, w_factor=8.0,
    )
    assert record.result.all_delivered, record.result.summary()

    print()
    print(format_table(
        ["packets", "C", "D", "L", "T", "deflections", "invariants"],
        [(
            problem.num_packets,
            problem.congestion,
            problem.dilation,
            net.depth,
            record.result.makespan,
            record.result.total_deflections,
            record.audit.summary(),
        )],
        title="frontier-frame routing on the unrolled DAG",
        note="relay nodes are pass-throughs: DAG congestion maps "
        "edge-for-edge onto the leveled image",
    ))


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:5]]
    main(*args)
