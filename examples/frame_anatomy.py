#!/usr/bin/env python3
"""Anatomy of a run: watch the frontier-frames carry packets up the levels.

Renders (a) the Figure-2 film strip of the frame schedule, (b) the target
level receding within one phase, and (c) a live per-level occupancy heat
strip from an actual routed instance — the packets visibly ride their
frames from level 0 to level L.

Run:  python examples/frame_anatomy.py [depth] [seed]
"""

import sys

from repro.core import (
    AlgorithmParams,
    FrameGeometry,
    FrontierFrameRouter,
)
from repro.experiments import deep_random_instance
from repro.sim import Engine
from repro.viz import (
    OccupancySampler,
    frame_film_strip,
    occupancy_strip,
    target_schedule_strip,
)


def main(depth: int = 24, seed: int = 3) -> None:
    problem = deep_random_instance(depth, 6, 14, seed=seed)
    params = AlgorithmParams.practical(
        problem.congestion, depth, problem.num_packets, m=6, w_factor=6.0
    )
    geometry = FrameGeometry(params)

    print("1. the frame schedule (Figure 2): frames march one level per "
          "phase, pipelined m apart\n")
    print(frame_film_strip(geometry, 0, min(24, params.total_phases)))

    print("\n2. inside one phase: the target level recedes one inner level "
          "per round\n")
    print(target_schedule_strip(geometry, 0, phase=min(12, depth)))

    print("\n3. live run: per-level packet occupancy over time "
          f"({problem.describe()})\n")
    router = FrontierFrameRouter(params, seed=seed + 1)
    engine = Engine(problem, router, seed=seed + 2,
                    enable_fast_forward=False)
    sampler = OccupancySampler(every=params.w)
    sampler.install(engine)
    result = engine.run(params.total_steps)
    assert result.all_delivered, result.summary()
    print(occupancy_strip(sampler, max_rows=40))
    print(f"\nall {result.num_packets} packets delivered by t={result.makespan} "
          f"({result.total_deflections} deflections, all backward+safe: "
          f"{result.unsafe_deflections == 0})")


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:3]]
    main(*args)
