#!/usr/bin/env python3
"""Section 5's application: routing on an n x n mesh, four-corner style.

The paper: "the mesh network can be viewed in four different ways as a
leveled network, according to which corner node is level 0", and its
Section 5 points at the n x n mesh with congestion- and dilation-``O(n)``
paths as the immediate application.

This example routes an *arbitrary* (non-monotone) random partial
permutation on the mesh by decomposing it into the four monotone classes,
mapping each class onto the mesh orientation for which it is monotone, and
running the frontier-frame algorithm once per class — four leveled routing
problems, each with dimension-order O(n) paths.

Run:  python examples/mesh_routing.py [n] [packets] [seed]
"""

import sys

from repro.analysis import format_table
from repro.core import AlgorithmParams, FrontierFrameRouter
from repro.net import MeshCorner, mesh, mesh_coords, mesh_node
from repro.paths import dimension_order_path, PacketSpec, RoutingProblem
from repro.rng import make_rng
from repro.sim import Engine


#: the orientation in which each (down?, right?) displacement is monotone
ORIENTATION_OF = {
    (True, True): MeshCorner.NORTH_WEST,
    (True, False): MeshCorner.NORTH_EAST,
    (False, True): MeshCorner.SOUTH_WEST,
    (False, False): MeshCorner.SOUTH_EAST,
}

#: coordinate transform into the NW frame of each orientation
def to_nw(corner: MeshCorner, n: int, i: int, j: int):
    if corner is MeshCorner.NORTH_WEST:
        return i, j
    if corner is MeshCorner.NORTH_EAST:
        return i, n - 1 - j
    if corner is MeshCorner.SOUTH_WEST:
        return n - 1 - i, j
    return n - 1 - i, n - 1 - j


def route_class(n, pairs, corner, seed):
    """Route one monotone class on the NW-leveled mesh via reflection."""
    net = mesh(n, n)  # NW orientation; we reflect coordinates instead
    specs = []
    for k, ((si, sj), (di, dj)) in enumerate(pairs):
        s = mesh_node(net, *to_nw(corner, n, si, sj))
        d = mesh_node(net, *to_nw(corner, n, di, dj))
        specs.append(PacketSpec(k, s, d, dimension_order_path(net, s, d)))
    problem = RoutingProblem(net, specs)
    params = AlgorithmParams.practical(
        problem.congestion, net.depth, problem.num_packets, m=8, w_factor=8.0
    )
    engine = Engine(problem, FrontierFrameRouter(params, seed=seed), seed=seed + 1)
    return problem, engine.run(params.total_steps)


def main(n: int = 10, packets: int = 40, seed: int = 0) -> None:
    rng = make_rng(seed)
    # A random partial permutation: distinct sources AND distinct dests.
    cells = [(i, j) for i in range(n) for j in range(n)]
    order = rng.permutation(len(cells))
    sources = [cells[int(k)] for k in order[:packets]]
    order2 = rng.permutation(len(cells))
    dests = [cells[int(k)] for k in order2[:packets]]

    classes: dict[MeshCorner, list] = {c: [] for c in ORIENTATION_OF.values()}
    for (si, sj), (di, dj) in zip(sources, dests):
        if (si, sj) == (di, dj):
            continue
        corner = ORIENTATION_OF[(di >= si, dj >= sj)]
        classes[corner].append(((si, sj), (di, dj)))

    print(f"{n}x{n} mesh, {packets} packets, decomposed into 4 monotone classes:")
    rows = []
    total_time = 0
    for offset, (corner, pairs) in enumerate(classes.items()):
        if not pairs:
            rows.append((corner.name, 0, "-", "-", "-", "-"))
            continue
        problem, result = route_class(n, pairs, corner, seed + 13 * offset)
        assert result.all_delivered, result.summary()
        total_time += result.makespan
        rows.append(
            (
                corner.name,
                len(pairs),
                problem.congestion,
                problem.dilation,
                result.makespan,
                result.total_deflections,
            )
        )
    print()
    print(format_table(
        ["class (level-0 corner)", "packets", "C", "D", "T", "deflections"],
        rows,
        title="four-phase mesh routing (one leveled instance per corner)",
        note=f"sequential four-phase total: {total_time} steps "
        f"(classes could also run concurrently on disjoint priorities)",
    ))


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:4]]
    main(*args)
