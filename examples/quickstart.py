#!/usr/bin/env python3
"""Quickstart: route random butterfly traffic with the paper's algorithm.

Builds a 5-dimensional butterfly (Figure 1's canonical leveled network),
gives each of the 32 inputs a packet to a random output, attaches the
unique bit-fixing paths, and routes them hot-potato with the frontier-frame
algorithm of Busch (SPAA 2002) — then shows the same problem solved by a
buffered store-and-forward scheduler for scale.

Run:  python examples/quickstart.py [seed]
"""

import sys

from repro.analysis import format_kv, format_table
from repro.baselines import StoreForwardScheduler
from repro.core import AlgorithmParams, FrontierFrameRouter, audited_run
from repro.net import butterfly
from repro.paths import select_paths_bit_fixing
from repro.sim import Engine
from repro.workloads import butterfly_workloads


def main(seed: int = 0) -> None:
    # 1. A leveled network and a routing problem (paths preselected).
    net = butterfly(5)
    workload = butterfly_workloads.random_end_to_end(net, seed=seed)
    problem = select_paths_bit_fixing(net, workload.endpoints)
    print(f"network : {net.describe()}")
    print(f"problem : {problem.describe()}  (lower bound max(C,D) = "
          f"{problem.lower_bound})")

    # 2. Parameterize the algorithm.  `practical` keeps the paper's
    #    structure (frontier-sets, frames, rounds, excitation) with
    #    simulation-friendly constants; `theory_exact` gives Section 2.1's
    #    own numbers, shown here for contrast.
    params = AlgorithmParams.practical(
        problem.congestion, net.depth, problem.num_packets
    )
    print()
    print(format_kv(params.describe(), title="practical parameters"))
    theory = params.theory
    print()
    print(format_kv(
        {
            "m (theory)": theory.m,
            "w (theory)": theory.w,
            "q (theory)": theory.q,
            "total steps (theory)": theory.total_steps,
        },
        title="Section 2.1 exact constants (why the paper says "
        "'not really practical')",
    ))

    # 3. Route, with the invariant auditor watching I_a..I_f.
    router = FrontierFrameRouter(params, seed=seed + 1)
    engine = Engine(problem, router, seed=seed + 2)
    result, report = audited_run(engine)

    print()
    print(format_table(
        [
            "router",
            "delivered",
            "makespan",
            "vs max(C,D)",
            "deflections",
            "invariants",
        ],
        [
            (
                "frontier-frame (paper)",
                f"{result.delivered}/{result.num_packets}",
                result.makespan,
                f"{result.slowdown:.0f}x",
                result.total_deflections,
                report.summary(),
            )
        ],
        title="hot-potato routing result",
    ))

    # 4. The buffered comparator (what the Omega(C+D) bound refers to).
    buffered = StoreForwardScheduler(problem, seed=seed).run()
    print()
    print(
        f"store-and-forward (buffered) finishes in {buffered.makespan} steps "
        f"({buffered.makespan / problem.lower_bound:.1f}x the lower bound); "
        f"the bufferless algorithm pays a factor "
        f"{result.makespan / buffered.makespan:.0f} — bounded by the "
        "theorem's polylog."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 0)
