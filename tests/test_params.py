"""Unit tests for Section 2.1 parameters (theory-exact and practical)."""

import math

import pytest

from repro.core import (
    PRESETS,
    AlgorithmParams,
    compute_theory_values,
    ln_ln_factor,
    polylog_exponent_check,
    preset_kwargs,
    theorem_success_probability,
    theorem_time_bound,
)
from repro.errors import ParameterError


class TestTheoryValues:
    def test_reconstructed_formulas(self):
        C, L, N = 4, 8, 32
        tv = compute_theory_values(C, L, N)
        lnln = math.log(L * N)
        assert tv.a == pytest.approx(2 * math.e**3 / lnln)
        assert tv.m == pytest.approx(lnln**2 + 5)
        assert tv.q == pytest.approx(1 / (tv.m**2 * lnln))
        assert tv.p0 == pytest.approx(1 - 1 / (2 * L * N))
        amc = tv.a * tv.m * C
        assert tv.amc == pytest.approx(amc)
        assert tv.p1 == pytest.approx(1 / ((amc + L) * 2 * amc * L * N**2))
        assert tv.w == pytest.approx(
            4 * math.e * tv.m**2 * lnln * math.log(1 / tv.p1) + 3 * tv.m + 1
        )
        assert tv.total_phases == pytest.approx(amc + L)
        assert tv.total_steps == pytest.approx((amc + L) * tv.m * tv.w)

    def test_lemma_4_3_inequality(self):
        # (1 - mq)^{m ln(LN)} >= 1/(2e): the excited packet's success bound.
        for C, L, N in [(2, 4, 8), (8, 16, 128), (64, 32, 1024)]:
            tv = compute_theory_values(C, L, N)
            lnln = math.log(L * N)
            prob = (1 - tv.m * tv.q) ** (tv.m * lnln)
            assert prob >= 1 / (2 * math.e)

    def test_theorem_426_success_probability(self):
        # p(amC + L) >= 1 - 1/(LN) — the theorem's probability chain.
        for C, L, N in [(2, 4, 8), (4, 8, 64), (16, 16, 256)]:
            assert theorem_success_probability(C, L, N) >= 1 - 1 / (L * N)

    def test_time_bound_is_polylog_of_c_plus_l(self):
        # (amC + L)·m·w / (C + L) must be bounded by ln^9(LN) up to a
        # constant (the reconstructed constant is ~8e^4·ln(1/p1)/ln ≈ 10^6):
        # check the shape empirically across a size sweep.
        for C, L, N in [(2, 8, 16), (8, 32, 256), (32, 128, 4096)]:
            assert theorem_time_bound(C, L, N) > 0
            lnln = math.log(L * N)
            factor = polylog_exponent_check(C, L, N)
            assert factor <= 1e6 * lnln**9
            # ... and is genuinely large (the paper admits impracticality).
            assert factor > lnln**4

    def test_tiny_instances_clamped(self):
        assert ln_ln_factor(1, 1) == 1.0
        tv = compute_theory_values(1, 1, 1)
        assert tv.m >= 5

    def test_bad_inputs(self):
        with pytest.raises(ParameterError):
            compute_theory_values(0, 4, 4)
        with pytest.raises(ParameterError):
            ln_ln_factor(0, 4)


class TestAlgorithmParams:
    def test_theory_exact_integers(self):
        params = AlgorithmParams.theory_exact(2, 4, 8)
        tv = params.theory
        assert params.m == math.ceil(tv.m)
        assert params.w == math.ceil(tv.w)
        assert params.num_sets == math.ceil(tv.a * 2)
        assert params.mode == "theory"

    def test_practical_defaults(self):
        params = AlgorithmParams.practical(6, 20, 50)
        assert params.mode == "practical"
        assert params.num_sets >= math.ceil(6 / params.set_congestion_bound)
        assert params.m >= 6
        assert params.w >= 4 * params.m
        assert 0 < params.q <= 1

    def test_schedule_arithmetic(self):
        params = AlgorithmParams.practical(4, 10, 16, m=6, w=24)
        assert params.steps_per_phase == 144
        assert params.total_phases == params.num_sets * 6 + 10
        assert params.total_steps == params.total_phases * 144

    def test_oversplit_increases_sets(self):
        lean = AlgorithmParams.practical(9, 10, 16, oversplit=1.0)
        fat = AlgorithmParams.practical(9, 10, 16, oversplit=3.0)
        assert fat.num_sets >= 3 * lean.num_sets - 3

    def test_validation(self):
        with pytest.raises(ParameterError):
            AlgorithmParams.practical(0, 4, 4)
        with pytest.raises(ParameterError):
            AlgorithmParams.practical(4, 4, 4, m=2)
        with pytest.raises(ParameterError):
            AlgorithmParams.practical(4, 4, 4, q=1.5)
        with pytest.raises(ParameterError):
            AlgorithmParams.practical(4, 4, 4, oversplit=0.5)
        with pytest.raises(ParameterError):
            AlgorithmParams.practical(4, 4, 4, set_congestion_target=0.2)

    def test_describe_keys(self):
        desc = AlgorithmParams.practical(4, 8, 16).describe()
        for key in ("num_sets", "m", "w", "q", "total_steps"):
            assert key in desc

    def test_tiny_instance_practical(self):
        # L = N = 1 clamps ln(LN) to 1; every derived value stays legal.
        params = AlgorithmParams.practical(1, 1, 1)
        assert params.num_sets >= 1
        assert params.m >= 4
        assert params.w >= 1
        assert 0.0 <= params.q <= 1.0
        assert params.set_congestion_bound >= 1.0

    def test_q_extremes_are_valid_parameterizations(self):
        for q in (0.0, 1.0):
            params = AlgorithmParams.practical(4, 8, 16, q=q)
            assert params.q == q


class TestPresets:
    def test_known_presets(self):
        assert set(PRESETS) == {"paper-faithful", "practical"}
        # paper-faithful IS the practical constructor's defaults.
        assert PRESETS["paper-faithful"] == {}

    def test_preset_kwargs_copies(self):
        kwargs = preset_kwargs("practical")
        kwargs["m"] = 999
        assert PRESETS["practical"]["m"] != 999

    def test_unknown_preset(self):
        with pytest.raises(ParameterError, match="paper-faithful"):
            preset_kwargs("turbo")
        with pytest.raises(ParameterError):
            AlgorithmParams.from_preset("turbo", 4, 8, 16)

    def test_paper_faithful_matches_defaults(self):
        via_preset = AlgorithmParams.from_preset("paper-faithful", 6, 20, 50)
        direct = AlgorithmParams.practical(6, 20, 50)
        assert via_preset.describe() == {
            **direct.describe(),
            "mode": "paper-faithful",
        }

    def test_practical_preset_values(self):
        params = AlgorithmParams.from_preset("practical", 6, 20, 50)
        assert params.mode == "practical"
        assert params.m == PRESETS["practical"]["m"]
        assert params.q == PRESETS["practical"]["q"]
        assert params.set_congestion_bound == (
            PRESETS["practical"]["set_congestion_target"]
        )

    def test_overrides_win(self):
        params = AlgorithmParams.from_preset(
            "practical", 6, 20, 50, m=12, q=0.125
        )
        assert params.m == 12
        assert params.q == 0.125

    def test_presets_survive_tiny_instances(self):
        for name in PRESETS:
            params = AlgorithmParams.from_preset(name, 1, 1, 1)
            assert params.m >= 4
            assert params.total_steps >= 1


class TestPresetEndToEnd:
    """The shipped presets against real instances (regression gates)."""

    def test_q_extremes_route_end_to_end(self):
        from repro.experiments import butterfly_random_instance, run_frontier_trial

        problem = butterfly_random_instance(3, seed=5)
        for q in (0.0, 1.0):
            record = run_frontier_trial(problem, 0, audit=True, q=q)
            assert record.result.all_delivered, f"q={q} left packets"
            assert record.audit is not None and record.audit.ok

    def test_practical_preset_audits_clean_on_every_family(self):
        # The regression gate behind the shipped preset: "practical" must
        # keep every frontier-frame invariant (and deliver everything) on
        # every catalog topology family, not just the one it was tuned on.
        from repro.experiments import (
            PRESET_FAMILIES,
            catalog_spec,
            run_frontier_trial,
        )
        from repro.scenarios import build_problem

        families = tuple(PRESET_FAMILIES) + ("mesh_corner_shift",)
        for name in families:
            problem = build_problem(catalog_spec(name).with_pinned_scenario())
            record = run_frontier_trial(
                problem, 0, audit=True, preset="practical"
            )
            assert record.result.all_delivered, f"{name}: packets stuck"
            assert record.audit is not None and record.audit.ok, (
                f"{name}: {record.audit.summary()}"
            )
