"""Smoke tests: every example script runs end to end.

Each example is executed in-process with patched ``sys.argv`` (small
arguments to keep runtimes down) and must complete without raising.
"""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args):
    argv = [str(EXAMPLES / name)] + [str(a) for a in args]
    old = sys.argv
    sys.argv = argv
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old


def test_quickstart(capsys):
    run_example("quickstart.py", 1)
    out = capsys.readouterr().out
    assert "all invariants held" in out
    assert "store-and-forward" in out


def test_mesh_routing(capsys):
    run_example("mesh_routing.py", 8, 20, 1)
    out = capsys.readouterr().out
    assert "four-phase mesh routing" in out


def test_optical_butterfly(capsys):
    run_example("optical_butterfly.py", 4, 1)
    out = capsys.readouterr().out
    assert "sharpening hot spot" in out


def test_frame_anatomy(capsys):
    run_example("frame_anatomy.py", 16, 2)
    out = capsys.readouterr().out
    assert "frame schedule" in out
    assert "all" in out and "delivered" in out


def test_hypercube_two_phase(capsys):
    run_example("hypercube_two_phase.py", 5, 8, 1)
    out = capsys.readouterr().out
    assert "two-phase hypercube routing" in out


def test_tree_routing(capsys):
    run_example("tree_routing.py", 4, 6, 1)
    out = capsys.readouterr().out
    assert "two-phase tree routing" in out


def test_arbitrary_dag(capsys):
    run_example("arbitrary_dag.py", 30, 15, 6, 1)
    out = capsys.readouterr().out
    assert "unrolled DAG" in out
    assert "all invariants held" in out
