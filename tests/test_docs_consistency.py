"""Meta-tests keeping the documentation honest.

DESIGN.md's experiment index, the bench modules, EXPERIMENTS.md's
sections, and the examples directory must stay in sync; these tests fail
when someone adds an experiment or example without recording it (or vice
versa).
"""

import pathlib
import re

ROOT = pathlib.Path(__file__).resolve().parent.parent


def read(name: str) -> str:
    return (ROOT / name).read_text(encoding="utf-8")


def bench_modules() -> set:
    return {
        p.name for p in (ROOT / "benchmarks").glob("bench_*.py")
    }


class TestDesignIndex:
    def test_every_bench_target_exists(self):
        design = read("DESIGN.md")
        referenced = set(re.findall(r"benchmarks/(bench_\w+\.py)", design))
        assert referenced, "DESIGN.md references no bench targets?"
        missing = referenced - bench_modules()
        assert not missing, f"DESIGN.md references absent benches: {missing}"

    def test_every_bench_is_indexed(self):
        design = read("DESIGN.md")
        referenced = set(re.findall(r"benchmarks/(bench_\w+\.py)", design))
        unindexed = bench_modules() - referenced
        assert not unindexed, (
            f"benches missing from DESIGN.md's index: {unindexed}"
        )


class TestExperimentsRecord:
    def test_every_experiment_id_documented(self):
        experiments = read("EXPERIMENTS.md")
        for module in bench_modules():
            # bench_t1_scaling.py -> t1 ; bench_engine_throughput exempt.
            match = re.match(r"bench_([a-z]\d+)_", module)
            if not match:
                continue
            exp_id = match.group(1).upper()
            assert re.search(rf"\b{exp_id}\b", experiments), (
                f"{module} has no section in EXPERIMENTS.md ({exp_id})"
            )

    def test_regeneration_command_present(self):
        assert "pytest benchmarks/ --benchmark-only" in read("EXPERIMENTS.md")


class TestReadme:
    def test_every_example_listed(self):
        readme = read("README.md")
        examples = {
            p.name for p in (ROOT / "examples").glob("*.py")
        }
        for example in examples - {"quickstart.py"}:
            assert example in readme, f"README does not mention {example}"
        assert "quickstart.py" in readme

    def test_docs_linked(self):
        readme = read("README.md")
        exempt = {"paper_summary.md", "api.md"}
        for page in (ROOT / "docs").glob("*.md"):
            assert page.name in readme or page.name in exempt, (
                f"README does not link docs/{page.name}"
            )


class TestApiIndex:
    def test_api_doc_is_fresh(self):
        """docs/api.md must match what the generator would write now.

        Uses the generator's own ``--check`` mode (also run in CI), which
        compares without touching the committed file.
        """
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, str(ROOT / "tools" / "gen_api_doc.py"), "--check"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, (
            f"docs/api.md is stale; run python tools/gen_api_doc.py\n"
            f"{proc.stderr}"
        )


class TestObservabilityDoc:
    def test_every_event_kind_documented(self):
        """docs/observability.md's schema table must name every EventKind."""
        import sys

        sys.path.insert(0, str(ROOT / "src"))
        try:
            from repro.sim import EventKind
        finally:
            sys.path.pop(0)
        doc = read("docs/observability.md")
        for kind in EventKind:
            assert f"`{kind.value}`" in doc, (
                f"docs/observability.md does not document event kind "
                f"{kind.value!r}"
            )

    def test_every_counter_key_documented(self):
        """Top-level RunResult.telemetry keys must appear in the doc."""
        import sys

        sys.path.insert(0, str(ROOT / "src"))
        try:
            from repro.telemetry import Counters
        finally:
            sys.path.pop(0)
        doc = read("docs/observability.md")
        for key in Counters().to_dict():
            if key in ("schema", "runs"):
                continue
            assert f"`{key}`" in doc, (
                f"docs/observability.md does not document counter key {key!r}"
            )

    def test_performance_doc_links_overhead_section(self):
        assert "## Telemetry overhead" in read("docs/performance.md")
        assert "#telemetry-overhead" in read("docs/observability.md")


class TestTuningDoc:
    def test_every_preset_documented(self):
        """Every name in the PRESETS catalog must appear in docs/tuning.md."""
        import sys

        sys.path.insert(0, str(ROOT / "src"))
        try:
            from repro.core import PRESETS
        finally:
            sys.path.pop(0)
        doc = read("docs/tuning.md")
        for name in PRESETS:
            assert name in doc, (
                f"docs/tuning.md does not document preset {name!r}"
            )

    def test_checked_in_study_exists(self):
        """The study the docs (and PRESETS docstring) point at is real."""
        study_path = ROOT / "benchmarks" / "studies" / (
            "practical_preset_study.json"
        )
        assert study_path.exists()
        assert "benchmarks/studies/practical_preset_study.json" in read(
            "docs/tuning.md"
        )

    def test_documented_preset_values_match_shipped(self):
        """docs/tuning.md's winner block must quote the shipped values."""
        import sys

        sys.path.insert(0, str(ROOT / "src"))
        try:
            from repro.core import PRESETS
        finally:
            sys.path.pop(0)
        doc = read("docs/tuning.md")
        for key, value in PRESETS["practical"].items():
            assert f'"{key}": {value}' in doc, (
                f"docs/tuning.md's winner block is stale for {key}={value}"
            )


class TestExamplesCovered:
    def test_every_example_has_a_smoke_test(self):
        smoke = read("tests/test_examples.py")
        for example in (ROOT / "examples").glob("*.py"):
            assert example.name in smoke, (
                f"{example.name} has no smoke test in tests/test_examples.py"
            )
