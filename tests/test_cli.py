"""Tests for the command-line interface."""

import pytest

from repro.cli import build_problem, build_topology, main


class TestTopologySpecs:
    @pytest.mark.parametrize(
        "spec,depth",
        [
            ("butterfly:3", 3),
            ("mesh:4x6", 8),
            ("mesh:5", 8),  # square shorthand
            ("hypercube:4", 4),
            ("line:9", 9),
            ("omega:3", 3),
            ("fattree:3", 3),
            ("btree:3", 3),
            ("random:4x10", 10),
        ],
    )
    def test_specs_parse(self, spec, depth):
        net = build_topology(spec)
        assert net.depth == depth

    def test_unknown_topology(self):
        with pytest.raises(SystemExit):
            build_topology("torus:4")

    def test_bad_arguments(self):
        with pytest.raises(SystemExit):
            build_topology("butterfly:abc")


class TestWorkloads:
    def test_random_workload(self):
        net = build_topology("butterfly:3")
        problem = build_problem(net, "random", 6, seed=0)
        assert problem.num_packets == 6

    def test_permutation(self):
        net = build_topology("butterfly:3")
        problem = build_problem(net, "permutation", None, seed=0)
        assert problem.num_packets == 8

    def test_hotrow(self):
        net = build_topology("butterfly:3")
        problem = build_problem(net, "hotrow", 6, seed=0)
        assert len({d for _, d in ((s.source, s.destination) for s in problem)}) == 1

    def test_unknown_workload(self):
        net = build_topology("butterfly:3")
        with pytest.raises(SystemExit):
            build_problem(net, "nope", None, seed=0)


class TestCommands:
    def test_topo_command(self, capsys):
        assert main(["topo", "mesh:4x4"]) == 0
        out = capsys.readouterr().out
        assert "validation" in out and "OK" in out

    def test_params_command(self, capsys):
        assert main(["params", "4", "8", "32"]) == 0
        out = capsys.readouterr().out
        assert "practical parameters" in out
        assert "theory-exact" in out

    def test_frames_command(self, capsys):
        assert main(["frames", "4", "10", "16", "--m", "4", "--w", "8"]) == 0
        out = capsys.readouterr().out
        assert "phase |" in out

    def test_route_frontier_audited(self, capsys):
        code = main(
            [
                "route",
                "--net",
                "butterfly:3",
                "--workload",
                "random",
                "--packets",
                "6",
                "--router",
                "frontier",
                "--audit",
                "--seed",
                "1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "all invariants held" in out

    @pytest.mark.parametrize(
        "router", ["naive", "greedy", "randgreedy", "storeforward"]
    )
    def test_route_baselines(self, capsys, router):
        code = main(
            [
                "route",
                "--net",
                "butterfly:3",
                "--workload",
                "permutation",
                "--router",
                router,
                "--seed",
                "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "ok" in out

    def test_route_unknown_router(self):
        with pytest.raises(SystemExit):
            main(["route", "--router", "quantum"])

    def test_experiment_listing(self, capsys):
        assert main(["experiment"]) == 0
        out = capsys.readouterr().out
        assert "t1" in out and "a4" in out

    def test_experiment_unknown(self, capsys):
        assert main(["experiment", "zz"]) == 2

    def test_experiment_runs_one(self, capsys):
        # E1 is the cheapest experiment (topology validation only).
        assert main(["experiment", "e1"]) == 0

    @pytest.mark.parametrize("router", ["naive", "greedy"])
    def test_dynamic_command(self, capsys, router):
        code = main(
            [
                "dynamic",
                "--net",
                "butterfly:3",
                "--rate",
                "0.2",
                "--horizon",
                "60",
                "--router",
                router,
                "--seed",
                "1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "drained" in out
        assert "latency" in out
