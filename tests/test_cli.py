"""Tests for the command-line interface."""

import pytest

from repro.cli import build_problem, build_topology, main
from repro.errors import ReproError
from repro.scenarios import UnknownNameError


class TestTopologySpecs:
    @pytest.mark.parametrize(
        "spec,depth",
        [
            ("butterfly:3", 3),
            ("mesh:4x6", 8),
            ("mesh:5", 8),  # square shorthand
            ("hypercube:4", 4),
            ("line:9", 9),
            ("omega:3", 3),
            ("fattree:3", 3),
            ("btree:3", 3),
            ("random:4x10", 10),
        ],
    )
    def test_specs_parse(self, spec, depth):
        net = build_topology(spec)
        assert net.depth == depth

    def test_unknown_topology(self):
        with pytest.raises(UnknownNameError) as excinfo:
            build_topology("torus:4")
        message = str(excinfo.value)
        assert "unknown topology 'torus'" in message
        assert "available:" in message and "butterfly" in message

    def test_typo_suggests_closest_name(self):
        with pytest.raises(UnknownNameError, match=r"did you mean 'butterfly'\?"):
            build_topology("buterfly:4")

    def test_unknown_name_is_repro_error(self):
        # main() maps ReproError to exit code 2 with the message on stderr.
        assert issubclass(UnknownNameError, ReproError)

    def test_bad_arguments(self):
        with pytest.raises(SystemExit):
            build_topology("butterfly:abc")


class TestWorkloads:
    def test_random_workload(self):
        net = build_topology("butterfly:3")
        problem = build_problem(net, "random", 6, seed=0)
        assert problem.num_packets == 6

    def test_permutation(self):
        net = build_topology("butterfly:3")
        problem = build_problem(net, "permutation", None, seed=0)
        assert problem.num_packets == 8

    def test_hotrow(self):
        net = build_topology("butterfly:3")
        problem = build_problem(net, "hotrow", 6, seed=0)
        assert len({d for _, d in ((s.source, s.destination) for s in problem)}) == 1

    def test_unknown_workload(self):
        net = build_topology("butterfly:3")
        with pytest.raises(UnknownNameError, match="unknown workload 'nope'"):
            build_problem(net, "nope", None, seed=0)


class TestCommands:
    def test_topo_command(self, capsys):
        assert main(["topo", "mesh:4x4"]) == 0
        out = capsys.readouterr().out
        assert "validation" in out and "OK" in out

    def test_params_command(self, capsys):
        assert main(["params", "4", "8", "32"]) == 0
        out = capsys.readouterr().out
        assert "practical parameters" in out
        assert "theory-exact" in out

    def test_frames_command(self, capsys):
        assert main(["frames", "4", "10", "16", "--m", "4", "--w", "8"]) == 0
        out = capsys.readouterr().out
        assert "phase |" in out

    def test_route_frontier_audited(self, capsys):
        code = main(
            [
                "route",
                "--net",
                "butterfly:3",
                "--workload",
                "random",
                "--packets",
                "6",
                "--router",
                "frontier",
                "--audit",
                "--seed",
                "1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "all invariants held" in out

    @pytest.mark.parametrize(
        "router", ["naive", "greedy", "randgreedy", "storeforward"]
    )
    def test_route_baselines(self, capsys, router):
        code = main(
            [
                "route",
                "--net",
                "butterfly:3",
                "--workload",
                "permutation",
                "--router",
                router,
                "--seed",
                "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "ok" in out

    def test_route_unknown_router(self, capsys):
        assert main(["route", "--router", "quantum"]) == 2
        err = capsys.readouterr().err
        assert "unknown backend 'quantum'" in err
        assert "available:" in err

    def test_topo_typo_message(self, capsys):
        assert main(["topo", "buterfly:4"]) == 2
        err = capsys.readouterr().err
        assert "unknown topology 'buterfly'" in err
        assert "(did you mean 'butterfly'?)" in err

    def test_experiment_listing(self, capsys):
        assert main(["experiment"]) == 0
        out = capsys.readouterr().out
        assert "t1" in out and "a4" in out

    def test_experiment_unknown(self, capsys):
        assert main(["experiment", "zz"]) == 2

    def test_experiment_runs_one(self, capsys):
        # E1 is the cheapest experiment (topology validation only).
        assert main(["experiment", "e1"]) == 0

    @pytest.mark.parametrize("router", ["naive", "greedy"])
    def test_dynamic_command(self, capsys, router):
        code = main(
            [
                "dynamic",
                "--net",
                "butterfly:3",
                "--rate",
                "0.2",
                "--horizon",
                "60",
                "--router",
                router,
                "--seed",
                "1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "drained" in out
        assert "latency" in out


class TestSpecCommands:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "butterfly_random" in out
        assert "topologies:" in out and "backends:" in out

    def test_spec_prints_json(self, capsys):
        assert main(["spec", "butterfly_random"]) == 0
        out = capsys.readouterr().out
        assert '"kind": "run_spec"' in out

    def test_spec_unknown_name(self, capsys):
        assert main(["spec", "no_such_entry"]) == 2
        assert "unknown catalog spec" in capsys.readouterr().err

    def test_spec_roundtrip_through_run(self, tmp_path, capsys):
        target = tmp_path / "spec.json"
        assert main(["spec", "butterfly_greedy", "--out", str(target)]) == 0
        assert main(["run", "--spec", str(target)]) == 0
        out = capsys.readouterr().out
        assert "GreedyHotPotatoRouter" in out and "ok" in out

    def test_run_missing_spec_file(self, tmp_path, capsys):
        assert main(["run", "--spec", str(tmp_path / "absent.json")]) == 2
        assert "spec file not found" in capsys.readouterr().err

    def test_run_with_cache(self, tmp_path, capsys):
        target = tmp_path / "spec.json"
        assert main(["spec", "butterfly_naive", "--out", str(target)]) == 0
        cache = str(tmp_path / "cache")
        args = ["run", "--spec", str(target), "--cache", "--cache-dir", cache]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "cache : hit" not in first
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "cache : hit" in second
        # The cached result is the same record the live run produced.
        assert first.splitlines()[-1] == second.splitlines()[-1]

    def test_sweep_matches_serial(self, capsys):
        # The sweep output is deterministic for fixed seeds regardless of
        # worker count.
        args = ["sweep", "--net", "butterfly:3", "--trials", "3", "--seed", "5"]
        assert main(args) == 0
        serial = capsys.readouterr().out
        assert main(args + ["--workers", "2"]) == 0
        parallel = capsys.readouterr().out
        line = next(l for l in serial.splitlines() if l.startswith("makespan"))
        assert line in parallel
