"""Tests for the streaming traffic core (``repro.traffic``).

Covers the four tentpole layers: injection sources (including byte-identity
of :class:`BernoulliSource` with the legacy ``bernoulli_arrivals``), the
engine-level arrival gating shared by the reference and vectorized kernels,
windowed live metrics, and the open-loop streaming driver behind
``repro serve``.  The golden-digest class pins the refactored dynamic
pipeline to its pre-refactor behavior, hash for hash.
"""

import hashlib
import json
import pathlib
import tempfile
import warnings

import pytest

from repro.baselines import GreedyHotPotatoRouter, NaivePathRouter
from repro.dynamic import (
    DynamicNaiveRouter,
    Router_attach,
    bernoulli_arrivals,
    router_attach,
)
from repro.errors import ParameterError, ReproError, SimulationError, WorkloadError
from repro.net import butterfly
from repro.paths import random_monotone_path
from repro.rng import make_rng
from repro.scenarios import RunSpec, run_trial
from repro.sim import Engine, numpy_available
from repro.sim.events import EventKind, TraceEvent
from repro.telemetry import WindowedMetrics
from repro.telemetry.live import WINDOW_SCHEMA, _quantile
from repro.traffic import (
    Arrival,
    ArrivalSchedule,
    BatchSource,
    BernoulliSource,
    PoissonSource,
    TraceSource,
    collect_arrivals,
    make_stream_router,
    problem_from_arrivals,
    run_stream,
)
from repro.experiments import (
    run_frontier_trial,
    run_frontier_vec_trial,
    run_naive_vec_trial,
    run_router_trial,
)

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="vectorized backend requires numpy"
)


@pytest.fixture
def net():
    return butterfly(3)


# ------------------------------------------------------------- ArrivalSchedule


class TestArrivalSchedule:
    def test_due_at_groups_and_orders(self):
        sched = ArrivalSchedule([5, 0, 5, 2])
        assert sched.due_at(5) == (0, 2)
        assert sched.due_at(0) == (1,)
        assert sched.due_at(2) == (3,)
        assert sched.due_at(1) == ()
        assert sched.max_time == 5

    def test_time_of(self):
        sched = ArrivalSchedule([3, 1])
        assert sched.time_of(0) == 3
        assert sched.time_of(1) == 1

    def test_negative_times_rejected(self):
        with pytest.raises(WorkloadError):
            ArrivalSchedule([0, -1])

    def test_validate_for_mismatch(self):
        sched = ArrivalSchedule([0, 1])
        sched.validate_for(2)
        with pytest.raises(WorkloadError):
            sched.validate_for(3)


# ------------------------------------------------------------------- sources


class TestSources:
    def test_bernoulli_matches_legacy_stream(self, net):
        """Draw-for-draw identity with repro.dynamic.bernoulli_arrivals."""
        legacy = bernoulli_arrivals(
            net, 0.3, horizon=120, seed=17, source_levels=[0, 1], min_hops=2
        )
        src = BernoulliSource(
            net, 0.3, seed=17, horizon=120, source_levels=[0, 1], min_hops=2
        )
        assert collect_arrivals(src) == legacy

    def test_bernoulli_validation(self, net):
        with pytest.raises(WorkloadError):
            BernoulliSource(net, 1.5)
        with pytest.raises(WorkloadError):
            BernoulliSource(net, 0.2, horizon=0)

    def test_bernoulli_open_loop_never_stops(self, net):
        src = BernoulliSource(net, 0.9, seed=3, horizon=None)
        assert src.horizon is None
        assert any(src.arrivals_at(t) for t in range(10))
        with pytest.raises(WorkloadError):
            collect_arrivals(src)  # cannot materialize without a horizon

    def test_poisson_fields_and_reproducibility(self, net):
        a = collect_arrivals(PoissonSource(net, 2.0, seed=5, horizon=40))
        b = collect_arrivals(PoissonSource(net, 2.0, seed=5, horizon=40))
        assert a == b
        assert a
        for arrival in a:
            assert 0 <= arrival.time < 40
            assert net.level(arrival.destination) > net.level(arrival.source)

    def test_poisson_validation(self, net):
        with pytest.raises(WorkloadError):
            PoissonSource(net, -0.1)

    def test_trace_source_sorts_and_bounds(self, net):
        lo = net.nodes_at_level(0)[0]
        hi = net.nodes_at_level(3)[0]
        src = TraceSource(
            [Arrival(7, lo, hi), Arrival(2, lo, hi), Arrival(2, lo, hi)]
        )
        assert src.horizon == 8
        assert len(src.arrivals_at(2)) == 2
        assert len(src.arrivals_at(7)) == 1
        assert collect_arrivals(src) == sorted(
            collect_arrivals(src), key=lambda a: a.time
        )
        with pytest.raises(WorkloadError):
            TraceSource([Arrival(-1, lo, hi)])

    def test_batch_source_is_static_case(self, net):
        lo = net.nodes_at_level(0)[0]
        hi = net.nodes_at_level(3)[0]
        src = BatchSource([(lo, hi), (lo, hi)])
        assert src.horizon == 1
        assert len(src.arrivals_at(0)) == 2
        assert src.arrivals_at(1) == []
        assert all(a.time == 0 for a in collect_arrivals(src))

    def test_problem_from_arrivals_attaches_schedule(self, net):
        arrivals = collect_arrivals(BernoulliSource(net, 0.2, seed=2, horizon=30))
        problem, times = problem_from_arrivals(net, arrivals, seed=4)
        assert problem.arrival_schedule is not None
        assert list(problem.arrival_schedule.times) == times
        assert [a.time for a in arrivals] == times


# ------------------------------------------------- engine-level arrival gating


class TestEngineGating:
    def test_plain_routers_respect_schedule(self, net):
        """Arrival release lives in the engine now: ordinary routers with no
        knowledge of schedules must still honor arrival times."""
        arrivals = collect_arrivals(BernoulliSource(net, 0.25, seed=9, horizon=50))
        problem, times = problem_from_arrivals(net, arrivals, seed=10)
        for router in (NaivePathRouter(), GreedyHotPotatoRouter(seed=11)):
            engine = Engine(problem, router, seed=12)
            result = engine.run(50 + 5000)
            assert result.all_delivered
            for pid, packet in enumerate(engine.packets):
                assert packet.injected_at >= times[pid]

    def test_schedule_length_checked_at_construction(self, net):
        arrivals = collect_arrivals(BernoulliSource(net, 0.2, seed=1, horizon=20))
        problem, _ = problem_from_arrivals(net, arrivals, seed=2)
        problem.arrival_schedule = ArrivalSchedule(
            list(problem.arrival_schedule.times) + [0]
        )
        with pytest.raises(WorkloadError):
            Engine(problem, NaivePathRouter(), seed=3)

    def test_admit_and_retire_recycle_slots(self, net):
        from repro.paths import RoutingProblem

        problem = RoutingProblem(net, [], allow_multi_source=True)
        engine = Engine(problem, NaivePathRouter(), seed=0)
        rng = make_rng(1)
        lo = net.nodes_at_level(0)[0]
        hi = net.nodes_at_level(3)[0]
        path = random_monotone_path(net, lo, hi, rng)
        pid = engine.admit(lo, hi, path)
        assert pid == 0
        with pytest.raises(SimulationError):
            engine.retire(pid)  # not absorbed yet
        for _ in range(200):
            engine.step()
            if engine.packets[pid].is_absorbed:
                break
        assert engine.packets[pid].is_absorbed
        engine.retire(pid)
        pid2 = engine.admit(lo, hi, random_monotone_path(net, lo, hi, rng))
        assert pid2 == pid  # slot reused
        assert len(engine.packets) == 1


# --------------------------------------------------- ref/vec kernel identity


def _asdict(result):
    from dataclasses import asdict

    return asdict(result)


@needs_numpy
class TestVecIdentityWithArrivals:
    def test_naive_ref_vs_vec(self, net):
        arrivals = collect_arrivals(BernoulliSource(net, 0.3, seed=21, horizon=60))
        problem, _ = problem_from_arrivals(net, arrivals, seed=22)
        ref = run_router_trial(problem, lambda s: NaivePathRouter(), 23, 60 + 5000)
        vec = run_naive_vec_trial(problem, 23, 60 + 5000)
        assert _asdict(ref) == _asdict(vec)

    def test_frontier_ref_vs_vec(self, net):
        arrivals = collect_arrivals(BernoulliSource(net, 0.2, seed=31, horizon=40))
        problem, _ = problem_from_arrivals(net, arrivals, seed=32)
        ref = run_frontier_trial(problem, 33).result
        vec = run_frontier_vec_trial(problem, 33).result
        assert _asdict(ref) == _asdict(vec)

    def test_backend_env_override_identical(self, net, monkeypatch):
        """Acceptance: REPRO_BACKEND=frontier_vec runs an injected-arrivals
        scenario identically to the reference backend."""
        spec = RunSpec(
            topology="butterfly",
            topology_params={"dim": 3},
            workload="",
            arrival="bernoulli",
            arrival_params={"rate": 0.2, "horizon": 40},
            backend="frontier",
            seed=5,
        )
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        ref = run_trial(spec).result
        monkeypatch.setenv("REPRO_BACKEND", "frontier_vec")
        vec = run_trial(spec).result
        assert _asdict(ref) == _asdict(vec)


# ----------------------------------------------------------- golden digests


def _digest_dynamic_run(backend, seed):
    """Pre-refactor digest recipe for the dynamic backends (pinned)."""
    spec = RunSpec(
        topology="butterfly",
        topology_params={"dim": 3},
        workload="",
        selector="none",
        backend=backend,
        backend_params={"rate": 0.45, "horizon": 80, "drain": 5000},
        seed=seed,
    )
    with tempfile.TemporaryDirectory() as td:
        trace = pathlib.Path(td) / "t.jsonl"
        rec = run_trial(spec, telemetry=True, trace_path=str(trace))
        r = rec.result
        res_payload = {
            "makespan": r.makespan,
            "delivered": r.delivered,
            "steps_executed": r.steps_executed,
            "steps_skipped": r.steps_skipped,
            "delivery_times": r.delivery_times,
            "deflections": r.deflections_per_packet,
            "unsafe": r.unsafe_deflections,
            "moves": r.total_moves,
            "backward": r.total_backward_moves,
            "extra": {
                k: (None if v != v else v) for k, v in sorted(r.extra.items())
            },
        }
        res_d = hashlib.sha256(
            json.dumps(res_payload, sort_keys=True).encode()
        ).hexdigest()[:16]
        tel_d = hashlib.sha256(
            json.dumps(r.telemetry, sort_keys=True).encode()
        ).hexdigest()[:16]
        trace_d = hashlib.sha256(trace.read_bytes()).hexdigest()[:16]
    return res_d, tel_d, trace_d


class TestDynamicGoldenDigests:
    """The refactored dynamic path must stay byte-identical to the
    pre-refactor routers (digests recorded before injection moved into the
    engines): results, telemetry, and full event traces."""

    GOLDEN = {
        ("dynamic_naive", 0): (
            "b97220aa8197ddf7", "37355310fe02669b", "d802311b6b354e52",
        ),
        ("dynamic_naive", 7): (
            "5f967754777271db", "ee205cb2b37341e9", "f22c7f0421866158",
        ),
        ("dynamic_greedy", 0): (
            "b97220aa8197ddf7", "37355310fe02669b", "e5bfc637b9c2b68c",
        ),
        ("dynamic_greedy", 7): (
            "5f967754777271db", "ee205cb2b37341e9", "f7d2e3dd3c9a9435",
        ),
    }

    @pytest.mark.parametrize("backend,seed", sorted(GOLDEN))
    def test_digests_pinned(self, backend, seed):
        assert _digest_dynamic_run(backend, seed) == self.GOLDEN[(backend, seed)]


# ----------------------------------------------------------------- streaming


class TestRunStream:
    def test_open_loop_memory_bounded(self, net):
        src = BernoulliSource(net, 0.15, seed=2, horizon=None)
        summary = run_stream(
            net,
            src,
            make_stream_router("greedy", seed=3),
            max_steps=400,
            path_seed=4,
            engine_seed=5,
            max_in_flight=net.num_edges,
        )
        assert summary.steps == 400
        assert summary.admitted > 100
        # The whole point: slots track the in-flight peak, not the total.
        assert summary.packet_slots == summary.peak_in_flight
        assert summary.packet_slots < summary.admitted // 4

    def test_finite_source_drains_and_stops(self, net):
        src = BernoulliSource(net, 0.2, seed=6, horizon=25)
        summary = run_stream(
            net,
            src,
            make_stream_router("naive"),
            max_steps=5000,
            path_seed=7,
            engine_seed=8,
        )
        assert summary.steps < 5000  # stopped early once drained
        assert summary.delivered == summary.admitted == summary.arrivals
        assert summary.dropped == 0

    def test_admission_cap_drops(self, net):
        src = BernoulliSource(net, 1.0, seed=9, horizon=None)
        summary = run_stream(
            net,
            src,
            make_stream_router("greedy", seed=10),
            max_steps=60,
            path_seed=11,
            engine_seed=12,
            max_in_flight=4,
        )
        assert summary.dropped > 0
        assert summary.peak_in_flight <= 4 + 1  # cap checked before admit
        assert summary.arrivals == summary.admitted + summary.dropped

    def test_metrics_agree_with_summary(self, net):
        windows = []
        metrics = WindowedMetrics(window=20, sink=windows.append)
        src = BernoulliSource(net, 0.2, seed=13, horizon=100)
        summary = run_stream(
            net,
            src,
            make_stream_router("greedy", seed=14),
            max_steps=3000,
            metrics=metrics,
            path_seed=15,
            engine_seed=16,
        )
        assert windows
        assert sum(w["arrivals"] for w in windows) == summary.admitted
        assert sum(w["delivered"] for w in windows) == summary.delivered
        assert sum(w["steps"] for w in windows) == summary.steps
        for w in windows:
            assert tuple(w.keys()) == WINDOW_SCHEMA

    def test_bad_inputs(self, net):
        with pytest.raises(ParameterError):
            make_stream_router("bogus")
        with pytest.raises(ParameterError):
            run_stream(
                net,
                BernoulliSource(net, 0.1, seed=0, horizon=5),
                make_stream_router("naive"),
                max_steps=0,
            )


# ------------------------------------------------------------- live metrics


class TestWindowedMetrics:
    def test_window_validation(self):
        with pytest.raises(ValueError):
            WindowedMetrics(window=0)

    def test_flush_cadence_and_partial_close(self):
        windows = []
        m = WindowedMetrics(window=3, sink=windows.append)
        for t in range(7):
            m.end_step(t, num_active=t)
        assert len(windows) == 2  # t=2 and t=5 completed windows
        m.close(6)
        assert len(windows) == 3
        assert [w["steps"] for w in windows] == [3, 3, 1]
        assert [w["t_start"] for w in windows] == [0, 3, 6]
        assert [w["t_end"] for w in windows] == [3, 6, 7]

    def test_latency_percentiles_hand_computed(self):
        windows = []
        m = WindowedMetrics(window=10, sink=windows.append)
        # Packets arrive at t=0 and are absorbed so that latencies
        # (time + 1 - arrival) are exactly [1, 2, 3, 4].
        for pid in range(4):
            m.note_arrival(pid, 0)
            m.on_event(TraceEvent(time=pid, kind=EventKind.ABSORB, packet=pid))
        for t in range(10):
            m.end_step(t, num_active=0)
        (w,) = windows
        assert w["delivered"] == 4
        assert w["latency_mean"] == pytest.approx(2.5)
        assert w["latency_p50"] == pytest.approx(2.5)
        assert w["latency_p95"] == pytest.approx(3.85)
        assert w["latency_max"] == 4.0

    def test_empty_window_has_null_latency(self):
        windows = []
        m = WindowedMetrics(window=2, sink=windows.append)
        m.end_step(0, num_active=0)
        m.end_step(1, num_active=0)
        (w,) = windows
        assert w["latency_mean"] is None
        assert w["latency_p50"] is None
        assert w["throughput"] == 0.0

    def test_deflection_and_drop_counters(self):
        windows = []
        m = WindowedMetrics(window=1, sink=windows.append)
        m.on_event(TraceEvent(time=0, kind=EventKind.DEFLECT, packet=0))
        m.on_event(TraceEvent(time=0, kind=EventKind.UNSAFE_DEFLECT, packet=1))
        m.note_drop(0)
        m.end_step(0, num_active=2)
        (w,) = windows
        assert w["deflections"] == 2
        assert w["unsafe_deflections"] == 1
        assert w["dropped"] == 1
        assert w["occupancy_max"] == 2

    def test_quantile_matches_numpy(self):
        np = pytest.importorskip("numpy")
        data = sorted([0.0, 1.0, 1.0, 4.0, 10.0, 2.5])
        for q in (0.0, 0.25, 0.5, 0.95, 1.0):
            assert _quantile(data, q) == pytest.approx(
                float(np.quantile(data, q))
            )


# ------------------------------------------------------- deprecation shims


class TestDeprecations:
    def test_router_attach_new_name_clean(self, net):
        arrivals = bernoulli_arrivals(net, 0.2, horizon=20, seed=1)
        problem, times = problem_from_arrivals(net, arrivals, seed=2)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            engine = Engine(problem, DynamicNaiveRouter(times), seed=3)
            router_attach(NaivePathRouter(), engine)

    def test_Router_attach_warns_and_delegates(self, net):
        arrivals = bernoulli_arrivals(net, 0.2, horizon=20, seed=1)
        problem, times = problem_from_arrivals(net, arrivals, seed=2)
        engine = Engine(problem, DynamicNaiveRouter(times), seed=3)
        with pytest.warns(DeprecationWarning):
            Router_attach(NaivePathRouter(), engine)


# --------------------------------------------------------- RunSpec arrivals


class TestRunSpecArrival:
    def test_workload_and_arrival_mutually_exclusive(self):
        with pytest.raises(ReproError):
            RunSpec(
                topology="butterfly",
                backend="frontier",
                workload="permutation",
                arrival="bernoulli",
            )

    def test_arrival_params_require_arrival(self):
        with pytest.raises(ReproError):
            RunSpec(
                topology="butterfly",
                backend="frontier",
                arrival_params={"rate": 0.2},
            )

    def test_legacy_specs_hash_unchanged(self):
        """Adding the arrival fields must not disturb existing spec hashes:
        they serialize only when set."""
        spec = RunSpec(
            topology="butterfly",
            topology_params={"dim": 3},
            workload="permutation",
            backend="frontier",
            seed=1,
        )
        d = spec.to_dict()
        assert "arrival" not in d
        assert "arrival_params" not in d
        assert RunSpec.from_dict(d) == spec
        assert RunSpec.from_dict(d).content_hash() == spec.content_hash()

    def test_arrival_spec_round_trips(self):
        spec = RunSpec(
            topology="butterfly",
            topology_params={"dim": 3},
            workload="",
            arrival="bernoulli",
            arrival_params={"rate": 0.2, "horizon": 40},
            backend="frontier",
            seed=5,
        )
        again = RunSpec.from_json(spec.to_json())
        assert again == spec
        assert again.content_hash() == spec.content_hash()
        assert "~bernoulli" in spec.describe()

    def test_arrival_seed_pinning(self):
        spec = RunSpec(
            topology="butterfly",
            topology_params={"dim": 3},
            arrival="bernoulli",
            backend="frontier",
            seed=5,
        )
        pinned = spec.with_pinned_scenario()
        assert pinned.arrival_params["seed"] == spec.arrival_seed()
        assert pinned.arrival_seed() == spec.arrival_seed()

    def test_arrival_scenario_runs_on_batch_backend(self):
        spec = RunSpec(
            topology="butterfly",
            topology_params={"dim": 3},
            arrival="bernoulli",
            arrival_params={"rate": 0.2, "horizon": 40},
            backend="frontier",
            seed=5,
        )
        rec = run_trial(spec)
        assert rec.result.all_delivered
        assert rec.result.delivered > 0

    def test_arrival_requires_random_selector(self):
        spec = RunSpec(
            topology="butterfly",
            topology_params={"dim": 3},
            arrival="bernoulli",
            selector="bottleneck",
            backend="frontier",
            seed=5,
        )
        with pytest.raises(ReproError):
            run_trial(spec)

    def test_empty_arrival_stream_is_workload_error(self):
        spec = RunSpec(
            topology="butterfly",
            topology_params={"dim": 3},
            arrival="bernoulli",
            arrival_params={"rate": 0.0, "horizon": 5},
            backend="frontier",
            seed=5,
        )
        with pytest.raises(WorkloadError):
            run_trial(spec)
