"""Unit tests for congestion/dilation measurement (Section 2.4)."""

from collections import Counter

import pytest

from repro.net import line
from repro.paths import (
    congested_edges,
    congestion_histogram,
    dilation,
    edge_congestion_counts,
    level_occupancy,
    max_edge_congestion,
    per_set_congestion,
)


@pytest.fixture
def edge_lists():
    # 3 packets over a 5-edge universe.
    return [[0, 1, 2], [1, 2, 3], [2, 3, 4]]


def test_edge_counts(edge_lists):
    assert edge_congestion_counts(edge_lists, 5) == [1, 2, 3, 2, 1]


def test_max_congestion(edge_lists):
    assert max_edge_congestion(edge_lists, 5) == 3


def test_max_congestion_empty():
    assert max_edge_congestion([], 5) == 0
    assert max_edge_congestion([[]], 0) == 0


def test_duplicate_edges_count_twice():
    # A current path can transiently hold the same edge twice.
    assert edge_congestion_counts([[0, 0]], 1) == [2]


def test_dilation(edge_lists):
    assert dilation(edge_lists) == 3
    assert dilation([]) == 0


def test_per_set_congestion(edge_lists):
    maxima = per_set_congestion(edge_lists, [0, 0, 1], 2, 5)
    assert maxima == [2, 1]


def test_per_set_congestion_alignment_checked(edge_lists):
    with pytest.raises(ValueError):
        per_set_congestion(edge_lists, [0, 1], 2, 5)


def test_congested_edges(edge_lists):
    assert congested_edges(edge_lists, 5, threshold=2) == [(1, 2), (2, 3), (3, 2)]


def test_histogram(edge_lists):
    assert congestion_histogram(edge_lists, 5) == Counter({1: 2, 2: 2, 3: 1})


def test_level_occupancy():
    net = line(4)
    counts = level_occupancy(net, [0, 0, 2, 4])
    assert counts == [2, 0, 1, 0, 1]
