"""Moderate-scale end-to-end runs (seconds, not minutes).

These guard against accidental complexity blowups: the stack must handle
hundreds of packets and depth ~60 networks in a couple of seconds thanks
to the active-id registry and the quiescence fast-forward.
"""

import time

from repro.experiments import deep_random_instance, run_frontier_trial
from repro.net import butterfly
from repro.paths import select_paths_bit_fixing
from repro.workloads import butterfly_workloads


def test_butterfly7_full_permutation():
    net = butterfly(7)  # 1024 nodes, 1792 edges
    wl = butterfly_workloads.full_permutation(net, seed=1)
    problem = select_paths_bit_fixing(net, wl.endpoints)
    assert problem.num_packets == 128
    start = time.perf_counter()
    record = run_frontier_trial(problem, seed=2, m=8, w_factor=8.0)
    elapsed = time.perf_counter() - start
    assert record.result.all_delivered
    assert record.result.unsafe_deflections == 0
    assert elapsed < 10.0, f"butterfly(7) run took {elapsed:.1f}s"
    # Fast-forward must carry the bulk of the schedule.
    assert record.result.steps_skipped > 10 * record.result.steps_executed


def test_deep_wide_random_network():
    problem = deep_random_instance(60, 12, 60, seed=3, low_congestion=False)
    assert problem.net.depth == 60
    start = time.perf_counter()
    record = run_frontier_trial(problem, seed=2, m=8, w_factor=8.0)
    elapsed = time.perf_counter() - start
    assert record.result.all_delivered
    assert elapsed < 20.0, f"deep run took {elapsed:.1f}s"
