"""Unit tests for every topology factory (the paper's Figure 1 families)."""

import pytest

from repro.errors import TopologyError
from repro.net import (
    MeshCorner,
    array_coords,
    array_node,
    assert_valid,
    bottleneck_level,
    butterfly,
    butterfly_node,
    complete_binary_tree,
    diamond,
    fat_tree,
    fat_tree_leaf_count,
    fat_tree_node,
    fat_tree_shape,
    hypercube,
    hypercube_address,
    hypercube_node,
    layered_complete,
    layered_node,
    line,
    line_node,
    max_forward_capacity,
    mesh,
    mesh_coords,
    mesh_node,
    mesh_shape,
    multidim_array,
    omega_network,
    omega_node,
    profile,
    random_level_sizes,
    random_leveled,
    tree_node,
    validate_leveled,
    wrapped_butterfly_rows,
)


ALL_FACTORIES = [
    lambda: butterfly(2),
    lambda: butterfly(5),
    lambda: mesh(3, 7),
    lambda: mesh(6, 6, MeshCorner.SOUTH_EAST),
    lambda: hypercube(5),
    lambda: multidim_array((2, 3, 4)),
    lambda: omega_network(4),
    lambda: fat_tree(4),
    lambda: line(12),
    lambda: complete_binary_tree(4),
    lambda: complete_binary_tree(4, root_at_top=False),
    lambda: layered_complete([2, 5, 5, 2]),
    lambda: diamond(4, 6),
    lambda: random_leveled([3, 6, 6, 6, 3], seed=1),
]


@pytest.mark.parametrize("factory", ALL_FACTORIES)
def test_every_topology_is_a_valid_leveled_network(factory):
    net = factory()
    assert_valid(net)


class TestButterfly:
    def test_shape(self):
        net = butterfly(3)
        assert net.depth == 3
        assert net.level_sizes() == (8, 8, 8, 8)
        assert net.num_edges == 3 * 8 * 2
        assert wrapped_butterfly_rows(net) == 8

    def test_out_degree_two(self):
        net = butterfly(3)
        for level in range(3):
            for v in net.nodes_at_level(level):
                assert net.out_degree(v) == 2

    def test_straight_and_cross_edges(self):
        net = butterfly(3)
        src = butterfly_node(net, 0, 0b000)
        heads = set(net.forward_neighbors(src))
        # straight to row 0, cross flips the top bit (dim-1-level = 2).
        assert heads == {
            butterfly_node(net, 1, 0b000),
            butterfly_node(net, 1, 0b100),
        }

    def test_full_end_to_end_reachability(self):
        net = butterfly(3)
        for src in net.nodes_at_level(0):
            tops = [
                v
                for v in net.forward_reachable(src)
                if net.level(v) == net.depth
            ]
            assert len(tops) == 8

    def test_dim_zero_rejected(self):
        with pytest.raises(TopologyError):
            butterfly(0)


class TestMesh:
    def test_depth_and_level_sizes(self):
        net = mesh(4, 4)
        assert net.depth == 6
        assert net.level_sizes() == (1, 2, 3, 4, 3, 2, 1)
        assert net.num_edges == 2 * 4 * 3  # 24 grid edges

    def test_all_four_orientations_differ_in_level0(self):
        corners = {}
        for corner in MeshCorner:
            net = mesh(3, 3, corner)
            corners[corner] = mesh_coords(net, net.nodes_at_level(0)[0])
        assert corners[MeshCorner.NORTH_WEST] == (0, 0)
        assert corners[MeshCorner.NORTH_EAST] == (0, 2)
        assert corners[MeshCorner.SOUTH_WEST] == (2, 0)
        assert corners[MeshCorner.SOUTH_EAST] == (2, 2)

    def test_coords_roundtrip(self):
        net = mesh(3, 5)
        for i in range(3):
            for j in range(5):
                assert mesh_coords(net, mesh_node(net, i, j)) == (i, j)

    def test_shape_recovery(self):
        assert mesh_shape(mesh(3, 5)) == (3, 5)

    def test_single_cell_rejected(self):
        with pytest.raises(TopologyError):
            mesh(1, 1)

    def test_coords_on_non_mesh(self, bf3):
        with pytest.raises(TopologyError):
            mesh_coords(bf3, 0)


class TestHypercube:
    def test_levels_are_hamming_weights(self):
        net = hypercube(4)
        assert net.level_sizes() == (1, 4, 6, 4, 1)
        for address in range(16):
            node = hypercube_node(net, address)
            assert net.level(node) == bin(address).count("1")
            assert hypercube_address(net, node) == address

    def test_edges_set_one_bit(self):
        net = hypercube(3)
        for e in net.edges():
            a = hypercube_address(net, net.edge_src(e))
            b = hypercube_address(net, net.edge_dst(e))
            diff = a ^ b
            assert diff & (diff - 1) == 0 and diff != 0
            assert b > a

    def test_edge_count(self):
        net = hypercube(4)
        assert net.num_edges == 4 * 2**3  # d * 2^(d-1)


class TestMultidimArray:
    def test_matches_mesh_when_2d(self):
        arr = multidim_array((4, 4))
        msh = mesh(4, 4)
        assert arr.level_sizes() == msh.level_sizes()
        assert arr.num_edges == msh.num_edges

    def test_coords_roundtrip(self):
        net = multidim_array((2, 3, 2))
        for node in net.nodes():
            coords = array_coords(net, node)
            assert array_node(net, coords) == node
            assert net.level(node) == sum(coords)

    def test_degenerate_shapes_rejected(self):
        with pytest.raises(TopologyError):
            multidim_array(())
        with pytest.raises(TopologyError):
            multidim_array((1, 1))
        with pytest.raises(TopologyError):
            multidim_array((0, 3))


class TestOmega:
    def test_shape(self):
        net = omega_network(3)
        assert net.depth == 3
        assert net.level_sizes() == (8, 8, 8, 8)
        assert all(net.out_degree(v) == 2 for v in net.nodes_at_level(0))

    def test_full_reachability(self):
        net = omega_network(3)
        for src in net.nodes_at_level(0):
            tops = {
                v for v in net.forward_reachable(net.node_by_label(net.label(src)))
                if net.level(v) == 3
            }
            assert len(tops) == 8

    def test_node_lookup(self):
        net = omega_network(2)
        assert net.level(omega_node(net, 1, 3)) == 1


class TestFatTree:
    def test_shape(self):
        net = fat_tree(3)
        assert net.depth == 3
        assert fat_tree_leaf_count(net) == 8
        assert net.level_sizes() == (8, 4, 2, 1)
        assert fat_tree_shape(net) == (3, 2)

    def test_fatness_doubles_toward_root(self):
        net = fat_tree(3, capacity_cap=8)
        # level 0 children: 1 edge each; level 1: 2; level 2: 4.
        child0 = fat_tree_node(net, 0, 0)
        child1 = fat_tree_node(net, 1, 0)
        child2 = fat_tree_node(net, 2, 0)
        assert net.out_degree(child0) == 1
        assert net.out_degree(child1) == 2
        assert net.out_degree(child2) == 4

    def test_capacity_cap(self):
        net = fat_tree(5, capacity_cap=2)
        deep_child = fat_tree_node(net, 4, 0)
        assert net.out_degree(deep_child) == 2


class TestSimpleNets:
    def test_line(self):
        net = line(5)
        assert net.depth == 5
        assert net.num_edges == 5
        assert line_node(net, 3) == 3

    def test_binary_tree_orientations(self):
        down = complete_binary_tree(3)
        up = complete_binary_tree(3, root_at_top=False)
        assert down.level_sizes() == (1, 2, 4, 8)
        assert up.level_sizes() == (8, 4, 2, 1)
        assert down.level(tree_node(down, 0, 0)) == 0
        assert up.level(tree_node(up, 0, 0)) == 3

    def test_layered_complete(self):
        net = layered_complete([1, 4, 1])
        assert net.num_edges == 8
        assert net.out_degree(layered_node(net, 0, 0)) == 4

    def test_diamond(self):
        net = diamond(3, 5)
        assert net.level_sizes() == (1, 3, 3, 3, 3, 1)

    def test_degenerate_rejected(self):
        with pytest.raises(TopologyError):
            line(0)
        with pytest.raises(TopologyError):
            layered_complete([3])
        with pytest.raises(TopologyError):
            diamond(0, 4)


class TestRandomLeveled:
    def test_min_degrees_respected(self):
        net = random_leveled(
            [4, 4, 4, 4], edge_probability=0.0, seed=0,
            min_out_degree=2, min_in_degree=2,
        )
        for v in net.nodes():
            if net.level(v) < net.depth:
                assert net.out_degree(v) >= 2
            if net.level(v) > 0:
                assert net.in_degree(v) >= 2

    def test_reproducible(self):
        a = random_leveled([3, 5, 3], edge_probability=0.4, seed=123)
        b = random_leveled([3, 5, 3], edge_probability=0.4, seed=123)
        assert list(a.edges()) == list(b.edges())
        assert [a.edge_endpoints(e) for e in a.edges()] == [
            b.edge_endpoints(e) for e in b.edges()
        ]

    def test_full_probability_is_complete(self):
        net = random_leveled([2, 3], edge_probability=1.0, seed=0)
        assert net.num_edges == 6

    def test_random_level_sizes(self):
        sizes = random_level_sizes(10, 5, seed=1)
        assert len(sizes) == 11
        assert all(s >= 1 for s in sizes)

    def test_bad_probability_rejected(self):
        with pytest.raises(TopologyError):
            random_leveled([2, 2], edge_probability=1.5)


class TestValidationAndProperties:
    def test_validation_report_ok(self, bf3):
        report = validate_leveled(bf3)
        assert report.ok
        assert report.depth == 3
        assert "OK" in report.summary()

    def test_dead_ends_reported(self):
        # A level-0 node with no out edge.
        from repro.net import LeveledNetwork

        net = LeveledNetwork([0, 0, 1], [(0, 2)])
        report = validate_leveled(net)
        assert report.ok  # legal, just awkward
        assert report.dead_ends == [1]

    def test_profile(self, bf3):
        prof = profile(bf3)
        assert prof.depth == 3
        assert prof.max_degree == 4
        assert prof.is_regular_levels

    def test_forward_capacity(self):
        net = layered_complete([1, 4, 1])
        assert max_forward_capacity(net) == 4
        assert bottleneck_level(net) in (0, 1)

    def test_bottleneck_on_line(self, line8):
        assert max_forward_capacity(line8) == 1
