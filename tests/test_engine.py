"""Unit tests for the synchronous bufferless engine.

These pin down the machine model of Section 1.1: hot-potato motion (every
active packet moves every step), per-(edge, direction) unit capacity,
priority arbitration, and backward/safe deflection matching (Lemma 2.1).
"""

import pytest

from repro.baselines import NaivePathRouter
from repro.errors import SimulationError
from repro.net import layered_complete, layered_node, line
from repro.paths import PacketSpec, Path, RoutingProblem
from repro.sim import (
    DesiredMove,
    Engine,
    EventKind,
    PacketStatus,
    Router,
    TraceRecorder,
)
from repro.types import Direction, MoveKind


def two_into_one_problem():
    """Two packets from separate sources forced through one edge.

    layered_complete([2, 1, 2]): both packets route via the middle node and
    then the SAME top node, so they conflict on the (mid -> top) edge.
    """
    net = layered_complete([2, 1, 2])
    a0 = layered_node(net, 0, 0)
    a1 = layered_node(net, 0, 1)
    mid = layered_node(net, 1, 0)
    b0 = layered_node(net, 2, 0)
    specs = [
        PacketSpec(0, a0, b0, Path(net, [net.find_edge(a0, mid), net.find_edge(mid, b0)])),
        PacketSpec(1, a1, b0, Path(net, [net.find_edge(a1, mid), net.find_edge(mid, b0)])),
    ]
    return net, RoutingProblem(net, specs)


class TestBasicDelivery:
    def test_single_packet_line(self):
        net = line(5)
        edges = [net.find_edge(i, i + 1) for i in range(5)]
        prob = RoutingProblem(net, [PacketSpec(0, 0, 5, Path(net, edges))])
        result = Engine(prob, NaivePathRouter(), seed=0).run(100)
        assert result.all_delivered
        assert result.makespan == 5  # inject at t=0, arrive at t=5
        assert result.delivery_times == [5]
        assert result.total_deflections == 0

    def test_conflict_resolved_with_backward_safe_deflection(self):
        net, prob = two_into_one_problem()
        trace = TraceRecorder()
        engine = Engine(prob, NaivePathRouter(), seed=1, observers=[trace.on_event])
        result = engine.run(100)
        assert result.all_delivered
        deflects = trace.of_kind(EventKind.DEFLECT)
        assert len(deflects) >= 1
        for event in deflects:
            assert event.direction is Direction.BACKWARD
        assert result.unsafe_deflections == 0
        # Winner arrives at t=2; loser needs 2 extra steps per deflection.
        assert sorted(t for t in result.delivery_times) == [2, 4]

    def test_deflected_packet_path_stays_valid(self):
        from repro.paths import is_valid_edge_sequence

        net, prob = two_into_one_problem()
        engine = Engine(prob, NaivePathRouter(), seed=1)

        def check(engine_, t):
            for packet in engine_.packets:
                if packet.is_active:
                    assert is_valid_edge_sequence(
                        engine_.net, packet.path, packet.node
                    )

        engine.post_step_hooks.append(check)
        assert engine.run(100).all_delivered

    def test_every_active_packet_moves_every_step(self):
        net, prob = two_into_one_problem()
        engine = Engine(prob, NaivePathRouter(), seed=1)
        positions = {}

        def check(engine_, t):
            for packet in engine_.packets:
                if packet.is_active:
                    assert positions.get(packet.packet_id) != packet.node
                positions[packet.packet_id] = packet.node

        engine.post_step_hooks.append(check)
        engine.run(100)


class TestCapacityModel:
    def test_opposite_directions_share_an_edge(self):
        # One packet moves forward on an edge while another is deflected
        # backward over the same edge in the same step — footnote 1.
        net = layered_complete([1, 1, 2])
        a = layered_node(net, 0, 0)
        mid = layered_node(net, 1, 0)
        b0 = layered_node(net, 2, 0)
        specs = [
            PacketSpec(
                0, a, b0, Path(net, [net.find_edge(a, mid), net.find_edge(mid, b0)])
            ),
        ]
        prob = RoutingProblem(net, specs)
        result = Engine(prob, NaivePathRouter(), seed=0).run(50)
        assert result.all_delivered

    def test_injection_deferred_when_node_is_full(self):
        # Line network: packet 1 occupies the source node's only free slot
        # pattern is hard to force on a line; instead use a custom router
        # that injects two packets at the same node via multi_source.
        net = line(3)
        e01 = net.find_edge(0, 1)
        e12 = net.find_edge(1, 2)
        specs = [
            PacketSpec(0, 0, 2, Path(net, [e01, e12])),
            PacketSpec(1, 0, 2, Path(net, [e01, e12])),
        ]
        prob = RoutingProblem(net, specs, allow_multi_source=True)
        engine = Engine(prob, NaivePathRouter(), seed=0)
        result = engine.run(50)
        assert result.all_delivered
        # Node 0 has a single outgoing slot: the packets must inject on
        # different steps.
        injected = sorted(p.injected_at for p in engine.packets)
        assert injected[0] < injected[1]
        times = sorted(t for t in result.delivery_times)
        assert times[0] < times[1]

    def test_desired_edge_must_be_incident(self):
        net = line(4)
        edges = [net.find_edge(i, i + 1) for i in range(4)]
        prob = RoutingProblem(net, [PacketSpec(0, 0, 4, Path(net, edges))])

        class BadRouter(Router):
            def attach(self, engine):
                super().attach(engine)
                engine.mark_all_eligible()

            def desired_move(self, pid, t):
                return DesiredMove(3, MoveKind.FOLLOW)  # far edge

        engine = Engine(prob, BadRouter(), seed=0)
        with pytest.raises(SimulationError):
            engine.run(10)


class TestPriorities:
    def test_higher_priority_always_wins(self):
        net, prob = two_into_one_problem()

        class Prio(NaivePathRouter):
            def priority(self, pid, t):
                return 10 if pid == 1 else 0

        engine = Engine(prob, Prio(), seed=0)
        result = engine.run(100)
        # Packet 1 must win the contested edge and arrive first.
        assert result.delivery_times[1] == 2
        assert result.delivery_times[0] == 4

    def test_tie_break_is_random_but_seeded(self):
        net, prob = two_into_one_problem()
        a = Engine(prob, NaivePathRouter(), seed=7).run(100)
        b = Engine(prob, NaivePathRouter(), seed=7).run(100)
        assert a.delivery_times == b.delivery_times
        winners = set()
        for seed in range(30):
            r = Engine(prob, NaivePathRouter(), seed=seed).run(100)
            winners.add(min(range(2), key=lambda k: r.delivery_times[k]))
        assert winners == {0, 1}  # both orders occur across seeds


class TestEventsAndStatus:
    def test_trace_event_sequence(self):
        net = line(2)
        prob = RoutingProblem(
            net, [PacketSpec(0, 0, 2, Path(net, [net.find_edge(0, 1), net.find_edge(1, 2)]))]
        )
        trace = TraceRecorder()
        engine = Engine(prob, NaivePathRouter(), seed=0, observers=[trace.on_event])
        engine.run(10)
        kinds = [e.kind for e in trace.events]
        assert kinds[0] is EventKind.INJECT
        assert kinds.count(EventKind.MOVE) == 2
        assert kinds[-1] is EventKind.ABSORB

    def test_packet_status_lifecycle(self):
        net = line(2)
        prob = RoutingProblem(
            net, [PacketSpec(0, 0, 2, Path(net, [net.find_edge(0, 1), net.find_edge(1, 2)]))]
        )
        engine = Engine(prob, NaivePathRouter(), seed=0)
        packet = engine.packets[0]
        assert packet.status is PacketStatus.PENDING
        engine.step()
        assert packet.status is PacketStatus.ACTIVE
        assert packet.injected_at == 0
        engine.step()
        assert packet.status is PacketStatus.ABSORBED
        assert packet.absorbed_at == 2
        assert engine.done

    def test_trace_recorder_filter(self):
        trace = TraceRecorder(keep={EventKind.ABSORB})
        net = line(2)
        prob = RoutingProblem(
            net, [PacketSpec(0, 0, 2, Path(net, [net.find_edge(0, 1), net.find_edge(1, 2)]))]
        )
        Engine(prob, NaivePathRouter(), seed=0, observers=[trace.on_event]).run(10)
        assert trace.count(EventKind.ABSORB) == 1
        assert trace.count(EventKind.MOVE) == 0
        trace.clear()
        assert not trace.events


class TestRunResult:
    def test_budget_exhaustion_reported(self):
        net = line(5)
        edges = [net.find_edge(i, i + 1) for i in range(5)]
        prob = RoutingProblem(net, [PacketSpec(0, 0, 5, Path(net, edges))])
        result = Engine(prob, NaivePathRouter(), seed=0).run(2)
        assert not result.all_delivered
        assert result.delivered == 0
        assert result.makespan == 2
        assert result.delivery_times == [None]

    def test_slowdown_and_summary(self):
        net, prob = two_into_one_problem()
        result = Engine(prob, NaivePathRouter(), seed=1).run(100)
        assert result.lower_bound == max(prob.congestion, prob.dilation)
        assert result.slowdown == result.makespan / result.lower_bound
        assert "ok" in result.summary()
        assert result.mean_delivery_time == sum(result.delivery_times) / 2
