"""Property-based fast-forward equivalence and remaining topology matrix.

The quiescence fast-forward is the one optimization that could silently
change semantics; beyond the fixed-instance equivalence tests, this file
asserts bit-identical behavior on *randomized* instances, and closes the
topology matrix (all four mesh orientations, parallel-edge conflicts on
fat-trees).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AlgorithmParams, FrontierFrameRouter
from repro.net import MeshCorner, fat_tree, mesh, random_leveled
from repro.paths import select_paths_random
from repro.sim import Engine
from repro.workloads import random_many_to_one


@st.composite
def frontier_setup(draw):
    depth = draw(st.integers(min_value=8, max_value=18))
    width = draw(st.integers(min_value=2, max_value=4))
    net_seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    net = random_leveled(
        [width] * (depth + 1),
        edge_probability=0.6,
        seed=net_seed,
        min_out_degree=1,
        min_in_degree=1,
    )
    num = draw(st.integers(min_value=2, max_value=8))
    workload = random_many_to_one(net, num, seed=net_seed + 1)
    problem = select_paths_random(net, workload.endpoints, seed=net_seed + 2)
    m = draw(st.integers(min_value=5, max_value=8))
    params = AlgorithmParams.practical(
        max(1, problem.congestion),
        depth,
        problem.num_packets,
        m=m,
        w_factor=draw(st.sampled_from([4.0, 8.0])),
    )
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return problem, params, seed


@given(frontier_setup())
@settings(max_examples=20, deadline=None)
def test_fast_forward_equivalence_randomized(setup):
    problem, params, seed = setup

    def run(enable):
        router = FrontierFrameRouter(params, seed=seed)
        engine = Engine(
            problem, router, seed=seed + 1, enable_fast_forward=enable
        )
        result = engine.run(params.total_steps)
        return result, router

    slow, slow_router = run(False)
    fast, fast_router = run(True)
    assert slow.delivery_times == fast.delivery_times
    assert slow.makespan == fast.makespan
    assert slow.total_deflections == fast.total_deflections
    assert slow.total_moves == fast.total_moves
    # State machines agree too, not just outcomes.
    for a, b in zip(slow_router.states, fast_router.states):
        assert a.wait_entries == b.wait_entries
        assert a.wait_evictions == b.wait_evictions


class TestMeshOrientations:
    @pytest.mark.parametrize("corner", list(MeshCorner))
    def test_frontier_routes_every_orientation(self, corner):
        net = mesh(6, 6, corner)
        workload = random_many_to_one(net, 8, seed=3)
        problem = select_paths_random(net, workload.endpoints, seed=4)
        from repro.experiments import run_frontier_trial

        record = run_frontier_trial(
            problem, seed=5, audit=True, condition_sets=True, m=6, w_factor=8.0
        )
        assert record.result.all_delivered
        assert record.audit.ok, record.audit.summary()


class TestParallelEdgeConflicts:
    def test_fat_tree_with_contention(self):
        """Parallel edges are distinct slots: siblings can share a parent
        link bundle without livelock, and deflections stay safe."""
        net = fat_tree(4, capacity_cap=2)
        workload = random_many_to_one(
            net, 12, seed=6, min_dest_level=3
        )
        problem = select_paths_random(net, workload.endpoints, seed=7)
        from repro.experiments import run_frontier_trial

        record = run_frontier_trial(
            problem, seed=8, audit=True, condition_sets=True, m=6, w_factor=8.0
        )
        assert record.result.all_delivered
        assert record.result.unsafe_deflections == 0
        assert record.audit.ok, record.audit.summary()
