"""Tests for the workload generators."""

import pytest

from repro.errors import WorkloadError
from repro.net import butterfly, mesh, mesh_coords
from repro.paths import select_paths_bit_fixing, select_paths_dimension_order
from repro.workloads import (
    Workload,
    butterfly_workloads,
    end_to_end_permutation,
    funnel_through_edge,
    hotspot,
    level_to_level,
    max_dilation_chain,
    mesh_workloads,
    random_many_to_one,
    single_destination,
)


class TestWorkloadModel:
    def test_duplicate_source_rejected(self, bf4):
        src = bf4.nodes_at_level(0)[0]
        dst = bf4.nodes_at_level(4)[0]
        with pytest.raises(WorkloadError):
            Workload("bad", bf4, ((src, dst), (src, dst)))

    def test_self_loop_rejected(self, bf4):
        src = bf4.nodes_at_level(0)[0]
        with pytest.raises(WorkloadError):
            Workload("bad", bf4, ((src, src),))

    def test_backward_pair_rejected(self, bf4):
        lo = bf4.nodes_at_level(0)[0]
        hi = bf4.nodes_at_level(2)[0]
        with pytest.raises(WorkloadError):
            Workload("bad", bf4, ((hi, lo),))

    def test_to_problem_default_selector(self, bf4):
        wl = random_many_to_one(bf4, 8, seed=0)
        prob = wl.to_problem(seed=1)
        assert prob.num_packets == 8


class TestGenerators:
    def test_random_many_to_one_sources_distinct(self, deep_random):
        wl = random_many_to_one(deep_random, 15, seed=1)
        sources = [s for s, _ in wl.endpoints]
        assert len(set(sources)) == 15

    def test_random_many_to_one_respects_levels(self, deep_random):
        wl = random_many_to_one(
            deep_random, 5, seed=1, source_levels=[0, 1], min_dest_level=10
        )
        for src, dst in wl.endpoints:
            assert deep_random.level(src) <= 1
            assert deep_random.level(dst) >= 10

    def test_permutation_is_bijection(self, bf4):
        wl = end_to_end_permutation(bf4, seed=2)
        sources = {s for s, _ in wl.endpoints}
        dests = {d for _, d in wl.endpoints}
        assert len(sources) == 16
        assert len(dests) == 16

    def test_permutation_needs_matching_levels(self, mesh55):
        # Mesh levels 0 and L both have one node; trivial but legal ...
        wl = end_to_end_permutation(mesh55, seed=0)
        assert wl.num_packets == 1

    def test_hotspot_concentrates(self, bf4):
        wl = hotspot(bf4, 10, num_hotspots=2, seed=3)
        dests = {d for _, d in wl.endpoints}
        assert len(dests) <= 2

    def test_hotspot_too_many_rejected(self, bf4):
        with pytest.raises(WorkloadError):
            hotspot(bf4, 5, num_hotspots=99, seed=0)

    def test_single_destination(self, bf4):
        wl = single_destination(bf4, 9, seed=4)
        dests = {d for _, d in wl.endpoints}
        assert len(dests) == 1
        prob = select_paths_bit_fixing(bf4, wl.endpoints)
        assert prob.congestion >= 3  # funneling into <= 2 in-edges

    def test_level_to_level(self, bf4):
        wl = level_to_level(bf4, 6, 1, 3, seed=5)
        for src, dst in wl.endpoints:
            assert bf4.level(src) == 1
            assert bf4.level(dst) == 3

    def test_level_to_level_validation(self, bf4):
        with pytest.raises(WorkloadError):
            level_to_level(bf4, 4, 3, 1, seed=0)

    def test_too_many_packets_rejected(self, bf4):
        with pytest.raises(WorkloadError):
            random_many_to_one(bf4, 10_000, seed=0)


class TestAdversarial:
    def test_funnel_congestion_equals_n(self, bf4):
        prob = funnel_through_edge(bf4, 10, seed=0)
        assert prob.congestion >= 10

    def test_funnel_explicit_edge(self, bf4):
        # Pick an edge with a deep tail so several feeders exist.
        edge = next(
            e for e in bf4.edges() if bf4.level(bf4.edge_src(e)) == 3
        )
        prob = funnel_through_edge(bf4, 4, edge=edge, seed=0)
        for spec in prob:
            assert spec.path.contains_edge(edge)

    def test_funnel_too_many_rejected(self, bf4):
        edge = next(e for e in bf4.edges() if bf4.level(bf4.edge_src(e)) == 0)
        with pytest.raises(WorkloadError):
            funnel_through_edge(bf4, 3, edge=edge, seed=0)

    def test_max_dilation(self, bf4):
        endpoints, dilation = max_dilation_chain(bf4, 3, seed=0)
        assert dilation == 4
        assert len(endpoints) == 3
        for src, dst in endpoints:
            assert bf4.level(src) == 0
            assert bf4.level(dst) == 4

    def test_max_dilation_too_many(self, line8):
        with pytest.raises(WorkloadError):
            max_dilation_chain(line8, 5, seed=0)


class TestMeshWorkloads:
    def test_monotone_random_pairs(self):
        net = mesh(6, 6)
        wl = mesh_workloads.monotone_random_pairs(net, 12, seed=1)
        assert mesh_workloads.is_monotone_workload(wl)
        prob = select_paths_dimension_order(net, wl.endpoints)
        assert prob.num_packets == 12

    def test_min_displacement(self):
        net = mesh(6, 6)
        wl = mesh_workloads.monotone_random_pairs(
            net, 8, seed=2, min_displacement=4
        )
        for src, dst in wl.endpoints:
            si, sj = mesh_coords(net, src)
            di, dj = mesh_coords(net, dst)
            assert (di - si) + (dj - sj) >= 4

    def test_corner_shift(self):
        net = mesh(8, 8)
        wl = mesh_workloads.corner_shift(net, block=3)
        assert wl.num_packets == 9
        assert mesh_workloads.is_monotone_workload(wl)
        prob = select_paths_dimension_order(net, wl.endpoints)
        # Every packet crosses the full span.
        assert prob.dilation >= 8

    def test_corner_shift_block_validated(self):
        net = mesh(4, 4)
        with pytest.raises(WorkloadError):
            mesh_workloads.corner_shift(net, block=9)


class TestButterflyWorkloads:
    def test_random_end_to_end(self, bf4):
        wl = butterfly_workloads.random_end_to_end(bf4, seed=1)
        assert wl.num_packets == 16

    def test_full_permutation_bijective(self, bf4):
        wl = butterfly_workloads.full_permutation(bf4, seed=1)
        assert len({d for _, d in wl.endpoints}) == 16

    def test_hot_row_congestion(self, bf4):
        wl = butterfly_workloads.hot_row(bf4, 12, seed=1)
        prob = select_paths_bit_fixing(bf4, wl.endpoints)
        # Paths converge on the target row's two in-edges: the busier one
        # carries at least half the packets.
        assert prob.congestion >= 6

    def test_bit_complement(self, bf4):
        wl = butterfly_workloads.bit_complement(bf4)
        assert wl.num_packets == 16
        prob = select_paths_bit_fixing(bf4, wl.endpoints)
        assert prob.dilation == 4

    def test_too_many_rejected(self, bf4):
        with pytest.raises(WorkloadError):
            butterfly_workloads.hot_row(bf4, 99, seed=0)
