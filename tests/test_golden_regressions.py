"""Golden regression tests: exact outcomes for pinned seeds.

These freeze the *behavior* of the stack — topology generation, workload
sampling, path selection, frontier-set draws, excitation coins, engine
tie-breaking — so that any unintended semantic change (a reordered RNG
draw, a different iteration order, an off-by-one in the clock) shows up as
a failing golden value rather than a silent drift.

If a change is *intentional* (e.g. a new RNG consumer in the hot loop),
re-pin the constants and say so in the commit message.
"""

import pytest

from repro.experiments import (
    butterfly_hotrow_instance,
    butterfly_random_instance,
    deep_random_instance,
    run_frontier_trial,
)


class TestGoldenInstances:
    def test_butterfly_random_instance_shape(self):
        problem = butterfly_random_instance(4, seed=1234)
        assert problem.num_packets == 16
        assert (problem.congestion, problem.dilation) == (3, 4)

    def test_hotrow_instance_shape(self):
        problem = butterfly_hotrow_instance(5, 12, seed=1234)
        assert problem.num_packets == 12
        assert problem.dilation == 5
        assert 6 <= problem.congestion <= 12

    def test_deep_instance_shape(self):
        problem = deep_random_instance(20, 5, 10, seed=1234)
        assert problem.net.depth == 20
        assert problem.num_packets == 10


class TestGoldenRuns:
    def test_frontier_run_is_pinned(self):
        problem = butterfly_random_instance(4, seed=1234)
        record = run_frontier_trial(problem, seed=77, m=8, w_factor=8.0)
        result = record.result
        assert result.all_delivered
        # Golden values: re-pin deliberately if semantics change.
        assert result.makespan == 7686
        assert result.total_deflections == 3
        assert result.steps_executed + result.steps_skipped == result.makespan

    def test_two_seeds_differ(self):
        problem = butterfly_random_instance(4, seed=1234)
        a = run_frontier_trial(problem, seed=77, m=8, w_factor=8.0).result
        b = run_frontier_trial(problem, seed=78, m=8, w_factor=8.0).result
        # Different coins, (almost surely) different micro-schedules.
        assert a.delivery_times != b.delivery_times or (
            a.total_deflections != b.total_deflections
        )
