"""Property-based tests of frame geometry and the frontier-frame router."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AlgorithmParams,
    FrameGeometry,
    FrontierFrameRouter,
    InvariantAuditor,
    audited_run,
    resample_until_bounded,
)
from repro.net import random_leveled
from repro.paths import select_paths_random
from repro.sim import Engine
from repro.workloads import random_many_to_one


@st.composite
def geometry_params(draw):
    num_sets = draw(st.integers(min_value=1, max_value=6))
    m = draw(st.integers(min_value=4, max_value=12))
    depth = draw(st.integers(min_value=1, max_value=30))
    params = AlgorithmParams(
        num_sets=num_sets,
        m=m,
        w=8,
        q=0.1,
        set_congestion_bound=3.0,
        mode="practical",
        depth=depth,
        num_packets=8,
        congestion=4,
    )
    return FrameGeometry(params)


@given(geometry_params(), st.integers(min_value=0, max_value=200))
@settings(max_examples=100)
def test_frames_are_always_disjoint(geometry, phase):
    """No two frames ever cover the same level (Figure 2's key property)."""
    seen = {}
    for i in range(geometry.params.num_sets):
        for level in geometry.frame_levels(i, phase):
            assert level not in seen
            seen[level] = i


@given(geometry_params(), st.integers(min_value=0, max_value=200))
@settings(max_examples=100)
def test_frames_advance_one_level_per_phase(geometry, phase):
    for i in range(geometry.params.num_sets):
        assert (
            geometry.frontier(i, phase + 1) - geometry.frontier(i, phase) == 1
        )


@given(geometry_params())
@settings(max_examples=100)
def test_target_levels_recede_within_frame(geometry):
    """Targets stay inside the frame and recede one inner level per round."""
    m = geometry.m
    previous = None
    for round_index in range(m):
        inner = geometry.target_inner_level(round_index)
        assert 0 <= inner < m
        if previous is not None:
            assert inner - previous in (0, 1)
        previous = inner
    # Final round targets inner m-2: one above the injection level.
    assert geometry.target_inner_level(m - 1) == m - 2


@given(geometry_params(), st.integers(min_value=0, max_value=29))
@settings(max_examples=100)
def test_injection_phase_consistency(geometry, source_level):
    """At its injection phase, a source sits at inner-level m-1."""
    if source_level > geometry.depth:
        return
    for i in range(geometry.params.num_sets):
        phase = geometry.injection_phase(i, source_level)
        assert geometry.inner_level(i, phase, source_level) == geometry.m - 1


@st.composite
def frontier_instance(draw):
    depth = draw(st.integers(min_value=6, max_value=14))
    width = draw(st.integers(min_value=2, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    net = random_leveled(
        [width] * (depth + 1),
        edge_probability=0.6,
        seed=seed,
        min_out_degree=1,
        min_in_degree=1,
    )
    num = draw(st.integers(min_value=1, max_value=8))
    workload = random_many_to_one(
        net, min(num, width * depth // 2), seed=seed + 1
    )
    return select_paths_random(net, workload.endpoints, seed=seed + 2)


@given(frontier_instance(), st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=15, deadline=None)
def test_frontier_router_delivers_and_keeps_invariants(problem, seed):
    """Conditioned runs deliver everything with a clean audit."""
    params = AlgorithmParams.practical(
        max(1, problem.congestion),
        problem.net.depth,
        problem.num_packets,
        m=6,
        w=36,
    )
    set_of = resample_until_bounded(
        problem, params.num_sets, params.set_congestion_bound, seed=seed
    )
    router = FrontierFrameRouter(params, set_of=set_of, seed=seed)
    engine = Engine(problem, router, seed=seed + 1)
    auditor = InvariantAuditor(router, congestion_bound=params.set_congestion_bound)
    result, report = audited_run(engine, auditor)
    assert result.all_delivered
    assert report.ok, report.summary()
    assert result.unsafe_deflections == 0
    assert router.isolation_violations == 0
