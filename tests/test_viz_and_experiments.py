"""Tests for visualization helpers and the experiment runner."""

import pytest

from repro.core import AlgorithmParams, FrameGeometry
from repro.experiments import (
    baseline_budget,
    butterfly_hotrow_instance,
    butterfly_random_instance,
    deep_random_instance,
    mesh_corner_shift_instance,
    mesh_monotone_instance,
    run_frontier_trial,
    run_frontier_trials,
    run_router_trial,
    small_audit_suite,
)
from repro.sim import Engine
from repro.viz import (
    OccupancySampler,
    frame_film_strip,
    frame_snapshot,
    occupancy_strip,
    target_schedule_strip,
)


@pytest.fixture
def geometry():
    return FrameGeometry(AlgorithmParams.practical(4, 10, 16, m=4, w=8))


class TestViz:
    def test_snapshot_mentions_frames(self, geometry):
        text = frame_snapshot(geometry, phase=5)
        assert "F0" in text

    def test_film_strip_shape(self, geometry):
        text = frame_film_strip(geometry, 0, 6)
        lines = text.splitlines()
        assert len(lines) == 2 + 7  # header + separator + 7 phases
        # Frame 0's frontier marker advances one level per phase.
        for offset, line in enumerate(lines[2:]):
            row = line.split("| ")[1]
            assert row[offset] == ">"

    def test_film_strip_no_overlap_marks(self, geometry):
        # Each column has at most one frame digit per row by construction;
        # just check rendering doesn't blow up over the full schedule.
        text = frame_film_strip(geometry)
        assert text

    def test_target_schedule(self, geometry):
        text = target_schedule_strip(geometry, 0, 6)
        lines = text.splitlines()
        assert len(lines) == 1 + geometry.m
        for line in lines[1:]:
            assert line.count("T") <= 1

    def test_occupancy_sampler(self, bf4_random_problem):
        from repro.baselines import NaivePathRouter

        sampler = OccupancySampler(every=1)
        engine = Engine(bf4_random_problem, NaivePathRouter(), seed=0)
        sampler.install(engine)
        engine.run(100)
        assert sampler.samples
        strip = occupancy_strip(sampler)
        assert "occupancy" in strip

    def test_occupancy_empty(self):
        assert "(no samples)" in occupancy_strip(OccupancySampler())

    def test_sampler_interval_validation(self):
        with pytest.raises(ValueError):
            OccupancySampler(every=0)


class TestRunner:
    def test_run_frontier_trial_defaults(self):
        problem = butterfly_random_instance(3, seed=1)
        record = run_frontier_trial(problem, seed=2)
        assert record.result.all_delivered
        assert record.ok
        assert record.audit is None

    def test_run_frontier_trial_audited(self):
        problem = butterfly_random_instance(3, seed=1)
        record = run_frontier_trial(
            problem, seed=2, audit=True, condition_sets=True
        )
        assert record.ok
        assert record.audit is not None and record.audit.ok

    def test_trials_reproducible(self):
        problem = butterfly_random_instance(3, seed=1)
        a = run_frontier_trial(problem, seed=7).result
        b = run_frontier_trial(problem, seed=7).result
        assert a.delivery_times == b.delivery_times

    def test_run_frontier_trials_multi(self):
        records = run_frontier_trials(
            lambda seed: butterfly_random_instance(3, seed=seed),
            seeds=[1, 2],
        )
        assert len(records) == 2
        assert all(r.result.all_delivered for r in records)

    def test_run_router_trial(self):
        from repro.baselines import GreedyHotPotatoRouter

        problem = butterfly_random_instance(3, seed=1)
        result = run_router_trial(
            problem,
            lambda seed: GreedyHotPotatoRouter(seed=seed),
            seed=2,
            max_steps=baseline_budget(problem),
        )
        assert result.all_delivered


class TestConfigs:
    def test_hotrow_instance_congestion_scales(self):
        small = butterfly_hotrow_instance(5, 4, seed=1)
        big = butterfly_hotrow_instance(5, 24, seed=1)
        assert big.congestion > small.congestion

    def test_deep_instance_depth(self):
        prob = deep_random_instance(18, 5, 8, seed=0)
        assert prob.net.depth == 18
        assert prob.num_packets == 8

    def test_mesh_instances(self):
        prob = mesh_monotone_instance(6, 10, seed=0)
        assert prob.num_packets == 10
        shift = mesh_corner_shift_instance(6)
        assert shift.num_packets == 9

    def test_small_audit_suite_shape(self):
        suite = small_audit_suite(seed=0)
        assert len(suite) == 4
        names = [name for name, _ in suite]
        assert any("butterfly" in n for n in names)
        assert any("mesh" in n for n in names)

    def test_baseline_budget_scales(self):
        small = butterfly_hotrow_instance(4, 4, seed=1)
        big = butterfly_hotrow_instance(4, 16, seed=1)
        assert baseline_budget(big) > baseline_budget(small)
